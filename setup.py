"""Legacy setup shim: the sandbox has no network, so PEP 517 build isolation
(and PEP 660 editable wheels, which need the `wheel` package) are unavailable.
`pip install -e . --no-build-isolation` falls back to `setup.py develop` here.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'NNQS-Transformer: an Efficient and Scalable Neural "
        "Network Quantum States Approach for Ab initio Quantum Chemistry' (SC'23)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
