"""The declarative experiment spec: one serializable tree per run.

The paper's Sec. 4.1 workflow (molecule -> ansatz -> warm start -> grow-N_s
VMC -> report) is expressed as a :class:`RunSpec` — a tree of small frozen
dataclasses, one per subsystem — instead of hand-threaded ``build_problem``
/ ``build_qiankunnet`` / ``Trainer`` calls.  Specs are data, not code:

* every field is JSON-native (str / int / float / bool / None / dict /
  tuple-of-int), so ``spec -> to_dict -> json -> from_dict`` is lossless;
* validation runs at construction (``__post_init__``) and names the exact
  field path (``sampling.ns_growth``) instead of failing deep in the loop;
* component choices (``ansatz.name``, ``optimizer.name``, ``sampling.sampler``)
  are string keys into the registries of :mod:`repro.api.registry`, so new
  components plug in by name;
* dotted overrides (``train.max_iterations=3`` — the CLI ``--set`` syntax)
  rewrite the dict form before re-validation.

The driver (:mod:`repro.api.driver`) materializes a spec into live objects
and owns the artifact directory; this module knows nothing about execution.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.backend import BACKEND_NAMES
from repro.core.engine import ELOC_MODES, ELOC_PARTITIONS

__all__ = [
    "SpecError",
    "ProblemSpec",
    "AnsatzSpec",
    "OptimizerSpec",
    "SamplingSpec",
    "ParallelSpec",
    "BackendSpec",
    "TrainSpec",
    "OutputSpec",
    "ServeSpec",
    "RunSpec",
    "parse_set_assignment",
    "coerce_override_value",
    "apply_overrides",
]

class SpecError(ValueError):
    """A spec field failed validation; the message names the field path."""


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise SpecError(f"{path}: {message}")


@dataclass
class _Spec:
    """Base for all spec nodes: dict/JSON round-trip + unknown-key errors."""

    _SECTION = ""          # dotted prefix used in error messages
    _TUPLE_FIELDS = ()     # fields stored as JSON lists but typed as tuples

    def to_dict(self) -> dict:
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, _Spec):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, dict):
                value = dict(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "_Spec":
        if not isinstance(data, dict):
            raise SpecError(
                f"{cls._SECTION or cls.__name__}: expected a mapping, "
                f"got {type(data).__name__}"
            )
        known = {f.name: f for f in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            section = cls._SECTION or cls.__name__
            raise SpecError(
                f"{section}: unknown field(s) {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(known))})"
            )
        kwargs = {}
        for name, value in data.items():
            f = known[name]
            sub = _SUBSPEC_TYPES.get((cls, name))
            if sub is not None and isinstance(value, dict):
                value = sub.from_dict(value)
            elif name in cls._TUPLE_FIELDS and isinstance(value, list):
                value = tuple(value)
            kwargs[name] = value
        return cls(**kwargs)


# ------------------------------------------------------------------ sections
@dataclass
class ProblemSpec(_Spec):
    """Which molecular problem to solve (``repro.chem.build_problem``)."""

    _SECTION = "problem"

    molecule: str = "H2"
    basis: str = "sto-3g"
    n_frozen: int = 0
    n_active: int | None = None
    geometry: dict = field(default_factory=dict)  # e.g. {"r": 0.7414}

    def __post_init__(self) -> None:
        _require(isinstance(self.molecule, str) and bool(self.molecule),
                 "problem.molecule", "must be a non-empty molecule name")
        _require(isinstance(self.basis, str) and bool(self.basis),
                 "problem.basis", "must be a non-empty basis name")
        _require(isinstance(self.n_frozen, int) and self.n_frozen >= 0,
                 "problem.n_frozen", f"must be a non-negative int, got {self.n_frozen!r}")
        _require(self.n_active is None
                 or (isinstance(self.n_active, int) and self.n_active > 0),
                 "problem.n_active", f"must be None or a positive int, got {self.n_active!r}")
        _require(isinstance(self.geometry, dict),
                 "problem.geometry", "must be a mapping of geometry kwargs")


@dataclass
class AnsatzSpec(_Spec):
    """Which wavefunction ansatz to build (``repro.api`` ansatz registry)."""

    _SECTION = "ansatz"
    _TUPLE_FIELDS = ("phase_hidden",)

    name: str = "transformer"
    d_model: int = 16
    n_heads: int = 4
    n_layers: int = 2
    phase_hidden: tuple = (512, 512)
    token_bits: int = 2
    constrain: bool = True
    reverse_order: bool = True
    seed: int = 0
    params: dict = field(default_factory=dict)  # extra kwargs for the builder

    def __post_init__(self) -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 "ansatz.name", "must be a registered ansatz name")
        for attr in ("d_model", "n_heads", "n_layers"):
            v = getattr(self, attr)
            _require(isinstance(v, int) and v > 0,
                     f"ansatz.{attr}", f"must be a positive int, got {v!r}")
        _require(self.token_bits in (1, 2),
                 "ansatz.token_bits", f"must be 1 or 2, got {self.token_bits!r}")
        _require(all(isinstance(h, int) and h > 0 for h in self.phase_hidden),
                 "ansatz.phase_hidden", f"must be positive ints, got {self.phase_hidden!r}")
        _require(isinstance(self.params, dict),
                 "ansatz.params", "must be a mapping of extra builder kwargs")


@dataclass
class OptimizerSpec(_Spec):
    """Which optimizer drives the parameter updates."""

    _SECTION = "optimizer"

    name: str = "adamw"
    lr_scale: float = 1.0
    warmup: int = 4000
    weight_decay: float = 0.01
    grad_clip: float | None = 1.0
    params: dict = field(default_factory=dict)  # e.g. SR's lr / diag_shift

    def __post_init__(self) -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 "optimizer.name", "must be a registered optimizer name")
        _require(self.lr_scale > 0,
                 "optimizer.lr_scale", f"must be positive, got {self.lr_scale!r}")
        _require(isinstance(self.warmup, int) and self.warmup > 0,
                 "optimizer.warmup", f"must be a positive int, got {self.warmup!r}")
        _require(self.weight_decay >= 0,
                 "optimizer.weight_decay", f"must be >= 0, got {self.weight_decay!r}")
        _require(self.grad_clip is None or self.grad_clip > 0,
                 "optimizer.grad_clip", f"must be None or positive, got {self.grad_clip!r}")
        _require(isinstance(self.params, dict),
                 "optimizer.params", "must be a mapping of optimizer kwargs")


@dataclass
class SamplingSpec(_Spec):
    """Sampler choice + the paper's growing-N_s schedule + E_loc mode."""

    _SECTION = "sampling"

    sampler: str = "bas"
    ns_pretrain: int = 10**5
    ns_max: int = 10**12
    ns_growth: float = 1.3
    pretrain_iters: int = 100
    eloc_mode: str = "exact"
    # Batch local-energy kernel, by eloc_kernel-registry name: 'planned'
    # (compiled ElocPlan + coupled-key dedup, the default) or 'vectorized'
    # (the unplanned reference).  Values are bit-identical either way.
    eloc_kernel: str = "planned"
    params: dict = field(default_factory=dict)  # e.g. hybrid's n_streams

    def __post_init__(self) -> None:
        _require(isinstance(self.sampler, str) and bool(self.sampler),
                 "sampling.sampler", "must be a registered sampler name")
        _require(isinstance(self.ns_pretrain, int) and self.ns_pretrain > 0,
                 "sampling.ns_pretrain", f"must be a positive int, got {self.ns_pretrain!r}")
        _require(isinstance(self.ns_max, int) and self.ns_max > 0,
                 "sampling.ns_max", f"must be a positive int, got {self.ns_max!r}")
        _require(self.ns_growth > 0,
                 "sampling.ns_growth", f"must be positive, got {self.ns_growth!r}")
        _require(isinstance(self.pretrain_iters, int) and self.pretrain_iters >= 0,
                 "sampling.pretrain_iters",
                 f"must be a non-negative int, got {self.pretrain_iters!r}")
        _require(self.eloc_mode in ELOC_MODES,
                 "sampling.eloc_mode",
                 f"must be one of {ELOC_MODES}, got {self.eloc_mode!r}")
        _require(isinstance(self.eloc_kernel, str) and bool(self.eloc_kernel),
                 "sampling.eloc_kernel",
                 "must be a registered batch eloc_kernel name")
        _require(isinstance(self.params, dict),
                 "sampling.params", "must be a mapping of sampler kwargs")


@dataclass
class ParallelSpec(_Spec):
    """Execution backend choice — the Fig. 4 data-parallel iteration as data.

    ``backend`` names a registered execution backend (``serial`` /
    ``threads`` / ``process`` / ``cluster``); ``n_ranks`` and
    ``nu_star_per_rank`` map to the paper's N_p and N_u^*/N_p;
    ``eloc_partition`` selects the Sec. 3.3 weight-balanced local-energy
    chunking (or ``contiguous`` for the naive 1/N_p split); the
    chunking/budget knobs feed the vectorized kernel.

    ``comm_codec`` toggles the stage-2 delta/varint compression and
    ``comm_shm`` the process backend's shared-memory transport (see
    DESIGN.md "Communication layer"); both default on and are bit-identical
    either way — they only change what crosses the wire.

    The cluster fields describe one SPMD member of a multi-host job:
    ``rendezvous_addr`` is the ``host:port`` of the ``python -m repro
    rendezvous`` coordinator, ``rank`` optionally pins this member's rank,
    and ``world_size`` may spell out the job size explicitly (it must agree
    with ``n_ranks`` when both are set).  ``join_timeout_s`` bounds the
    rendezvous/mesh construction and ``collective_timeout_s`` bounds each
    collective (also the process backend's coordinator read timeout).
    """

    _SECTION = "parallel"

    backend: str = "serial"
    n_ranks: int = 1
    nu_star_per_rank: int = 64
    eloc_partition: str = "balanced"
    group_chunk: int = 512
    sample_chunk: int = 4096
    eloc_memory_budget_mb: float | None = None
    comm_codec: bool = True
    comm_shm: bool = True
    rendezvous_addr: str | None = None
    rank: int | None = None
    world_size: int | None = None
    join_timeout_s: float = 60.0
    collective_timeout_s: float = 600.0

    def __post_init__(self) -> None:
        _require(isinstance(self.backend, str) and bool(self.backend),
                 "parallel.backend", "must be a registered backend name")
        _require(isinstance(self.n_ranks, int) and self.n_ranks > 0,
                 "parallel.n_ranks", f"must be a positive int, got {self.n_ranks!r}")
        if self.rendezvous_addr is not None:
            ok = isinstance(self.rendezvous_addr, str)
            if ok:
                host, sep, port = self.rendezvous_addr.rpartition(":")
                ok = bool(sep) and bool(host) and port.isdigit() \
                    and 0 < int(port) < 65536
            _require(ok, "parallel.rendezvous_addr",
                     f"must be host:port, got {self.rendezvous_addr!r}")
        _require(self.world_size is None
                 or (isinstance(self.world_size, int) and self.world_size > 0),
                 "parallel.world_size",
                 f"must be None or a positive int, got {self.world_size!r}")
        if self.world_size is not None and self.n_ranks != 1 \
                and self.n_ranks != self.world_size:
            raise SpecError(
                f"parallel.world_size: {self.world_size} conflicts with "
                f"parallel.n_ranks={self.n_ranks}; set one of them (or both "
                "equal)"
            )
        _require(self.rank is None
                 or (isinstance(self.rank, int) and self.rank >= 0),
                 "parallel.rank",
                 f"must be None or a non-negative int, got {self.rank!r}")
        if self.rank is not None:
            world = self.world_size if self.world_size is not None \
                else self.n_ranks
            _require(self.rank < world, "parallel.rank",
                     f"must be < the world size ({world}), got {self.rank}")
        for attr in ("join_timeout_s", "collective_timeout_s"):
            v = getattr(self, attr)
            _require(isinstance(v, (int, float)) and v > 0,
                     f"parallel.{attr}", f"must be positive, got {v!r}")
        _require(isinstance(self.nu_star_per_rank, int) and self.nu_star_per_rank > 0,
                 "parallel.nu_star_per_rank",
                 f"must be a positive int, got {self.nu_star_per_rank!r}")
        _require(self.eloc_partition in ELOC_PARTITIONS,
                 "parallel.eloc_partition",
                 f"must be one of {ELOC_PARTITIONS}, got {self.eloc_partition!r}")
        for attr in ("group_chunk", "sample_chunk"):
            v = getattr(self, attr)
            _require(isinstance(v, int) and v > 0,
                     f"parallel.{attr}", f"must be a positive int, got {v!r}")
        _require(self.eloc_memory_budget_mb is None
                 or (isinstance(self.eloc_memory_budget_mb, (int, float))
                     and self.eloc_memory_budget_mb > 0),
                 "parallel.eloc_memory_budget_mb",
                 f"must be None or positive, got {self.eloc_memory_budget_mb!r}")
        for attr in ("comm_codec", "comm_shm"):
            v = getattr(self, attr)
            _require(isinstance(v, bool),
                     f"parallel.{attr}", f"must be a bool, got {v!r}")


@dataclass
class BackendSpec(_Spec):
    """Array-backend choice — which namespace the hot kernels allocate on.

    ``name`` picks a registered :mod:`repro.backend` implementation:
    ``numpy`` (the default; bit-identical to the historical code),
    ``mock`` (numpy wrapped with allocation/transfer counters — the
    residency-contract verifier, still bit-identical), or the import-gated
    device backends ``torch`` / ``cupy``.  ``device`` is the backend's
    device string (e.g. ``cuda:0``); None keeps its default placement.
    Validation here checks the *name* only — availability of optional
    wheels is a materialize-time concern (:mod:`repro.api.driver`).
    """

    _SECTION = "backend"

    name: str = "numpy"
    device: str | None = None

    def __post_init__(self) -> None:
        _require(self.name in BACKEND_NAMES,
                 "backend.name",
                 f"must be one of {BACKEND_NAMES}, got {self.name!r}")
        _require(self.device is None
                 or (isinstance(self.device, str) and bool(self.device)),
                 "backend.device",
                 f"must be None or a device string, got {self.device!r}")


@dataclass
class TrainSpec(_Spec):
    """Loop budget, warm start, and stopping policy (Sec. 4.1 protocol)."""

    _SECTION = "train"

    max_iterations: int = 1000
    pretrain_steps: int = 200
    pretrain_target: float = 0.5
    seed: int = 0
    plateau_window: int = 100
    plateau_rel_tol: float = 1e-7
    early_stop: bool = True

    def __post_init__(self) -> None:
        _require(isinstance(self.max_iterations, int) and self.max_iterations > 0,
                 "train.max_iterations",
                 f"must be a positive int, got {self.max_iterations!r}")
        _require(isinstance(self.pretrain_steps, int) and self.pretrain_steps >= 0,
                 "train.pretrain_steps",
                 f"must be a non-negative int, got {self.pretrain_steps!r}")
        _require(0.0 < self.pretrain_target < 1.0,
                 "train.pretrain_target",
                 f"must be in (0, 1), got {self.pretrain_target!r}")
        _require(isinstance(self.plateau_window, int) and self.plateau_window > 0,
                 "train.plateau_window",
                 f"must be a positive int, got {self.plateau_window!r}")
        _require(self.plateau_rel_tol > 0,
                 "train.plateau_rel_tol",
                 f"must be positive, got {self.plateau_rel_tol!r}")


@dataclass
class OutputSpec(_Spec):
    """Artifact-directory policy: checkpoints, logs, snapshot publication."""

    _SECTION = "output"

    run_dir: str | None = None      # None: the driver picks runs/<name>
    checkpoint_every: int = 0       # 0: final checkpoint only
    log_every: int = 0              # 0: no console prints
    publish: bool = True            # publish final snapshot to <run>/models
    publish_every: int = 0          # also publish every K iterations (0: off)
    reference: str | float | None = None  # "fci", an energy in Ha, or None

    def __post_init__(self) -> None:
        for attr in ("checkpoint_every", "log_every", "publish_every"):
            v = getattr(self, attr)
            _require(isinstance(v, int) and v >= 0,
                     f"output.{attr}", f"must be a non-negative int, got {v!r}")
        _require(
            self.reference is None
            or isinstance(self.reference, (int, float))
            or self.reference == "fci",
            "output.reference",
            f"must be None, 'fci', or an energy in Ha, got {self.reference!r}",
        )


@dataclass
class ServeSpec(_Spec):
    """The serving tier as data: batcher knobs + the network topology.

    The first four fields mirror :class:`repro.serve.ServeConfig` (the
    microbatching/backpressure contract — see DESIGN.md "Serving layer");
    the rest shape the per-version cache machinery and the network tier
    behind ``python -m repro serve --port`` (DESIGN.md "Network serving
    tier").  Everything is overridable via ``--set serve.<field>=...``.
    """

    _SECTION = "serve"

    max_batch_size: int = 256       # rows fused into one forward pass
    max_wait_ms: float = 2.0        # straggler-latency budget per batch
    queue_capacity: int = 1024      # bounded queue => backpressure
    submit_timeout: float = 30.0    # seconds before overload rejection
    max_loaded_versions: int = 4    # resident snapshot LRU
    session_pool_size: int = 4      # idle sessions kept per version
    prefix_cache_entries: int = 8   # live decoding sessions per version
    table_max_entries: int = 500_000  # per-version amplitude-table cap
    workers: int = 2                # network tier: worker processes
    prefix_anchor: int = 8          # routing key: tokens hashed per prefix
    hash_replicas: int = 64         # vnodes per worker on the ring
    refresh_poll_s: float = 2.0     # registry poll period (0: disabled)
    respawn_backoff_s: float = 0.5  # wait before restarting a dead worker
    drain_timeout_s: float = 10.0   # graceful-shutdown budget
    backend: str = "numpy"          # array backend model evaluations run under

    def __post_init__(self) -> None:
        _require(self.backend in BACKEND_NAMES, "serve.backend",
                 f"must be one of {BACKEND_NAMES}, got {self.backend!r}")
        for attr in ("max_batch_size", "queue_capacity", "workers",
                     "prefix_anchor", "hash_replicas", "max_loaded_versions",
                     "session_pool_size", "prefix_cache_entries",
                     "table_max_entries"):
            v = getattr(self, attr)
            _require(isinstance(v, int) and v > 0,
                     f"serve.{attr}", f"must be a positive int, got {v!r}")
        for attr in ("max_wait_ms", "submit_timeout", "refresh_poll_s",
                     "respawn_backoff_s"):
            v = getattr(self, attr)
            _require(isinstance(v, (int, float)) and v >= 0,
                     f"serve.{attr}", f"must be >= 0, got {v!r}")
        _require(isinstance(self.drain_timeout_s, (int, float))
                 and self.drain_timeout_s > 0,
                 "serve.drain_timeout_s",
                 f"must be positive, got {self.drain_timeout_s!r}")

    def to_serve_config(self):
        """The in-process :class:`repro.serve.ServeConfig` slice of this
        section (the network-topology fields stay with the router)."""
        from repro.serve import ServeConfig

        return ServeConfig(
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            queue_capacity=self.queue_capacity,
            submit_timeout=self.submit_timeout,
            max_loaded_versions=self.max_loaded_versions,
            session_pool_size=self.session_pool_size,
            prefix_cache_entries=self.prefix_cache_entries,
            table_max_entries=self.table_max_entries,
            backend=self.backend,
        )


@dataclass
class RunSpec(_Spec):
    """The full declarative experiment: one spec tree == one reproducible run."""

    name: str = "run"
    problem: ProblemSpec = field(default_factory=ProblemSpec)
    ansatz: AnsatzSpec = field(default_factory=AnsatzSpec)
    optimizer: OptimizerSpec = field(default_factory=OptimizerSpec)
    sampling: SamplingSpec = field(default_factory=SamplingSpec)
    parallel: ParallelSpec = field(default_factory=ParallelSpec)
    backend: BackendSpec = field(default_factory=BackendSpec)
    train: TrainSpec = field(default_factory=TrainSpec)
    output: OutputSpec = field(default_factory=OutputSpec)
    serve: ServeSpec = field(default_factory=ServeSpec)

    def __post_init__(self) -> None:
        _require(isinstance(self.name, str) and bool(self.name),
                 "name", "must be a non-empty run name")

    # ------------------------------------------------------------------ JSON
    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "RunSpec":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------- overrides
    def with_overrides(self, assignments: dict | list | None) -> "RunSpec":
        """A new spec with dotted-path overrides applied and re-validated.

        ``assignments`` is either a mapping ``{"train.max_iterations": 3}``
        or a list of CLI-style ``"train.max_iterations=3"`` strings.
        """
        if not assignments:
            return self
        if not isinstance(assignments, dict):
            assignments = dict(parse_set_assignment(a) for a in assignments)
        return type(self).from_dict(apply_overrides(self.to_dict(), assignments))


# ``from_dict`` dispatch for nested sections (populated after class bodies).
_SUBSPEC_TYPES = {
    (RunSpec, "problem"): ProblemSpec,
    (RunSpec, "ansatz"): AnsatzSpec,
    (RunSpec, "optimizer"): OptimizerSpec,
    (RunSpec, "sampling"): SamplingSpec,
    (RunSpec, "parallel"): ParallelSpec,
    (RunSpec, "backend"): BackendSpec,
    (RunSpec, "train"): TrainSpec,
    (RunSpec, "output"): OutputSpec,
    (RunSpec, "serve"): ServeSpec,
}


# ---------------------------------------------------------- --set overrides
def parse_set_assignment(text: str) -> tuple[str, object]:
    """``"train.max_iterations=3"`` -> ``("train.max_iterations", 3)``.

    The right-hand side is parsed as JSON when possible (ints, floats,
    booleans, null, quoted strings, lists) and kept as a bare string
    otherwise, so ``--set problem.molecule=LiH`` needs no quoting.
    """
    key, sep, raw = text.partition("=")
    if not sep or not key.strip():
        raise SpecError(
            f"--set expects key=value with a dotted key, got {text!r}"
        )
    return key.strip(), coerce_override_value(raw.strip())


def coerce_override_value(raw: str) -> object:
    try:
        return json.loads(raw)
    except (json.JSONDecodeError, ValueError):
        return raw


def apply_overrides(data: dict, assignments: dict) -> dict:
    """Apply ``{"a.b.c": value}`` overrides to a nested spec dict (copied)."""
    out = json.loads(json.dumps(data))  # deep copy, JSON-native by contract
    for dotted, value in assignments.items():
        parts = dotted.split(".")
        node = out
        for i, part in enumerate(parts[:-1]):
            child = node.get(part)
            if not isinstance(child, dict):
                raise SpecError(
                    f"override {dotted!r}: {'.'.join(parts[: i + 1])} "
                    "is not a spec section"
                )
            node = child
        node[parts[-1]] = value
    return out
