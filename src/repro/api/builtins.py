"""Built-in components: the repo's existing builders, registered by name.

Importing :mod:`repro.api` triggers this module, so every spec-addressable
name below is available without further setup.  The registrations wrap the
canonical builders (``build_qiankunnet``, ``AdamW``, ``batch_autoregressive_
sample``, the local-energy ladder) — the registry layer adds *naming*, not
new numerics.

Registered names:

* ansatz: ``transformer`` (QiankunNet), ``made``, ``naqs-mlp``, ``rbm``
* optimizer: ``adamw`` (the Trainer/VMC path), ``sr``
* sampler: ``bas`` (batch autoregressive), ``hybrid`` (independent-stream
  merge, Sec. 4.4), ``mcmc`` (Metropolis exchange moves)
* eloc_kernel: ``exact`` / ``sample_aware`` (the high-level modes of
  ``local_energy``), the scalar Fig. 10 rungs ``baseline`` / ``sa_fuse``
  / ``sa_fuse_lut`` (native low-level signatures), and the engine-drivable
  batch rungs ``vectorized`` / ``planned`` (shared batch-kernel signature;
  ``planned`` is the compiled-plan + coupled-key-dedup kernel the spec's
  ``sampling.eloc_kernel`` selects by default — see
  :mod:`repro.core.local_energy`).
* backend: ``serial`` / ``threads`` / ``process`` — the execution backends
  of :mod:`repro.core.engine` — plus ``cluster``, the multi-host TCP/MPI
  transport of :mod:`repro.parallel.cluster` (the spec's ``parallel``
  section).
"""
from __future__ import annotations

import numpy as np

from repro.api.registry import (
    register_ansatz,
    register_backend,
    register_eloc_kernel,
    register_optimizer,
    register_sampler,
)
from repro.core.engine import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.hybrid_sampling import merged_batch_sample
from repro.core.local_energy import (
    BATCH_ELOC_KERNELS,
    local_energy,
    local_energy_baseline,
    local_energy_sa_fuse,
    local_energy_sa_fuse_lut,
)
from repro.core.mcmc import metropolis_sample
from repro.core.sampler import batch_autoregressive_sample
from repro.core.sr import SRConfig, StochasticReconfiguration
from repro.core.wavefunction import build_qiankunnet
from repro.nn.rbm import RBMWavefunction
from repro.optim import AdamW

__all__ = []  # registration side effects only


# ------------------------------------------------------------------- ansätze
def _autoregressive_builder(amplitude_type: str):
    def build(n_qubits: int, n_up: int, n_dn: int, *, seed: int = 0, **params):
        return build_qiankunnet(
            n_qubits, n_up, n_dn, amplitude_type=amplitude_type, seed=seed,
            **params,
        )

    build.__name__ = f"build_{amplitude_type.replace('-', '_')}"
    return build


for _kind in ("transformer", "made", "naqs-mlp"):
    register_ansatz(_kind, _autoregressive_builder(_kind))


@register_ansatz("rbm")
def build_rbm(n_qubits: int, n_up: int, n_dn: int, *, seed: int = 0,
              alpha: int = 2):
    """The RBM baseline (MCMC-sampled; trains through ``repro.core.mcmc``).

    The exact signature (no ``**params``) lets the driver filter out the
    autoregressive architecture fields; typos in ``ansatz.params`` still
    raise the natural ``TypeError``.
    """
    del n_up, n_dn  # the RBM itself is sector-agnostic; MCMC moves conserve N
    return RBMWavefunction(n_qubits, alpha=alpha,
                           rng=np.random.default_rng(seed))


# ---------------------------------------------------------------- optimizers
@register_optimizer("adamw")
def build_adamw(wf, *, lr: float = 0.0, weight_decay: float = 0.01, **params):
    """The paper's optimizer. ``run()`` treats the name specially (Trainer
    path: AdamW + the Eq. 13 Noam schedule inside ``repro.core.vmc.VMC``);
    this factory serves direct programmatic composition."""
    if params:
        raise TypeError(f"adamw factory got unknown params {sorted(params)}")
    return AdamW(wf, lr=lr, weight_decay=weight_decay)


@register_optimizer("sr")
def build_sr(wf, **params):
    """Stochastic reconfiguration — the ``step(batch, eloc)`` protocol."""
    return StochasticReconfiguration(wf, SRConfig(**params))


# ------------------------------------------------------------------ samplers
@register_sampler("bas")
def build_bas_sampler(*, use_cache: bool = True,
                      cache_budget_bytes: int | None = None):
    """Batch autoregressive sampling (Fig. 3b) — the paper's sampler."""

    def sample(wf, n_samples, rng):
        return batch_autoregressive_sample(
            wf, n_samples, rng, use_cache=use_cache,
            cache_budget_bytes=cache_budget_bytes,
        )

    return sample


@register_sampler("hybrid")
def build_hybrid_sampler(*, n_streams: int = 4, use_cache: bool = True):
    """Independent-stream BAS merge (Sec. 4.4 outlook)."""

    def sample(wf, n_samples, rng):
        batch, _ = merged_batch_sample(
            wf, n_samples, rng, n_streams=n_streams, use_cache=use_cache,
        )
        return batch

    return sample


@register_sampler("mcmc")
def build_mcmc_sampler(*, start_bits=None, n_burnin: int = 200, thin: int = 2):
    """Single-chain Metropolis sampling (the RBM baseline's sampler).

    ``start_bits`` (the chain's starting determinant, e.g. the HF bits) is
    bound at factory time; the driver passes the problem's ``hf_bits``.
    """
    if start_bits is None:
        raise ValueError(
            "mcmc sampler needs start_bits (e.g. the problem's hf_bits)"
        )
    start = np.asarray(start_bits, dtype=np.uint8)

    def sample(wf, n_samples, rng):
        batch, _ = metropolis_sample(
            wf, start, n_samples, rng, n_burnin=n_burnin, thin=thin,
        )
        return batch

    return sample


# ---------------------------------------------------------- execution backends
@register_backend("serial")
def build_serial_backend(n_ranks: int = 1, **params):
    """The classic single-rank iteration (the default ``parallel`` section)."""
    if n_ranks != 1:
        raise ValueError(
            f"the serial backend runs exactly one rank (got n_ranks={n_ranks}); "
            "use parallel.backend=threads, =process or =cluster for N_p > 1"
        )
    return SerialBackend()


@register_backend("threads")
def build_thread_backend(n_ranks: int = 1, *, nu_star_per_rank: int = 64,
                         eloc_partition: str = "balanced",
                         comm_codec: bool = True, comm_shm: bool = True):
    """FakeMPI thread ranks — the Fig. 4 data-parallel iteration in-process."""
    return ThreadBackend(n_ranks=n_ranks, nu_star_per_rank=nu_star_per_rank,
                         eloc_partition=eloc_partition,
                         comm_codec=comm_codec, comm_shm=comm_shm)


@register_backend("process")
def build_process_backend(n_ranks: int = 1, *, nu_star_per_rank: int = 64,
                          eloc_partition: str = "balanced",
                          comm_codec: bool = True, comm_shm: bool = True,
                          timeout: float = 600.0, join_timeout: float = 10.0):
    """Forked OS-process ranks (fork start method; Linux)."""
    return ProcessBackend(n_ranks=n_ranks, nu_star_per_rank=nu_star_per_rank,
                          eloc_partition=eloc_partition,
                          comm_codec=comm_codec, comm_shm=comm_shm,
                          timeout=timeout, join_timeout=join_timeout)


@register_backend("cluster")
def build_cluster_backend(n_ranks: int = 1, *, nu_star_per_rank: int = 64,
                          eloc_partition: str = "balanced",
                          comm_codec: bool = True, comm_shm: bool = True,
                          rendezvous_addr: str | None = None,
                          rank: int | None = None,
                          join_timeout: float = 60.0,
                          collective_timeout: float = 600.0):
    """Multi-host SPMD ranks over TCP sockets (or mpi4py when available).

    One rank per invocation: every host runs the full driver on the same
    spec and the ranks meet inside the collectives.  Without an MPI world
    of matching size, a rendezvous coordinator address is required — fail
    here, at spec time, rather than deep inside rendezvous.
    """
    from repro.parallel.cluster import ClusterBackend, _mpi_comm_world

    if rendezvous_addr is None:
        mpi = _mpi_comm_world()
        if mpi is None or mpi.Get_size() != n_ranks:
            raise ValueError(
                "the cluster backend needs parallel.rendezvous_addr "
                "(host:port of a `python -m repro rendezvous` coordinator) "
                f"when no MPI world of size {n_ranks} is available"
            )
    return ClusterBackend(
        n_ranks=n_ranks, nu_star_per_rank=nu_star_per_rank,
        eloc_partition=eloc_partition, comm_codec=comm_codec,
        comm_shm=comm_shm, rendezvous_addr=rendezvous_addr, rank=rank,
        join_timeout=join_timeout, collective_timeout=collective_timeout,
    )


# --------------------------------------------------------- local-energy ladder
register_eloc_kernel("exact",
                     lambda wf, comp, batch, table=None:
                     local_energy(wf, comp, batch, mode="exact", table=table))
register_eloc_kernel("sample_aware",
                     lambda wf, comp, batch, table=None:
                     local_energy(wf, comp, batch, mode="sample_aware",
                                  table=table))
# The raw Fig. 10 ladder, exposed for benchmarks/ablation by name.  The
# scalar rungs keep their native low-level signatures (documented in
# core/local_energy).
register_eloc_kernel("baseline", local_energy_baseline)
register_eloc_kernel("sa_fuse", local_energy_sa_fuse)
register_eloc_kernel("sa_fuse_lut", local_energy_sa_fuse_lut)
# The batch rungs share the engine-drivable signature
#   kernel(comp, batch, table, *, group_chunk, sample_chunk,
#          memory_budget_bytes, plan) -> eloc
# so `sampling.eloc_kernel` can select either by name ('planned' is the
# compiled-ElocPlan + coupled-key-dedup kernel; values are bit-identical).
for _name, _kernel in BATCH_ELOC_KERNELS.items():
    register_eloc_kernel(_name, _kernel)
