"""The ``python -m repro`` command line — specs in, artifact dirs out.

Subcommands:

* ``run``     — execute a spec from ``--spec file.json`` or ``--preset name``,
  with ``--set key=value`` dotted overrides.
* ``resume``  — continue a run directory (``--set`` can extend the budget).
* ``info``    — inspect a run directory, or list presets / registered
  components (``--presets`` / ``--components``).
* ``serve``   — with ``--port``, run the network serving tier (an HTTP/JSON
  router over ``--workers`` worker processes; SIGTERM/SIGINT drain
  gracefully).  Without ``--port``, answer ``log_amplitudes`` requests
  in-process, self-checked against direct evaluation of the loaded
  snapshot.
* ``serve-worker`` — internal: one serving worker, spawned by the router
  (not for direct use).
* ``rendezvous`` — run the cluster rendezvous coordinator for one
  multi-host job (``parallel.backend=cluster`` members dial it).

Every subcommand is importable (``repro.api.cli.main``) and returns an exit
code, so tests drive it in-process and CI drives it as a subprocess.
"""
from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.api import driver, presets
from repro.api.registry import ANSATZE, BACKENDS, ELOC_KERNELS, OPTIMIZERS, SAMPLERS
from repro.api.spec import RunSpec, SpecError

__all__ = ["main", "build_parser", "load_spec"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NNQS-Transformer experiment runner (declarative RunSpec API)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a RunSpec end to end")
    src = p_run.add_mutually_exclusive_group(required=True)
    src.add_argument("--spec", type=Path, help="path to a RunSpec JSON file")
    src.add_argument("--preset", help="name of a built-in preset spec")
    p_run.add_argument("--set", dest="overrides", action="append", default=[],
                       metavar="KEY=VALUE",
                       help="dotted spec override, e.g. train.max_iterations=3")
    p_run.add_argument("--run-dir", type=Path, default=None,
                       help="artifact directory (default: runs/<name>-<stamp>)")

    p_resume = sub.add_parser("resume", help="continue a run directory")
    p_resume.add_argument("run_dir", type=Path)
    p_resume.add_argument("--set", dest="overrides", action="append",
                          default=[], metavar="KEY=VALUE",
                          help="spec override, e.g. train.max_iterations=200")

    p_info = sub.add_parser("info", help="inspect a run / list components")
    p_info.add_argument("run_dir", type=Path, nargs="?")
    p_info.add_argument("--presets", action="store_true",
                        help="list built-in preset specs")
    p_info.add_argument("--components", action="store_true",
                        help="list registered ansätze/optimizers/samplers/kernels")

    p_serve = sub.add_parser(
        "serve", help="serve a run's snapshots (HTTP with --port, "
                      "self-check otherwise)")
    p_serve.add_argument("run_dir", type=Path)
    p_serve.add_argument("--port", type=int, default=None,
                         help="start the HTTP serving tier on this port "
                              "(0 picks a free port)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="interface the HTTP tier binds "
                              "(default: loopback)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker processes for the HTTP tier "
                              "(default: serve.workers)")
    p_serve.add_argument("--set", dest="overrides", action="append",
                         default=[], metavar="KEY=VALUE",
                         help="spec override, e.g. serve.max_batch_size=64")
    p_serve.add_argument("--bits-file", type=Path, default=None,
                         help="JSON file with a list of 0/1 bitstring rows to evaluate")
    p_serve.add_argument("--n-random", type=int, default=4,
                         help="additionally evaluate N seeded random bitstrings")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="seed for the random request bitstrings")
    p_serve.add_argument("--version", type=int, default=None,
                         help="pin a published snapshot version (default: latest)")

    # Internal: the router spawns these; never invoked by hand.
    p_worker = sub.add_parser("serve-worker")
    p_worker.add_argument("run_dir", type=Path)
    p_worker.add_argument("--connect", required=True,
                          help="host:port of the router's internal listener")
    p_worker.add_argument("--worker-id", type=int, required=True)
    p_worker.add_argument("--set", dest="overrides", action="append",
                          default=[], metavar="KEY=VALUE")

    p_rdv = sub.add_parser(
        "rendezvous",
        help="run the cluster rendezvous coordinator for one job")
    p_rdv.add_argument("--port", type=int, required=True,
                       help="TCP port to listen on (0 picks a free port)")
    p_rdv.add_argument("--host", default="0.0.0.0",
                       help="interface to bind (default: all)")
    p_rdv.add_argument("--world-size", type=int, required=True,
                       help="number of ranks in the job")
    p_rdv.add_argument("--join-timeout", type=float, default=60.0,
                       help="seconds to wait for all ranks to join")
    p_rdv.add_argument("--heartbeat-interval", type=float, default=2.0,
                       help="seconds between member heartbeats")
    p_rdv.add_argument("--heartbeat-timeout", type=float, default=10.0,
                       help="seconds without a heartbeat before a rank is "
                            "declared dead")
    return parser


def load_spec(args: argparse.Namespace) -> RunSpec:
    if args.spec is not None:
        if not args.spec.exists():
            raise SpecError(f"spec file {args.spec} does not exist")
        spec = RunSpec.load(args.spec)
    else:
        spec = presets.get_preset(args.preset)
    return spec.with_overrides(args.overrides)


# ---------------------------------------------------------------- subcommands
def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_spec(args)
    result = driver.run(spec, run_dir=args.run_dir)
    print(result.report.summary())
    print()
    print(f"run directory      {result.run_dir}")
    print(f"metrics            {result.metrics_path}")
    if result.published_version is not None:
        print(f"published snapshot v{result.published_version:06d} "
              f"in {result.registry_dir}")
        print(f"serve it with      python -m repro serve {result.run_dir}")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    result = driver.resume(args.run_dir, overrides=args.overrides)
    print(result.report.summary())
    print()
    print(f"run directory      {result.run_dir}")
    if result.published_version is not None:
        print(f"published snapshot v{result.published_version:06d} "
              f"in {result.registry_dir}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    if args.presets:
        for name in presets.preset_names():
            spec = presets.get_preset(name)
            print(f"{name:12s} {spec.problem.molecule}/{spec.problem.basis}  "
                  f"ansatz={spec.ansatz.name}  "
                  f"iters={spec.train.max_iterations}")
        return 0
    if args.components:
        for registry in (ANSATZE, OPTIMIZERS, SAMPLERS, ELOC_KERNELS, BACKENDS):
            print(f"{registry.kind}: {', '.join(registry.names())}")
        return 0
    if args.run_dir is None:
        print("info needs a run directory, --presets, or --components",
              file=sys.stderr)
        return 2
    return _print_run_info(args.run_dir)


def _print_run_info(run_dir: Path) -> int:
    spec_path = run_dir / driver.SPEC_FILE
    if not spec_path.exists():
        print(f"{run_dir} is not a run directory (no {driver.SPEC_FILE})",
              file=sys.stderr)
        return 2
    spec = RunSpec.load(spec_path)
    print(f"run      {spec.name}")
    print(f"problem  {spec.problem.molecule}/{spec.problem.basis}"
          + (f" CAS(n_frozen={spec.problem.n_frozen}, "
             f"n_active={spec.problem.n_active})"
             if spec.problem.n_frozen or spec.problem.n_active else ""))
    print(f"ansatz   {spec.ansatz.name}  optimizer {spec.optimizer.name}  "
          f"sampler {spec.sampling.sampler}")
    if spec.parallel.backend != "serial" or spec.parallel.n_ranks > 1:
        print(f"parallel {spec.parallel.backend} x {spec.parallel.n_ranks} "
              f"({spec.parallel.eloc_partition} eloc partition)")
    metrics_path = run_dir / driver.METRICS_FILE
    if metrics_path.exists():
        rows = [json.loads(line) for line in metrics_path.read_text().splitlines()]
        iters = [r for r in rows if "iteration" in r]
        if iters:
            last = iters[-1]
            print(f"metrics  {len(iters)} iterations, last E = "
                  f"{last['energy']:+.6f} Ha")
    report_path = run_dir / driver.REPORT_FILE
    if report_path.exists():
        report = json.loads(report_path.read_text())
        print(f"report   best E = {report['best_energy']:+.6f} Ha after "
              f"{report['iterations']} iterations"
              + ("  (early stop)" if report.get("stopped_early") else ""))
        if report.get("comm_bytes_logical") is not None:
            logical = report["comm_bytes_logical"]
            wire = report.get("comm_bytes_wire") or logical
            print(f"comm     {logical / 2**20:.1f} MB logical -> "
                  f"{wire / 2**20:.1f} MB wire "
                  f"({logical / max(wire, 1):.1f}x compression)")
    models = run_dir / driver.MODELS_DIR
    if (models / "manifest.json").exists():
        from repro.serve import ModelRegistry

        registry = ModelRegistry(models)
        print(f"models   versions {registry.versions()} "
              f"(latest v{registry.latest_version()})")
    stats_path = run_dir / "serve_stats.json"
    if stats_path.exists():
        _print_serve_stats(json.loads(stats_path.read_text()))
    return 0


def _print_serve_stats(stats: dict) -> None:
    """The last serving session's counters (written on router drain)."""
    http = stats.get("http", {})
    statuses = http.get("statuses", {})
    status_str = " ".join(f"{k}:{v}" for k, v in sorted(statuses.items()))
    print(f"serving  {http.get('requests', 0)} http requests"
          + (f" ({status_str})" if status_str else "")
          + (f", {stats['restarts']} worker restarts"
             if stats.get("restarts") else ""))
    batchers = [w.get("service", {}).get("batcher", {})
                for w in stats.get("per_worker", [])]
    batchers = [b for b in batchers if b]
    if batchers:
        requests = sum(b.get("requests", 0) for b in batchers)
        rejected = sum(b.get("rejected", 0) for b in batchers)
        batches = sum(b.get("batches", 0) for b in batchers)
        rows = sum(b.get("batched_rows", 0) for b in batchers)
        fuse = rows / batches if batches else 0.0
        print(f"         {len(batchers)} workers: {requests} batched "
              f"requests, {rejected} rejected, "
              f"fuse ratio {fuse:.1f} rows/batch")


def _load_run_spec(run_dir: Path, overrides: list[str]) -> RunSpec:
    spec_path = run_dir / driver.SPEC_FILE
    if not spec_path.exists():
        raise SpecError(f"{run_dir} has no {driver.SPEC_FILE}; "
                        "not a run directory")
    return RunSpec.load(spec_path).with_overrides(overrides)


def _cmd_serve_net(args: argparse.Namespace) -> int:
    """The network serving tier: router + workers until SIGTERM/SIGINT,
    then a graceful drain (every accepted request is answered)."""
    import signal
    import threading

    from repro.serve.net import NetServer

    spec = _load_run_spec(args.run_dir, args.overrides)
    worker_args: list[str] = []
    for assignment in args.overrides:
        worker_args += ["--set", assignment]
    server = NetServer(args.run_dir, host=args.host, port=args.port,
                       workers=args.workers, serve_spec=spec.serve,
                       worker_args=worker_args)

    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal API
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    server.start()
    try:
        server.wait_ready(timeout=120.0)
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        server.close(timeout=2.0)
        return 1
    print(f"serving {args.run_dir} on http://{server.host}:{server.port} "
          f"({server.workers} workers)", flush=True)
    while not stop.is_set():
        stop.wait(0.5)
    print("draining...", flush=True)
    stats = server.close()
    if stats is not None:
        http = stats.get("http", {})
        print(f"served {http.get('requests', 0)} requests "
              f"({stats.get('restarts', 0)} worker restarts); "
              f"stats in {args.run_dir / 'serve_stats.json'}", flush=True)
    return 0


def _cmd_serve_worker(args: argparse.Namespace) -> int:
    from repro.serve.net.worker import run_worker

    spec = _load_run_spec(args.run_dir, args.overrides)
    return run_worker(args.run_dir, args.connect, args.worker_id,
                      serve_spec=spec.serve)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Answer ``log_amplitudes`` requests through the serving stack.

    Every evaluation is checked against direct (in-process) evaluation of
    the same snapshot; any mismatch beyond fused-BLAS rounding is an error.
    """
    service = driver.serve_run(args.run_dir)
    registry = service.registry
    wf, _ = registry.load(args.version)

    requests = []
    if args.bits_file is not None:
        rows = json.loads(Path(args.bits_file).read_text())
        requests.append(("bits-file", np.asarray(rows, dtype=np.uint8)))

    worst = 0.0
    with service:
        version = args.version or service.active_version()
        if args.n_random > 0:
            # Draw physically valid configurations through the service's own
            # seeded sampler instead of unconstrained random bits.
            batch = service.sample(max(64, args.n_random), seed=args.seed,
                                   version=args.version)
            requests.append(("sampled", batch.bits[: args.n_random]))
        if not requests:
            print("nothing to evaluate (empty --bits-file and --n-random 0)",
                  file=sys.stderr)
            return 2
        for label, bits in requests:
            served = service.log_amplitudes(bits, version=args.version)
            direct = wf.log_amplitudes(bits)
            diff = float(np.max(np.abs(served - direct)))
            worst = max(worst, diff)
            for row, value in zip(bits, served):
                print(json.dumps({
                    "request": label,
                    "bits": row.tolist(),
                    "log_amplitude": [value.real, value.imag],
                }))
    print(f"served {sum(len(b) for _, b in requests)} log_amplitudes "
          f"requests from version {version} "
          f"(max |served - direct| = {worst:.2e})", file=sys.stderr)
    if worst > 1e-9:
        print("ERROR: served amplitudes disagree with direct evaluation",
              file=sys.stderr)
        return 1
    return 0


def _cmd_rendezvous(args: argparse.Namespace) -> int:
    """Supervise one cluster job: assign ranks, watch heartbeats, exit with
    0 on a clean completion and 1 when the job aborted."""
    from repro.parallel.rendezvous import RendezvousCoordinator

    coord = RendezvousCoordinator(
        world_size=args.world_size, host=args.host, port=args.port,
        join_timeout=args.join_timeout,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    host, port = coord.start()
    print(f"rendezvous listening on {host}:{port} "
          f"(world_size={args.world_size})", flush=True)
    try:
        outcome = coord.wait()
    except KeyboardInterrupt:
        outcome = "aborted: interrupted"
    finally:
        coord.stop()
    print(f"rendezvous finished: {outcome}", flush=True)
    return 0 if outcome == "completed" else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "resume":
            return _cmd_resume(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "serve":
            if args.port is not None:
                return _cmd_serve_net(args)
            return _cmd_serve(args)
        if args.command == "serve-worker":
            return _cmd_serve_worker(args)
        if args.command == "rendezvous":
            return _cmd_rendezvous(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")
