"""String-keyed component registries: ansätze, optimizers, samplers, kernels.

A spec names components (``ansatz.name = "transformer"``); the registries map
those names to builder callables.  This is the factory/driver split the AFQMC
production codes use — new components plug in by registering a name instead
of editing the driver's call sites:

    from repro.api import register_ansatz

    @register_ansatz("retnet")
    def build_retnet(n_qubits, n_up, n_dn, *, seed=0, **params):
        ...
        return wf

Builder contracts (what the driver calls):

* **ansatz**: ``builder(n_qubits, n_up, n_dn, *, seed=0, **params) -> wf``;
  the returned wavefunction should carry a ``spec`` dict if it is to be
  snapshot/published (``build_qiankunnet`` does this).
* **optimizer**: ``factory(wf, **params) -> optimizer``.  ``"adamw"`` is the
  Trainer/VMC path (the driver wires AdamW + the Eq. 13 schedule itself);
  any other optimizer must expose ``step(batch, eloc) -> info`` with an
  ``energy`` attribute (the SR protocol) to be drivable by ``run()``.
* **sampler**: ``factory(**params) -> sampler`` where
  ``sampler(wf, n_samples, rng) -> SampleBatch``.
* **eloc_kernel**: ``kernel(wf, comp, batch, table=None) ->
  (eloc, AmplitudeTable)`` — the signature of
  :func:`repro.core.local_energy.local_energy`.
* **backend**: ``factory(n_ranks, *, nu_star_per_rank, eloc_partition) ->
  ExecutionBackend`` — an execution backend of
  :mod:`repro.core.engine` (the spec's ``parallel.backend`` choice).

Unknown names raise :class:`UnknownComponentError` listing what *is*
registered, so a typo'd spec fails at materialization with an actionable
message instead of deep inside the run loop.
"""
from __future__ import annotations

from typing import Callable

__all__ = [
    "UnknownComponentError",
    "ComponentRegistry",
    "ANSATZE",
    "OPTIMIZERS",
    "SAMPLERS",
    "ELOC_KERNELS",
    "BACKENDS",
    "register_ansatz",
    "register_optimizer",
    "register_sampler",
    "register_eloc_kernel",
    "register_backend",
]


class UnknownComponentError(KeyError):
    """Lookup of a name nobody registered; the message lists the options."""

    def __init__(self, kind: str, name: str, registered: list[str]):
        self.kind = kind
        self.name = name
        self.registered = registered
        options = ", ".join(registered) if registered else "(none)"
        super().__init__(
            f"unknown {kind} {name!r}; registered {kind}s: {options}"
        )

    def __str__(self) -> str:  # KeyError wraps the message in quotes
        return self.args[0]


class ComponentRegistry:
    """A named mapping from component names to builder callables."""

    def __init__(self, kind: str):
        self.kind = kind
        self._builders: dict[str, Callable] = {}

    def register(self, name: str, builder: Callable | None = None,
                 *, overwrite: bool = False):
        """Register ``builder`` under ``name``; usable as a decorator."""

        def _add(fn: Callable) -> Callable:
            if not overwrite and name in self._builders:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered "
                    "(pass overwrite=True to replace it)"
                )
            self._builders[name] = fn
            return fn

        return _add if builder is None else _add(builder)

    def get(self, name: str) -> Callable:
        try:
            return self._builders[name]
        except KeyError:
            raise UnknownComponentError(self.kind, name, self.names()) from None

    def build(self, name: str, *args, **kwargs):
        return self.get(name)(*args, **kwargs)

    def names(self) -> list[str]:
        return sorted(self._builders)

    def __contains__(self, name: str) -> bool:
        return name in self._builders


ANSATZE = ComponentRegistry("ansatz")
OPTIMIZERS = ComponentRegistry("optimizer")
SAMPLERS = ComponentRegistry("sampler")
ELOC_KERNELS = ComponentRegistry("eloc_kernel")
BACKENDS = ComponentRegistry("backend")


def register_ansatz(name: str, builder: Callable | None = None,
                    *, overwrite: bool = False):
    return ANSATZE.register(name, builder, overwrite=overwrite)


def register_optimizer(name: str, builder: Callable | None = None,
                       *, overwrite: bool = False):
    return OPTIMIZERS.register(name, builder, overwrite=overwrite)


def register_sampler(name: str, builder: Callable | None = None,
                     *, overwrite: bool = False):
    return SAMPLERS.register(name, builder, overwrite=overwrite)


def register_eloc_kernel(name: str, builder: Callable | None = None,
                         *, overwrite: bool = False):
    return ELOC_KERNELS.register(name, builder, overwrite=overwrite)


def register_backend(name: str, builder: Callable | None = None,
                     *, overwrite: bool = False):
    return BACKENDS.register(name, builder, overwrite=overwrite)
