"""``run(spec) -> RunResult``: materialize a spec, train, own the artifacts.

The driver is the single execution path behind both the Python API and the
``python -m repro`` CLI.  Given a validated :class:`~repro.api.spec.RunSpec`
it:

1. materializes components through the registries (problem -> ansatz ->
   sampler -> optimizer), so every choice is a *name* in the spec;
2. runs the Sec. 4.1 protocol — the ``adamw`` optimizer takes the canonical
   :class:`~repro.core.trainer.Trainer`/:class:`~repro.core.vmc.VMC` path
   (bit-identical to hand wiring), any other registered optimizer runs the
   generic ``step(batch, eloc)`` protocol loop (SR is the built-in);
3. owns the artifact directory::

       <run_dir>/
         spec.json        the exact spec (reloaded by resume/serve)
         metrics.jsonl    one JSON record per iteration (+ pretrain event)
         checkpoint.npz   bit-identical resume state (adamw path)
         report.json      TrainReport.to_dict() of the last train() call
         models/          ModelRegistry of published snapshots

4. auto-publishes the final snapshot (and, with ``output.publish_every``,
   periodic ones) to the run's :class:`~repro.serve.ModelRegistry`, so a
   completed run is directly servable: ``python -m repro serve <run_dir>``
   or :func:`serve_run`.

``resume(run_dir)`` reloads ``spec.json``, restores ``checkpoint.npz``
(parameters, optimizer moments, RNG stream, history) and continues the
trajectory bit-identically to an uninterrupted run.
"""
from __future__ import annotations

import json
import time
from dataclasses import dataclass
from inspect import Parameter, signature
from pathlib import Path

import numpy as np

import repro.api.builtins  # noqa: F401 — registers the built-in components
from repro.api.registry import (
    ANSATZE,
    BACKENDS,
    OPTIMIZERS,
    SAMPLERS,
    UnknownComponentError,
)
from repro.api.spec import AnsatzSpec, ProblemSpec, RunSpec, SpecError
from repro.backend import counter_delta, get_backend, use_backend
from repro.core.engine import SerialBackend, _merge_transfers
from repro.chem import build_problem, run_fci
from repro.chem.pipeline import MolecularProblem
from repro.core.trainer import TrainConfig, Trainer, TrainReport, build_report
from repro.core.local_energy import ElocPlan, local_energy, resolve_batch_kernel
from repro.core.pretrain import pretrain_to_reference
from repro.core.vmc import VMCStats, default_ns_schedule
from repro.core.wavefunction import NNQSWavefunction
from repro.hamiltonian.compressed import compress_hamiltonian
from repro.serve.registry import ModelRegistry

__all__ = [
    "SPEC_FILE",
    "METRICS_FILE",
    "CHECKPOINT_FILE",
    "REPORT_FILE",
    "MODELS_DIR",
    "RunResult",
    "materialize_problem",
    "materialize_ansatz",
    "materialize_sampler",
    "materialize_backend",
    "materialize_array_backend",
    "materialize_eloc_kernel",
    "run",
    "resume",
    "serve_run",
]

SPEC_FILE = "spec.json"
METRICS_FILE = "metrics.jsonl"
CHECKPOINT_FILE = "checkpoint.npz"
REPORT_FILE = "report.json"
MODELS_DIR = "models"


@dataclass
class RunResult:
    """What :func:`run`/:func:`resume` hand back: report + artifact handles."""

    run_dir: Path
    spec: RunSpec
    report: TrainReport
    published_version: int | None
    wavefunction: object  # the trained in-process wavefunction

    @property
    def spec_path(self) -> Path:
        return self.run_dir / SPEC_FILE

    @property
    def metrics_path(self) -> Path:
        return self.run_dir / METRICS_FILE

    @property
    def checkpoint_path(self) -> Path:
        return self.run_dir / CHECKPOINT_FILE

    @property
    def report_path(self) -> Path:
        return self.run_dir / REPORT_FILE

    @property
    def registry_dir(self) -> Path:
        return self.run_dir / MODELS_DIR

    def registry(self) -> ModelRegistry:
        return ModelRegistry(self.registry_dir)


# ------------------------------------------------------------- materializers
def materialize_problem(spec: ProblemSpec) -> MolecularProblem:
    return build_problem(
        spec.molecule, spec.basis, n_frozen=spec.n_frozen,
        n_active=spec.n_active, **spec.geometry,
    )


def _filter_to_signature(builder, candidate: dict) -> dict:
    """Architecture defaults a builder doesn't declare are dropped; explicit
    ``ansatz.params`` are never filtered (typos there must raise)."""
    params = signature(builder).parameters
    if any(p.kind is Parameter.VAR_KEYWORD for p in params.values()):
        return dict(candidate)
    return {k: v for k, v in candidate.items() if k in params}


def materialize_ansatz(spec: AnsatzSpec, problem: MolecularProblem):
    builder = ANSATZE.get(spec.name)
    arch = {
        "d_model": spec.d_model,
        "n_heads": spec.n_heads,
        "n_layers": spec.n_layers,
        "phase_hidden": tuple(spec.phase_hidden),
        "token_bits": spec.token_bits,
        "constrain": spec.constrain,
        "reverse_order": spec.reverse_order,
    }
    kwargs = {**_filter_to_signature(builder, arch), **spec.params}
    return builder(problem.n_qubits, problem.n_up, problem.n_dn,
                   seed=spec.seed, **kwargs)


def materialize_sampler(spec: RunSpec, problem: MolecularProblem):
    """Resolve the sampler name; ``None`` means "the VMC default path".

    The plain ``bas`` sampler with no knobs returns ``None`` so the adamw
    path stays byte-for-byte the pre-redesign ``VMC.sample`` call.
    """
    s = spec.sampling
    if s.sampler == "bas" and not s.params:
        SAMPLERS.get("bas")  # still validate the name is registered
        return None
    params = dict(s.params)
    if s.sampler == "mcmc":
        params.setdefault("start_bits", problem.hf_bits)
    return SAMPLERS.build(s.sampler, **params)


def materialize_eloc_kernel(spec: RunSpec) -> str:
    """Validate the spec's batch-kernel name against the eloc_kernel registry.

    Returns the name (both driver loops resolve it again at call time through
    :func:`repro.core.local_energy.resolve_batch_kernel`, so registration is
    the single source of truth).  A typo — or a registered kernel that does
    not take the engine-drivable batch signature, like the scalar Fig. 10
    rungs — fails here, at materialization, with the spec field named.
    """
    name = spec.sampling.eloc_kernel
    try:
        resolve_batch_kernel(name)
    except (UnknownComponentError, TypeError) as exc:
        raise SpecError(f"sampling.eloc_kernel: {exc}") from None
    return name


def materialize_backend(spec: RunSpec):
    """Build the execution backend named by the spec's ``parallel`` section.

    A parallel backend (anything that communicates: ``threads`` / ``process``
    / ``cluster`` or any ``n_ranks > 1``) rides the canonical Trainer path,
    so it requires the ``adamw`` optimizer and the default BAS sampler — both
    restrictions fail here, at materialization, with the spec field named.
    An unknown backend name raises the registry's
    :class:`~repro.api.registry.UnknownComponentError`, which lists every
    registered backend.
    """
    p = spec.parallel
    n_ranks = p.n_ranks
    kwargs = {
        "nu_star_per_rank": p.nu_star_per_rank,
        "eloc_partition": p.eloc_partition,
        "comm_codec": p.comm_codec,
        "comm_shm": p.comm_shm,
    }
    if p.backend == "process":
        # The coordinator's read + worker-join timeouts, previously
        # hard-coded inside run_spmd_processes.
        kwargs["timeout"] = float(p.collective_timeout_s)
        kwargs["join_timeout"] = float(p.join_timeout_s)
    elif p.backend == "cluster":
        # One SPMD member: world_size names the job size (n_ranks is its
        # alias when world_size is unset), rank optionally pins this member.
        n_ranks = p.world_size if p.world_size is not None else p.n_ranks
        kwargs.update(
            rendezvous_addr=p.rendezvous_addr,
            rank=p.rank,
            join_timeout=float(p.join_timeout_s),
            collective_timeout=float(p.collective_timeout_s),
        )
    try:
        backend = BACKENDS.build(p.backend, n_ranks, **kwargs)
    except ValueError as exc:  # e.g. serial with n_ranks > 1
        raise SpecError(f"parallel: {exc}") from None
    if isinstance(backend, SerialBackend):
        return backend
    if spec.optimizer.name != "adamw":
        raise SpecError(
            f"parallel.backend={p.backend!r} runs the Trainer path, which "
            f"requires optimizer.name='adamw'; got {spec.optimizer.name!r}"
        )
    if backend.n_ranks > 1 and (spec.sampling.sampler != "bas"
                                or spec.sampling.params):
        raise SpecError(
            "parallel runs with more than one rank require the default 'bas' "
            "sampler with no params (the Fig. 5 prefix-sweep split); got "
            f"sampling.sampler={spec.sampling.sampler!r}"
        )
    return backend


def materialize_array_backend(spec: RunSpec):
    """Resolve the spec's ``backend`` section into a live ArrayBackend.

    The section validates the *name* at spec time; availability of the
    optional device wheels (torch / cupy) is checked here, at
    materialization, with the spec field named.
    """
    try:
        return get_backend(spec.backend.name, device=spec.backend.device)
    except ImportError as exc:
        raise SpecError(f"backend.name: {exc}") from None


def _backend_report(spec: RunSpec, history: list[VMCStats]) -> dict:
    """The report.json ``backend`` section: name + aggregated transfer
    counters (instrumented backends only — numpy runs report the name)."""
    info: dict = {"name": spec.backend.name}
    transfers = _merge_transfers([
        {"transfers": s.transfers} for s in history
    ])
    if transfers is not None:
        info["transfers"] = transfers
    return info


def _close_backend(backend) -> None:
    """Release backend-held resources (sockets, rendezvous membership)."""
    close = getattr(backend, "close", None)
    if callable(close):
        close()


def _resolve_reference(spec: RunSpec, problem: MolecularProblem) -> float | None:
    ref = spec.output.reference
    if ref is None:
        return None
    if ref == "fci":
        return run_fci(problem.hamiltonian).energy
    return float(ref)


# ------------------------------------------------------------------ run dirs
def _default_run_dir(name: str) -> Path:
    stamp = time.strftime("%Y%m%d-%H%M%S")
    base = Path("runs") / f"{name}-{stamp}"
    candidate, n = base, 1
    while (candidate / SPEC_FILE).exists():
        candidate = base.with_name(f"{base.name}-{n}")
        n += 1
    return candidate


def _prepare_run_dir(spec: RunSpec, run_dir: str | Path | None) -> Path:
    target = Path(run_dir or spec.output.run_dir or _default_run_dir(spec.name))
    if (target / SPEC_FILE).exists():
        raise SpecError(
            f"{target} already contains a run ({SPEC_FILE} exists); "
            "use resume(run_dir) to continue it or pick a fresh directory"
        )
    target.mkdir(parents=True, exist_ok=True)
    return target


def _write_report(run_dir: Path, report: TrainReport,
                  backend_info: dict | None = None) -> None:
    payload = report.to_dict()
    if backend_info is not None:
        payload["backend"] = backend_info
    (run_dir / REPORT_FILE).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def _publisher(spec: RunSpec, run_dir: Path, wf):
    """Per-iteration snapshot publication callback (or None when disabled)."""
    every = spec.output.publish_every
    if not every or not spec.output.publish:
        return None
    registry = ModelRegistry(run_dir / MODELS_DIR)

    def publish(stats: VMCStats) -> None:
        if stats.iteration % every == 0:
            registry.publish(wf, metadata={
                "run": spec.name,
                "iteration": stats.iteration,
                "energy": stats.energy,
            })

    return publish


def _publish_final(spec: RunSpec, run_dir: Path, wf,
                   report: TrainReport) -> int | None:
    if not spec.output.publish:
        return None
    registry = ModelRegistry(run_dir / MODELS_DIR)
    return registry.publish(wf, metadata={
        "run": spec.name,
        "iteration": report.iterations,
        "energy": report.energy,
        "best_energy": report.best_energy,
        "final": True,
    })


# ----------------------------------------------------------------- execution
def run(spec: RunSpec | dict, run_dir: str | Path | None = None,
        overrides: dict | list | None = None) -> RunResult:
    """Execute a spec end to end; returns the report + artifact handles."""
    if isinstance(spec, dict):
        spec = RunSpec.from_dict(spec)
    spec = spec.with_overrides(overrides)
    target = _prepare_run_dir(spec, run_dir)

    # Materialize everything before spec.json lands: a failed materialization
    # (typo'd component name, bad molecule) leaves the directory reusable.
    problem = materialize_problem(spec.problem)
    wf = materialize_ansatz(spec.ansatz, problem)
    _require_autoregressive(spec, wf)
    sampler = materialize_sampler(spec, problem)
    backend = materialize_backend(spec)
    array_backend = materialize_array_backend(spec)
    materialize_eloc_kernel(spec)
    e_ref = _resolve_reference(spec, problem)
    spec.save(target / SPEC_FILE)

    try:
        if spec.optimizer.name == "adamw":
            OPTIMIZERS.get("adamw")  # name must be registered like any other
            trainer = _build_trainer(spec, target, problem, wf, sampler,
                                     backend, e_ref, array_backend)
            report = trainer.train(on_iteration=_publisher(spec, target, wf))
            history = trainer.vmc.history
        else:
            report, history = _run_step_protocol(spec, target, problem, wf,
                                                 sampler, e_ref, array_backend)
    finally:
        # Backends holding live resources (the cluster backend's sockets and
        # rendezvous membership) release them even when training raises, so
        # a poisoned run neither hangs its peers nor leaks sockets.
        _close_backend(backend)

    _write_report(target, report, _backend_report(spec, history))
    version = _publish_final(spec, target, wf, report)
    return RunResult(run_dir=target, spec=spec, report=report,
                     published_version=version, wavefunction=wf)


def _require_autoregressive(spec: RunSpec, wf) -> None:
    """Both driver loops (Trainer and step-protocol) sample autoregressively
    and differentiate ``log_prob``/``phase_of`` — fail at materialization
    with the component named instead of deep inside the run loop."""
    if not isinstance(wf, NNQSWavefunction):
        raise SpecError(
            f"ansatz {spec.ansatz.name!r} does not build an autoregressive "
            "NNQSWavefunction; run() cannot drive it "
            "(the rbm baseline trains through repro.core.mcmc.RBMVMC)"
        )


def _build_trainer(spec: RunSpec, run_dir: Path, problem: MolecularProblem,
                   wf, sampler, backend, e_ref: float | None,
                   array_backend=None) -> Trainer:
    cfg = TrainConfig(
        max_iterations=spec.train.max_iterations,
        pretrain_steps=spec.train.pretrain_steps,
        pretrain_target=spec.train.pretrain_target,
        ns_pretrain=spec.sampling.ns_pretrain,
        ns_max=spec.sampling.ns_max,
        ns_growth=spec.sampling.ns_growth,
        pretrain_iters=spec.sampling.pretrain_iters,
        eloc_mode=spec.sampling.eloc_mode,
        warmup=spec.optimizer.warmup,
        lr_scale=spec.optimizer.lr_scale,
        weight_decay=spec.optimizer.weight_decay,
        grad_clip=spec.optimizer.grad_clip,
        seed=spec.train.seed,
        sampler=sampler,
        backend=backend,
        array_backend=array_backend,
        group_chunk=spec.parallel.group_chunk,
        sample_chunk=spec.parallel.sample_chunk,
        eloc_memory_budget_mb=spec.parallel.eloc_memory_budget_mb,
        eloc_kernel=spec.sampling.eloc_kernel,
        plateau_window=spec.train.plateau_window,
        plateau_rel_tol=spec.train.plateau_rel_tol,
        early_stop=spec.train.early_stop,
        checkpoint_every=spec.output.checkpoint_every,
        checkpoint_path=run_dir / CHECKPOINT_FILE,
        log_path=run_dir / METRICS_FILE,
        log_every=spec.output.log_every,
    )
    return Trainer(wf, problem.hamiltonian, cfg, hf_bits=problem.hf_bits,
                   e_hf=problem.e_hf, e_reference=e_ref)


def _run_step_protocol(spec: RunSpec, run_dir: Path,
                       problem: MolecularProblem, wf, sampler,
                       e_ref: float | None,
                       array_backend=None) -> tuple[TrainReport, list[VMCStats]]:
    """The generic optimizer loop: sample -> E_loc -> ``opt.step(batch, eloc)``.

    Any registered optimizer exposing the SR protocol plugs in here.  The
    path emits the same artifacts as the Trainer path but has no checkpoint
    format — ``resume`` refuses these runs with an actionable error.
    """
    opt = OPTIMIZERS.build(spec.optimizer.name, wf, **spec.optimizer.params)
    if not hasattr(opt, "step"):
        raise SpecError(
            f"optimizer {spec.optimizer.name!r} does not expose "
            "step(batch, eloc); run() cannot drive it"
        )
    sample = sampler or SAMPLERS.build("bas")
    comp = compress_hamiltonian(problem.hamiltonian)
    kernel_name = materialize_eloc_kernel(spec)
    budget_bytes = (
        None if spec.parallel.eloc_memory_budget_mb is None
        else int(spec.parallel.eloc_memory_budget_mb * 2**20)
    )
    # One compiled plan per run — the Hamiltonian-static scaffolds are shared
    # by every iteration's kernel call (unplanned kernels ignore it).
    plan = ElocPlan(
        comp, group_chunk=spec.parallel.group_chunk,
        sample_chunk=spec.parallel.sample_chunk,
        memory_budget_bytes=budget_bytes,
    ) if kernel_name == "planned" else None
    schedule = default_ns_schedule(
        pretrain_iters=spec.sampling.pretrain_iters,
        ns_pretrain=spec.sampling.ns_pretrain,
        ns_max=spec.sampling.ns_max,
        growth=spec.sampling.ns_growth,
    )
    rng = np.random.default_rng(spec.train.seed)
    publish = _publisher(spec, run_dir, wf)
    t0 = time.perf_counter()
    history: list[VMCStats] = []
    with open(run_dir / METRICS_FILE, "a") as log:
        def emit(record: dict) -> None:
            log.write(json.dumps(record) + "\n")
            log.flush()

        if spec.train.pretrain_steps > 0:
            pi = pretrain_to_reference(
                wf, problem.hf_bits, n_steps=spec.train.pretrain_steps,
                target_prob=spec.train.pretrain_target,
            )
            emit({"event": "pretrain", "pi_hf": pi})
        array_backend = array_backend or get_backend("numpy")
        for i in range(spec.train.max_iterations):
            snap0 = array_backend.counter_snapshot()
            with use_backend(array_backend):
                batch = sample(wf, schedule(i), rng)
                snap1 = array_backend.counter_snapshot()
                eloc, _ = local_energy(
                    wf, comp, batch, mode=spec.sampling.eloc_mode,
                    group_chunk=spec.parallel.group_chunk,
                    sample_chunk=spec.parallel.sample_chunk,
                    memory_budget_bytes=budget_bytes,
                    kernel=kernel_name, plan=plan,
                )
                info = opt.step(batch, eloc)
            snap2 = array_backend.counter_snapshot()
            sampling = counter_delta(snap0, snap1)
            transfers = None
            if sampling is not None:
                transfers = {"sampling": sampling,
                             "post_sampling": counter_delta(snap1, snap2)}
            w = batch.weights / batch.weights.sum()
            energy = float(np.sum(w * eloc.real))
            variance = float(np.sum(w * (eloc.real - energy) ** 2))
            stats = VMCStats(
                iteration=i + 1, energy=energy, variance=variance,
                n_unique=batch.n_unique, n_samples=batch.n_samples,
                lr=float(getattr(info, "update_norm", 0.0)),
                eloc_imag=float(np.abs(np.sum(w * eloc.imag))),
                transfers=transfers,
            )
            history.append(stats)
            emit({
                "iteration": stats.iteration, "energy": stats.energy,
                "variance": stats.variance, "n_unique": stats.n_unique,
                "n_samples": stats.n_samples, "lr": stats.lr,
            })
            if spec.output.log_every and stats.iteration % spec.output.log_every == 0:
                print(f"iter {stats.iteration:5d}  E = {energy:+.6f} Ha  "
                      f"var = {variance:.2e}  N_u = {batch.n_unique}")
            if publish is not None:
                publish(stats)
    report = build_report(
        history, getattr(wf, "n_qubits", problem.n_qubits),
        time.perf_counter() - t0, stopped_early=False,
        e_hf=problem.e_hf, e_reference=e_ref,
    )
    return report, history


def resume(run_dir: str | Path,
           overrides: dict | list | None = None) -> RunResult:
    """Continue a run from its artifact directory, bit-identically.

    Reloads ``spec.json`` (optionally with overrides — the usual one is
    ``train.max_iterations`` to extend the budget), rebuilds the components,
    restores ``checkpoint.npz`` and continues training.  The restored state
    includes optimizer moments and the RNG bit-generator, so the continued
    per-iteration energies match an uninterrupted run exactly.
    """
    run_dir = Path(run_dir)
    spec_path = run_dir / SPEC_FILE
    if not spec_path.exists():
        raise SpecError(f"{run_dir} has no {SPEC_FILE}; not a run directory")
    spec = RunSpec.load(spec_path).with_overrides(overrides)
    if spec.optimizer.name != "adamw":
        raise SpecError(
            f"resume supports the adamw/Trainer path; optimizer "
            f"{spec.optimizer.name!r} runs are not checkpointed"
        )
    ckpt = run_dir / CHECKPOINT_FILE
    if not ckpt.exists():
        raise SpecError(
            f"{run_dir} has no {CHECKPOINT_FILE}; the run has not completed "
            "a checkpoint yet"
        )
    if overrides:
        spec.save(spec_path)  # future resumes see the extended budget

    problem = materialize_problem(spec.problem)
    wf = materialize_ansatz(spec.ansatz, problem)
    _require_autoregressive(spec, wf)
    sampler = materialize_sampler(spec, problem)
    backend = materialize_backend(spec)
    array_backend = materialize_array_backend(spec)
    materialize_eloc_kernel(spec)
    e_ref = _resolve_reference(spec, problem)
    trainer = _build_trainer(spec, run_dir, problem, wf, sampler, backend,
                             e_ref, array_backend)
    try:
        trainer.resume(ckpt)
        start_iteration = trainer.vmc.iteration
        report = trainer.train(on_iteration=_publisher(spec, run_dir, wf))
    finally:
        _close_backend(backend)
    _write_report(run_dir, report, _backend_report(spec, trainer.vmc.history))
    if report.iterations > start_iteration:
        version = _publish_final(spec, run_dir, wf, report)
    else:
        # Nothing new ran (budget already exhausted): keep the existing
        # latest version instead of minting a duplicate snapshot.
        version = (ModelRegistry(run_dir / MODELS_DIR).latest_version()
                   if spec.output.publish else None)
    return RunResult(run_dir=run_dir, spec=spec, report=report,
                     published_version=version, wavefunction=wf)


# ------------------------------------------------------------------- serving
def serve_run(run_dir: str | Path, config=None):
    """A :class:`~repro.serve.WavefunctionService` over a run's snapshots.

    Loads the run's model registry and rebuilds its Hamiltonian, so all
    request types (including ``local_energy``) work.  ``config=None`` takes
    the batcher/cache knobs from the run's own ``serve`` spec section (the
    ``--set serve.*`` overrides recorded in ``spec.json``).  The service is
    returned unstarted — use it as a context manager or call ``start()``.
    """
    from repro.serve import WavefunctionService

    run_dir = Path(run_dir)
    spec_path = run_dir / SPEC_FILE
    if not spec_path.exists():
        raise SpecError(f"{run_dir} has no {SPEC_FILE}; not a run directory")
    spec = RunSpec.load(spec_path)
    if config is None:
        config = spec.serve.to_serve_config()
    registry = ModelRegistry(run_dir / MODELS_DIR)
    if registry.latest_version() is None:
        raise SpecError(
            f"{run_dir} has no published snapshots yet "
            "(did the run finish with output.publish enabled?)"
        )
    problem = materialize_problem(spec.problem)
    return WavefunctionService(registry, hamiltonian=problem.hamiltonian,
                               config=config)
