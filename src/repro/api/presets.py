"""Named built-in RunSpecs — starting points for the CLI and tests.

``python -m repro run --preset smoke`` runs the smallest end-to-end spec;
``--set`` overrides customize any field from there.  Presets are stored as
plain dicts (the JSON form) so they double as documentation of the spec
schema; :func:`get_preset` materializes and validates them on demand.
"""
from __future__ import annotations

from repro.api.spec import RunSpec, SpecError

__all__ = ["PRESETS", "get_preset", "preset_names"]

PRESETS: dict[str, dict] = {
    # The smallest spec that exercises the full pipeline: integrals -> RHF ->
    # Jordan-Wigner -> warm start -> VMC -> report -> snapshot.  CI runs it.
    "smoke": {
        "name": "smoke",
        "problem": {"molecule": "H2", "basis": "sto-3g",
                    "geometry": {"r": 0.7414}},
        "ansatz": {"name": "transformer", "d_model": 8, "n_heads": 2,
                   "n_layers": 1, "phase_hidden": [16], "seed": 1},
        "optimizer": {"name": "adamw", "warmup": 100},
        "sampling": {"ns_pretrain": 1000, "ns_max": 2000, "ns_growth": 1.2,
                     "pretrain_iters": 3},
        "train": {"max_iterations": 5, "pretrain_steps": 20,
                  "early_stop": False, "seed": 2},
        "output": {"checkpoint_every": 0, "publish": True},
    },
    # The quickstart example's configuration: H2/STO-3G to chemical accuracy.
    "h2": {
        "name": "h2-sto3g",
        "problem": {"molecule": "H2", "basis": "sto-3g",
                    "geometry": {"r": 0.7414}},
        "ansatz": {"name": "transformer", "seed": 1},
        "optimizer": {"name": "adamw", "warmup": 200},
        "sampling": {"ns_pretrain": 100000, "ns_max": 100000,
                     "pretrain_iters": 100},
        "train": {"max_iterations": 400, "pretrain_steps": 100,
                  "early_stop": False, "seed": 2},
        "output": {"log_every": 50, "reference": "fci"},
    },
    # The active-space example: N2 triple bond in a CAS(6,6) window.
    "n2-cas66": {
        "name": "n2-cas66",
        "problem": {"molecule": "N2", "basis": "sto-3g", "n_frozen": 2,
                    "n_active": 6, "geometry": {"r": 1.0977}},
        "ansatz": {"name": "transformer", "seed": 21},
        "optimizer": {"name": "adamw", "warmup": 200},
        "sampling": {"ns_pretrain": 100000, "ns_max": 10000000,
                     "ns_growth": 1.05, "pretrain_iters": 50},
        "train": {"max_iterations": 300, "pretrain_steps": 150,
                  "plateau_window": 50, "seed": 22},
        "output": {"log_every": 50, "reference": "fci"},
    },
}


def preset_names() -> list[str]:
    return sorted(PRESETS)


def get_preset(name: str) -> RunSpec:
    try:
        data = PRESETS[name]
    except KeyError:
        raise SpecError(
            f"unknown preset {name!r}; available presets: "
            f"{', '.join(preset_names())}"
        ) from None
    return RunSpec.from_dict(data)
