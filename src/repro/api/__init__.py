"""``repro.api`` — the declarative experiment front door.

One spec tree (:class:`RunSpec`), string-keyed component registries, and a
``run(spec)`` driver that owns the artifact directory.  The equivalent CLI
is ``python -m repro`` (``run`` / ``resume`` / ``info`` / ``serve``).

    from repro.api import RunSpec, ProblemSpec, TrainSpec, run

    spec = RunSpec(
        name="h2",
        problem=ProblemSpec(molecule="H2", geometry={"r": 0.7414}),
        train=TrainSpec(max_iterations=200, seed=2),
    )
    result = run(spec)
    print(result.report.summary())

Importing this package registers the built-in components (see
:mod:`repro.api.builtins`); new ansätze/optimizers/samplers plug in by name
through the ``register_*`` decorators.
"""
from repro.api.spec import (
    AnsatzSpec,
    OptimizerSpec,
    OutputSpec,
    ParallelSpec,
    ProblemSpec,
    RunSpec,
    SamplingSpec,
    ServeSpec,
    SpecError,
    TrainSpec,
    apply_overrides,
    coerce_override_value,
    parse_set_assignment,
)
from repro.api.registry import (
    ANSATZE,
    BACKENDS,
    ELOC_KERNELS,
    OPTIMIZERS,
    SAMPLERS,
    ComponentRegistry,
    UnknownComponentError,
    register_ansatz,
    register_backend,
    register_eloc_kernel,
    register_optimizer,
    register_sampler,
)
import repro.api.builtins  # noqa: F401 — registers the built-in components
from repro.api.driver import (
    RunResult,
    materialize_ansatz,
    materialize_backend,
    materialize_problem,
    materialize_sampler,
    resume,
    run,
    serve_run,
)
from repro.api.presets import PRESETS, get_preset, preset_names

__all__ = [
    "SpecError",
    "ProblemSpec",
    "AnsatzSpec",
    "OptimizerSpec",
    "SamplingSpec",
    "ParallelSpec",
    "TrainSpec",
    "OutputSpec",
    "ServeSpec",
    "RunSpec",
    "apply_overrides",
    "coerce_override_value",
    "parse_set_assignment",
    "ComponentRegistry",
    "UnknownComponentError",
    "ANSATZE",
    "OPTIMIZERS",
    "SAMPLERS",
    "ELOC_KERNELS",
    "BACKENDS",
    "register_ansatz",
    "register_optimizer",
    "register_sampler",
    "register_eloc_kernel",
    "register_backend",
    "RunResult",
    "materialize_problem",
    "materialize_ansatz",
    "materialize_sampler",
    "materialize_backend",
    "run",
    "resume",
    "serve_run",
    "PRESETS",
    "get_preset",
    "preset_names",
]
