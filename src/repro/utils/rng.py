"""Deterministic RNG streams.

The paper's parallel BAS (Sec. 3.3) requires every rank to draw *identical*
random numbers for the first k sampling steps ("using the same random seed
such that we get exactly the same samples on each process").  We therefore
hand each rank a generator seeded from the same ``SeedSequence`` root: stream 0
is the shared prefix stream, streams 1..P are per-rank continuation streams.
"""
from __future__ import annotations

import numpy as np

__all__ = ["spawn_rngs"]


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Return ``n`` independent generators derived from ``seed``."""
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
