"""Bitstring utilities shared by the sampler, Hamiltonian and local-energy code.

Throughout the package a *configuration* (occupation-number bitstring, one bit
per spin orbital / qubit) is represented in one of two interchangeable forms:

* an ``(batch, N)`` ``uint8`` array of 0/1 entries (the "unpacked" form used by
  the neural networks), with **bit j = qubit j**;
* one or two ``uint64`` keys per configuration (the "packed" form of Sec. 3.4
  method (5) of the paper, used for the sorted lookup table and binary search).

The paper packs configurations into a single 64-bit integer for N < 64 and two
integers for 64 <= N < 128; we follow the same layout.
"""
from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bits",
    "unpack_bits",
    "popcount64",
    "parity64",
    "bits_to_int",
    "int_to_bits",
    "keys_to_ints",
    "lexsort_keys",
    "searchsorted_keys",
]

_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(batch, N)`` array of 0/1 into ``(batch, K)`` uint64 keys.

    ``K = ceil(N / 64)``; bit ``j`` of the configuration is stored in word
    ``j // 64`` at position ``j % 64``.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    if bits.ndim == 1:
        bits = bits[None, :]
    batch, n = bits.shape
    k = (n + 63) // 64
    out = np.zeros((batch, k), dtype=np.uint64)
    weights = (np.uint64(1) << np.arange(64, dtype=np.uint64))
    for w in range(k):
        chunk = bits[:, 64 * w : min(64 * (w + 1), n)].astype(np.uint64)
        out[:, w] = chunk @ weights[: chunk.shape[1]]
    return out


def unpack_bits(keys: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(batch, K)`` uint64 -> ``(batch, N)`` uint8."""
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.ndim == 1:
        keys = keys[None, :]
    batch, k = keys.shape
    out = np.zeros((batch, n), dtype=np.uint8)
    for w in range(k):
        hi = min(64 * (w + 1), n)
        shifts = np.arange(hi - 64 * w, dtype=np.uint64)
        out[:, 64 * w : hi] = ((keys[:, w : w + 1] >> shifts) & np.uint64(1)).astype(
            np.uint8
        )
    return out


def popcount64(x: np.ndarray) -> np.ndarray:
    """Vectorized population count of a uint64 array (any shape)."""
    x = np.asarray(x, dtype=np.uint64)
    view = x[..., None].view(np.uint8)
    return _POP8[view].sum(axis=-1).astype(np.int64).reshape(x.shape)


def parity64(x: np.ndarray) -> np.ndarray:
    """Parity (popcount mod 2) of a uint64 array."""
    return (popcount64(x) & 1).astype(np.int64)


def bits_to_int(bits) -> int:
    """Single Python-int key for one configuration of arbitrary length."""
    v = 0
    for j, b in enumerate(bits):
        if b:
            v |= 1 << j
    return v


def int_to_bits(v: int, n: int) -> np.ndarray:
    return np.array([(v >> j) & 1 for j in range(n)], dtype=np.uint8)


def keys_to_ints(keys: np.ndarray) -> list[int]:
    """Collapse ``(batch, K)`` uint64 keys into arbitrary-precision Python ints.

    One vectorized shift-or pass per word over an object-dtype view (word
    ``w`` contributes bits ``64w..64w+63``), instead of a per-entry Python
    loop.  The result matches ``bits_to_int`` on the unpacked configuration.
    """
    keys = np.atleast_2d(np.asarray(keys, dtype=np.uint64))
    obj = keys.astype(object)  # Python ints: << never overflows
    acc = obj[:, 0]
    for w in range(1, keys.shape[1]):
        acc = acc | (obj[:, w] << (64 * w))
    return acc.tolist()


def lexsort_keys(keys: np.ndarray) -> np.ndarray:
    """Indices sorting multi-word uint64 keys lexicographically (word 0 minor).

    With bit j of the configuration stored in word ``j // 64``, comparing the
    *last* word first gives an order consistent across any key width; any
    total order works for the lookup table, this one is deterministic.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.ndim == 1:
        keys = keys[:, None]
    return np.lexsort(tuple(keys[:, w] for w in range(keys.shape[1])))


def searchsorted_keys(sorted_keys: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Binary search of ``query`` rows in lexicographically sorted ``sorted_keys``.

    Returns an ``(len(query),)`` int64 array of row indices, ``-1`` where the
    query key is absent.  This is the numpy counterpart of the CUDA
    ``binary_find`` of Algorithm 2 in the paper.
    """
    sorted_keys = np.atleast_2d(np.asarray(sorted_keys, dtype=np.uint64))
    query = np.atleast_2d(np.asarray(query, dtype=np.uint64))
    k = sorted_keys.shape[1]
    if k == 1:
        base = sorted_keys[:, 0]
        q = query[:, 0]
        pos = np.searchsorted(base, q)
        pos_clip = np.minimum(pos, len(base) - 1) if len(base) else pos * 0
        hit = (len(base) > 0) & (base[pos_clip] == q) if len(base) else np.zeros(len(q), bool)
        return np.where(hit, pos_clip, -1).astype(np.int64)
    # Multi-word keys: map each distinct word tuple to a scalar via structured view.
    dt = np.dtype([(f"w{i}", np.uint64) for i in range(k)])
    # lexsort_keys sorts with word 0 as the *least* significant, so build the
    # structured comparison in reverse word order to match.
    base_rec = np.ascontiguousarray(sorted_keys[:, ::-1]).view(dt).ravel()
    q_rec = np.ascontiguousarray(query[:, ::-1]).view(dt).ravel()
    pos = np.searchsorted(base_rec, q_rec)
    pos_clip = np.minimum(pos, len(base_rec) - 1) if len(base_rec) else pos * 0
    hit = (base_rec[pos_clip] == q_rec) if len(base_rec) else np.zeros(len(q_rec), bool)
    return np.where(hit, pos_clip, -1).astype(np.int64)
