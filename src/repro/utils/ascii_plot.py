"""Terminal line plots for benches and examples (no plotting dependency).

The paper's figures are line plots (PES curves, scaling curves, error
panels); on a headless host the benches render them as compact ASCII charts
next to the numeric tables.  Only the two shapes the figures need are
provided: multi-series line plots on a shared grid and log-scale support.
"""
from __future__ import annotations

import math

import numpy as np

__all__ = ["line_plot"]

_MARKERS = "ox+*#@%&"


def line_plot(
    x,
    series: dict[str, list[float]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    logy: bool = False,
) -> str:
    """Render ``series`` (name -> y values over the shared ``x``) as text.

    Each series gets a marker from a fixed cycle; the legend maps markers to
    names.  ``logy`` plots log10(y) (all values must be positive).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or len(x) < 2:
        raise ValueError("x must be 1-D with at least two points")
    ys = {}
    for name, vals in series.items():
        v = np.asarray(vals, dtype=np.float64)
        if v.shape != x.shape:
            raise ValueError(f"series {name!r} length {v.shape} != x {x.shape}")
        if logy:
            if np.any(v <= 0):
                raise ValueError(f"logy requires positive values (series {name!r})")
            v = np.log10(v)
        ys[name] = v

    all_y = np.concatenate(list(ys.values()))
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x.min()), float(x.max())

    grid = [[" "] * width for _ in range(height)]

    def to_col(xv: float) -> int:
        return int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))

    def to_row(yv: float) -> int:
        frac = (yv - y_lo) / (y_hi - y_lo)
        return (height - 1) - int(round(frac * (height - 1)))

    for si, (name, v) in enumerate(ys.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        # connect consecutive points with linear interpolation
        for i in range(len(x) - 1):
            c0, c1 = to_col(x[i]), to_col(x[i + 1])
            for c in range(c0, c1 + 1):
                t = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
                yv = v[i] + t * (v[i + 1] - v[i])
                r = to_row(yv)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for i in range(len(x)):
            grid[to_row(v[i])][to_col(x[i])] = marker

    def fmt_val(val: float) -> str:
        shown = 10**val if logy else val
        return f"{shown:+.3g}"

    lines = []
    if title:
        lines.append(title)
    label_w = max(len(fmt_val(y_hi)), len(fmt_val(y_lo)))
    for r, row in enumerate(grid):
        if r == 0:
            label = fmt_val(y_hi).rjust(label_w)
        elif r == height - 1:
            label = fmt_val(y_lo).rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}|")
    lines.append(" " * label_w + " +" + "-" * width + "+")
    xaxis = f"{x_lo:+.3g}".ljust(width - 8) + f"{x_hi:+.3g}".rjust(8)
    lines.append(" " * label_w + "  " + xaxis)
    if xlabel or ylabel:
        lines.append(
            " " * label_w + "  " + xlabel
            + (f"   [y: {ylabel}{', log scale' if logy else ''}]" if ylabel else "")
        )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}" for i, name in enumerate(ys)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)
