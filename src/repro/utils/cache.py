"""A tiny on-disk cache for expensive, deterministic artifacts.

Jordan-Wigner Hamiltonians of the larger Fig. 9 molecules take tens of seconds
to assemble in pure Python; they are pure functions of (molecule, basis), so we
memoize them under ``~/.cache/nnqs-repro`` (override with ``NNQS_CACHE_DIR``,
disable with ``NNQS_NO_CACHE=1``).
"""
from __future__ import annotations

import functools
import hashlib
import os
import pickle
from pathlib import Path

__all__ = ["cache_dir", "disk_cache"]


def cache_dir() -> Path:
    root = os.environ.get("NNQS_CACHE_DIR")
    path = Path(root) if root else Path.home() / ".cache" / "nnqs-repro"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _key(name: str, args, kwargs) -> str:
    blob = pickle.dumps((name, args, sorted(kwargs.items())), protocol=4)
    return hashlib.sha256(blob).hexdigest()[:24]


def disk_cache(fn):
    """Decorator memoizing ``fn(*hashable_args)`` to a pickle file."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if os.environ.get("NNQS_NO_CACHE"):
            return fn(*args, **kwargs)
        path = cache_dir() / f"{fn.__name__}-{_key(fn.__qualname__, args, kwargs)}.pkl"
        if path.exists():
            try:
                with open(path, "rb") as fh:
                    return pickle.load(fh)
            except Exception:
                path.unlink(missing_ok=True)
        result = fn(*args, **kwargs)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh, protocol=4)
        os.replace(tmp, path)
        return result

    return wrapper
