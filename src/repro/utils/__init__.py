"""Shared utilities: bit packing, disk caching, deterministic RNG streams."""
from repro.utils.bitstrings import (
    bits_to_int,
    int_to_bits,
    lexsort_keys,
    pack_bits,
    parity64,
    popcount64,
    searchsorted_keys,
)
from repro.utils.cache import disk_cache, cache_dir
from repro.utils.rng import spawn_rngs
from repro.utils.ascii_plot import line_plot

__all__ = [
    "line_plot",
    "bits_to_int",
    "int_to_bits",
    "lexsort_keys",
    "pack_bits",
    "parity64",
    "popcount64",
    "searchsorted_keys",
    "disk_cache",
    "cache_dir",
    "spawn_rngs",
]
