"""Finite-difference gradient verification used by the test suite."""
from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["gradcheck"]


def gradcheck(fn, inputs: list[Tensor], eps: float = 1e-6, tol: float = 1e-5) -> bool:
    """Compare analytic gradients of ``fn(*inputs).sum()`` to central differences.

    ``fn`` must be a function of ``Tensor`` inputs returning a ``Tensor``.
    Raises ``AssertionError`` with the offending input index on mismatch.
    """
    for t in inputs:
        t.requires_grad = True
        t.zero_grad()
    out = fn(*inputs)
    loss = out.sum()
    loss.backward()
    analytic = [t.grad.copy() if t.grad is not None else np.zeros_like(t.data) for t in inputs]

    for i, t in enumerate(inputs):
        flat = t.data.reshape(-1)
        num = np.zeros_like(flat)
        for j in range(flat.size):
            orig = flat[j]
            flat[j] = orig + eps
            plus = fn(*inputs).sum().item()
            flat[j] = orig - eps
            minus = fn(*inputs).sum().item()
            flat[j] = orig
            num[j] = (plus - minus) / (2 * eps)
        num = num.reshape(t.data.shape)
        err = np.max(np.abs(num - analytic[i])) / max(1.0, np.max(np.abs(num)))
        assert err < tol, f"gradcheck failed for input {i}: rel err {err:.3e}"
    return True
