"""A reverse-mode automatic differentiation engine over backend arrays.

This is the substrate that replaces PyTorch in the reproduction: a ``Tensor``
wraps a float64 array from the active array backend (``repro.backend.xp`` —
numpy by default) and records the operations applied to it so that
``backward()`` can accumulate gradients through the graph.  Only the
operator set needed by the paper's models (transformer decoders, MLPs, MADE)
is implemented, but each operator supports full broadcasting so the modules
read like their PyTorch counterparts.

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` (dense backend array, same
  shape as ``data``) and stay on the backend's device; graphs are rebuilt
  each forward pass (define-by-run).
* ``no_grad()`` disables taping, used by the sampler's pure-inference passes —
  this mirrors the paper's split between sampling (inference) and the backward
  pass (Fig. 4).
* All math is float64 (``repro.backend.dtypes``): VMC gradients are small
  differences of local energies, and float32 noise visibly degrades
  convergence at chemical accuracy.
* Array math goes through ``xp``-level functions (``xp.sum``, ``xp.transpose``)
  rather than ndarray methods where the conventions differ across backends,
  so the same tape runs on numpy, the counting mock, and the torch adapter.
"""
from __future__ import annotations

import contextlib
import itertools
import math
import threading
from typing import Callable, Iterable

from repro.backend import xp
from repro.backend.dtypes import bool_, float64

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

# Grad mode is per-thread (like torch): the serving layer runs inference
# under no_grad on its scheduler thread while a trainer builds graphs on
# another — a shared flag would silently untape the trainer's forward pass.
_GRAD_STATE = threading.local()


def _grad_stack() -> list[bool]:
    stack = getattr(_GRAD_STATE, "stack", None)
    if stack is None:
        stack = _GRAD_STATE.stack = [True]
    return stack


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    stack = _grad_stack()
    stack.append(False)
    try:
        yield
    finally:
        stack.pop()


def is_grad_enabled() -> bool:
    return _grad_stack()[-1]


def _unbroadcast(grad, shape: tuple[int, ...]):
    """Sum ``grad`` down to ``shape`` (inverse of broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = xp.sum(grad, axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = xp.sum(grad, axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A backend array with a gradient tape."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100.0  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = xp.asarray(data, dtype=float64)
        self.grad = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ info
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self):
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})"

    def __len__(self) -> int:
        return len(self.data)

    # ----------------------------------------------------------- graph build
    @staticmethod
    def _make(data, parents: Iterable["Tensor"], backward) -> "Tensor":
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad) -> None:
        if self.grad is None:
            self.grad = xp.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor (must be scalar unless grad given)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar output")
            grad = xp.ones_like(self.data)
        grad = xp.asarray(grad, dtype=float64)

        # Topological order via iterative DFS (graphs can be deep: one
        # attention layer per sampled token position).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        grads: dict[int, object] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._backward is None:
                node._accumulate(g)
                continue
            parent_grads = node._backward(g)
            for p, pg in zip(node._parents, parent_grads):
                if pg is None or not p.requires_grad:
                    continue
                pg = _unbroadcast(xp.asarray(pg, dtype=float64), p.data.shape)
                if p._backward is None and not p._parents:
                    p._accumulate(pg)  # leaf
                else:
                    if id(p) in grads:
                        grads[id(p)] = grads[id(p)] + pg
                    else:
                        grads[id(p)] = pg

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------ arithmetic
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = Tensor._coerce(other)
        out_data = self.data + other.data
        return Tensor._make(out_data, (self, other), lambda g: (g, g))

    __radd__ = __add__

    def __neg__(self):
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other):
        other = Tensor._coerce(other)
        return Tensor._make(self.data - other.data, (self, other), lambda g: (g, -g))

    def __rsub__(self, other):
        return Tensor._coerce(other) - self

    def __mul__(self, other):
        other = Tensor._coerce(other)
        a, b = self.data, other.data
        return Tensor._make(a * b, (self, other), lambda g: (g * b, g * a))

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor._coerce(other)
        a, b = self.data, other.data
        return Tensor._make(
            a / b, (self, other), lambda g: (g / b, -g * a / (b * b))
        )

    def __rtruediv__(self, other):
        return Tensor._coerce(other) / self

    def __pow__(self, exponent: float):
        a = self.data
        e = float(exponent)
        return Tensor._make(a**e, (self,), lambda g: (g * e * a ** (e - 1.0),))

    def __matmul__(self, other):
        other = Tensor._coerce(other)
        a, b = self.data, other.data
        out = a @ b

        def backward(g):
            if a.ndim == 1 and b.ndim == 1:
                return (g * b, g * a)
            ga = g @ xp.swapaxes(b, -1, -2) if b.ndim > 1 else xp.outer(g, b)
            gb = xp.swapaxes(a, -1, -2) @ g if a.ndim > 1 else xp.outer(a, g)
            # batched matmul may broadcast batch dims
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

        return Tensor._make(out, (self, other), backward)

    # ------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False):
        out = xp.sum(self.data, axis=axis, keepdims=keepdims)

        def backward(g):
            g = xp.asarray(g)
            if axis is None:
                return (xp.array(xp.broadcast_to(g, self.data.shape)),)
            if not keepdims:
                g = xp.expand_dims(g, axis)
            return (xp.array(xp.broadcast_to(g, self.data.shape)),)

        return Tensor._make(out, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        n = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    # ---------------------------------------------------------- elementwise
    def exp(self):
        out = xp.exp(self.data)
        return Tensor._make(out, (self,), lambda g: (g * out,))

    def log(self):
        a = self.data
        return Tensor._make(xp.log(a), (self,), lambda g: (g / a,))

    def sqrt(self):
        out = xp.sqrt(self.data)
        return Tensor._make(out, (self,), lambda g: (g * 0.5 / out,))

    def tanh(self):
        out = xp.tanh(self.data)
        return Tensor._make(out, (self,), lambda g: (g * (1.0 - out * out),))

    def relu(self):
        a = self.data
        mask = a > 0
        return Tensor._make(a * mask, (self,), lambda g: (g * mask,))

    def sigmoid(self):
        out = 1.0 / (1.0 + xp.exp(-self.data))
        return Tensor._make(out, (self,), lambda g: (g * out * (1.0 - out),))

    def gelu(self):
        """tanh-approximation GELU (the variant used by GPT-style decoders)."""
        a = self.data
        c = math.sqrt(2.0 / math.pi)
        inner = c * (a + 0.044715 * a**3)
        t = xp.tanh(inner)
        out = 0.5 * a * (1.0 + t)

        def backward(g):
            dinner = c * (1.0 + 3 * 0.044715 * a**2)
            dt = (1.0 - t * t) * dinner
            return (g * (0.5 * (1.0 + t) + 0.5 * a * dt),)

        return Tensor._make(out, (self,), backward)

    # --------------------------------------------------------------- reshape
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old = self.data.shape
        return Tensor._make(
            self.data.reshape(shape), (self,), lambda g: (g.reshape(old),)
        )

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inv = tuple(sorted(range(len(axes)), key=axes.__getitem__))
        return Tensor._make(
            xp.transpose(self.data, axes), (self,),
            lambda g: (xp.transpose(g, inv),)
        )

    def swapaxes(self, a: int, b: int):
        return Tensor._make(
            xp.swapaxes(self.data, a, b), (self,), lambda g: (xp.swapaxes(g, a, b),)
        )

    def __getitem__(self, idx):
        out = self.data[idx]

        def backward(g):
            full = xp.zeros_like(self.data)
            xp.add.at(full, idx, g)
            return (full,)

        return Tensor._make(out, (self,), backward)

    # ------------------------------------------------------- fused helpers
    def masked_fill(self, mask, value: float):
        """Return a tensor equal to self with ``value`` where ``mask`` is True."""
        mask = xp.asarray(mask, dtype=bool_)
        out = xp.where(mask, value, self.data)
        return Tensor._make(out, (self,), lambda g: (xp.where(mask, 0.0, g),))

    def log_softmax(self, axis: int = -1):
        a = self.data
        m = xp.max(a, axis=axis, keepdims=True)
        shifted = a - m
        lse = xp.log(xp.sum(xp.exp(shifted), axis=axis, keepdims=True))
        out = shifted - lse

        def backward(g):
            softmax = xp.exp(out)
            return (g - softmax * xp.sum(g, axis=axis, keepdims=True),)

        return Tensor._make(out, (self,), backward)

    def softmax(self, axis: int = -1):
        a = self.data
        m = xp.max(a, axis=axis, keepdims=True)
        e = xp.exp(a - m)
        out = e / xp.sum(e, axis=axis, keepdims=True)

        def backward(g):
            dot = xp.sum(g * out, axis=axis, keepdims=True)
            return (out * (g - dot),)

        return Tensor._make(out, (self,), backward)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    datas = [t.data for t in tensors]
    out = xp.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = list(itertools.accumulate([0] + sizes))

    def backward(g):
        grads = []
        for i in range(len(datas)):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(sl)])
        return tuple(grads)

    return Tensor._make(out, tensors, backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    out = xp.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(xp.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(out, tensors, backward)


def embedding_lookup(table: Tensor, idx) -> Tensor:
    """Row gather ``table[idx]`` with scatter-add backward (nn.Embedding)."""
    idx = xp.asarray(idx)
    out = table.data[idx]

    def backward(g):
        full = xp.zeros_like(table.data)
        xp.add.at(full, idx.reshape(-1), g.reshape(-1, table.data.shape[-1]))
        return (full,)

    return Tensor._make(out, (table,), backward)
