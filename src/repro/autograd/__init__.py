"""Reverse-mode autodiff over numpy (the PyTorch substitute)."""
from repro.autograd.tensor import (
    Tensor,
    concat,
    embedding_lookup,
    is_grad_enabled,
    no_grad,
    stack,
)
from repro.autograd.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "concat",
    "embedding_lookup",
    "is_grad_enabled",
    "no_grad",
    "stack",
    "gradcheck",
]
