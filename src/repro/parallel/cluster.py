"""Multi-host cluster transport behind the typed FakeMPI comm interface.

This is the network realization of the comm contract that
:class:`~repro.parallel.fake_mpi.FakeComm` defines in-process and
``ProcessComm`` implements over pipes/shared memory:

* :class:`ClusterComm` — a full TCP mesh between ranks (rank *i* dials every
  rank *j < i*, accepts from every *j > i*) carrying the typed collectives
  (``allgather_ndarray`` / ``allgather_blob`` / ``allreduce_ndarray`` plus
  the generic pickle ``allgather``/``bcast``) as length-prefixed validated
  frames (:mod:`repro.parallel.rendezvous`).  Membership, rank assignment
  and liveness come from the rendezvous coordinator (``python -m repro
  rendezvous``): each rank heartbeats the coordinator, and a rank that dies
  poisons every survivor with :class:`~repro.parallel.fake_mpi.
  CommAbortError` — the same crash semantics as ``ProcessComm``.

* :class:`MPIComm` — a thin adapter satisfying the identical interface on an
  ``mpi4py`` communicator.  Preferred automatically by
  :func:`create_cluster_comm` when ``mpi4py`` is importable *and* the MPI
  world matches the requested ``world_size`` (i.e. the job was launched
  under ``mpirun``); otherwise the socket path is used.

* :class:`ClusterBackend` — the :class:`~repro.core.engine.ExecutionBackend`
  registered as ``parallel.backend=cluster``.  Unlike the thread/process
  backends (one parent orchestrating N_p ephemeral ranks), the cluster
  backend is SPMD: every host runs the *full* driver — same spec, same
  artifact contract — and the ranks meet only inside the collectives.
  Every collective is rank-ordered and deterministic (``np.sum`` over the
  rank-ordered payload list, exactly FakeComm's arithmetic), so all ranks
  apply identical updates and the run is bit-identical to the thread
  backend at equal ``n_ranks``.

Determinism notes: byte accounting replicates FakeComm's formulas (paper
convention, payload x N_p, logical vs. wire split) rather than counting
socket framing overhead, so ``comm_bytes``/``comm_bytes_wire`` history
columns match the thread backend bit-for-bit.  The per-iteration
stats-exchange allgather (wall times + per-rank unique counts, pure
bookkeeping) is excluded from the accounted delta for the same reason.
"""
from __future__ import annotations

import pickle
import socket
import threading
import time

import numpy as np

from repro.core.engine import (
    ExecutionBackend,
    _rank_iteration,
    _validate_rank_args,
)
from repro.parallel.fake_mpi import (
    CommAbortError,
    CommStats,
    _payload_bytes,
    dead_rank_message,
)
from repro.parallel.rendezvous import (
    FRAME_ARRAY,
    FRAME_BLOB,
    FRAME_CTRL,
    ClusterProtocolError,
    build_frame,
    connect_with_retry,
    parse_addr,
    recv_frame,
    send_ctrl,
)

__all__ = [
    "ClusterBackend",
    "ClusterComm",
    "MPIComm",
    "create_cluster_comm",
]


class ClusterComm:
    """One rank's communicator over the TCP mesh (FakeMPI-compatible surface).

    Construction performs the whole rendezvous: dial the coordinator (with
    bounded-backoff retry, covering the ranks-before-coordinator launch
    race), receive rank + peer table, build the mesh, then start the
    heartbeat and control-listener threads.  Collectives afterwards involve
    only the mesh; the coordinator is pure liveness supervision.

    All ranks must issue collectives in the same order — the MPI contract —
    and every frame carries ``(op, seq, src, session)`` so a desynchronized
    peer is detected instead of silently mispaired.
    """

    def __init__(self, world_size: int, rendezvous_addr: str, *,
                 rank: int | None = None, join_timeout: float = 60.0,
                 collective_timeout: float = 600.0):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self._size = int(world_size)
        self._wants_rank = rank
        self._join_timeout = float(join_timeout)
        self._collective_timeout = float(collective_timeout)
        self._stats = CommStats()
        self._seq = 0
        self._peers: dict[int, socket.socket] = {}
        self._coord: socket.socket | None = None
        self._coord_lock = threading.Lock()
        self._abort_event = threading.Event()
        self._abort_reason: str | None = None
        self._closed = False
        self._hb_stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._connect(rendezvous_addr)

    # ------------------------------------------------------------ rendezvous
    def _connect(self, rendezvous_addr: str) -> None:
        host, port = parse_addr(rendezvous_addr)
        coord = connect_with_retry(host, port, timeout=self._join_timeout)
        try:
            local_ip = coord.getsockname()[0]
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind((local_ip, 0))
            listener.listen(self._size + 2)
            listen_addr = f"{local_ip}:{listener.getsockname()[1]}"
            send_ctrl(coord, kind="hello", wants_rank=self._wants_rank,
                      addr=listen_addr, world_size=self._size)
            coord.settimeout(self._join_timeout)
            _, meta, _ = recv_frame(coord)
            kind = meta.get("kind")
            if kind == "reject":
                raise RuntimeError(
                    f"rendezvous rejected this member: {meta.get('reason')}"
                )
            if kind != "welcome":
                raise ClusterProtocolError(
                    f"expected welcome from coordinator, got {kind!r}"
                )
            self._rank = int(meta["rank"])
            if int(meta["world_size"]) != self._size:
                raise RuntimeError(
                    f"coordinator supervises {meta['world_size']} ranks but "
                    f"this member was configured for world_size={self._size}"
                )
            self._session = str(meta["session"])
            self._heartbeat_interval = float(meta.get("heartbeat_interval", 2.0))
            peers = {int(r): str(a) for r, a in meta["peers"].items()}
            coord.settimeout(None)
            self._coord = coord
            self._build_mesh(listener, peers)
        except BaseException:
            try:
                listener.close()
            except (OSError, UnboundLocalError):
                pass
            coord.close()
            raise
        self._start_threads()

    def _build_mesh(self, listener: socket.socket,
                    peers: dict[int, str]) -> None:
        deadline = time.monotonic() + self._join_timeout
        # Dial the lower ranks; their listeners were up before they said hello.
        for j in range(self._rank):
            h, p = parse_addr(peers[j])
            conn = connect_with_retry(
                h, p, timeout=max(deadline - time.monotonic(), 1.0)
            )
            send_ctrl(conn, kind="peer-hello", rank=self._rank,
                      session=self._session)
            self._peers[j] = conn
        # Accept the higher ranks; tolerate garbage connections.
        listener.settimeout(0.2)
        need = set(range(self._rank + 1, self._size))
        while need:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"rank {self._rank}: mesh accept timed out waiting for "
                    f"ranks {sorted(need)}"
                )
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            conn.settimeout(5.0)
            try:
                ftype, meta, _ = recv_frame(conn)
                if ftype != FRAME_CTRL or meta.get("kind") != "peer-hello":
                    raise ClusterProtocolError("expected peer-hello")
                if meta.get("session") != self._session:
                    raise ClusterProtocolError("session mismatch")
                j = int(meta["rank"])
                if j not in need:
                    raise ClusterProtocolError(f"unexpected peer rank {j}")
            except (ClusterProtocolError, ConnectionError, OSError,
                    ValueError, TypeError, KeyError):
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            need.discard(j)
            self._peers[j] = conn
        listener.close()
        for conn in self._peers.values():
            conn.settimeout(self._collective_timeout)

    def _start_threads(self) -> None:
        hb = threading.Thread(
            target=self._heartbeat_loop,
            name=f"cluster-heartbeat-{self._rank}", daemon=True,
        )
        ctrl = threading.Thread(
            target=self._ctrl_loop,
            name=f"cluster-ctrl-{self._rank}", daemon=True,
        )
        hb.start()
        ctrl.start()
        self._threads = [hb, ctrl]

    def _heartbeat_loop(self) -> None:
        while not self._hb_stop.wait(self._heartbeat_interval):
            with self._coord_lock:
                if self._closed or self._coord is None:
                    return
                try:
                    send_ctrl(self._coord, kind="heartbeat", rank=self._rank)
                except OSError:
                    return

    def _ctrl_loop(self) -> None:
        """Watch the coordinator channel for abort poison."""
        while True:
            try:
                ftype, meta, _ = recv_frame(self._coord)
            except (ConnectionError, ClusterProtocolError, OSError):
                return  # channel closed: normal shutdown or coordinator gone
            if ftype == FRAME_CTRL and meta.get("kind") == "abort":
                self._abort_reason = str(meta.get("reason", "aborted"))
                self._abort_event.set()
                # Wake any collective blocked on a mesh recv so the poison
                # is observed promptly instead of after collective_timeout.
                for conn in self._peers.values():
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                return

    # -------------------------------------------------------------- identity
    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._size

    @property
    def stats(self) -> CommStats:
        return self._stats

    # --------------------------------------------------------------- plumbing
    def _check_abort(self) -> None:
        if self._abort_reason is not None:
            raise CommAbortError(f"collective aborted: {self._abort_reason}")
        if self._closed:
            raise RuntimeError(
                f"rank {self._rank}: communicator is closed"
            )

    def _raise_abort(self, peer: int | None, exc: BaseException):
        """A mesh send/recv failed: surface the coordinator's verdict if one
        arrives within a short grace window, else name the failed peer."""
        if self._abort_event.wait(1.0):
            raise CommAbortError(
                f"collective aborted: {self._abort_reason}"
            ) from exc
        if peer is not None:
            raise CommAbortError(
                f"rank {self._rank}: "
                + dead_rank_message([peer], f"connection failed ({exc})"),
                dead_rank=peer,
            ) from exc
        raise CommAbortError(
            f"rank {self._rank}: collective send failed ({exc})"
        ) from exc

    def _exchange(self, ftype: int, op: str, meta: dict,
                  raw: bytes) -> list[tuple[dict, bytes]]:
        """All-to-all: send (meta, raw) to every peer, receive one frame per
        peer, return the rank-ordered ``(meta, raw)`` list (own included).

        One sender thread per peer prevents the head-to-head deadlock of
        sequential send-then-recv once payloads exceed the kernel socket
        buffers; the main thread receives in rank order, which is safe by
        induction (every send is drained by its peer's rank-ordered recv).
        """
        self._check_abort()
        seq = self._seq
        self._seq += 1
        wire_meta = dict(meta)
        wire_meta.update(op=op, seq=seq, src=self._rank,
                         session=self._session)
        results: list = [None] * self._size
        results[self._rank] = (wire_meta, raw)
        if self._size == 1:
            return results
        frame = build_frame(ftype, wire_meta, raw)
        send_errors: list[BaseException] = []

        def _send(conn: socket.socket) -> None:
            try:
                conn.sendall(frame)
            except OSError as exc:
                send_errors.append(exc)

        others = [j for j in range(self._size) if j != self._rank]
        senders = [
            threading.Thread(target=_send, args=(self._peers[j],), daemon=True)
            for j in others
        ]
        for t in senders:
            t.start()
        for j in others:
            try:
                ftype_r, meta_r, raw_r = recv_frame(self._peers[j])
            except ClusterProtocolError:
                raise
            except (ConnectionError, OSError) as exc:
                self._raise_abort(j, exc)
            if (meta_r.get("op") != op or meta_r.get("seq") != seq
                    or meta_r.get("src") != j
                    or meta_r.get("session") != self._session):
                raise ClusterProtocolError(
                    f"rank {self._rank}: desynchronized collective from rank "
                    f"{j}: expected (op={op!r}, seq={seq}), got "
                    f"(op={meta_r.get('op')!r}, seq={meta_r.get('seq')!r}, "
                    f"src={meta_r.get('src')!r})"
                )
            if ftype_r != ftype:
                raise ClusterProtocolError(
                    f"rank {self._rank}: frame type mismatch from rank {j} "
                    f"in {op!r}"
                )
            results[j] = (meta_r, raw_r)
        for t in senders:
            t.join()
        if send_errors:
            self._raise_abort(None, send_errors[0])
        return results

    # ------------------------------------------------------------ collectives
    def barrier(self) -> None:
        if self._size > 1:
            self._exchange(FRAME_BLOB, "barrier", {}, b"")
        else:
            self._check_abort()

    def allgather(self, payload) -> list:
        """Gather one object per rank onto all ranks (pickle on the wire)."""
        blob = pickle.dumps(payload, protocol=5)
        results = self._exchange(FRAME_BLOB, "allgather", {}, blob)
        out = [
            payload if r == self._rank else pickle.loads(raw)
            for r, (_, raw) in enumerate(results)
        ]
        self._stats.add(
            "allgather", sum(_payload_bytes(p) for p in out) * self._size
        )
        return out

    def allgather_ndarray(self, array: np.ndarray,
                          channel: str | None = None) -> list[np.ndarray]:
        """Typed allgather of one ndarray per rank (validated dtype/shape)."""
        array = np.ascontiguousarray(np.asarray(array))
        meta = {"dtype": array.dtype.str, "shape": list(array.shape)}
        results = self._exchange(FRAME_ARRAY, "allgather", meta,
                                 array.tobytes())
        out = [
            array if r == self._rank else m["array"]
            for r, (m, _) in enumerate(results)
        ]
        self._stats.add(
            "allgather", sum(a.nbytes for a in out) * self._size,
            channel=channel,
        )
        return out

    def allgather_blob(self, data: bytes, logical_bytes: int | None = None,
                       channel: str | None = None) -> list[bytes]:
        """Allgather pre-encoded bytes; logical vs. wire accounted separately."""
        blob = bytes(data)
        logical = len(blob) if logical_bytes is None else int(logical_bytes)
        results = self._exchange(FRAME_BLOB, "allgather",
                                 {"logical": logical}, blob)
        blobs = [raw for _, raw in results]
        logicals = [
            int(m.get("logical", len(raw))) for m, raw in results
        ]
        self._stats.add(
            "allgather", sum(logicals) * self._size,
            wire=sum(len(b) for b in blobs) * self._size, channel=channel,
        )
        return blobs

    def allreduce_sum(self, array: np.ndarray) -> np.ndarray:
        return self.allreduce_ndarray(array)

    def allreduce_ndarray(self, array: np.ndarray,
                          channel: str | None = None) -> np.ndarray:
        """Sum-allreduce via gather + rank-ordered ``np.sum`` — exactly
        FakeComm's arithmetic, so cluster trajectories match thread ones."""
        array = np.ascontiguousarray(np.asarray(array))
        meta = {"dtype": array.dtype.str, "shape": list(array.shape)}
        results = self._exchange(FRAME_ARRAY, "allreduce", meta,
                                 array.tobytes())
        parts = [
            array if r == self._rank else m["array"]
            for r, (m, _) in enumerate(results)
        ]
        self._stats.add(
            "allreduce", array.nbytes * self._size, channel=channel
        )
        return np.sum(parts, axis=0)

    def bcast(self, payload, root: int = 0):
        self._check_abort()
        seq = self._seq
        self._seq += 1
        if self._size == 1:
            self._stats.add("bcast", _payload_bytes(payload) * self._size)
            return payload
        if self._rank == root:
            blob = pickle.dumps(payload, protocol=5)
            meta = {"op": "bcast", "seq": seq, "src": self._rank,
                    "session": self._session}
            frame = build_frame(FRAME_BLOB, meta, blob)
            send_errors: list[BaseException] = []

            def _send(conn: socket.socket) -> None:
                try:
                    conn.sendall(frame)
                except OSError as exc:
                    send_errors.append(exc)

            senders = [
                threading.Thread(target=_send, args=(self._peers[j],),
                                 daemon=True)
                for j in range(self._size) if j != self._rank
            ]
            for t in senders:
                t.start()
            for t in senders:
                t.join()
            if send_errors:
                self._raise_abort(None, send_errors[0])
            result = payload
        else:
            try:
                _, meta_r, raw = recv_frame(self._peers[root])
            except ClusterProtocolError:
                raise
            except (ConnectionError, OSError) as exc:
                self._raise_abort(root, exc)
            if meta_r.get("op") != "bcast" or meta_r.get("seq") != seq \
                    or meta_r.get("src") != root:
                raise ClusterProtocolError(
                    f"rank {self._rank}: desynchronized bcast from rank {root}"
                )
            result = pickle.loads(raw)
        self._stats.add("bcast", _payload_bytes(result) * self._size)
        return result

    # --------------------------------------------------------------- shutdown
    def close(self) -> None:
        """Leave the job cleanly and release every socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._hb_stop.set()
        with self._coord_lock:
            if self._coord is not None:
                try:
                    send_ctrl(self._coord, kind="leave", rank=self._rank)
                except OSError:
                    pass
        self._teardown_sockets()
        for t in self._threads:
            if t is not threading.current_thread():
                t.join(timeout=5.0)

    def _teardown_sockets(self) -> None:
        for conn in list(self._peers.values()):
            for fn in (lambda: conn.shutdown(socket.SHUT_RDWR), conn.close):
                try:
                    fn()
                except OSError:
                    pass
        if self._coord is not None:
            for fn in (lambda: self._coord.shutdown(socket.SHUT_RDWR),
                       self._coord.close):
                try:
                    fn()
                except OSError:
                    pass

    def __enter__(self) -> "ClusterComm":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- test hooks
    def _simulate_crash(self) -> None:
        """Die abruptly: no leave, sockets dropped — as a killed host would."""
        self._closed = True
        self._hb_stop.set()
        self._teardown_sockets()

    def _stop_heartbeating(self) -> None:
        """Wedge simulation: stay connected but stop sending heartbeats."""
        self._hb_stop.set()


class MPIComm:
    """The typed comm interface on an ``mpi4py`` communicator.

    Collectives use the lowercase (pickle-capable) mpi4py surface, and the
    allreduce is a gather + rank-ordered ``np.sum`` rather than ``MPI.SUM``
    — MPI reduction order is implementation-defined, and bit-identical
    trajectories across backends are part of the comm contract.
    """

    def __init__(self, comm):
        self._comm = comm
        self._stats = CommStats()

    def Get_rank(self) -> int:
        return self._comm.Get_rank()

    def Get_size(self) -> int:
        return self._comm.Get_size()

    @property
    def stats(self) -> CommStats:
        return self._stats

    def barrier(self) -> None:
        self._comm.barrier()

    def allgather(self, payload) -> list:
        result = self._comm.allgather(payload)
        self._stats.add(
            "allgather",
            sum(_payload_bytes(p) for p in result) * self.Get_size(),
        )
        return result

    def allgather_ndarray(self, array: np.ndarray,
                          channel: str | None = None) -> list[np.ndarray]:
        array = np.asarray(array)
        result = self._comm.allgather(array)
        self._stats.add(
            "allgather", sum(a.nbytes for a in result) * self.Get_size(),
            channel=channel,
        )
        return result

    def allgather_blob(self, data: bytes, logical_bytes: int | None = None,
                       channel: str | None = None) -> list[bytes]:
        blob = bytes(data)
        logical = len(blob) if logical_bytes is None else int(logical_bytes)
        result = self._comm.allgather((blob, logical))
        size = self.Get_size()
        self._stats.add(
            "allgather", sum(lg for _, lg in result) * size,
            wire=sum(len(b) for b, _ in result) * size, channel=channel,
        )
        return [b for b, _ in result]

    def allreduce_sum(self, array: np.ndarray) -> np.ndarray:
        return self.allreduce_ndarray(array)

    def allreduce_ndarray(self, array: np.ndarray,
                          channel: str | None = None) -> np.ndarray:
        array = np.asarray(array)
        parts = self._comm.allgather(array)
        self._stats.add(
            "allreduce", array.nbytes * self.Get_size(), channel=channel
        )
        return np.sum(parts, axis=0)

    def bcast(self, payload, root: int = 0):
        result = self._comm.bcast(payload, root=root)
        self._stats.add("bcast", _payload_bytes(result) * self.Get_size())
        return result

    def close(self) -> None:  # the MPI runtime owns the communicator
        pass


def _mpi_comm_world():
    """``MPI.COMM_WORLD`` when mpi4py is importable, else None (never raises)."""
    try:
        from mpi4py import MPI  # type: ignore[import-not-found]
    except Exception:
        return None
    return MPI.COMM_WORLD


def create_cluster_comm(world_size: int, *, rendezvous_addr: str | None = None,
                        rank: int | None = None, join_timeout: float = 60.0,
                        collective_timeout: float = 600.0, mpi="auto"):
    """Build the cluster communicator, preferring MPI when it fits.

    Selection rule: when an MPI world is available (``mpi4py`` importable —
    i.e. the job was launched under ``mpirun``) *and* its size equals the
    requested ``world_size``, wrap it in :class:`MPIComm`; otherwise fall
    back to the socket transport, which requires ``rendezvous_addr``.
    ``mpi`` accepts an injected communicator (tests) or ``None`` to force
    the socket path.
    """
    if mpi == "auto":
        mpi = _mpi_comm_world()
    if mpi is not None and mpi.Get_size() == world_size:
        if rank is not None and mpi.Get_rank() != rank:
            raise ValueError(
                f"parallel.rank={rank} conflicts with MPI rank "
                f"{mpi.Get_rank()}; omit parallel.rank under mpirun"
            )
        return MPIComm(mpi)
    if rendezvous_addr is None:
        raise ValueError(
            "the cluster backend needs parallel.rendezvous_addr (host:port "
            "of a `python -m repro rendezvous` coordinator) when no MPI "
            f"world of size {world_size} is available"
        )
    return ClusterComm(
        world_size, rendezvous_addr, rank=rank, join_timeout=join_timeout,
        collective_timeout=collective_timeout,
    )


class ClusterBackend(ExecutionBackend):
    """SPMD execution over :class:`ClusterComm`/:class:`MPIComm`.

    Every host runs the full driver on the same spec; this backend runs the
    staged iteration as *this* host's rank of the shared communicator.  All
    collectives are deterministic and every rank applies the identical
    reduced gradient locally, so no parameter broadcast is needed and each
    host's artifact directory is bit-identical to a thread-backend run at
    equal ``n_ranks`` (timing columns aside).

    ``spmd = True`` tells the engine that every rank keeps its own
    cross-iteration state — in particular each rank retains the stage-2
    diff baseline (``global_keys``) locally, since peers' next-iteration
    payloads are delta-encoded against it.
    """

    name = "cluster"
    spmd = True

    def __init__(self, n_ranks: int, nu_star_per_rank: int = 64,
                 eloc_partition: str = "balanced", comm_codec: bool = True,
                 comm_shm: bool = True, *, rendezvous_addr: str | None = None,
                 rank: int | None = None, join_timeout: float = 60.0,
                 collective_timeout: float = 600.0, comm=None):
        _validate_rank_args(n_ranks, eloc_partition)
        self.n_ranks = n_ranks
        self.nu_star_per_rank = nu_star_per_rank
        self.eloc_partition = eloc_partition
        self.comm_codec = bool(comm_codec)
        # Accepted for spec symmetry; shared-memory segments do not cross
        # hosts, so there is nothing to toggle here.
        self.comm_shm = bool(comm_shm)
        self.rendezvous_addr = rendezvous_addr
        self.rank = rank
        self.join_timeout = float(join_timeout)
        self.collective_timeout = float(collective_timeout)
        self._comm = comm
        self._owns_comm = comm is None
        self.last_comm_stats = None

    def _ensure_comm(self):
        if self._comm is None:
            self._comm = create_cluster_comm(
                self.n_ranks, rendezvous_addr=self.rendezvous_addr,
                rank=self.rank, join_timeout=self.join_timeout,
                collective_timeout=self.collective_timeout,
            )
        if self._comm.Get_size() != self.n_ranks:
            raise ValueError(
                f"communicator world size {self._comm.Get_size()} != "
                f"backend n_ranks {self.n_ranks}"
            )
        return self._comm

    def execute(self, engine):
        comm = self._ensure_comm()
        size = comm.Get_size()
        nu_star = self.nu_star_per_rank * self.n_ranks
        param_bytes = sum(p.data.nbytes for p in engine.wf.parameters())

        before_logical = comm.stats.total_bytes
        before_wire = comm.stats.total_wire_bytes
        out = _rank_iteration(
            engine, comm, engine.wf, engine.rng,
            nu_star=nu_star, eloc_partition=self.eloc_partition,
        )
        logical = comm.stats.total_bytes - before_logical
        wire = comm.stats.total_wire_bytes - before_wire
        self.last_comm_stats = comm.stats

        # Exchange per-rank wall times + unique counts so the stats record
        # matches the thread backend's (max over ranks, per_rank_unique in
        # rank order).  Pure bookkeeping: deliberately outside the accounted
        # delta above, because the thread backend has no analogous transfer.
        t = out["times"]
        stats_vec = np.array(
            [t["sampling"], t["local_energy"], t["gradient"],
             float(out["n_local_unique"])], dtype=np.float64,
        )
        gathered = comm.allgather_ndarray(stats_vec)
        results: list[dict] = []
        for r in range(size):
            results.append({
                "times": {
                    "sampling": float(gathered[r][0]),
                    "local_energy": float(gathered[r][1]),
                    "gradient": float(gathered[r][2]),
                },
                "n_local_unique": int(gathered[r][3]),
            })
        results[0].update({
            key: out[key]
            for key in ("grad", "energy", "eloc_imag", "variance",
                        "n_unique", "n_samples")
        })
        if "global_keys" in out:
            results[0]["global_keys"] = out["global_keys"]

        # The post-update parameter resync of Fig. 4 stage 6 — realized here
        # as every rank applying the identical update locally — accounted
        # exactly like the thread/process backends for column bit-identity.
        sync = param_bytes * size
        return results, (logical + sync, wire + sync)

    def close(self) -> None:
        if self._comm is not None and self._owns_comm:
            self._comm.close()
            self._comm = None
