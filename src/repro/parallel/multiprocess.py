"""Process-backed SPMD executor — the second communicator backend.

``repro.parallel.fake_mpi.run_spmd`` runs ranks as *threads*: collectives
are cheap (shared memory) and numpy kernels parallelize because they release
the GIL, but pure-Python rank code serializes on the interpreter lock.  This
module provides the complementary backend: ``run_spmd_processes`` forks one
OS process per rank and routes collectives through pipes to a coordinator
thread in the parent — true interpreter-level parallelism with explicit
message passing, one step closer to real MPI.

Semantics match ``run_spmd`` (allgather / allreduce_sum / bcast / barrier,
byte accounting with the paper's payload x N_p convention), with the MPI-like
restriction that **rank state is private**: unlike thread ranks, writes to
captured objects are not visible across ranks — everything shared must flow
through a collective.  The data-centric drivers honor that contract already;
tests pin it down.

Linux-only (uses the fork start method so closures need not pickle); payloads
are exchanged via pickle over pipes.
"""
from __future__ import annotations

import multiprocessing as mp
import threading
from typing import Callable

import numpy as np

from repro.parallel.fake_mpi import CommStats, _payload_bytes

__all__ = ["ProcessComm", "run_spmd_processes"]


class ProcessComm:
    """Per-rank communicator speaking to the parent coordinator over a pipe."""

    def __init__(self, rank: int, size: int, conn):
        self._rank = rank
        self._size = size
        self._conn = conn

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._size

    def _collective(self, op: str, payload):
        self._conn.send((op, payload))
        return self._conn.recv()

    def barrier(self) -> None:
        self._collective("barrier", None)

    def allgather(self, payload) -> list:
        return self._collective("allgather", payload)

    def allreduce_sum(self, array: np.ndarray) -> np.ndarray:
        return self._collective("allreduce", np.asarray(array))

    def bcast(self, array, root: int = 0):
        return self._collective(("bcast", root), array if self._rank == root else None)


def _coordinator(parent_conns, stats: CommStats, stop_flag):
    """Serve collectives: wait for all ranks, compute, reply to all ranks."""
    size = len(parent_conns)
    live = [True] * size
    while not stop_flag[0] and any(live):
        requests = [None] * size
        got = 0
        for r, conn in enumerate(parent_conns):
            if not live[r]:
                continue
            try:
                requests[r] = conn.recv()
                got += 1
            except EOFError:
                live[r] = False
        if got == 0:
            return
        if got != sum(live):
            raise RuntimeError("ranks issued mismatched collective counts")
        ops = {req[0] if not isinstance(req[0], tuple) else req[0][0]
               for req in requests if req is not None}
        if len(ops) != 1:
            raise RuntimeError(f"ranks issued different collectives: {ops}")
        op = ops.pop()
        payloads = [req[1] for req in requests if req is not None]
        if op == "barrier":
            replies = [None] * size
        elif op == "allgather":
            stats.add("allgather", sum(_payload_bytes(p) for p in payloads) * size)
            replies = [list(payloads)] * size
        elif op == "allreduce":
            total = payloads[0]
            for p in payloads[1:]:
                total = total + p
            stats.add("allreduce", np.asarray(payloads[0]).nbytes * size)
            replies = [total] * size
        elif op == "bcast":
            root = next(req[0][1] for req in requests if req is not None)
            value = payloads[root]
            stats.add("bcast", _payload_bytes(value) * size)
            replies = [value] * size
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown collective {op!r}")
        for r, conn in enumerate(parent_conns):
            if live[r]:
                conn.send(replies[r])


def run_spmd_processes(
    size: int, fn: Callable[[ProcessComm], object], timeout: float = 600.0
) -> tuple[list, CommStats]:
    """Run ``fn(comm)`` as ``size`` forked processes; returns (results, stats).

    Rank return values are pickled back to the parent.  A rank exception is
    re-raised in the parent (wrapped with the rank id).
    """
    ctx = mp.get_context("fork")
    pipes = [ctx.Pipe() for _ in range(size)]
    result_pipes = [ctx.Pipe() for _ in range(size)]

    def worker(rank: int) -> None:
        comm = ProcessComm(rank, size, pipes[rank][1])
        try:
            out = fn(comm)
            result_pipes[rank][1].send(("ok", out))
        except BaseException as exc:  # noqa: BLE001 - reraised in parent
            result_pipes[rank][1].send(("error", f"rank {rank}: {exc!r}"))
        finally:
            pipes[rank][1].close()
            result_pipes[rank][1].close()

    procs = [ctx.Process(target=worker, args=(r,)) for r in range(size)]
    for p in procs:
        p.start()

    stats = CommStats()
    stop_flag = [False]
    coord = threading.Thread(
        target=_coordinator, args=([c for c, _ in pipes], stats, stop_flag)
    )
    coord.start()

    results: list = [None] * size
    error: str | None = None
    for r in range(size):
        if result_pipes[r][0].poll(timeout):
            status, value = result_pipes[r][0].recv()
            if status == "ok":
                results[r] = value
            else:
                error = error or value
        else:
            error = error or f"rank {r}: timed out after {timeout}s"
    stop_flag[0] = True
    for p in procs:
        p.join(timeout=10)
        if p.is_alive():  # pragma: no cover - cleanup path
            p.terminate()
    coord.join(timeout=10)
    if error is not None:
        raise RuntimeError(error)
    return results, stats
