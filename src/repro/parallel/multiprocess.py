"""Process-backed SPMD executor — the second communicator backend.

``repro.parallel.fake_mpi.run_spmd`` runs ranks as *threads*: collectives
are cheap (shared memory) and numpy kernels parallelize because they release
the GIL, but pure-Python rank code serializes on the interpreter lock.  This
module provides the complementary backend: ``run_spmd_processes`` forks one
OS process per rank and routes collectives through pipes to a coordinator
thread in the parent — true interpreter-level parallelism with explicit
message passing, one step closer to real MPI.

Semantics match ``run_spmd`` (allgather / allreduce_sum / bcast / barrier,
byte accounting with the paper's payload x N_p convention), with the MPI-like
restriction that **rank state is private**: unlike thread ranks, writes to
captured objects are not visible across ranks — everything shared must flow
through a collective.  The data-centric drivers honor that contract already;
tests pin it down.

Linux-only (uses the fork start method so closures need not pickle); payloads
are exchanged via pickle over pipes.
"""
from __future__ import annotations

import multiprocessing as mp
import threading
from typing import Callable

import numpy as np

from repro.parallel.fake_mpi import CommStats, _payload_bytes

__all__ = ["ProcessComm", "run_spmd_processes", "ServiceClient", "run_service_clients"]


class ProcessComm:
    """Per-rank communicator speaking to the parent coordinator over a pipe."""

    def __init__(self, rank: int, size: int, conn):
        self._rank = rank
        self._size = size
        self._conn = conn

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._size

    def _collective(self, op: str, payload):
        self._conn.send((op, payload))
        return self._conn.recv()

    def barrier(self) -> None:
        self._collective("barrier", None)

    def allgather(self, payload) -> list:
        return self._collective("allgather", payload)

    def allreduce_sum(self, array: np.ndarray) -> np.ndarray:
        return self._collective("allreduce", np.asarray(array))

    def bcast(self, array, root: int = 0):
        return self._collective(("bcast", root), array if self._rank == root else None)


def _coordinator(parent_conns, stats: CommStats, stop_flag):
    """Serve collectives: wait for all ranks, compute, reply to all ranks."""
    size = len(parent_conns)
    live = [True] * size
    while not stop_flag[0] and any(live):
        requests = [None] * size
        got = 0
        for r, conn in enumerate(parent_conns):
            if not live[r]:
                continue
            try:
                requests[r] = conn.recv()
                got += 1
            except EOFError:
                live[r] = False
        if got == 0:
            return
        if got != sum(live):
            raise RuntimeError("ranks issued mismatched collective counts")
        ops = {req[0] if not isinstance(req[0], tuple) else req[0][0]
               for req in requests if req is not None}
        if len(ops) != 1:
            raise RuntimeError(f"ranks issued different collectives: {ops}")
        op = ops.pop()
        payloads = [req[1] for req in requests if req is not None]
        if op == "barrier":
            replies = [None] * size
        elif op == "allgather":
            stats.add("allgather", sum(_payload_bytes(p) for p in payloads) * size)
            replies = [list(payloads)] * size
        elif op == "allreduce":
            total = payloads[0]
            for p in payloads[1:]:
                total = total + p
            stats.add("allreduce", np.asarray(payloads[0]).nbytes * size)
            replies = [total] * size
        elif op == "bcast":
            root = next(req[0][1] for req in requests if req is not None)
            value = payloads[root]
            stats.add("bcast", _payload_bytes(value) * size)
            replies = [value] * size
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown collective {op!r}")
        for r, conn in enumerate(parent_conns):
            if live[r]:
                conn.send(replies[r])


def _close_foreign_pipe_ends(rank: int, *pipe_lists) -> None:
    """Drop a forked child's inherited copies of every other rank's pipes.

    Fork duplicates all pipe fds into every child; without this, a dead
    rank's connection never reaches EOF (siblings still hold the write end)
    and EOF-based liveness detection deadlocks.
    """
    for pipe_list in pipe_lists:
        for i, (parent_end, child_end) in enumerate(pipe_list):
            parent_end.close()
            if i != rank:
                child_end.close()


def _fork_rank_workers(size: int, body: Callable[[int, object], object]):
    """Fork ``size`` workers running ``body(rank, conn)`` with pipe hygiene.

    Each worker reports ``("ok", result)`` or ``("error", message)`` on its
    result pipe; the parent keeps only its own pipe ends, so a dead worker's
    connections actually deliver EOF.  Returns
    ``(parent_conns, result_conns, procs)``.
    """
    ctx = mp.get_context("fork")
    pipes = [ctx.Pipe() for _ in range(size)]
    result_pipes = [ctx.Pipe() for _ in range(size)]

    def worker(rank: int) -> None:
        _close_foreign_pipe_ends(rank, pipes, result_pipes)
        try:
            out = body(rank, pipes[rank][1])
            result_pipes[rank][1].send(("ok", out))
        except BaseException as exc:  # noqa: BLE001 - reraised in parent
            result_pipes[rank][1].send(("error", f"rank {rank}: {exc!r}"))
        finally:
            pipes[rank][1].close()
            result_pipes[rank][1].close()

    procs = [ctx.Process(target=worker, args=(r,)) for r in range(size)]
    for p in procs:
        p.start()
    # The parent must drop its copies of the child ends, or a dead rank's
    # pipe never reaches EOF and whoever reads it blocks forever.
    for _, child_end in pipes:
        child_end.close()
    for _, child_end in result_pipes:
        child_end.close()
    return [c for c, _ in pipes], [c for c, _ in result_pipes], procs


def _collect_rank_results(result_conns, procs, timeout: float):
    """Gather per-rank results, then join/terminate; returns (results, error)."""
    results: list = [None] * len(procs)
    error: str | None = None
    for r, conn in enumerate(result_conns):
        if conn.poll(timeout):
            try:
                status, value = conn.recv()
            except EOFError:
                # A hard-killed worker (SIGKILL/OOM) closes its result pipe
                # without ever sending: poll() sees the EOF as readability.
                error = error or f"rank {r}: died without reporting a result"
                continue
            if status == "ok":
                results[r] = value
            else:
                error = error or value
        else:
            error = error or f"rank {r}: timed out after {timeout}s"
    for p in procs:
        p.join(timeout=10)
        if p.is_alive():  # pragma: no cover - cleanup path
            p.terminate()
    return results, error


def run_spmd_processes(
    size: int, fn: Callable[[ProcessComm], object], timeout: float = 600.0
) -> tuple[list, CommStats]:
    """Run ``fn(comm)`` as ``size`` forked processes; returns (results, stats).

    Rank return values are pickled back to the parent.  A rank exception is
    re-raised in the parent (wrapped with the rank id).
    """
    parent_conns, result_conns, procs = _fork_rank_workers(
        size, lambda rank, conn: fn(ProcessComm(rank, size, conn))
    )
    stats = CommStats()
    stop_flag = [False]
    # Daemon: a coordinator wedged on a half-dead rank set must never block
    # interpreter shutdown (it is joined with a timeout below regardless).
    coord = threading.Thread(
        target=_coordinator, args=(parent_conns, stats, stop_flag),
        daemon=True,
    )
    coord.start()

    results, error = _collect_rank_results(result_conns, procs, timeout)
    stop_flag[0] = True
    coord.join(timeout=10)
    if error is not None:
        raise RuntimeError(error)
    return results, stats


# --------------------------------------------------------------------------
# Serving-layer worker clients (repro.serve)
# --------------------------------------------------------------------------
class ServiceClient:
    """Process-side proxy for a :class:`~repro.serve.WavefunctionService`.

    Mirrors the service's synchronous request API over a pipe; the parent
    runs one dispatcher thread per client, so requests from different worker
    processes are in flight *concurrently* and coalesce in the service's
    microbatcher exactly like same-process threads would.
    """

    def __init__(self, rank: int, conn):
        self.rank = rank
        self._conn = conn

    def _call(self, op: str, *args, **kwargs):
        self._conn.send((op, args, kwargs))
        status, value = self._conn.recv()
        if status == "error":
            raise RuntimeError(value)
        return value

    def sample(self, n_samples: int, seed: int, version: int | None = None):
        return self._call("sample", n_samples, seed, version)

    def log_amplitudes(self, bits, version: int | None = None):
        return self._call("log_amplitudes", bits, version)

    def amplitudes(self, bits, version: int | None = None):
        return self._call("amplitudes", bits, version)

    def conditional_probs(self, prefix_tokens, counts_up, counts_dn,
                          version: int | None = None):
        return self._call("conditional_probs", prefix_tokens, counts_up,
                          counts_dn, version)

    def local_energy(self, batch, mode: str = "exact",
                     version: int | None = None):
        return self._call("local_energy", batch, mode, version)

    def active_version(self):
        return self._call("active_version")


def _client_dispatcher(service, conn) -> None:
    """Serve one worker's requests until it closes its end of the pipe."""
    while True:
        try:
            op, args, kwargs = conn.recv()
        except EOFError:
            return
        try:
            result = getattr(service, op)(*args, **kwargs)
            conn.send(("ok", result))
        except Exception as exc:  # noqa: BLE001 - reraised client-side
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


def run_service_clients(
    service, size: int, fn: Callable[[ServiceClient], object],
    timeout: float = 600.0,
) -> list:
    """Fork ``size`` worker processes, each running ``fn(client)``.

    The service object stays in the parent (models are not re-loaded per
    worker); each worker drives it through a :class:`ServiceClient`.  One
    parent dispatcher thread per worker submits into the service, so the
    microbatcher sees genuinely concurrent cross-process traffic.  Returns
    the per-rank results of ``fn``; a worker exception is re-raised in the
    parent, wrapped with the rank id.
    """
    parent_conns, result_conns, procs = _fork_rank_workers(
        size, lambda rank, conn: fn(ServiceClient(rank, conn))
    )
    dispatchers = [
        threading.Thread(target=_client_dispatcher, args=(service, conn),
                         daemon=True)
        for conn in parent_conns
    ]
    for d in dispatchers:
        d.start()

    results, error = _collect_rank_results(result_conns, procs, timeout)
    for d in dispatchers:
        d.join(timeout=10)
    if error is not None:
        raise RuntimeError(error)
    return results
