"""Process-backed SPMD executor — the second communicator backend.

``repro.parallel.fake_mpi.run_spmd`` runs ranks as *threads*: collectives
are cheap (shared memory) and numpy kernels parallelize because they release
the GIL, but pure-Python rank code serializes on the interpreter lock.  This
module provides the complementary backend: ``run_spmd_processes`` forks one
OS process per rank and routes collectives through pipes to a coordinator
thread in the parent — true interpreter-level parallelism with explicit
message passing, one step closer to real MPI.

Semantics match ``run_spmd`` (allgather / allreduce_sum / bcast / barrier,
byte accounting with the paper's payload x N_p convention, logical vs. wire
split), with the MPI-like restriction that **rank state is private**: unlike
thread ranks, writes to captured objects are not visible across ranks —
everything shared must flow through a collective.  The data-centric drivers
honor that contract already; tests pin it down.

Large typed collectives (``allgather_ndarray`` / ``allreduce_ndarray``) move
raw bytes through ``multiprocessing.shared_memory`` segments instead of
pickle-over-pipes: the posting rank writes its array into a named segment
and ships only a tiny ``(name, dtype, shape, nbytes)`` meta record through
the pipe; peers attach and read the bytes directly.  Segment lifecycle is
owned by the parent coordinator: a collective's segments are unlinked as
soon as every live rank has issued its *next* collective (proof that the
segments were read), at coordinator shutdown, and — belt and braces — by a
name-prefix sweep of ``/dev/shm`` in the parent's ``finally``, so a rank
crash mid-collective never leaks ``/dev/shm`` blocks.  Small payloads and
pre-encoded blobs (``allgather_blob``) stay on the pipe, where pickling a
``bytes`` object is a plain memcpy.

Linux-only (uses the fork start method so closures need not pickle).
"""
from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import threading
from pathlib import Path
from typing import Callable

import numpy as np

from repro.parallel.fake_mpi import (
    CommAbortError,
    CommStats,
    _payload_bytes,
    dead_rank_message,
    poison_survivors,
)

__all__ = ["ProcessComm", "run_spmd_processes", "ServiceClient", "run_service_clients"]

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - non-POSIX fallback
    _shared_memory = None

_RUN_COUNTER = itertools.count()
# Payloads below this ride the pipe: segment setup costs more than a small
# pickle, and SharedMemory cannot be zero-sized anyway.
_DEFAULT_SHM_THRESHOLD = 1 << 16
# allreduce accumulation granularity: bounds resident temporaries without
# changing the rank-ordered elementwise add (bit-identical to any chunking).
_REDUCE_CHUNK_BYTES = 4 << 20


def _ensure_resource_tracker() -> None:
    """Start the resource tracker pre-fork so all ranks share one tracker.

    Python registers shared-memory names with the tracker on *attach* as
    well as create; with a single inherited tracker, one unlink balances the
    books and no spurious "leaked shared_memory" warnings fire at exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker is an optimization only
        pass


def _unlink_segments(names, registry: set | None = None) -> None:
    """Unlink shared-memory segments by name; missing segments are fine."""
    if _shared_memory is None:  # pragma: no cover
        return
    for name in list(names):
        try:
            seg = _shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - defensive
            pass
        else:
            seg.close()
            seg.unlink()
        if registry is not None:
            registry.discard(name)


def _unlink_stray_segments(prefix: str) -> None:
    """Sweep ``/dev/shm`` for segments a crashed rank created but never
    announced to the coordinator (created-then-died window)."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-Linux
        return
    for p in shm_dir.glob(f"{prefix}-*"):
        _unlink_segments([p.name])


class ProcessComm:
    """Per-rank communicator speaking to the parent coordinator over a pipe.

    Typed collectives above ``shm_threshold`` bytes move through named
    shared-memory segments (zero pickling of array payloads); everything
    else — control traffic, small arrays, pre-compressed blobs — rides the
    pipe.  ``use_shm=False`` forces the pipe path everywhere.
    """

    def __init__(self, rank: int, size: int, conn, *, use_shm: bool = False,
                 shm_prefix: str = "", shm_threshold: int = _DEFAULT_SHM_THRESHOLD):
        self._rank = rank
        self._size = size
        self._conn = conn
        self._use_shm = bool(use_shm) and _shared_memory is not None
        self._shm_prefix = shm_prefix
        self._shm_threshold = max(1, int(shm_threshold))
        self._shm_seq = 0

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._size

    # ------------------------------------------------------------- internals
    def _collective(self, op, payload):
        self._conn.send((op, payload))
        try:
            status, value = self._conn.recv()
        except EOFError:
            raise CommAbortError(
                f"rank {self._rank}: communicator closed mid-collective"
            ) from None
        if status == "abort":
            raise CommAbortError(f"collective aborted: {value}")
        return value

    def _shm_wanted(self, nbytes: int) -> bool:
        return self._use_shm and nbytes >= self._shm_threshold

    def _post_segment(self, array: np.ndarray):
        """Write ``array`` into a fresh named segment; returns its meta."""
        name = f"{self._shm_prefix}-{self._rank}-{self._shm_seq}"
        self._shm_seq += 1
        seg = _shared_memory.SharedMemory(name=name, create=True,
                                          size=array.nbytes)
        dst = np.frombuffer(seg.buf, dtype=array.dtype)[: array.size]
        np.copyto(dst, array.reshape(-1))
        del dst
        seg.close()
        return (name, array.dtype.str, array.shape, array.nbytes)

    def _read_segment(self, meta) -> np.ndarray:
        name, dtype_str, shape, nbytes = meta
        dt = np.dtype(dtype_str)
        seg = _shared_memory.SharedMemory(name=name)
        flat = np.frombuffer(seg.buf, dtype=dt)[: nbytes // dt.itemsize]
        out = flat.copy().reshape(shape)
        del flat
        seg.close()
        return out

    # ------------------------------------------------------------ collectives
    def barrier(self) -> None:
        self._collective("barrier", None)

    def allgather(self, payload) -> list:
        return self._collective("allgather", payload)

    def allgather_ndarray(self, array: np.ndarray,
                          channel: str | None = None) -> list[np.ndarray]:
        """Typed allgather; large arrays move as raw shared-memory bytes."""
        array = np.ascontiguousarray(array)
        if self._shm_wanted(array.nbytes):
            meta = self._post_segment(array)
            metas = self._collective("shm_allgather", (meta, channel))
            return [
                array if m[0] == meta[0] else self._read_segment(m)
                for m in metas
            ]
        return self._collective("allgather_nd", (array, channel))

    def allgather_blob(self, data: bytes, logical_bytes: int | None = None,
                       channel: str | None = None) -> list[bytes]:
        """Allgather pre-encoded bytes (compressed payloads stay on the pipe:
        pickling ``bytes`` is a memcpy, and they are small by construction)."""
        payload = (bytes(data),
                   len(data) if logical_bytes is None else int(logical_bytes),
                   channel)
        return self._collective("allgather_blob", payload)

    def allreduce_sum(self, array: np.ndarray) -> np.ndarray:
        return self._collective("allreduce", np.asarray(array))

    def allreduce_ndarray(self, array: np.ndarray,
                          channel: str | None = None) -> np.ndarray:
        """Typed sum-allreduce, in-place and chunked over shared memory.

        Each rank posts its contribution once and accumulates the rank-ordered
        sum locally in ``_REDUCE_CHUNK_BYTES`` chunks — the parent never
        materializes N_p gradient copies, and the arithmetic (sequential
        rank-ordered adds) is bit-identical to the pipe path's
        ``total = total + p`` loop.
        """
        array = np.ascontiguousarray(array)
        if self._shm_wanted(array.nbytes):
            meta = self._post_segment(array)
            metas = self._collective("shm_allreduce", (meta, channel))
            return self._reduce_segments(array, meta, metas)
        return self._collective("allreduce_nd", (array, channel))

    def _reduce_segments(self, own: np.ndarray, own_meta, metas) -> np.ndarray:
        dt = own.dtype
        n = own.size
        segs, views = [], []
        try:
            for m in metas:
                if m[0] == own_meta[0]:
                    views.append(own.reshape(-1))
                else:
                    seg = _shared_memory.SharedMemory(name=m[0])
                    segs.append(seg)
                    views.append(np.frombuffer(seg.buf, dtype=dt)[:n])
            out = np.empty(n, dtype=dt)
            _accumulate_rank_ordered(out, views)
        finally:
            # Release every buffer export before closing the mappings — a
            # surviving view would make mmap.close() raise BufferError.
            views.clear()
            for seg in segs:
                seg.close()
        return out.reshape(own.shape)

    def bcast(self, array, root: int = 0):
        return self._collective(("bcast", root), array if self._rank == root else None)


def _accumulate_rank_ordered(out: np.ndarray, views: list) -> None:
    """Chunked ``out = views[0] + views[1] + ...`` in rank order.

    A separate function so its locals (buffer views into shared-memory
    mappings) are dropped on return; chunking bounds resident temporaries
    without changing the elementwise, rank-ordered IEEE adds.
    """
    step = max(1, _REDUCE_CHUNK_BYTES // max(1, out.itemsize))
    for s in range(0, out.size, step):
        sl = slice(s, s + step)
        np.copyto(out[sl], views[0][sl])
        for v in views[1:]:
            out[sl] += v[sl]


def _abort_ranks(parent_conns, live, message: str) -> None:
    """Poison every live rank so it fails fast instead of hanging in recv.

    Delivery goes through the shared :func:`~repro.parallel.fake_mpi.
    poison_survivors` idiom — the same one the rendezvous coordinator uses —
    so both process and cluster ranks die with an identical
    :class:`~repro.parallel.fake_mpi.CommAbortError` surface.
    """
    poison_survivors(
        [r for r in range(len(parent_conns)) if live[r]],
        lambda r, msg: parent_conns[r].send(("abort", msg)),
        message,
    )


def _coordinator(parent_conns, stats: CommStats, stop_flag,
                 shm_registry: set):
    """Serve collectives: wait for all ranks, compute, reply to all ranks.

    Shared-memory segments announced in collective *t* are unlinked once
    every live rank has posted collective *t+1* (or hit EOF) — by then every
    reader has copied out of them.  On any protocol error the live ranks get
    an ``("abort", msg)`` poison reply instead of waiting forever, and the
    pending segments are unlinked before returning.
    """
    size = len(parent_conns)
    live = [True] * size
    pending_unlink: list[str] = []
    try:
        while not stop_flag[0] and any(live):
            requests = [None] * size
            got = 0
            died_now: list[int] = []
            for r, conn in enumerate(parent_conns):
                if not live[r]:
                    continue
                try:
                    requests[r] = conn.recv()
                    got += 1
                except EOFError:
                    live[r] = False
                    died_now.append(r)
            # Every live rank has moved past the previous collective, so its
            # segments have been read everywhere: safe to unlink them now.
            _unlink_segments(pending_unlink, shm_registry)
            pending_unlink = []
            if got == 0:
                # Every remaining rank closed its pipe — the normal end of a
                # run (or the tail of an abort); nothing left to serve.
                return
            if died_now:
                # A rank died while its peers posted a collective: serving it
                # short a participant would return silently-wrong values.
                # Poison the survivors with the dead rank named instead.
                _abort_ranks(parent_conns, live,
                             dead_rank_message(
                                 died_now, "connection closed mid-collective"))
                return
            ops = {req[0] if not isinstance(req[0], tuple) else req[0][0]
                   for req in requests if req is not None}
            if len(ops) != 1:
                _abort_ranks(parent_conns, live,
                             f"ranks issued different collectives: {ops}")
                return
            op = ops.pop()
            payloads = [req[1] for req in requests if req is not None]
            if op == "barrier":
                replies = [None] * size
            elif op == "allgather":
                stats.add("allgather",
                          sum(_payload_bytes(p) for p in payloads) * size)
                replies = [list(payloads)] * size
            elif op == "allgather_nd":
                arrays = [p[0] for p in payloads]
                stats.add("allgather", sum(a.nbytes for a in arrays) * size,
                          channel=payloads[0][1])
                replies = [arrays] * size
            elif op == "allgather_blob":
                blobs = [p[0] for p in payloads]
                stats.add("allgather",
                          sum(p[1] for p in payloads) * size,
                          wire=sum(len(b) for b in blobs) * size,
                          channel=payloads[0][2])
                replies = [blobs] * size
            elif op == "shm_allgather":
                metas = [p[0] for p in payloads]
                stats.add("allgather", sum(m[3] for m in metas) * size,
                          channel=payloads[0][1])
                for m in metas:
                    shm_registry.add(m[0])
                    pending_unlink.append(m[0])
                replies = [metas] * size
            elif op == "allreduce":
                total = payloads[0]
                for p in payloads[1:]:
                    total = total + p
                stats.add("allreduce", np.asarray(payloads[0]).nbytes * size)
                replies = [total] * size
            elif op == "allreduce_nd":
                arrays = [p[0] for p in payloads]
                total = arrays[0]
                for p in arrays[1:]:
                    total = total + p
                stats.add("allreduce", arrays[0].nbytes * size,
                          channel=payloads[0][1])
                replies = [total] * size
            elif op == "shm_allreduce":
                metas = [p[0] for p in payloads]
                stats.add("allreduce", metas[0][3] * size,
                          channel=payloads[0][1])
                for m in metas:
                    shm_registry.add(m[0])
                    pending_unlink.append(m[0])
                replies = [metas] * size
            elif op == "bcast":
                root = next(req[0][1] for req in requests if req is not None)
                value = payloads[root]
                stats.add("bcast", _payload_bytes(value) * size)
                replies = [value] * size
            else:  # pragma: no cover - defensive
                _abort_ranks(parent_conns, live, f"unknown collective {op!r}")
                return
            for r, conn in enumerate(parent_conns):
                if live[r]:
                    conn.send(("ok", replies[r]))
    finally:
        _unlink_segments(pending_unlink, shm_registry)
        # Closing the pipes unblocks any straggler rank still waiting on a
        # reply after an abort, turning a silent hang into a fast error.
        for conn in parent_conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass


def _close_foreign_pipe_ends(rank: int, *pipe_lists) -> None:
    """Drop a forked child's inherited copies of every other rank's pipes.

    Fork duplicates all pipe fds into every child; without this, a dead
    rank's connection never reaches EOF (siblings still hold the write end)
    and EOF-based liveness detection deadlocks.
    """
    for pipe_list in pipe_lists:
        for i, (parent_end, child_end) in enumerate(pipe_list):
            parent_end.close()
            if i != rank:
                child_end.close()


def _fork_rank_workers(size: int, body: Callable[[int, object], object]):
    """Fork ``size`` workers running ``body(rank, conn)`` with pipe hygiene.

    Each worker reports ``("ok", result)`` or ``("error", message)`` on its
    result pipe; the parent keeps only its own pipe ends, so a dead worker's
    connections actually deliver EOF.  Returns
    ``(parent_conns, result_conns, procs)``.
    """
    ctx = mp.get_context("fork")
    pipes = [ctx.Pipe() for _ in range(size)]
    result_pipes = [ctx.Pipe() for _ in range(size)]

    def worker(rank: int) -> None:
        _close_foreign_pipe_ends(rank, pipes, result_pipes)
        try:
            out = body(rank, pipes[rank][1])
            result_pipes[rank][1].send(("ok", out))
        except BaseException as exc:  # noqa: BLE001 - reraised in parent
            result_pipes[rank][1].send(("error", f"rank {rank}: {exc!r}"))
        finally:
            pipes[rank][1].close()
            result_pipes[rank][1].close()

    procs = [ctx.Process(target=worker, args=(r,)) for r in range(size)]
    for p in procs:
        p.start()
    # The parent must drop its copies of the child ends, or a dead rank's
    # pipe never reaches EOF and whoever reads it blocks forever.
    for _, child_end in pipes:
        child_end.close()
    for _, child_end in result_pipes:
        child_end.close()
    return [c for c, _ in pipes], [c for c, _ in result_pipes], procs


def _collect_rank_results(result_conns, procs, timeout: float,
                          join_timeout: float = 10.0):
    """Gather per-rank results, then join/terminate; returns (results, error)."""
    results: list = [None] * len(procs)
    error: str | None = None
    for r, conn in enumerate(result_conns):
        if conn.poll(timeout):
            try:
                status, value = conn.recv()
            except EOFError:
                # A hard-killed worker (SIGKILL/OOM) closes its result pipe
                # without ever sending: poll() sees the EOF as readability.
                error = error or f"rank {r}: died without reporting a result"
                continue
            if status == "ok":
                results[r] = value
            else:
                error = error or value
        else:
            error = error or f"rank {r}: timed out after {timeout}s"
    for p in procs:
        p.join(timeout=join_timeout)
        if p.is_alive():  # pragma: no cover - cleanup path
            p.terminate()
    return results, error


def run_spmd_processes(
    size: int, fn: Callable[[ProcessComm], object], timeout: float = 600.0,
    *, use_shm: bool = True, shm_threshold: int = _DEFAULT_SHM_THRESHOLD,
    join_timeout: float = 10.0,
) -> tuple[list, CommStats]:
    """Run ``fn(comm)`` as ``size`` forked processes; returns (results, stats).

    Rank return values are pickled back to the parent.  A rank exception is
    re-raised in the parent (wrapped with the rank id).  ``use_shm`` routes
    large typed collectives through named shared-memory segments; whatever
    happens — clean exit, rank exception, hard kill mid-collective — every
    segment of this run is unlinked before this function returns (deferred
    unlink in the coordinator + a name-prefix sweep of ``/dev/shm``).
    """
    use_shm = bool(use_shm) and _shared_memory is not None
    shm_prefix = f"reprocomm-{os.getpid()}-{next(_RUN_COUNTER)}"
    if use_shm:
        _ensure_resource_tracker()
    parent_conns, result_conns, procs = _fork_rank_workers(
        size,
        lambda rank, conn: fn(ProcessComm(
            rank, size, conn, use_shm=use_shm, shm_prefix=shm_prefix,
            shm_threshold=shm_threshold,
        )),
    )
    stats = CommStats()
    stop_flag = [False]
    shm_registry: set[str] = set()
    # Daemon: a coordinator wedged on a half-dead rank set must never block
    # interpreter shutdown (it is joined with a timeout below regardless).
    coord = threading.Thread(
        target=_coordinator,
        args=(parent_conns, stats, stop_flag, shm_registry),
        daemon=True,
    )
    coord.start()

    try:
        results, error = _collect_rank_results(result_conns, procs, timeout,
                                               join_timeout=join_timeout)
    finally:
        stop_flag[0] = True
        coord.join(timeout=max(join_timeout, 10.0))
        if use_shm:
            _unlink_segments(list(shm_registry), shm_registry)
            _unlink_stray_segments(shm_prefix)
    if error is not None:
        raise RuntimeError(error)
    return results, stats


# --------------------------------------------------------------------------
# Serving-layer worker clients (repro.serve)
# --------------------------------------------------------------------------
class ServiceClient:
    """Process-side proxy for a :class:`~repro.serve.WavefunctionService`.

    Mirrors the service's synchronous request API over a pipe; the parent
    runs one dispatcher thread per client, so requests from different worker
    processes are in flight *concurrently* and coalesce in the service's
    microbatcher exactly like same-process threads would.
    """

    def __init__(self, rank: int, conn):
        self.rank = rank
        self._conn = conn

    def _call(self, op: str, *args, **kwargs):
        self._conn.send((op, args, kwargs))
        status, value = self._conn.recv()
        if status == "error":
            raise RuntimeError(value)
        return value

    def sample(self, n_samples: int, seed: int, version: int | None = None):
        return self._call("sample", n_samples, seed, version)

    def log_amplitudes(self, bits, version: int | None = None):
        return self._call("log_amplitudes", bits, version)

    def amplitudes(self, bits, version: int | None = None):
        return self._call("amplitudes", bits, version)

    def conditional_probs(self, prefix_tokens, counts_up, counts_dn,
                          version: int | None = None):
        return self._call("conditional_probs", prefix_tokens, counts_up,
                          counts_dn, version)

    def local_energy(self, batch, mode: str = "exact",
                     version: int | None = None):
        return self._call("local_energy", batch, mode, version)

    def active_version(self):
        return self._call("active_version")


def _client_dispatcher(service, conn) -> None:
    """Serve one worker's requests until it closes its end of the pipe."""
    while True:
        try:
            op, args, kwargs = conn.recv()
        except EOFError:
            return
        try:
            result = getattr(service, op)(*args, **kwargs)
            conn.send(("ok", result))
        except Exception as exc:  # noqa: BLE001 - reraised client-side
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


def run_service_clients(
    service, size: int, fn: Callable[[ServiceClient], object],
    timeout: float = 600.0,
) -> list:
    """Fork ``size`` worker processes, each running ``fn(client)``.

    The service object stays in the parent (models are not re-loaded per
    worker); each worker drives it through a :class:`ServiceClient`.  One
    parent dispatcher thread per worker submits into the service, so the
    microbatcher sees genuinely concurrent cross-process traffic.  Returns
    the per-rank results of ``fn``; a worker exception is re-raised in the
    parent, wrapped with the rank id.
    """
    parent_conns, result_conns, procs = _fork_rank_workers(
        size, lambda rank, conn: fn(ServiceClient(rank, conn))
    )
    dispatchers = [
        threading.Thread(target=_client_dispatcher, args=(service, conn),
                         daemon=True)
        for conn in parent_conns
    ]
    for d in dispatchers:
        d.start()

    results, error = _collect_rank_results(result_conns, procs, timeout)
    for d in dispatchers:
        d.join(timeout=10)
    if error is not None:
        raise RuntimeError(error)
    return results
