"""Lossless delta/varint codec for the stage-2 sample allgather.

The stage-2 collective of the data-centric scheme (Fig. 4 / Sec. 3.2) ships
each rank's *lexsorted* unique-sample set: multi-word uint64 packed keys
(:mod:`repro.utils.bitstrings`) plus integer multiplicities.  Sorted unique
keys compress extremely well:

* **delta coding** — consecutive sorted keys differ by small gaps, so the
  stream stores ``key[0], key[1]-key[0], key[2]-key[1], ...`` as full-width
  multi-word differences (exact subtract-with-borrow, no precision loss);
* **LEB128 varints** — each K-word little-endian value is emitted as 7-bit
  groups, least significant first, with the high bit as the continuation
  flag; small gaps take one byte instead of ``8 * K``;
* **cross-iteration diffing** — the global unique set churns slowly between
  VMC steps, so a payload may be encoded against the previous iteration's
  global key set (the *baseline*): keys already in the baseline are sent as
  delta-varint *indices* into it, only genuinely new keys are sent in full.

Everything here is bit-exact: ``decode(encode(x)) == x`` for any sorted
uint64 key set, including adversarial gaps of 0 (duplicates), 1, and
``> 2**64`` (multi-word carries).  Both sides of a diff payload must agree
on the baseline; the payload embeds the baseline length as a cheap
consistency check and decoding raises on mismatch rather than returning
garbage.

Encoding and decoding are vectorized numpy passes (one loop over the ≤ 19
seven-bit groups of a 128-bit value, never over the batch).
"""
from __future__ import annotations

import numpy as np

from repro.utils.bitstrings import lexsort_keys, searchsorted_keys

__all__ = [
    "encode_uint_stream",
    "decode_uint_stream",
    "delta_encode_keys",
    "delta_decode_keys",
    "encode_counts",
    "decode_counts",
    "encode_sample_payload",
    "decode_sample_payload",
]

_PAYLOAD_VERSION = 1
_FLAG_DIFF = 1


# ----------------------------------------------------------- scalar varints
def _varint(value: int) -> bytes:
    v = int(value)
    if v < 0:
        raise ValueError(f"varints encode non-negative ints, got {value!r}")
    out = bytearray()
    while True:
        b = v & 0x7F
        v >>= 7
        if v:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def _read_varint(buf, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    try:
        while True:
            b = buf[pos]
            pos += 1
            value |= (b & 0x7F) << shift
            if not (b & 0x80):
                return value, pos
            shift += 7
    except IndexError:
        raise ValueError("truncated payload header") from None


def _section(data: bytes) -> bytes:
    return _varint(len(data)) + data


def _read_section(buf, pos: int) -> tuple[bytes, int]:
    length, pos = _read_varint(buf, pos)
    if pos + length > len(buf):
        raise ValueError("truncated payload section")
    return bytes(buf[pos : pos + length]), pos + length


# ----------------------------------------------------- multi-word arithmetic
def _sub_multiword(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact ``a - b`` on (U, K) uint64 little-endian values (word 0 minor)."""
    k = a.shape[1]
    out = np.empty_like(a)
    borrow = np.zeros(len(a), dtype=np.uint64)
    for w in range(k):
        d = a[:, w] - b[:, w]
        under1 = a[:, w] < b[:, w]
        d2 = d - borrow
        under2 = d < borrow
        out[:, w] = d2
        borrow = (under1 | under2).astype(np.uint64)
    return out


def _cumsum_multiword(deltas: np.ndarray) -> np.ndarray:
    """Exact prefix sums of (U, K) uint64 little-endian values.

    Per word: a wrapping ``np.add.accumulate`` plus carry propagation — each
    step adds < 2**64, so a step wraps iff the running sum drops below the
    step's addend; carries into the next word are the cumulative wrap count
    (plus at most one more wrap from adding the carries themselves).
    """
    u, k = deltas.shape
    out = np.empty_like(deltas)
    carries = np.zeros(u, dtype=np.int64)
    for w in range(k):
        col = deltas[:, w]
        cs = np.add.accumulate(col)
        step_wrap = cs < col
        cum_wraps = np.cumsum(step_wrap)
        res = cs + carries.astype(np.uint64)
        extra = res < cs
        out[:, w] = res
        carries = cum_wraps + extra
    return out


def _delta_words(values: np.ndarray) -> np.ndarray:
    """First row absolute, then exact consecutive differences."""
    out = np.array(values, dtype=np.uint64, copy=True)
    if len(out) > 1:
        out[1:] = _sub_multiword(values[1:], values[:-1])
    return out


# ------------------------------------------------------------ varint streams
def encode_uint_stream(words: np.ndarray) -> bytes:
    """LEB128-encode (U, K) uint64 little-endian values, one varint each."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim == 1:
        words = words[:, None]
    u, k = words.shape
    if u == 0:
        return b""
    n_groups = (64 * k + 6) // 7
    groups = np.zeros((u, n_groups), dtype=np.uint8)
    for g in range(n_groups):
        w, off = divmod(7 * g, 64)
        val = words[:, w] >> np.uint64(off)
        if off > 57 and w + 1 < k:
            val = val | (words[:, w + 1] << np.uint64(64 - off))
        groups[:, g] = (val & np.uint64(0x7F)).astype(np.uint8)
    nz = groups != 0
    highest = n_groups - 1 - np.argmax(nz[:, ::-1], axis=1)
    nbytes = np.where(nz.any(axis=1), highest + 1, 1).astype(np.int64)
    total = int(nbytes.sum())
    ends = np.cumsum(nbytes)
    starts = ends - nbytes
    gidx = np.arange(total, dtype=np.int64) - np.repeat(starts, nbytes)
    vidx = np.repeat(np.arange(u, dtype=np.int64), nbytes)
    out = groups[vidx, gidx]
    cont = np.ones(total, dtype=np.uint8)
    cont[ends - 1] = 0
    return (out | (cont << 7)).tobytes()


def decode_uint_stream(data: bytes, k: int,
                       expect: int | None = None) -> np.ndarray:
    """Inverse of :func:`encode_uint_stream`; returns (U, K) uint64."""
    raw = np.frombuffer(data, dtype=np.uint8)
    if raw.size == 0:
        if expect not in (None, 0):
            raise ValueError(f"expected {expect} values, stream is empty")
        return np.zeros((0, k), dtype=np.uint64)
    is_last = (raw & 0x80) == 0
    if not is_last[-1]:
        raise ValueError("truncated varint stream")
    u = int(is_last.sum())
    if expect is not None and u != expect:
        raise ValueError(f"expected {expect} values, stream holds {u}")
    ends = np.nonzero(is_last)[0]
    starts = np.empty(u, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    vid = np.zeros(raw.size, dtype=np.int64)
    vid[1:] = np.cumsum(is_last[:-1])
    gidx = np.arange(raw.size, dtype=np.int64) - starts[vid]
    payload = (raw & np.uint8(0x7F)).astype(np.uint64)
    words = np.zeros((u, k), dtype=np.uint64)
    for g in range(int(gidx.max()) + 1):
        sel = gidx == g
        p = payload[sel]
        v = vid[sel]
        w, off = divmod(7 * g, 64)
        if w >= k:
            if np.any(p):
                raise ValueError("varint value overflows the key width")
            continue
        words[v, w] |= p << np.uint64(off)
        if off > 57:
            spill = p >> np.uint64(64 - off)
            if w + 1 < k:
                words[v, w + 1] |= spill
            elif np.any(spill):
                raise ValueError("varint value overflows the key width")
    return words


# ------------------------------------------------------------- key streams
def delta_encode_keys(keys: np.ndarray) -> bytes:
    """Delta + varint encode lexsorted (U, K) uint64 keys."""
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    if keys.ndim == 1:
        keys = keys[:, None]
    return encode_uint_stream(_delta_words(keys))


def delta_decode_keys(data: bytes, k: int,
                      expect: int | None = None) -> np.ndarray:
    """Inverse of :func:`delta_encode_keys`."""
    return _cumsum_multiword(decode_uint_stream(data, k, expect=expect))


def encode_counts(counts: np.ndarray) -> bytes:
    """Varint-encode integer multiplicities (any non-negative int dtype)."""
    counts = np.asarray(counts)
    if counts.size and int(counts.min()) < 0:
        raise ValueError("sample counts must be non-negative")
    return encode_uint_stream(counts.astype(np.uint64).reshape(-1, 1))


def decode_counts(data: bytes, expect: int | None = None) -> np.ndarray:
    """Inverse of :func:`encode_counts`; returns int64 multiplicities."""
    return decode_uint_stream(data, 1, expect=expect).ravel().astype(np.int64)


# ------------------------------------------------------------ full payloads
def encode_sample_payload(keys: np.ndarray, counts: np.ndarray,
                          baseline: np.ndarray | None = None) -> bytes:
    """Encode one rank's sorted (keys, counts) stage-2 contribution.

    Wire format (all integers LEB128 varints)::

        version | flags | U | K
        [diff]  len(baseline) | section(delta-varint baseline indices of hits)
                              | section(delta-varint new keys)
        [full]  section(delta-varint keys)
        section(varint counts)           # aligned with the sorted key order

    ``flags`` bit 0 marks a cross-iteration diff against ``baseline`` (the
    previous iteration's *global* lexsorted unique set, identical on every
    rank); hit indices are strictly increasing so they delta-code like keys.
    The encoder emits whichever of the two encodings is smaller — on dense
    key spaces the full delta stream is already ~1 byte/key and the diff's
    header would inflate it — so a baseline never makes the payload bigger.
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    if keys.ndim == 1:
        keys = keys[:, None]
    counts = np.asarray(counts)
    u, k = keys.shape
    if counts.shape != (u,):
        raise ValueError(
            f"counts shape {counts.shape} does not match {u} keys"
        )
    header = [_varint(_PAYLOAD_VERSION)]
    tail = _section(encode_counts(counts))
    full = b"".join(
        header
        + [_varint(0), _varint(u), _varint(k),
           _section(delta_encode_keys(keys)), tail]
    )
    if baseline is None or len(baseline) == 0:
        return full
    base = np.ascontiguousarray(baseline, dtype=np.uint64)
    if base.ndim == 1:
        base = base[:, None]
    if base.shape[1] != k:
        raise ValueError(
            f"baseline key width {base.shape[1]} != payload width {k}"
        )
    if u:
        pos = searchsorted_keys(base, keys)
    else:
        pos = np.zeros(0, dtype=np.int64)
    hit = pos >= 0
    idx = pos[hit].astype(np.uint64)[:, None]
    diff = b"".join(
        header
        + [_varint(_FLAG_DIFF), _varint(u), _varint(k),
           _varint(len(base)),
           _section(encode_uint_stream(_delta_words(idx))),
           _section(delta_encode_keys(keys[~hit])), tail]
    )
    return diff if len(diff) < len(full) else full


def decode_sample_payload(blob: bytes,
                          baseline: np.ndarray | None = None
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_sample_payload`; returns (keys, counts).

    ``keys`` is the sender's sorted (U, K) uint64 set, ``counts`` the aligned
    int64 multiplicities.  Raises :class:`ValueError` on version, width, or
    baseline mismatches instead of reconstructing a wrong set.
    """
    buf = memoryview(bytes(blob))
    version, pos = _read_varint(buf, 0)
    if version != _PAYLOAD_VERSION:
        raise ValueError(f"unknown payload version {version}")
    flags, pos = _read_varint(buf, pos)
    u, pos = _read_varint(buf, pos)
    k, pos = _read_varint(buf, pos)
    if k < 1:
        raise ValueError(f"invalid key width {k}")
    if flags & _FLAG_DIFF:
        if baseline is None or len(baseline) == 0:
            raise ValueError(
                "payload is diff-encoded but no baseline was provided"
            )
        base = np.ascontiguousarray(baseline, dtype=np.uint64)
        if base.ndim == 1:
            base = base[:, None]
        if base.shape[1] != k:
            raise ValueError(
                f"baseline key width {base.shape[1]} != payload width {k}"
            )
        blen, pos = _read_varint(buf, pos)
        if blen != len(base):
            raise ValueError(
                f"baseline length mismatch: payload encoded against "
                f"{blen} keys, decoder holds {len(base)}"
            )
        idx_stream, pos = _read_section(buf, pos)
        idx = _cumsum_multiword(decode_uint_stream(idx_stream, 1)).ravel()
        if idx.size and int(idx[-1]) >= len(base):
            raise ValueError("baseline index out of range")
        new_stream, pos = _read_section(buf, pos)
        new = delta_decode_keys(new_stream, k)
        hit_keys = base[idx.astype(np.int64)]
        keys = np.concatenate([hit_keys, new], axis=0)
        keys = keys[lexsort_keys(keys)]
    else:
        stream, pos = _read_section(buf, pos)
        keys = delta_decode_keys(stream, k)
    counts_stream, pos = _read_section(buf, pos)
    counts = decode_counts(counts_stream)
    if len(keys) != u or len(counts) != u:
        raise ValueError(
            f"corrupt payload: header says {u} keys, decoded "
            f"{len(keys)} keys / {len(counts)} counts"
        )
    return keys, counts
