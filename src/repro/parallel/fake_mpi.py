"""An in-process MPI communicator with mpi4py-style semantics + byte accounting.

The paper's data-centric scheme (Fig. 4) needs exactly three collectives:
``Allgather`` (unique samples + weights, stage 2) and ``Allreduce`` (energy
average, stage 4; gradients/parameters, stage 6).  ``run_spmd`` executes N_p
rank functions on N_p *threads* synchronized by barriers, which gives real
MPI collective semantics in one process; because the hot kernels (vectorized
local energy, matmuls) release the GIL, thread ranks also deliver genuine
wall-clock parallelism on multicore hosts — that is what the strong/weak
scaling benches measure.

Every collective records the bytes it would move on a real network using the
paper's accounting convention (payload bytes x N_p), so the Sec. 3.2
communication-volume figures are measured, not estimated.  The API mirrors
mpi4py closely enough that porting the drivers to real MPI is an import swap.
"""
from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["CommStats", "FakeComm", "run_spmd"]


@dataclass
class CommStats:
    """Byte counters per collective (paper convention: payload x N_p)."""

    allgather_bytes: int = 0
    allreduce_bytes: int = 0
    bcast_bytes: int = 0
    calls: dict = field(
        default_factory=lambda: {"allgather": 0, "allreduce": 0, "bcast": 0}
    )

    @property
    def total_bytes(self) -> int:
        return self.allgather_bytes + self.allreduce_bytes + self.bcast_bytes

    def add(self, op: str, nbytes: int) -> None:
        setattr(self, f"{op}_bytes", getattr(self, f"{op}_bytes") + nbytes)
        self.calls[op] += 1


class _World:
    def __init__(self, size: int):
        self.size = size
        self.stats = CommStats()
        self.lock = threading.Lock()
        self.barrier = threading.Barrier(size)
        self.slots: dict[tuple, list] = {}
        self.errors: list[BaseException] = []


class FakeComm:
    """Per-rank communicator handle (mpi4py-like surface).

    All ranks must issue collectives in the same order — the MPI contract.
    """

    def __init__(self, world: _World, rank: int):
        self._world = world
        self._rank = rank
        self._seq = 0

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._world.size

    @property
    def stats(self) -> CommStats:
        return self._world.stats

    # ------------------------------------------------------------- internals
    def _exchange(self, op: str, payload) -> list:
        key = (op, self._seq)
        self._seq += 1
        w = self._world
        with w.lock:
            slot = w.slots.setdefault(key, [None] * w.size)
        slot[self._rank] = payload
        w.barrier.wait()
        result = list(slot)
        w.barrier.wait()  # everyone has read; safe to recycle
        if self._rank == 0:
            with w.lock:
                w.slots.pop(key, None)
        return result

    # ------------------------------------------------------------ collectives
    def barrier(self) -> None:
        self._world.barrier.wait()

    def allgather(self, payload) -> list:
        """Gather one object per rank onto all ranks; returns the rank-ordered list."""
        result = self._exchange("allgather", payload)
        if self._rank == 0:
            with self._world.lock:
                self._world.stats.add(
                    "allgather", sum(_payload_bytes(p) for p in result) * self._world.size
                )
        return result

    def allreduce_sum(self, array: np.ndarray) -> np.ndarray:
        """Sum-reduce a numpy array across ranks; result identical on every rank."""
        array = np.asarray(array)
        result = self._exchange("allreduce", array)
        if self._rank == 0:
            with self._world.lock:
                self._world.stats.add("allreduce", array.nbytes * self._world.size)
        return np.sum(result, axis=0)

    def bcast(self, array, root: int = 0):
        payload = array if self._rank == root else None
        result = self._exchange("bcast", payload)
        if self._rank == 0:
            with self._world.lock:
                self._world.stats.add("bcast", _payload_bytes(result[root]) * self._world.size)
        return result[root]


def _payload_bytes(payload) -> int:
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (tuple, list)):
        return sum(_payload_bytes(p) for p in payload)
    return np.asarray(payload).nbytes


def run_spmd(size: int, fn: Callable[[FakeComm], object]) -> tuple[list, CommStats]:
    """Run ``fn(comm)`` as ``size`` thread ranks; returns (rank results, stats)."""
    world = _World(size)
    results: list = [None] * size

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(FakeComm(world, rank))
        except BaseException as exc:  # surface rank failures to the caller
            world.errors.append(exc)
            world.barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,)) for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if world.errors:
        raise world.errors[0]
    return results, world.stats
