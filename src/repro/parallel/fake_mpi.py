"""An in-process MPI communicator with mpi4py-style semantics + byte accounting.

The paper's data-centric scheme (Fig. 4) needs exactly three collectives:
``Allgather`` (unique samples + weights, stage 2) and ``Allreduce`` (energy
average, stage 4; gradients/parameters, stage 6).  ``run_spmd`` executes N_p
rank functions on N_p *threads* synchronized by barriers, which gives real
MPI collective semantics in one process; because the hot kernels (vectorized
local energy, matmuls) release the GIL, thread ranks also deliver genuine
wall-clock parallelism on multicore hosts — that is what the strong/weak
scaling benches measure.

Every collective records the bytes it would move on a real network using the
paper's accounting convention (payload bytes x N_p), split two ways:

* **logical bytes** — the uncompressed, natural-width payload (what the
  Sec. 3.2 closed-form model predicts);
* **wire bytes** — what actually crosses the transport after the typed /
  compressed path (:mod:`repro.parallel.codec`); equal to logical for raw
  collectives.

The typed collectives — :meth:`FakeComm.allgather_ndarray` (thread ranks
share array references, zero copies), :meth:`FakeComm.allgather_blob`
(pre-encoded bytes with a caller-declared logical size) and
:meth:`FakeComm.allreduce_ndarray` — are the interface the process backend
implements over ``multiprocessing.shared_memory`` and a future cluster
backend would implement over sockets/MPI.  The API mirrors mpi4py closely
enough that porting the drivers to real MPI is an import swap.
"""
from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "CommAbortError",
    "CommStats",
    "FakeComm",
    "dead_rank_message",
    "poison_survivors",
    "run_spmd",
]


class CommAbortError(RuntimeError):
    """A collective was poisoned because a rank died (or desynchronized).

    Raised with the same message on *every* survivor, naming the dead rank —
    the shared crash semantics of :class:`~repro.parallel.multiprocess.
    ProcessComm` and :class:`~repro.parallel.cluster.ClusterComm`.  Subclasses
    ``RuntimeError`` so pre-existing ``except RuntimeError`` callers keep
    working.
    """

    def __init__(self, message: str, dead_rank: int | None = None):
        super().__init__(message)
        self.dead_rank = dead_rank


def dead_rank_message(dead_ranks, reason: str) -> str:
    """The canonical poison message: which rank(s) died, and why."""
    ranks = sorted(set(int(r) for r in dead_ranks))
    label = f"rank {ranks[0]}" if len(ranks) == 1 else (
        "ranks " + ", ".join(str(r) for r in ranks)
    )
    return f"{label} left the collective: {reason}"


def poison_survivors(live_ranks, send_abort, message: str) -> None:
    """Deliver an abort poison to every live rank, swallowing send failures.

    ``send_abort(rank, message)`` is the transport-specific delivery (a pipe
    send for the process coordinator, an abort control frame for the
    rendezvous coordinator); a rank whose channel is already gone is simply
    skipped — it is dead or dying anyway.
    """
    for rank in live_ranks:
        try:
            send_abort(rank, message)
        except (OSError, BrokenPipeError, EOFError):
            pass


@dataclass
class CommStats:
    """Byte counters per collective (paper convention: payload x N_p).

    ``*_bytes`` counters are *logical* volume (uncompressed, natural width —
    backward compatible with the pre-codec accounting); ``*_wire_bytes``
    are what actually moved.  ``channels`` breaks both down by the logical
    channel name a collective was tagged with (e.g. ``stage2_samples``).
    """

    allgather_bytes: int = 0
    allreduce_bytes: int = 0
    bcast_bytes: int = 0
    allgather_wire_bytes: int = 0
    allreduce_wire_bytes: int = 0
    bcast_wire_bytes: int = 0
    calls: dict = field(
        default_factory=lambda: {"allgather": 0, "allreduce": 0, "bcast": 0}
    )
    channels: dict = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.allgather_bytes + self.allreduce_bytes + self.bcast_bytes

    @property
    def total_wire_bytes(self) -> int:
        return (
            self.allgather_wire_bytes
            + self.allreduce_wire_bytes
            + self.bcast_wire_bytes
        )

    def add(self, op: str, nbytes: int, wire: int | None = None,
            channel: str | None = None) -> None:
        wire = nbytes if wire is None else wire
        setattr(self, f"{op}_bytes", getattr(self, f"{op}_bytes") + nbytes)
        setattr(
            self, f"{op}_wire_bytes", getattr(self, f"{op}_wire_bytes") + wire
        )
        self.calls[op] += 1
        if channel is not None:
            rec = self.channels.setdefault(
                channel, {"logical": 0, "wire": 0, "calls": 0}
            )
            rec["logical"] += nbytes
            rec["wire"] += wire
            rec["calls"] += 1


class _World:
    def __init__(self, size: int):
        self.size = size
        self.stats = CommStats()
        self.lock = threading.Lock()
        self.barrier = threading.Barrier(size)
        self.slots: dict[tuple, list] = {}
        self.errors: list[BaseException] = []


class FakeComm:
    """Per-rank communicator handle (mpi4py-like surface).

    All ranks must issue collectives in the same order — the MPI contract.
    """

    def __init__(self, world: _World, rank: int):
        self._world = world
        self._rank = rank
        self._seq = 0

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._world.size

    @property
    def stats(self) -> CommStats:
        return self._world.stats

    # ------------------------------------------------------------- internals
    def _exchange(self, op: str, payload) -> list:
        key = (op, self._seq)
        self._seq += 1
        w = self._world
        with w.lock:
            slot = w.slots.setdefault(key, [None] * w.size)
        slot[self._rank] = payload
        w.barrier.wait()
        result = list(slot)
        w.barrier.wait()  # everyone has read; safe to recycle
        if self._rank == 0:
            with w.lock:
                w.slots.pop(key, None)
        return result

    def _account(self, op: str, nbytes: int, wire: int | None = None,
                 channel: str | None = None) -> None:
        if self._rank == 0:
            with self._world.lock:
                self._world.stats.add(op, nbytes, wire=wire, channel=channel)

    # ------------------------------------------------------------ collectives
    def barrier(self) -> None:
        self._world.barrier.wait()

    def allgather(self, payload) -> list:
        """Gather one object per rank onto all ranks; returns the rank-ordered list."""
        result = self._exchange("allgather", payload)
        self._account(
            "allgather", sum(_payload_bytes(p) for p in result) * self._world.size
        )
        return result

    def allgather_ndarray(self, array: np.ndarray,
                          channel: str | None = None) -> list[np.ndarray]:
        """Typed allgather of one ndarray per rank (zero-copy between threads).

        Thread ranks share references to each other's arrays — no pickling,
        no copies; callers must treat the returned arrays as read-only.
        """
        array = np.asarray(array)
        result = self._exchange("allgather", array)
        self._account(
            "allgather", sum(a.nbytes for a in result) * self._world.size,
            channel=channel,
        )
        return result

    def allgather_blob(self, data: bytes, logical_bytes: int | None = None,
                       channel: str | None = None) -> list[bytes]:
        """Allgather pre-encoded bytes; accounts logical vs. wire separately.

        ``logical_bytes`` declares the uncompressed payload size the blob
        stands for (defaults to ``len(data)``), so compressed collectives
        report an honest logical/wire split.
        """
        payload = (bytes(data),
                   len(data) if logical_bytes is None else int(logical_bytes))
        result = self._exchange("allgather", payload)
        size = self._world.size
        self._account(
            "allgather",
            sum(logical for _, logical in result) * size,
            wire=sum(len(blob) for blob, _ in result) * size,
            channel=channel,
        )
        return [blob for blob, _ in result]

    def allreduce_sum(self, array: np.ndarray) -> np.ndarray:
        """Sum-reduce a numpy array across ranks; result identical on every rank."""
        return self.allreduce_ndarray(array)

    def allreduce_ndarray(self, array: np.ndarray,
                          channel: str | None = None) -> np.ndarray:
        """Typed sum-allreduce; rank-ordered reduction, deterministic result.

        Identical arithmetic to the historical ``allreduce_sum`` (one
        ``np.sum`` over the rank-ordered payload list), so enabling the typed
        path never perturbs trajectories.
        """
        array = np.asarray(array)
        result = self._exchange("allreduce", array)
        self._account(
            "allreduce", array.nbytes * self._world.size, channel=channel
        )
        return np.sum(result, axis=0)

    def bcast(self, array, root: int = 0):
        payload = array if self._rank == root else None
        result = self._exchange("bcast", payload)
        self._account(
            "bcast", _payload_bytes(result[root]) * self._world.size
        )
        return result[root]


def _payload_bytes(payload) -> int:
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (tuple, list)):
        return sum(_payload_bytes(p) for p in payload)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    return np.asarray(payload).nbytes


def run_spmd(size: int, fn: Callable[[FakeComm], object]) -> tuple[list, CommStats]:
    """Run ``fn(comm)`` as ``size`` thread ranks; returns (rank results, stats)."""
    world = _World(size)
    results: list = [None] * size

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(FakeComm(world, rank))
        except BaseException as exc:  # surface rank failures to the caller
            world.errors.append(exc)
            world.barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,)) for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if world.errors:
        raise world.errors[0]
    return results, world.stats
