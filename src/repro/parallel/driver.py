"""Data-centric parallel VMC (Fig. 4, Sec. 3.2) — now an engine configuration.

The parallel iteration used to live here as a fork of ``core.vmc.VMC`` with
its own gradient/optimizer/clip code.  It is now a *backend* of the unified
execution engine: :class:`~repro.core.engine.ThreadBackend` schedules the
shared stage functions (parallel BAS -> allgathered amplitude table ->
weight-balanced local-energy shard -> Eq. 7 backward -> reduced-gradient
update) over FakeMPI thread ranks, and the engine applies the single
parameter update.  See :mod:`repro.core.engine` for the stage contract and
DESIGN.md ("Execution engine") for the backend matrix.

:class:`DataParallelVMC` remains as the thin compatibility wrapper used by
the scaling benches and examples: a :class:`~repro.core.vmc.VMC` pre-wired
with a :class:`ThreadBackend`.  ``ParallelVMCStats`` is the unified
:class:`~repro.core.engine.VMCStats` — parallel histories now carry variance
and the residual imaginary part, so ``best_energy`` applies to them too.
"""
from __future__ import annotations

from repro.core.engine import ThreadBackend, VMCStats as ParallelVMCStats
from repro.core.vmc import VMC, VMCConfig
from repro.core.wavefunction import NNQSWavefunction
from repro.hamiltonian.compressed import CompressedHamiltonian
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian

__all__ = ["ParallelVMCStats", "DataParallelVMC"]


class DataParallelVMC(VMC):
    """VMC over N_p data-parallel thread ranks (engine + ThreadBackend)."""

    def __init__(self, wf: NNQSWavefunction,
                 hamiltonian: QubitHamiltonian | CompressedHamiltonian,
                 n_ranks: int, config: VMCConfig | None = None,
                 nu_star_per_rank: int = 64,
                 eloc_partition: str = "balanced"):
        super().__init__(
            wf, hamiltonian, config,
            backend=ThreadBackend(
                n_ranks=n_ranks,
                nu_star_per_rank=nu_star_per_rank,
                eloc_partition=eloc_partition,
            ),
        )
        self.n_ranks = n_ranks
        # N_u^* = nu_star_per_rank * N_p, as in the scaling experiments
        # (the paper uses N_u^* = 16384 n for n GPUs).
        self.nu_star = nu_star_per_rank * n_ranks

    @property
    def master(self) -> NNQSWavefunction:
        return self.wf

    @property
    def replicas(self) -> list:
        return self.backend.replicas or []
