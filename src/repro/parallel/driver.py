"""The data-centric parallel VMC iteration (Fig. 4, Sec. 3.2).

Each rank owns a batch of unique samples for the *whole* iteration (sampling,
local energy, backward) — data stays put, only three small collectives move:

  stage 1  parallel BAS (Fig. 5): identical seeded prefix sweep on every rank
           up to the dynamic split step k, then each rank continues its
           weight-balanced share of the layer-k nodes to completion;
  stage 2  Allgather of (packed unique samples, weights, log amplitudes);
  stage 3  each rank evaluates local energies for its 1/N_p chunk of the
           global unique set against the global amplitude table;
  stage 4  Allreduce of the weighted energy sum;
  stage 5  backward pass on the rank's chunk (per-rank model replica);
  stage 6  Allreduce of gradients; the optimizer step runs on rank 0 and the
           fresh parameters are broadcast.

Ranks are FakeMPI threads (numpy kernels release the GIL, so stages 1/3/5
genuinely overlap on multicore hosts); the byte counters of every collective
feed the communication-volume benches.
"""
from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.local_energy import (
    AmplitudeTable,
    extend_amplitude_table,
    local_energy_vectorized,
)
from repro.core.sampler import SampleBatch, batch_autoregressive_sample, bas_prefix_sweep
from repro.core.vmc import VMCConfig
from repro.core.wavefunction import NNQSWavefunction
from repro.autograd import Tensor
from repro.hamiltonian.compressed import CompressedHamiltonian, compress_hamiltonian
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian
from repro.optim import AdamW, NoamSchedule
from repro.parallel.fake_mpi import CommStats, FakeComm, run_spmd
from repro.parallel.partition import split_tree_state
from repro.utils.bitstrings import lexsort_keys, pack_bits, unpack_bits

__all__ = ["ParallelVMCStats", "DataParallelVMC"]


@dataclass
class ParallelVMCStats:
    iteration: int
    energy: float
    n_unique: int
    n_samples: int
    wall_time: float
    time_sampling: float      # max over ranks (parallel wall contribution)
    time_local_energy: float
    time_gradient: float
    comm_bytes: int
    per_rank_unique: list[int] = field(default_factory=list)


class DataParallelVMC:
    """VMC over N_p data-parallel ranks (in-process, thread-backed)."""

    def __init__(self, wf: NNQSWavefunction,
                 hamiltonian: QubitHamiltonian | CompressedHamiltonian,
                 n_ranks: int, config: VMCConfig | None = None,
                 nu_star_per_rank: int = 64):
        self.master = wf
        self.comp = (
            hamiltonian
            if isinstance(hamiltonian, CompressedHamiltonian)
            else compress_hamiltonian(hamiltonian)
        )
        self.n_ranks = n_ranks
        self.config = config or VMCConfig()
        # N_u^* = nu_star_per_rank * N_p, as in the scaling experiments
        # (the paper uses N_u^* = 16384 n for n GPUs).
        self.nu_star = nu_star_per_rank * n_ranks
        self.replicas = [copy.deepcopy(wf) for _ in range(n_ranks)]
        self.optimizer = AdamW(wf, lr=0.0, weight_decay=self.config.weight_decay)
        d_model = getattr(wf.amplitude, "d_model", 16)
        self.schedule = NoamSchedule(
            self.optimizer, d_model=d_model, warmup=self.config.warmup,
            scale=self.config.lr_scale,
        )
        self.iteration = 0
        self.history: list[ParallelVMCStats] = []
        self._base_seed = self.config.seed

    def _n_samples(self) -> int:
        ns = self.config.n_samples
        return ns(self.iteration) if callable(ns) else ns

    # ------------------------------------------------------------------ step
    def step(self) -> ParallelVMCStats:
        it = self.iteration
        n_samples = self._n_samples()
        comp = self.comp
        n_ranks = self.n_ranks
        master_flat = self.master.get_flat_params()
        for rep in self.replicas:
            rep.set_flat_params(master_flat)
        eloc_mode = self.config.eloc_mode

        def rank_fn(comm: FakeComm):
            rank = comm.Get_rank()
            wf = self.replicas[rank]
            times = {}

            # ---- stage 1: parallel BAS --------------------------------
            t0 = time.perf_counter()
            shared_rng = np.random.default_rng((self._base_seed, it, 0xBA5))
            state = bas_prefix_sweep(wf, n_samples, shared_rng, self.nu_star)
            my_state = split_tree_state(state, n_ranks)[rank]
            cont_rng = np.random.default_rng((self._base_seed, it, rank + 1))
            local = batch_autoregressive_sample(wf, 0, cont_rng, start=my_state)
            times["sampling"] = time.perf_counter() - t0

            # Local amplitudes for the allgathered wf_lut.
            local_keys = pack_bits(local.bits)
            local_amps = wf.log_amplitudes(local.bits)

            # ---- stage 2: Allgather samples/weights/amplitudes --------
            gathered = comm.allgather(
                (local_keys, local.weights.astype(np.int64), local_amps)
            )
            keys = np.concatenate([g[0] for g in gathered], axis=0)
            weights = np.concatenate([g[1] for g in gathered])
            amps = np.concatenate([g[2] for g in gathered])
            order = lexsort_keys(keys)
            table = AmplitudeTable(keys=keys[order], log_amps=amps[order])

            # ---- stage 3: local energy for this rank's chunk ----------
            t0 = time.perf_counter()
            n_u = len(weights)
            chunk = slice(
                rank * n_u // n_ranks, (rank + 1) * n_u // n_ranks
            )
            chunk_bits = unpack_bits(keys[order][chunk], comp.n_qubits)
            chunk_batch = SampleBatch(
                bits=chunk_bits, weights=weights[order][chunk]
            )
            tbl = table
            if eloc_mode == "exact":
                tbl = extend_amplitude_table(wf, comp, chunk_batch, table)
            eloc = local_energy_vectorized(comp, chunk_batch, tbl)
            times["local_energy"] = time.perf_counter() - t0

            # ---- stage 4: Allreduce weighted energy -------------------
            w_chunk = chunk_batch.weights.astype(np.float64)
            local_sums = np.array(
                [np.sum(w_chunk * eloc.real), np.sum(w_chunk * eloc.imag), w_chunk.sum()]
            )
            sums = comm.allreduce_sum(local_sums)
            e_mean = sums[0] / sums[2]

            # ---- stage 5: backward on the chunk -----------------------
            t0 = time.perf_counter()
            wf.zero_grad()
            w_norm = w_chunk / sums[2]
            coeff_amp = w_norm * (eloc.real - e_mean)
            coeff_phase = 2.0 * w_norm * (eloc.imag - sums[1] / sums[2])
            logp = wf.log_prob(chunk_batch.bits)
            phi = wf.phase_of(chunk_batch.bits)
            loss = (Tensor(coeff_amp) * logp).sum() + (Tensor(coeff_phase) * phi).sum()
            loss.backward()
            grad = wf.get_flat_grads()
            times["gradient"] = time.perf_counter() - t0

            # ---- stage 6: Allreduce gradients, update, broadcast ------
            total_grad = comm.allreduce_sum(grad)
            if rank == 0:
                self.master.set_flat_grads(total_grad)
                if self.config.grad_clip is not None:
                    norm = np.linalg.norm(total_grad)
                    if norm > self.config.grad_clip:
                        self.master.set_flat_grads(
                            total_grad * (self.config.grad_clip / norm)
                        )
                self.schedule.step()
                self.optimizer.step()
                new_params = self.master.get_flat_params()
            else:
                new_params = None
            new_params = comm.bcast(new_params, root=0)
            wf.set_flat_params(new_params)

            return {
                "energy": e_mean,
                "n_unique": n_u,
                "n_local_unique": local.n_unique,
                "times": times,
            }

        t_wall = time.perf_counter()
        results, stats = run_spmd(n_ranks, rank_fn)
        wall = time.perf_counter() - t_wall

        self.iteration += 1
        r0 = results[0]
        out = ParallelVMCStats(
            iteration=self.iteration,
            energy=float(r0["energy"]),
            n_unique=int(r0["n_unique"]),
            n_samples=n_samples,
            wall_time=wall,
            time_sampling=max(r["times"]["sampling"] for r in results),
            time_local_energy=max(r["times"]["local_energy"] for r in results),
            time_gradient=max(r["times"]["gradient"] for r in results),
            comm_bytes=stats.total_bytes,
            per_rank_unique=[r["n_local_unique"] for r in results],
        )
        self.history.append(out)
        return out

    def run(self, n_iterations: int, log_every: int = 0) -> list[ParallelVMCStats]:
        for _ in range(n_iterations):
            s = self.step()
            if log_every and s.iteration % log_every == 0:
                print(
                    f"iter {s.iteration:4d}  E = {s.energy:+.6f}  N_u = {s.n_unique}  "
                    f"wall = {s.wall_time:.2f}s  comm = {s.comm_bytes / 2**20:.1f} MB"
                )
        return self.history
