"""Strong/weak scaling harness (Figs. 11 and 12).

The paper measures time-per-iteration of the three profiled stages (sampling,
local energy, backpropagation) on 4..64 GPUs for benzene/6-31G (120 qubits).
Our substitution (DESIGN.md): thread-rank measurements on a molecule that
fits this host, reported next to an analytic extrapolation calibrated from
the measured single-rank stage times plus the byte-accurate communication
model.  The *shape* — parallel efficiency decreasing gently with rank count,
sampling the least scalable stage because of the shared prefix sweep — is the
reproduced result.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import ProcessBackend, ThreadBackend
from repro.core.vmc import VMC, VMCConfig
from repro.core.wavefunction import NNQSWavefunction
from repro.hamiltonian.compressed import CompressedHamiltonian
from repro.parallel.comm_model import CommVolumeModel

__all__ = ["ScalingPoint", "measure_scaling", "model_scaling", "parallel_efficiency"]


@dataclass
class ScalingPoint:
    n_ranks: int
    n_samples: int
    time_per_iter: float
    time_sampling: float
    time_local_energy: float
    time_gradient: float
    n_unique: int
    comm_bytes: int
    comm_bytes_wire: int = 0


def measure_scaling(
    wf_factory,
    comp: CompressedHamiltonian,
    rank_counts: list[int],
    n_samples_for: callable,
    n_iters: int = 3,
    warmup_iters: int = 1,
    config: VMCConfig | None = None,
    nu_star_per_rank: int = 64,
    eloc_partition: str = "balanced",
    backend: str = "threads",
    comm_codec: bool = True,
    comm_shm: bool = True,
) -> list[ScalingPoint]:
    """Measure per-iteration stage times for each rank count.

    ``wf_factory()`` must return a *fresh identically-seeded* wavefunction so
    every rank count optimizes the same model; ``n_samples_for(n_ranks)``
    fixes the workload (constant for strong scaling, proportional for weak).
    Iterations run on the unified engine's :class:`ThreadBackend` (default),
    :class:`ProcessBackend` (``backend="process"``) or the SPMD cluster
    transport over localhost TCP (``backend="cluster"``: one full driver per
    rank in a thread, meeting inside the socket collectives — rank 0's stats
    speak for the world since SPMD trajectories are identical);
    ``eloc_partition`` selects the Sec. 3.3 weight-balanced chunking
    (default) or the naive contiguous split for comparison; ``comm_codec`` /
    ``comm_shm`` toggle the typed/compressed comm layer for before/after
    bench comparisons.
    """
    if backend not in ("threads", "process", "cluster"):
        raise ValueError(
            f"measure_scaling backend must be 'threads', 'process' or "
            f"'cluster', got {backend!r}"
        )
    points = []
    for n_ranks in rank_counts:
        cfg = config or VMCConfig(eloc_mode="sample_aware")
        cfg.n_samples = n_samples_for(n_ranks)
        if backend == "cluster":
            stats = _cluster_iteration_stats(
                wf_factory, comp, cfg, n_ranks,
                nu_star_per_rank=nu_star_per_rank,
                eloc_partition=eloc_partition, comm_codec=comm_codec,
                comm_shm=comm_shm, n_iters=n_iters,
                warmup_iters=warmup_iters,
            )
        else:
            wf: NNQSWavefunction = wf_factory()
            backend_cls = (ThreadBackend if backend == "threads"
                           else ProcessBackend)
            driver = VMC(
                wf, comp, cfg,
                backend=backend_cls(
                    n_ranks=n_ranks, nu_star_per_rank=nu_star_per_rank,
                    eloc_partition=eloc_partition,
                    comm_codec=comm_codec, comm_shm=comm_shm,
                ),
            )
            for _ in range(warmup_iters):
                driver.step()
            stats = [driver.step() for _ in range(n_iters)]
        points.append(
            ScalingPoint(
                n_ranks=n_ranks,
                n_samples=cfg.n_samples,
                time_per_iter=float(np.median([s.wall_time for s in stats])),
                time_sampling=float(np.median([s.time_sampling for s in stats])),
                time_local_energy=float(np.median([s.time_local_energy for s in stats])),
                time_gradient=float(np.median([s.time_gradient for s in stats])),
                n_unique=stats[-1].n_unique,
                comm_bytes=stats[-1].comm_bytes,
                comm_bytes_wire=(stats[-1].comm_bytes_wire
                                 or stats[-1].comm_bytes),
            )
        )
    return points


def _cluster_iteration_stats(wf_factory, comp, cfg, n_ranks, *,
                             nu_star_per_rank, eloc_partition, comm_codec,
                             comm_shm, n_iters, warmup_iters):
    """Run ``n_ranks`` SPMD cluster ranks as localhost threads and return
    rank 0's per-iteration stats.

    Each thread plays one host: it rendezvouses with an in-process
    coordinator, builds the TCP mesh, and drives a *full* VMC — exactly the
    multi-host deployment, minus the physical network.  SPMD determinism
    makes every rank's trajectory identical, so rank 0 speaks for the world.
    """
    import threading

    from repro.parallel.cluster import ClusterBackend, ClusterComm
    from repro.parallel.rendezvous import RendezvousCoordinator

    coord = RendezvousCoordinator(world_size=n_ranks)
    host, port = coord.start()
    addr = f"{host}:{port}"
    per_rank: list = [None] * n_ranks
    failures: list = []

    def run_rank(rank: int) -> None:
        comm = None
        try:
            comm = ClusterComm(n_ranks, addr, rank=rank)
            driver = VMC(
                wf_factory(), comp, cfg,
                backend=ClusterBackend(
                    n_ranks=n_ranks, nu_star_per_rank=nu_star_per_rank,
                    eloc_partition=eloc_partition, comm_codec=comm_codec,
                    comm_shm=comm_shm, comm=comm,
                ),
            )
            for _ in range(warmup_iters):
                driver.step()
            per_rank[rank] = [driver.step() for _ in range(n_iters)]
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            failures.append((rank, exc))
        finally:
            if comm is not None:
                comm.close()

    threads = [
        threading.Thread(target=run_rank, args=(r,), daemon=True)
        for r in range(n_ranks)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        coord.stop()
    if failures:
        rank, exc = failures[0]
        raise RuntimeError(f"cluster rank {rank} failed: {exc!r}") from exc
    return per_rank[0]


def parallel_efficiency(points: list[ScalingPoint], mode: str = "strong") -> list[float]:
    """Efficiency relative to the first point (the paper's green curves)."""
    base = points[0]
    out = []
    for p in points:
        if mode == "strong":
            ideal = base.time_per_iter * base.n_ranks / p.n_ranks
        else:  # weak scaling: constant time is ideal
            ideal = base.time_per_iter
        out.append(ideal / p.time_per_iter)
    return out


def model_scaling(
    base: ScalingPoint,
    rank_counts: list[int],
    n_qubits: int,
    n_params: int,
    mode: str = "strong",
    link_bandwidth_gbs: float = 25.0,
    serial_fraction_sampling: float = 0.07,
    imbalance_per_ratio: float = 0.012,
) -> list[ScalingPoint]:
    """Analytic extrapolation beyond the host's core count.

    Calibrated from a measured base point: the local-energy and gradient
    stages divide by the rank ratio (they are embarrassingly parallel over
    unique samples); sampling carries a serial component — the shared prefix
    sweep of Fig. 5, whose dynamic split threshold keeps it to a few percent
    of the sampling stage (``serial_fraction_sampling = 0.07`` reproduces the
    paper's measured strong-scaling efficiencies: 84% @32, 68% @64); in weak
    mode the BAS-tree pruning imbalance the paper describes grows with rank
    count (``imbalance_per_ratio`` is calibrated to the paper's 84.3% @64);
    per-iteration fixed overhead (parameter sync etc.) is taken from the base
    point; communication adds the Sec. 3.2 volume over a
    ``link_bandwidth_gbs`` interconnect.  This is the documented substitution
    for the 64-GPU axis of Figs. 11/12.
    """
    stage_sum = base.time_sampling + base.time_local_energy + base.time_gradient
    overhead = max(base.time_per_iter - stage_sum, 0.0)
    out = []
    for n in rank_counts:
        ratio = n / base.n_ranks
        if mode == "strong":
            n_unique = base.n_unique
            work_scale = 1.0 / ratio
        else:
            n_unique = int(base.n_unique * ratio)
            work_scale = 1.0
        imbalance = 1.0 + (imbalance_per_ratio * (ratio - 1.0) if mode == "weak" else 0.0)
        t_eloc = base.time_local_energy * work_scale * imbalance
        t_grad = base.time_gradient * work_scale * imbalance
        serial = base.time_sampling * serial_fraction_sampling
        t_sample = (serial + (base.time_sampling - serial) * work_scale) * imbalance
        comm = CommVolumeModel(n_qubits, n_unique, n, n_params)
        t_comm = comm.total_bytes / (link_bandwidth_gbs * 1e9)
        out.append(
            ScalingPoint(
                n_ranks=n,
                n_samples=int(base.n_samples * (ratio if mode == "weak" else 1.0)),
                time_per_iter=overhead + t_sample + t_eloc + t_grad + t_comm,
                time_sampling=t_sample,
                time_local_energy=t_eloc,
                time_gradient=t_grad,
                n_unique=n_unique,
                comm_bytes=comm.total_bytes,
                comm_bytes_wire=comm.compressed_total_bytes,
            )
        )
    return out
