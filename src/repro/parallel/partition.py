"""Parallel BAS tree partitioning (Fig. 5 / Sec. 3.3).

Every rank runs the serial BAS with the *same* seed for the first k steps
(k chosen dynamically: the first step whose layer holds more than N_u^*
unique prefixes), then the layer-k nodes are split into N_p contiguous chunks
balancing the *sample counts* (weights), not the node counts — the paper's
heuristic for load balance, since downstream cost tracks unique samples
produced, which correlates with the weight pushed down each subtree.
"""
from __future__ import annotations

import numpy as np

from repro.core.sampler import BASTreeState

__all__ = ["split_tree_state", "balanced_weight_partition"]


def balanced_weight_partition(weights: np.ndarray, n_parts: int) -> list[np.ndarray]:
    """Split indices 0..P-1 into contiguous chunks of ~equal total weight.

    Greedy prefix cut at multiples of total/n_parts; every part is non-empty
    whenever P >= n_parts.
    """
    weights = np.asarray(weights, dtype=np.float64)
    p = len(weights)
    if p == 0:
        return [np.array([], dtype=np.int64) for _ in range(n_parts)]
    cum = np.cumsum(weights)
    total = cum[-1]
    cuts = [0]
    for part in range(1, n_parts):
        target = total * part / n_parts
        pos = int(np.searchsorted(cum, target))
        if p >= n_parts:
            # keep every part non-empty while leaving room for later parts
            lo = cuts[-1] + 1
            hi = p - (n_parts - part)
        else:
            # fewer nodes than parts: trailing parts come out empty
            lo = cuts[-1]
            hi = p
        pos = min(max(pos, lo), max(hi, lo))
        cuts.append(pos)
    cuts.append(p)
    return [np.arange(cuts[i], cuts[i + 1], dtype=np.int64) for i in range(n_parts)]


def split_tree_state(state: BASTreeState, n_parts: int) -> list[BASTreeState]:
    """Assign the layer-k nodes of a BAS tree to ``n_parts`` ranks.

    The inference session's KV-cache rows (when the state carries one) are
    gathered alongside the node arrays, so each rank continues its subtree
    without re-running the shared first k steps.
    """
    parts = balanced_weight_partition(state.weights, n_parts)
    out = []
    for idx in parts:
        out.append(
            BASTreeState(
                prefixes=state.prefixes[idx],
                weights=state.weights[idx],
                counts_up=state.counts_up[idx],
                counts_dn=state.counts_dn[idx],
                step=state.step,
                session=state.session.select(idx) if state.session is not None else None,
            )
        )
    return out
