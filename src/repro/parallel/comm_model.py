"""Closed-form communication-volume model of the data-centric scheme (Sec. 3.2).

The paper states per-iteration volumes for the three communicating stages:

* stage 2 (Allgather of unique samples + weights):
    ``N_u * N_p * (ceil(N / 8) + 16)`` bytes
  (each unique sample: packed bits ceil(N/8) + an 8-byte weight and an 8-byte
  amplitude record = 16 bytes);
* stage 4 (Allreduce of the energy average): ``16 * N_p`` bytes (one complex);
* stage 6 (Allreduce of gradients / parameters): ``8 * M * N_p`` bytes.

With the paper's example — C2/STO-3G, N = 20, N_u = 2.7e4, N_p = 64,
M = 2.7e5 — this evaluates to ~171 MB, matching the quoted "about 173 MB".
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CommVolumeModel", "comm_volume_bytes"]


@dataclass
class CommVolumeModel:
    n_qubits: int
    n_unique: int
    n_ranks: int
    n_params: int

    @property
    def sample_record_bytes(self) -> int:
        """Packed bits + (weight, amplitude) metadata per unique sample."""
        return (self.n_qubits + 7) // 8 + 16

    @property
    def allgather_samples_bytes(self) -> int:
        return self.n_unique * self.n_ranks * self.sample_record_bytes

    @property
    def allreduce_energy_bytes(self) -> int:
        return 16 * self.n_ranks

    @property
    def allreduce_gradient_bytes(self) -> int:
        return 8 * self.n_params * self.n_ranks

    @property
    def total_bytes(self) -> int:
        return (
            self.allgather_samples_bytes
            + self.allreduce_energy_bytes
            + self.allreduce_gradient_bytes
        )

    def breakdown(self) -> dict[str, float]:
        mb = 1e6  # decimal MB, the unit the paper quotes ("about 173 MB")
        return {
            "stage2_allgather_samples_MB": self.allgather_samples_bytes / mb,
            "stage4_allreduce_energy_MB": self.allreduce_energy_bytes / mb,
            "stage6_allreduce_gradients_MB": self.allreduce_gradient_bytes / mb,
            "total_MB": self.total_bytes / mb,
        }


def comm_volume_bytes(n_qubits: int, n_unique: int, n_ranks: int, n_params: int) -> int:
    return CommVolumeModel(n_qubits, n_unique, n_ranks, n_params).total_bytes
