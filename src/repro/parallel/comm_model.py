"""Closed-form communication-volume model of the data-centric scheme (Sec. 3.2).

The paper states per-iteration volumes for the three communicating stages:

* stage 2 (Allgather of unique samples + weights):
    ``N_u * N_p * (ceil(N / 8) + 16)`` bytes
  (each unique sample: packed bits ceil(N/8) + an 8-byte weight and an 8-byte
  amplitude record = 16 bytes);
* stage 4 (Allreduce of the energy average): ``16 * N_p`` bytes (one complex);
* stage 6 (Allreduce of gradients / parameters): ``8 * M * N_p`` bytes.

With the paper's example — C2/STO-3G, N = 20, N_u = 2.7e4, N_p = 64,
M = 2.7e5 — this evaluates to ~171 MB, matching the quoted "about 173 MB".

The *compressed* prediction models the typed/codec wire format of
:mod:`repro.parallel.codec`: lexsorted keys delta/varint-encoded (expected
gap ~ 2^N / N_u, i.e. ``max(1, N - log2(N_u))`` significant bits per delta,
7 bits per varint byte), weights as uint32 counts, amplitudes still a raw
complex128 — the incompressible floor of the stage-2 payload.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CommVolumeModel", "comm_volume_bytes"]


@dataclass
class CommVolumeModel:
    n_qubits: int
    n_unique: int
    n_ranks: int
    n_params: int

    @property
    def sample_record_bytes(self) -> int:
        """Packed bits + (weight, amplitude) metadata per unique sample."""
        return (self.n_qubits + 7) // 8 + 16

    @property
    def allgather_samples_bytes(self) -> int:
        return self.n_unique * self.n_ranks * self.sample_record_bytes

    @property
    def allreduce_energy_bytes(self) -> int:
        return 16 * self.n_ranks

    @property
    def allreduce_gradient_bytes(self) -> int:
        return 8 * self.n_params * self.n_ranks

    @property
    def total_bytes(self) -> int:
        return (
            self.allgather_samples_bytes
            + self.allreduce_energy_bytes
            + self.allreduce_gradient_bytes
        )

    # ------------------------------------------------- compressed (wire) model
    @property
    def compressed_sample_record_bytes(self) -> float:
        """Expected wire bytes per unique sample with the delta/varint codec.

        Keys: consecutive lexsorted keys differ by ~2^N / N_u on average, so
        a delta carries ``max(1, N - log2(N_u))`` significant bits at 7 bits
        per varint byte.  Weights: a uint32 count varint-encodes to <= 5
        bytes (typically 1-2; we charge 2).  Amplitudes stay a raw
        complex128 — they travel on the separate uncompressed channel.
        """
        delta_bits = max(1.0, self.n_qubits - math.log2(max(self.n_unique, 2)))
        key_bytes = math.ceil(delta_bits / 7)
        count_bytes = 2
        amp_bytes = 16
        return key_bytes + count_bytes + amp_bytes

    @property
    def compressed_allgather_samples_bytes(self) -> int:
        return int(
            self.n_unique * self.n_ranks * self.compressed_sample_record_bytes
        )

    @property
    def compressed_total_bytes(self) -> int:
        """Predicted wire total: compressed stage 2, raw reductions."""
        return (
            self.compressed_allgather_samples_bytes
            + self.allreduce_energy_bytes
            + self.allreduce_gradient_bytes
        )

    def breakdown(self) -> dict[str, float]:
        mb = 1e6  # decimal MB, the unit the paper quotes ("about 173 MB")
        return {
            "stage2_allgather_samples_MB": self.allgather_samples_bytes / mb,
            "stage4_allreduce_energy_MB": self.allreduce_energy_bytes / mb,
            "stage6_allreduce_gradients_MB": self.allreduce_gradient_bytes / mb,
            "total_MB": self.total_bytes / mb,
        }

    def compressed_breakdown(self) -> dict[str, float]:
        mb = 1e6
        return {
            "stage2_allgather_samples_MB":
                self.compressed_allgather_samples_bytes / mb,
            "stage4_allreduce_energy_MB": self.allreduce_energy_bytes / mb,
            "stage6_allreduce_gradients_MB": self.allreduce_gradient_bytes / mb,
            "total_MB": self.compressed_total_bytes / mb,
        }


def comm_volume_bytes(n_qubits: int, n_unique: int, n_ranks: int, n_params: int) -> int:
    return CommVolumeModel(n_qubits, n_unique, n_ranks, n_params).total_bytes
