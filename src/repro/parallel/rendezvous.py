"""Framed wire protocol + rendezvous coordinator for the cluster backend.

The cluster transport (:mod:`repro.parallel.cluster`) moves typed collective
payloads between hosts over plain TCP.  This module owns the two pieces that
are independent of the collectives themselves:

* **The frame layer** — every message on every socket (coordinator control
  traffic and peer-to-peer collective traffic alike) is one length-prefixed
  frame::

      header  = !2sBBI  -> magic b"Rv" | protocol version | frame type | body length
      body    = u32 meta length | JSON meta (utf-8) | raw payload bytes

  Three frame types: ``FRAME_CTRL`` (JSON control message, no raw payload),
  ``FRAME_ARRAY`` (meta carries dtype/shape, raw carries the array bytes) and
  ``FRAME_BLOB`` (meta carries the declared logical size, raw carries opaque
  pre-encoded bytes).  ``recv_frame`` validates magic, version, bounds and —
  for arrays — that dtype/shape are well-formed and consistent with the
  payload length, raising :class:`ClusterProtocolError` instead of
  reconstructing garbage.

* **The rendezvous coordinator** — a tiny TCP server (``python -m repro
  rendezvous --port P --world-size N``) that assigns ranks, exchanges peer
  listen addresses so ranks can build the full mesh, and then supervises
  heartbeats: a rank that stops heartbeating (or whose connection drops
  without a clean ``leave``) past the deadline poisons every survivor with an
  ``abort`` control frame carrying the canonical
  :func:`~repro.parallel.fake_mpi.dead_rank_message`, mirroring
  ``ProcessComm``'s crash semantics.

Control messages are JSON dicts with a ``kind`` key:

====================  ======================================================
``hello``             rank -> coordinator: ``{wants_rank, addr, world_size}``
``welcome``           coordinator -> rank: ``{rank, world_size, peers,
                      heartbeat_interval, heartbeat_timeout, session}``
``reject``            coordinator -> rank: ``{reason}`` (then close)
``heartbeat``         rank -> coordinator: ``{rank}`` (periodic liveness)
``leave``             rank -> coordinator: ``{rank}`` (clean shutdown)
``abort``             coordinator -> rank: ``{reason}`` (poison survivors)
``peer-hello``        rank -> rank: ``{rank, session}`` (mesh handshake)
====================  ======================================================
"""
from __future__ import annotations

import json
import math
import socket
import struct
import threading
import time
import uuid

import numpy as np

from repro.parallel.fake_mpi import dead_rank_message, poison_survivors

__all__ = [
    "ClusterProtocolError",
    "FRAME_ARRAY",
    "FRAME_BLOB",
    "FRAME_CTRL",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "RendezvousCoordinator",
    "build_frame",
    "connect_with_retry",
    "parse_addr",
    "recv_frame",
    "send_ctrl",
    "send_frame",
]

MAGIC = b"Rv"
PROTOCOL_VERSION = 1

FRAME_CTRL = 1
FRAME_ARRAY = 2
FRAME_BLOB = 3
_FRAME_TYPES = (FRAME_CTRL, FRAME_ARRAY, FRAME_BLOB)

# magic (2s) | version (B) | frame type (B) | body length (I)
_HEADER = struct.Struct("!2sBBI")
_META_LEN = struct.Struct("!I")

# Hard ceiling on a single frame.  Stage-2 amplitude payloads for
# benzene-class runs are O(100 MB); 2 GiB leaves headroom while still
# rejecting nonsense lengths from corrupt or hostile peers immediately.
MAX_FRAME_BYTES = 2 * 1024**3


class ClusterProtocolError(ValueError):
    """A peer sent bytes that violate the framed wire protocol."""


# --------------------------------------------------------------------- frames
def build_frame(ftype: int, meta: dict, raw: bytes = b"") -> bytes:
    """Serialize one frame (header + meta + raw) into a single bytes object."""
    if ftype not in _FRAME_TYPES:
        raise ClusterProtocolError(f"unknown frame type {ftype}")
    meta_blob = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    body_len = _META_LEN.size + len(meta_blob) + len(raw)
    if body_len > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame body of {body_len} bytes exceeds MAX_FRAME_BYTES"
        )
    header = _HEADER.pack(MAGIC, PROTOCOL_VERSION, ftype, body_len)
    return b"".join((header, _META_LEN.pack(len(meta_blob)), meta_blob, raw))


def send_frame(sock: socket.socket, ftype: int, meta: dict,
               raw: bytes = b"") -> int:
    """Send one frame; returns the number of wire bytes written."""
    frame = build_frame(ftype, meta, raw)
    sock.sendall(frame)
    return len(frame)


def send_ctrl(sock: socket.socket, **meta) -> int:
    """Send one FRAME_CTRL message (``kind`` lives inside ``meta``)."""
    return send_frame(sock, FRAME_CTRL, meta)


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed with {remaining} of {n} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _validate_array_meta(meta: dict, raw: bytes) -> np.ndarray:
    """Reconstruct an ndarray from (meta, raw), validating dtype and shape."""
    try:
        dtype = np.dtype(meta["dtype"])
        shape = tuple(meta["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterProtocolError(f"malformed array meta: {exc!r}") from None
    if not all(isinstance(d, int) and d >= 0 for d in shape):
        raise ClusterProtocolError(f"malformed array shape {shape!r}")
    expected = int(math.prod(shape)) * dtype.itemsize
    if expected != len(raw):
        raise ClusterProtocolError(
            f"array frame declares dtype={dtype} shape={shape} "
            f"({expected} bytes) but carries {len(raw)} payload bytes"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def recv_frame(sock: socket.socket) -> tuple[int, dict, bytes]:
    """Read one validated frame; returns ``(ftype, meta, raw)``.

    Raises :class:`ClusterProtocolError` for protocol violations (bad magic,
    version mismatch, bogus lengths, malformed meta) and ``ConnectionError``
    when the peer closes mid-frame.  For ``FRAME_ARRAY`` the reconstructed
    ndarray is returned in ``meta["array"]`` after dtype/shape validation.
    """
    magic, version, ftype, body_len = _HEADER.unpack(
        recv_exact(sock, _HEADER.size)
    )
    if magic != MAGIC:
        raise ClusterProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ClusterProtocolError(
            f"protocol version mismatch: peer speaks v{version}, "
            f"this build speaks v{PROTOCOL_VERSION}"
        )
    if ftype not in _FRAME_TYPES:
        raise ClusterProtocolError(f"unknown frame type {ftype}")
    if body_len < _META_LEN.size or body_len > MAX_FRAME_BYTES:
        raise ClusterProtocolError(f"implausible frame body length {body_len}")
    body = recv_exact(sock, body_len)
    (meta_len,) = _META_LEN.unpack(body[: _META_LEN.size])
    if _META_LEN.size + meta_len > body_len:
        raise ClusterProtocolError(
            f"frame meta length {meta_len} overruns body of {body_len} bytes"
        )
    meta_blob = body[_META_LEN.size : _META_LEN.size + meta_len]
    raw = body[_META_LEN.size + meta_len :]
    try:
        meta = json.loads(meta_blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ClusterProtocolError(f"undecodable frame meta: {exc!r}") from None
    if not isinstance(meta, dict):
        raise ClusterProtocolError(
            f"frame meta must be a JSON object, got {type(meta).__name__}"
        )
    if ftype == FRAME_CTRL and raw:
        raise ClusterProtocolError("control frames carry no raw payload")
    if ftype == FRAME_ARRAY:
        meta["array"] = _validate_array_meta(meta, raw)
    return ftype, meta, raw


# ------------------------------------------------------------------ utilities
def parse_addr(addr: str) -> tuple[str, int]:
    """Parse ``host:port`` into ``(host, port)`` with a clear error."""
    host, sep, port = addr.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected host:port, got {addr!r}")
    try:
        port_num = int(port)
    except ValueError:
        raise ValueError(f"expected host:port, got {addr!r}") from None
    if not 0 < port_num < 65536:
        raise ValueError(f"port {port_num} out of range in {addr!r}")
    return host, port_num


def connect_with_retry(host: str, port: int, *, timeout: float,
                       attempt_timeout: float = 2.0) -> socket.socket:
    """Dial ``host:port``, retrying with bounded exponential backoff.

    Retries connection-refused / timed-out attempts until ``timeout`` seconds
    have elapsed overall, sleeping ``0.05 * 2**attempt`` (capped at 1 s)
    between attempts — covers the "ranks launch before the coordinator is up"
    race without hammering the host.  The returned socket has TCP_NODELAY set
    and no timeout configured (callers set their own).
    """
    deadline = time.monotonic() + timeout
    delay = 0.05
    attempt = 0
    while True:
        attempt += 1
        budget = deadline - time.monotonic()
        if budget <= 0:
            raise TimeoutError(
                f"could not connect to {host}:{port} within {timeout:.1f}s "
                f"({attempt - 1} attempts)"
            )
        try:
            sock = socket.create_connection(
                (host, port), timeout=min(attempt_timeout, max(budget, 0.05))
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(None)
            return sock
        except (ConnectionRefusedError, ConnectionResetError, TimeoutError,
                socket.timeout, OSError):
            time.sleep(min(delay, 1.0, max(deadline - time.monotonic(), 0)))
            delay *= 2


# ---------------------------------------------------------------- coordinator
class RendezvousCoordinator:
    """Rank assignment + liveness supervision for one cluster job.

    Lifecycle::

        coord = RendezvousCoordinator(world_size=2, port=0)
        host, port = coord.start()     # accept thread running
        ...                            # ranks connect, run, leave
        outcome = coord.wait()         # "completed" | "aborted: ..."
        coord.stop()

    The coordinator accepts exactly ``world_size`` members.  Each member
    sends ``hello`` (optionally pinning an explicit rank); once the world is
    full every member receives ``welcome`` with the rank -> listen-address
    table so the mesh can be built without further coordinator involvement.
    After that the coordinator only watches heartbeats: a member that misses
    the heartbeat deadline, or whose socket drops without ``leave``, is
    declared dead and every survivor is poisoned with an ``abort`` frame.
    Garbage connections (port scanners, protocol mismatches) are rejected
    without disturbing the job.
    """

    def __init__(self, world_size: int, host: str = "127.0.0.1",
                 port: int = 0, *, join_timeout: float = 60.0,
                 heartbeat_interval: float = 2.0,
                 heartbeat_timeout: float = 10.0):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"({heartbeat_timeout} <= {heartbeat_interval})"
            )
        self.world_size = int(world_size)
        self.host = host
        self.port = int(port)
        self.join_timeout = float(join_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.session = uuid.uuid4().hex[:12]
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._members: dict[int, dict] = {}  # rank -> {conn, addr, last_seen, left}
        self._stop = threading.Event()
        self._done = threading.Event()
        self._outcome: str | None = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> tuple[str, int]:
        """Bind, listen and launch the accept + monitor threads."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(self.world_size + 4)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        accept = threading.Thread(
            target=self._accept_loop, name="rendezvous-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return self.host, self.port

    def wait(self, timeout: float | None = None) -> str | None:
        """Block until the job finishes; returns the outcome string."""
        self._done.wait(timeout)
        return self._outcome

    def stop(self) -> None:
        """Tear down the listener and every member connection."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns = [m["conn"] for m in self._members.values()]
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for t in self._threads:
            if t is not threading.current_thread():
                t.join(timeout=5.0)

    def _finish(self, outcome: str) -> None:
        with self._lock:
            if self._outcome is None:
                self._outcome = outcome
        self._done.set()

    # ----------------------------------------------------------- join phase
    def _accept_loop(self) -> None:
        deadline = time.monotonic() + self.join_timeout
        joined = 0
        claimed: set[int] = set()
        pending: list[tuple[socket.socket, dict]] = []
        try:
            while joined < self.world_size and not self._stop.is_set():
                if time.monotonic() > deadline:
                    self._abort_all(
                        f"rendezvous join timed out: {joined} of "
                        f"{self.world_size} ranks joined within "
                        f"{self.join_timeout:.1f}s"
                    )
                    for conn, _ in pending:
                        self._close_quietly(conn)
                    self._finish(
                        f"aborted: join timeout ({joined}/{self.world_size})"
                    )
                    return
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                hello = self._read_hello(conn)
                if hello is None:
                    continue  # garbage connection, already closed
                rank = self._assign_rank(hello, claimed, conn)
                if rank is None:
                    continue  # rejected, already closed
                claimed.add(rank)
                pending.append((conn, {"rank": rank, "addr": hello["addr"]}))
                joined += 1
            if self._stop.is_set():
                for conn, _ in pending:
                    self._close_quietly(conn)
                return
            self._welcome_all(pending)
            self._supervise()
        except Exception as exc:  # pragma: no cover - defensive backstop
            self._abort_all(f"coordinator internal error: {exc!r}")
            self._finish(f"aborted: coordinator error: {exc!r}")

    def _read_hello(self, conn: socket.socket) -> dict | None:
        """Read + validate one hello; returns None (conn closed) on garbage."""
        conn.settimeout(5.0)
        try:
            ftype, meta, _ = recv_frame(conn)
            if ftype != FRAME_CTRL or meta.get("kind") != "hello":
                raise ClusterProtocolError(
                    f"expected hello, got {meta.get('kind')!r}"
                )
            host, port = parse_addr(str(meta["addr"]))
            meta["addr"] = f"{host}:{port}"
            if int(meta.get("world_size", self.world_size)) != self.world_size:
                send_ctrl(
                    conn, kind="reject",
                    reason=(
                        f"world_size mismatch: coordinator supervises "
                        f"{self.world_size} ranks, member expects "
                        f"{meta.get('world_size')}"
                    ),
                )
                self._close_quietly(conn)
                return None
            return meta
        except (ClusterProtocolError, ConnectionError, ValueError, KeyError,
                TypeError, OSError):
            self._close_quietly(conn)
            return None

    def _assign_rank(self, hello: dict, claimed: set[int],
                     conn: socket.socket) -> int | None:
        wants = hello.get("wants_rank")
        if wants is None:
            rank = next(
                r for r in range(self.world_size) if r not in claimed
            )
            return rank
        try:
            rank = int(wants)
        except (TypeError, ValueError):
            rank = -1
        reason = None
        if not 0 <= rank < self.world_size:
            reason = (
                f"requested rank {wants!r} outside world of {self.world_size}"
            )
        elif rank in claimed:
            reason = f"rank {rank} already claimed by another member"
        if reason is not None:
            try:
                send_ctrl(conn, kind="reject", reason=reason)
            except OSError:
                pass
            self._close_quietly(conn)
            return None
        return rank

    def _welcome_all(self, pending: list[tuple[socket.socket, dict]]) -> None:
        peers = {
            str(info["rank"]): info["addr"] for _, info in pending
        }
        now = time.monotonic()
        with self._lock:
            for conn, info in pending:
                self._members[info["rank"]] = {
                    "conn": conn, "addr": info["addr"], "last_seen": now,
                    "left": False,
                }
        for conn, info in pending:
            send_ctrl(
                conn, kind="welcome", rank=info["rank"],
                world_size=self.world_size, peers=peers,
                heartbeat_interval=self.heartbeat_interval,
                heartbeat_timeout=self.heartbeat_timeout,
                session=self.session,
            )

    # ------------------------------------------------------ supervise phase
    def _supervise(self) -> None:
        """Watch heartbeats until every member leaves or somebody dies."""
        for rank, member in list(self._members.items()):
            t = threading.Thread(
                target=self._member_reader, args=(rank, member["conn"]),
                name=f"rendezvous-member-{rank}", daemon=True,
            )
            t.start()
            self._threads.append(t)
        while not self._stop.is_set():
            time.sleep(min(self.heartbeat_interval, 0.2))
            now = time.monotonic()
            with self._lock:
                left = [r for r, m in self._members.items() if m["left"]]
                dead = [
                    r for r, m in self._members.items()
                    if not m["left"]
                    and now - m["last_seen"] > self.heartbeat_timeout
                ]
                all_left = len(left) == len(self._members)
            if all_left:
                self._finish("completed")
                return
            if dead:
                message = dead_rank_message(
                    dead, "missed the heartbeat deadline"
                )
                self._abort_all(message, exclude=set(dead))
                self._finish(f"aborted: {message}")
                return

    def _member_reader(self, rank: int, conn: socket.socket) -> None:
        """Consume heartbeats/leave from one member; EOF marks it dead."""
        conn.settimeout(None)
        while not self._stop.is_set():
            try:
                ftype, meta, _ = recv_frame(conn)
            except (ConnectionError, ClusterProtocolError, OSError):
                with self._lock:
                    member = self._members.get(rank)
                    if member is None or member["left"] or self._done.is_set():
                        return
                # Socket dropped without a clean leave: poison immediately
                # rather than waiting out the heartbeat deadline.
                message = dead_rank_message(
                    [rank], "connection closed mid-run"
                )
                self._abort_all(message, exclude={rank})
                self._finish(f"aborted: {message}")
                return
            if ftype != FRAME_CTRL:
                continue
            kind = meta.get("kind")
            if kind == "heartbeat":
                with self._lock:
                    if rank in self._members:
                        self._members[rank]["last_seen"] = time.monotonic()
            elif kind == "leave":
                with self._lock:
                    if rank in self._members:
                        self._members[rank]["left"] = True
                return

    def _abort_all(self, message: str, exclude: set[int] = frozenset()) -> None:
        with self._lock:
            targets = {
                r: m["conn"] for r, m in self._members.items()
                if r not in exclude and not m["left"]
            }

        def send_abort(rank: int, msg: str) -> None:
            conn = targets[rank]
            send_ctrl(conn, kind="abort", reason=msg)
            # Wake any recv blocked on this socket so the poison is seen even
            # if the member is wedged inside a collective on the mesh.
            try:
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass

        poison_survivors(sorted(targets), send_abort, message)

    @staticmethod
    def _close_quietly(conn: socket.socket) -> None:
        try:
            conn.close()
        except OSError:
            pass


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro rendezvous``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro rendezvous",
        description="Run the cluster rendezvous coordinator for one job.",
    )
    parser.add_argument("--port", type=int, required=True,
                        help="TCP port to listen on (0 picks a free port)")
    parser.add_argument("--host", default="0.0.0.0",
                        help="interface to bind (default: all)")
    parser.add_argument("--world-size", type=int, required=True,
                        help="number of ranks in the job")
    parser.add_argument("--join-timeout", type=float, default=60.0,
                        help="seconds to wait for all ranks to join")
    parser.add_argument("--heartbeat-interval", type=float, default=2.0,
                        help="seconds between member heartbeats")
    parser.add_argument("--heartbeat-timeout", type=float, default=10.0,
                        help="seconds without a heartbeat before a rank "
                             "is declared dead")
    args = parser.parse_args(argv)

    coord = RendezvousCoordinator(
        world_size=args.world_size, host=args.host, port=args.port,
        join_timeout=args.join_timeout,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    host, port = coord.start()
    print(
        f"rendezvous listening on {host}:{port} "
        f"(world_size={args.world_size})",
        flush=True,
    )
    try:
        outcome = coord.wait()
    except KeyboardInterrupt:
        outcome = "aborted: interrupted"
    finally:
        coord.stop()
    print(f"rendezvous finished: {outcome}", flush=True)
    return 0 if outcome == "completed" else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
