"""Data-centric parallelization (Sec. 3.2/3.3): FakeMPI, parallel BAS, scaling.

The parallel iteration itself lives in :mod:`repro.core.engine` (the unified
execution engine); this package provides the communicators it schedules over
(:func:`run_spmd` thread ranks, :func:`run_spmd_processes` forked ranks,
:class:`ClusterComm` multi-host TCP/MPI ranks), the BAS tree partitioning,
the communication-volume model, and the scaling harness.  The engine
backends are re-exported here for discoverability.
"""
from repro.core.engine import ProcessBackend, SerialBackend, ThreadBackend
from repro.parallel.fake_mpi import (
    CommAbortError,
    CommStats,
    FakeComm,
    run_spmd,
)
from repro.parallel.multiprocess import ProcessComm, run_spmd_processes
from repro.parallel.partition import balanced_weight_partition, split_tree_state
from repro.parallel.comm_model import CommVolumeModel, comm_volume_bytes
from repro.parallel.driver import DataParallelVMC, ParallelVMCStats
from repro.parallel.cluster import (
    ClusterBackend,
    ClusterComm,
    MPIComm,
    create_cluster_comm,
)
from repro.parallel.rendezvous import (
    ClusterProtocolError,
    RendezvousCoordinator,
)
from repro.parallel.scaling import (
    ScalingPoint,
    measure_scaling,
    model_scaling,
    parallel_efficiency,
)

__all__ = [
    "CommAbortError",
    "CommStats",
    "FakeComm",
    "run_spmd",
    "ProcessComm",
    "run_spmd_processes",
    "balanced_weight_partition",
    "split_tree_state",
    "CommVolumeModel",
    "comm_volume_bytes",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ClusterBackend",
    "ClusterComm",
    "MPIComm",
    "create_cluster_comm",
    "ClusterProtocolError",
    "RendezvousCoordinator",
    "DataParallelVMC",
    "ParallelVMCStats",
    "ScalingPoint",
    "measure_scaling",
    "model_scaling",
    "parallel_efficiency",
]
