"""Data-centric parallelization (Sec. 3.2/3.3): FakeMPI, parallel BAS, scaling."""
from repro.parallel.fake_mpi import CommStats, FakeComm, run_spmd
from repro.parallel.multiprocess import ProcessComm, run_spmd_processes
from repro.parallel.partition import balanced_weight_partition, split_tree_state
from repro.parallel.comm_model import CommVolumeModel, comm_volume_bytes
from repro.parallel.driver import DataParallelVMC, ParallelVMCStats
from repro.parallel.scaling import (
    ScalingPoint,
    measure_scaling,
    model_scaling,
    parallel_efficiency,
)

__all__ = [
    "CommStats",
    "FakeComm",
    "run_spmd",
    "ProcessComm",
    "run_spmd_processes",
    "balanced_weight_partition",
    "split_tree_state",
    "CommVolumeModel",
    "comm_volume_bytes",
    "DataParallelVMC",
    "ParallelVMCStats",
    "ScalingPoint",
    "measure_scaling",
    "model_scaling",
    "parallel_efficiency",
]
