"""AdamW optimizer (decoupled weight decay), as used for training QiankunNet.

Sec. 4.1: "We have used the gradient descent optimizer AdamW for training
with the learn rate schedule alpha_i = d_model^-0.5 * min(i^-0.5,
i * S_warmup^-1.5)" — the schedule lives in :mod:`repro.optim.schedule`.
"""
from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["AdamW", "SGD"]


class AdamW:
    def __init__(self, model: Module, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.01):
        self.model = model
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None

    def step(self) -> None:
        params = list(self.model.parameters())
        if self._m is None:
            self._m = [np.zeros_like(p.data) for p in params]
            self._v = [np.zeros_like(p.data) for p in params]
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self.t
        bc2 = 1.0 - b2**self.t
        for p, m, v in zip(params, self._m, self._v):
            g = p.grad
            if g is None:
                continue
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            # Decoupled weight decay (AdamW): decay applied directly to weights.
            p.data -= self.lr * (update + self.weight_decay * p.data)

    def zero_grad(self) -> None:
        self.model.zero_grad()


class SGD:
    """Plain (optionally momentum) SGD — used in tests and ablations."""

    def __init__(self, model: Module, lr: float = 1e-2, momentum: float = 0.0):
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self._buf: list[np.ndarray] | None = None

    def step(self) -> None:
        params = list(self.model.parameters())
        if self._buf is None:
            self._buf = [np.zeros_like(p.data) for p in params]
        for p, buf in zip(params, self._buf):
            if p.grad is None:
                continue
            buf *= self.momentum
            buf += p.grad
            p.data -= self.lr * buf

    def zero_grad(self) -> None:
        self.model.zero_grad()
