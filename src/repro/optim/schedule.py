"""Learning-rate schedules.

:class:`NoamSchedule` implements Eq. (13) of the paper:

    alpha_i = d_model^{-0.5} * min(i^{-0.5}, i * S_warmup^{-1.5})

with the paper's default ``S_warmup = 4000``.  ``scale`` rescales the whole
curve (useful when the iteration budget is far below the paper's 1e5).
"""
from __future__ import annotations

__all__ = ["NoamSchedule", "ConstantSchedule"]


class NoamSchedule:
    def __init__(self, optimizer, d_model: int = 16, warmup: int = 4000,
                 scale: float = 1.0):
        self.optimizer = optimizer
        self.d_model = d_model
        self.warmup = warmup
        self.scale = scale
        self.i = 0

    def lr_at(self, i: int) -> float:
        i = max(i, 1)
        return self.scale * self.d_model**-0.5 * min(i**-0.5, i * self.warmup**-1.5)

    def step(self) -> float:
        """Advance one epoch and push the new learning rate to the optimizer."""
        self.i += 1
        lr = self.lr_at(self.i)
        self.optimizer.lr = lr
        return lr


class ConstantSchedule:
    def __init__(self, optimizer, lr: float):
        self.optimizer = optimizer
        self.lr = lr
        optimizer.lr = lr

    def step(self) -> float:
        return self.lr
