"""Optimizers and learning-rate schedules."""
from repro.optim.adamw import AdamW, SGD
from repro.optim.schedule import ConstantSchedule, NoamSchedule

__all__ = ["AdamW", "SGD", "ConstantSchedule", "NoamSchedule"]
