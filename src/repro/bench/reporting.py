"""Rendering of paper-style result tables + a process-wide registry.

Benchmarks register their rendered tables here; the pytest hook in
``benchmarks/conftest.py`` prints every registered experiment at the end of
the run (so ``pytest benchmarks/ --benchmark-only | tee ...`` captures them)
and mirrors each one to ``benchmarks/results/<name>.txt``.
"""
from __future__ import annotations

import os
from pathlib import Path

__all__ = ["format_table", "ExperimentRegistry", "registry"]


def format_table(title: str, headers: list[str], rows: list[list], notes: str = "") -> str:
    """Fixed-width table renderer (floats to 6 decimals, None -> 'n/a')."""

    def fmt(cell) -> str:
        if cell is None:
            return "n/a"
        if isinstance(cell, float):
            return f"{cell:.6f}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


class ExperimentRegistry:
    def __init__(self):
        self.reports: dict[str, str] = {}

    def record(self, name: str, text: str, echo: bool = True) -> None:
        self.reports[name] = text
        out_dir = Path(os.environ.get("NNQS_BENCH_RESULTS", "benchmarks/results"))
        try:
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(text + "\n")
        except OSError:
            pass
        if echo:
            print("\n" + text + "\n")

    def dump(self) -> str:
        return "\n\n".join(self.reports[k] for k in sorted(self.reports))


registry = ExperimentRegistry()
