"""Benchmark support: paper-style table rendering + result registry."""
from repro.bench.reporting import ExperimentRegistry, format_table, registry

__all__ = ["ExperimentRegistry", "format_table", "registry"]
