"""Versioned model snapshots: the contract between training and serving.

Training publishes immutable snapshots; serving clients pin a version.  The
pinning rule exists because every derived artifact — the per-version
amplitude tables of the service, any cached ``AmplitudeTable`` — is only
valid for one parameter vector: Algorithm 2's wf_lut stores ``log Psi``
values, and mixing entries across parameter versions silently corrupts the
local-energy ratios.  Keying everything by version makes staleness
structurally impossible instead of a discipline.

On disk a registry is a directory of ``v<NNNNNN>.npz`` model snapshots
(``core/checkpoint.py`` format: flat params + rebuild spec) plus a
``manifest.json`` written atomically (temp file + rename), so a service
polling :meth:`ModelRegistry.latest_version` never observes a torn write
while a trainer publishes.
"""
from __future__ import annotations

import fcntl
import hashlib
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core.checkpoint import load_model_snapshot, save_model_snapshot

__all__ = ["ModelRegistry"]

_MANIFEST = "manifest.json"


class ModelRegistry:
    """A directory of immutable, versioned wavefunction snapshots."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- manifest
    def _read_manifest(self) -> dict:
        path = self.root / _MANIFEST
        if not path.exists():
            return {"format": 1, "latest": None, "versions": {}}
        with open(path) as f:
            return json.load(f)

    def _write_manifest(self, manifest: dict) -> None:
        tmp = self.root / (_MANIFEST + ".tmp")
        with open(tmp, "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
        os.replace(tmp, self.root / _MANIFEST)  # atomic on POSIX

    @contextmanager
    def _publish_lock(self):
        """Exclusive advisory lock serializing publishers across processes.

        The manifest rename is atomic for *readers*; this lock makes the
        read-claim-write sequence atomic for concurrent *writers* (two
        trainers publishing to one registry must not mint the same version).
        """
        with open(self.root / ".publish.lock", "w") as lock_file:
            fcntl.flock(lock_file, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_file, fcntl.LOCK_UN)

    # -------------------------------------------------------------- publish
    def publish(self, wf, metadata: dict | None = None) -> int:
        """Snapshot ``wf`` as the next version; returns the version number."""
        with self._publish_lock():
            manifest = self._read_manifest()
            version = (manifest["latest"] or 0) + 1
            filename = f"v{version:06d}.npz"
            # We hold the publish lock and this version is absent from the
            # manifest, so a file already at this path can only be the
            # orphan of a publish that crashed before its manifest write —
            # never visible to readers, safe to overwrite.
            save_model_snapshot(wf, self.root / filename, metadata)
            params = wf.get_flat_params()
            manifest["versions"][str(version)] = {
                "file": filename,
                "n_params": int(params.size),
                "params_sha256": hashlib.sha256(params.tobytes()).hexdigest(),
                "published_at": time.time(),
                "metadata": metadata or {},
            }
            manifest["latest"] = version
            self._write_manifest(manifest)
            return version

    # --------------------------------------------------------------- access
    def versions(self) -> list[int]:
        return sorted(int(v) for v in self._read_manifest()["versions"])

    def latest_version(self) -> int | None:
        return self._read_manifest()["latest"]

    def _record(self, version: int) -> dict:
        manifest = self._read_manifest()
        rec = manifest["versions"].get(str(version))
        if rec is None:
            known = sorted(int(v) for v in manifest["versions"])
            raise KeyError(
                f"version {version} not in registry {self.root} "
                f"(known: {known})"
            )
        return rec

    def path(self, version: int) -> Path:
        return self.root / self._record(version)["file"]

    def metadata(self, version: int) -> dict:
        return self._record(version)["metadata"]

    def load(self, version: int | None = None):
        """Rebuild the snapshot; returns ``(wf, metadata)``.

        ``version=None`` loads the latest published version.
        """
        if version is None:
            version = self.latest_version()
            if version is None:
                raise KeyError(f"registry {self.root} has no published versions")
        return load_model_snapshot(self.path(version))
