"""Session reuse for the serving layer: free-list pool + prefix cache.

Two complementary reuse mechanisms around PR 1's inference sessions:

* :class:`SessionPool` — a bounded free list of reset sessions.  A *lease*
  temporarily routes ``NNQSWavefunction.make_session`` through the pool, so
  every session a sampling sweep opens (the BAS root prefill, budget-dropped
  rebuilds) is drawn from — and afterwards recycled into — the free list
  instead of being constructed from scratch per request.  ``reset()``
  restores a recycled session to its freshly-constructed state, so pooled
  sampling stays bit-identical to unpooled sampling.

* :class:`PrefixSessionCache` — an LRU of *live* decoding sessions keyed by
  the token prefix they have consumed, for clients that drive their own
  autoregressive loop through the service's ``conditional_probs`` API.
  A request whose prefix extends a cached entry by one position is served
  with a single KV-cached ``step()`` (O(k) work) instead of a full prefill
  (O(k^2)); a repeat of an identical prefix replays the stored logits with
  no network work at all.  Cache-miss prefills are numerically *identical*
  to a direct in-process call; step-continuations match the full forward to
  the incremental-engine tolerance (1e-10, see tests/test_inference.py).

Neither structure is thread-safe: the service confines all model evaluation
to the single scheduler thread (see scheduler.py).
"""
from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
import threading

import numpy as np

from repro.nn.inference import make_inference_session

__all__ = ["SessionPool", "PrefixSessionCache"]


class SessionPool:
    """Bounded free list of inference sessions for one amplitude network."""

    def __init__(self, amplitude, max_idle: int = 4):
        self.amplitude = amplitude
        self.max_idle = max_idle
        self._idle: list = []
        self.created = 0
        self.reused = 0

    def acquire(self, batch_size: int = 1):
        """A fresh-state session: recycled when available, else constructed."""
        if self._idle:
            self.reused += 1
            return self._idle.pop().reset(batch_size)
        self.created += 1
        return make_inference_session(self.amplitude, batch_size)

    def release(self, session) -> None:
        """Return a session to the free list (reset; dropped when full)."""
        if len(self._idle) < self.max_idle:
            self._idle.append(session.reset())

    @contextmanager
    def lease(self, wf):
        """Route ``wf.make_session`` through the pool for the duration.

        Every session opened under the lease is recycled on exit — the BAS
        sweep of one ``sample`` request typically opens exactly one (the
        root; ``select()`` derivatives share its buffers and are dropped).

        Pooled sessions are handed out only to the leasing thread: another
        thread sharing the wavefunction (e.g. a trainer sampling in-process
        while the service runs) gets a plain fresh session, so lease exit
        can never reset a session that thread is still stepping.
        """
        opened: list = []
        owner = threading.get_ident()

        def factory(batch_size: int):
            if threading.get_ident() != owner:
                return make_inference_session(wf.amplitude, batch_size)
            session = self.acquire(batch_size)
            opened.append(session)
            return session

        previous = wf.session_factory
        wf.session_factory = factory
        try:
            yield self
        finally:
            wf.session_factory = previous
            for session in opened:
                self.release(session)

    def stats(self) -> dict:
        return {"created": self.created, "reused": self.reused,
                "idle": len(self._idle)}


class _PrefixEntry:
    __slots__ = ("session", "tokens", "logits")

    def __init__(self, session, tokens: np.ndarray, logits: np.ndarray):
        self.session = session
        self.tokens = tokens
        self.logits = logits


def _prefix_key(tokens: np.ndarray) -> tuple:
    return (tokens.shape, tokens.tobytes())


class PrefixSessionCache:
    """LRU of live sessions keyed by their consumed ``(batch, k)`` prefix."""

    def __init__(self, pool: SessionPool, max_entries: int = 8):
        self.pool = pool
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, _PrefixEntry] = OrderedDict()
        self.hits_exact = 0
        self.hits_step = 0
        self.misses = 0

    def next_logits(self, prefix_tokens: np.ndarray) -> np.ndarray:
        """Raw next-position logits for ``(batch, k)`` prefixes.

        Lookup order: exact replay (stored logits, no network work) ->
        one-token continuation (single cached ``step``) -> miss (full
        prefill, entry inserted).
        """
        prefix = np.ascontiguousarray(prefix_tokens, dtype=np.int64)
        if prefix.ndim == 1:
            prefix = prefix[None, :]
        key = _prefix_key(prefix)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits_exact += 1
            self._entries.move_to_end(key)
            return entry.logits
        if prefix.shape[1] > 0:
            parent_key = _prefix_key(prefix[:, :-1])
            entry = self._entries.get(parent_key)
            if entry is not None:
                self.hits_step += 1
                del self._entries[parent_key]
                entry.logits = entry.session.step(prefix[:, -1])
                entry.tokens = prefix
                self._insert(key, entry)
                return entry.logits
        self.misses += 1
        session = self.pool.acquire(len(prefix))
        logits = session.prefill(prefix)
        self._insert(key, _PrefixEntry(session, prefix, logits))
        return logits

    def _insert(self, key: tuple, entry: _PrefixEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            _, evicted = self._entries.popitem(last=False)
            self.pool.release(evicted.session)

    def clear(self) -> None:
        for entry in self._entries.values():
            self.pool.release(entry.session)
        self._entries.clear()

    def stats(self) -> dict:
        return {"exact_hits": self.hits_exact, "step_hits": self.hits_step,
                "misses": self.misses, "entries": len(self._entries)}
