"""Request microbatching: coalesce concurrent small requests into big batches.

The paper's whole performance story — batch autoregressive sampling, the
Algorithm-2 amplitude LUT, the batch-vectorized local-energy kernel — exists
to keep the network busy with large, coalesced batches.  A serving layer has
the same shape: many concurrent clients each asking for a handful of
amplitudes produce exactly the small-batch traffic that wastes the (Python
and kernel-launch) fixed cost of a forward pass.  The :class:`MicroBatcher`
is the standard inference-server answer: requests enter a **bounded** queue
(backpressure — a full queue rejects instead of growing without bound), a
single scheduler thread drains it, fuses requests that share a *coalescing
key* up to ``max_batch_size`` rows — waiting at most ``max_wait_ms`` for
stragglers — and runs one vectorized evaluation per group.

Knobs and their trade-off (see DESIGN.md "Serving layer"):

* ``max_batch_size`` — rows fused into one forward; larger amortizes more
  fixed cost per row but delays the first request of the batch.
* ``max_wait_ms``    — how long a lone request waits for company.  0 means
  "fuse only what is already queued": lowest latency, still coalesces under
  sustained load.
* ``queue_capacity`` / ``submit_timeout`` — the backpressure contract: when
  the queue is full, ``submit`` blocks up to ``submit_timeout`` seconds and
  then raises :class:`ServiceOverloadedError`.

Execution is single-threaded by design: every model evaluation happens on
the scheduler thread, so the per-model state (session pools, prefix caches,
amplitude tables) needs no locking.
"""
from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

__all__ = [
    "MicroBatcher",
    "BatcherStats",
    "RequestFailure",
    "ServiceClosedError",
    "ServiceOverloadedError",
]


class ServiceClosedError(RuntimeError):
    """The service/batcher has been closed; no further requests are accepted."""


class ServiceOverloadedError(RuntimeError):
    """Bounded-queue backpressure: the request queue stayed full past the
    submit timeout."""


class RequestFailure:
    """A per-request error inside an otherwise successful group.

    Runners return one of these in the results list to fail a single
    request without poisoning the rest of its coalescing group.
    """

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


@dataclass
class _Request:
    key: tuple
    payload: object
    n_rows: int
    future: Future


# Enqueued by close(): FIFO order guarantees every earlier request is served
# before the loop exits, and the idle loop can block on get() with no
# wake-up polling.
_SHUTDOWN = object()


@dataclass
class BatcherStats:
    """Scheduler counters (all mutated on the scheduler thread only)."""

    requests: int = 0          # accepted into the queue
    rejected: int = 0          # refused by backpressure
    batches: int = 0           # vectorized runs issued
    batched_rows: int = 0      # total rows across all runs
    max_rows_per_batch: int = 0

    def rows_per_batch(self) -> float:
        return self.batched_rows / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "rejected": self.rejected,
            "batches": self.batches,
            "batched_rows": self.batched_rows,
            "max_rows_per_batch": self.max_rows_per_batch,
            "rows_per_batch": self.rows_per_batch(),
        }


class MicroBatcher:
    """Bounded-queue request coalescer driving a single evaluation thread.

    ``runner(key, payloads) -> results`` receives every payload of one
    coalescing-key group (in arrival order) and must return one result per
    payload.  Whether a group is actually fused into one array operation is
    the runner's business — the batcher guarantees grouping, ordering,
    bounded queueing and per-request future delivery.
    """

    def __init__(self, runner, max_batch_size: int = 256,
                 max_wait_ms: float = 2.0, queue_capacity: int = 1024,
                 submit_timeout: float = 30.0):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self._runner = runner
        self.max_batch_size = max_batch_size
        self.max_wait_s = max(max_wait_ms, 0.0) / 1e3
        self.submit_timeout = submit_timeout
        self._queue: queue.Queue[_Request] = queue.Queue(maxsize=queue_capacity)
        self._closing = False
        self._thread: threading.Thread | None = None
        self.stats = BatcherStats()

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "MicroBatcher":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="microbatcher")
        self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests, then shut the scheduler down.

        ``drain=True`` (the graceful path, wired to SIGTERM in the network
        server): every request already accepted into the queue is served
        before the scheduler thread exits — new submissions are rejected
        with :class:`ServiceClosedError` from the moment close() is entered,
        but no accepted future is ever abandoned.  ``drain=False`` (the
        emergency path, e.g. the peer we would answer is already gone):
        queued requests are failed with :class:`ServiceClosedError`
        immediately; only the batch already executing finishes.
        """
        self._closing = True
        if self._thread is not None:
            if not drain:
                self._fail_queued()  # empty the backlog before the marker
            self._queue.put(_SHUTDOWN)  # blocks while full; the loop drains
            self._thread.join()
            self._thread = None
        self._fail_queued()

    def _fail_queued(self) -> None:
        """Deliver ServiceClosedError to any request still in the dead queue."""
        while True:
            try:
                req = self._queue.get_nowait()
            except queue.Empty:
                break
            if not req.future.done():
                req.future.set_exception(
                    ServiceClosedError("batcher is closed")
                )

    # -------------------------------------------------------------- submit
    def submit(self, key: tuple, payload, n_rows: int = 1,
               timeout: float | None = None) -> Future:
        """Enqueue one request; returns its :class:`Future`.

        Raises :class:`ServiceClosedError` after :meth:`close`, and
        :class:`ServiceOverloadedError` when backpressure rejects the
        request (queue full past ``timeout``, defaulting to the batcher's
        ``submit_timeout``; pass ``0.0`` for an immediate reject — the
        network worker's non-blocking shape, where waiting would wedge the
        socket reader behind a full queue).
        """
        if self._closing:
            raise ServiceClosedError("batcher is closed")
        if self._thread is None:
            raise ServiceClosedError("batcher not started")
        if timeout is None:
            timeout = self.submit_timeout
        req = _Request(key=key, payload=payload, n_rows=max(int(n_rows), 1),
                       future=Future())
        try:
            if timeout > 0:
                self._queue.put(req, timeout=timeout)
            else:
                self._queue.put_nowait(req)
        except queue.Full:
            self.stats.rejected += 1  # benign race: stat only
            raise ServiceOverloadedError(
                f"request queue full ({self._queue.maxsize}) for {timeout}s"
            ) from None
        # Re-check after the put: if close() finished its drain between our
        # closing check and the put, the loop is gone and nothing would ever
        # resolve this future — fail it (and anything else stranded) now.
        if self._closing and self._thread is None:
            self._fail_queued()
        return req.future

    # ------------------------------------------------------------ the loop
    def _loop(self) -> None:
        shutdown = False
        while not shutdown:
            first = self._queue.get()  # idle service parks here, no polling
            if first is _SHUTDOWN:
                return
            batch = [first]
            rows = first.n_rows
            deadline = time.monotonic() + self.max_wait_s
            while rows < self.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    nxt = self._queue.get(timeout=max(remaining, 0.0))
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    shutdown = True  # serve what we already collected first
                    break
                batch.append(nxt)
                rows += nxt.n_rows
            try:
                self._dispatch(batch)
            except BaseException:  # pragma: no cover - last-resort guard
                # The scheduler thread must survive anything: a dead loop
                # strands every future client forever.
                continue

    def _dispatch(self, batch: list[_Request]) -> None:
        """Group one drain cycle by coalescing key and run each group."""
        groups: dict[tuple, list[_Request]] = {}
        for req in batch:
            # Transition PENDING -> RUNNING; a future the client cancelled
            # while queued is dropped here (setting it later would raise
            # InvalidStateError and kill the scheduler thread).
            if req.future.set_running_or_notify_cancel():
                groups.setdefault(req.key, []).append(req)
        for key, reqs in groups.items():
            self.stats.requests += len(reqs)
            self.stats.batches += 1
            n_rows = sum(r.n_rows for r in reqs)
            self.stats.batched_rows += n_rows
            self.stats.max_rows_per_batch = max(self.stats.max_rows_per_batch,
                                                n_rows)
            try:
                results = self._runner(key, [r.payload for r in reqs])
                if len(results) != len(reqs):  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"runner returned {len(results)} results for "
                        f"{len(reqs)} requests"
                    )
            except BaseException as exc:  # noqa: BLE001 - delivered per future
                for r in reqs:
                    r.future.set_exception(exc)
            else:
                for r, res in zip(reqs, results):
                    if isinstance(res, RequestFailure):
                        r.future.set_exception(res.exc)
                    else:
                        r.future.set_result(res)
