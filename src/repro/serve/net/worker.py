"""One serving worker: a framed-socket loop around a WavefunctionService.

A worker is a separate OS process (spawned by the router as ``python -m
repro serve-worker``) hosting one in-process
:class:`~repro.serve.service.WavefunctionService` over the run's shared
on-disk :class:`~repro.serve.registry.ModelRegistry`.  Worker processes are
what turn the GIL-bound thread service into real multi-core serving — and
what make a crash survivable: the router respawns a dead worker without
touching the others.

Thread topology (three threads, one queue):

* the **main thread** reads frames off the router socket.  Requests are
  submitted to the service with ``timeout=0.0`` — a full bounded queue
  rejects *immediately* (an ``overloaded`` error frame the router maps to
  HTTP 429) instead of blocking the reader, which would wedge every request
  behind the full one;
* the **scheduler thread** (inside the service) evaluates microbatches;
  each request future's done-callback packs the response frame and puts it
  on the outbound queue;
* the **writer thread** drains the outbound queue to the socket, keeping
  serialization off the scheduler thread.

Control frames: ``refresh`` re-reads the registry (zero-downtime version
rollover; in-flight requests keep the version they resolved at submit
time), ``stats`` snapshots the service counters, ``drain`` stops the reader
and closes the service gracefully — every accepted request is answered,
then a ``worker-bye`` frame is sent and the process exits 0.  A vanished
router (EOF on the socket) is the emergency path: nobody is left to read
answers, so the service closes with ``drain=False``.
"""
from __future__ import annotations

import os
import queue
import socket
import threading

import numpy as np

from repro.core.sampler import SampleBatch
from repro.parallel.rendezvous import (
    FRAME_CTRL,
    ClusterProtocolError,
    connect_with_retry,
    parse_addr,
    recv_frame,
    send_ctrl,
)
from repro.serve.net.protocol import (
    NetProtocolError,
    pack_arrays,
    parse_request,
)
from repro.parallel.rendezvous import FRAME_BLOB, build_frame
from repro.serve.scheduler import ServiceClosedError, ServiceOverloadedError

__all__ = ["run_worker"]

_SENTINEL = object()


def _error_code(exc: BaseException) -> str:
    if isinstance(exc, ServiceOverloadedError):
        return "overloaded"
    if isinstance(exc, ServiceClosedError):
        return "closed"
    if isinstance(exc, (ValueError, KeyError, TypeError, NetProtocolError)):
        return "bad-request"
    return "internal"


def _response_frame(req_id: int, result: dict,
                    arrays: dict[str, np.ndarray]) -> bytes:
    metas, raw = pack_arrays(arrays)
    return build_frame(FRAME_BLOB, {"kind": "response", "id": int(req_id),
                                    "ok": True, "result": result,
                                    "arrays": metas}, raw)


def _error_frame(req_id: int, code: str, message: str) -> bytes:
    return build_frame(FRAME_CTRL, {"kind": "response", "id": int(req_id),
                                    "ok": False,
                                    "error": {"code": code,
                                              "message": message}})


class _Worker:
    def __init__(self, service, sock: socket.socket, worker_id: int):
        self.service = service
        self.sock = sock
        self.worker_id = worker_id
        self.out: queue.Queue = queue.Queue()
        self.writer = threading.Thread(target=self._write_loop,
                                       name="net-worker-writer", daemon=True)
        self.send_failed = threading.Event()

    # ------------------------------------------------------------- outbound
    def _write_loop(self) -> None:
        while True:
            item = self.out.get()
            if item is _SENTINEL:
                return
            try:
                self.sock.sendall(item)
            except OSError:
                # Router gone: stop writing, let the reader's EOF end us.
                self.send_failed.set()
                return

    # ------------------------------------------------------------- requests
    def _submit(self, req_id: int, op: str, args: dict, arrays: dict) -> None:
        version = args.get("version")
        if version is None:
            # Resolve once, here: the response must report the exact version
            # it was computed with even if a refresh lands mid-flight.
            version = self.service.active_version()
            if version is None:
                self.out.put(_error_frame(
                    req_id, "closed", "registry has no published versions"))
                return
        version = int(version)
        if op in ("log_amplitudes", "amplitudes"):
            bits = arrays["bits"].astype(np.uint8, copy=False)
            submit = (self.service.submit_log_amplitudes
                      if op == "log_amplitudes"
                      else self.service.submit_amplitudes)
            fut = submit(bits, version=version, timeout=0.0)
            pack = lambda v: ("value", np.asarray(v, dtype=np.complex128))
        elif op == "sample":
            fut = self.service.submit_sample(
                int(args["n_samples"]), int(args["seed"]), version=version,
                timeout=0.0)
            pack = None  # SampleBatch: handled below
        elif op == "conditional_probs":
            fut = self.service.submit_conditional_probs(
                arrays["prefix_tokens"].astype(np.int64, copy=False),
                arrays["counts_up"].astype(np.int64, copy=False),
                arrays["counts_dn"].astype(np.int64, copy=False),
                version=version, timeout=0.0)
            pack = lambda v: ("probs", np.asarray(v, dtype=np.float64))
        elif op == "local_energy":
            batch = SampleBatch(
                bits=np.atleast_2d(arrays["bits"].astype(np.uint8, copy=False)),
                weights=arrays["weights"].astype(np.int64, copy=False),
            )
            fut = self.service.submit_local_energy(
                batch, mode=str(args.get("mode", "exact")), version=version,
                timeout=0.0)
            pack = lambda v: ("value", np.asarray(v, dtype=np.complex128))
        else:  # parse_request already validated; defensive
            self.out.put(_error_frame(req_id, "bad-request",
                                      f"unknown op {op!r}"))
            return

        def deliver(f) -> None:
            exc = f.exception()
            if exc is not None:
                self.out.put(_error_frame(req_id, _error_code(exc), str(exc)))
                return
            value = f.result()
            result = {"version": version, "worker": self.worker_id}
            if pack is None:  # sample -> SampleBatch
                out_arrays = {"bits": value.bits.astype(np.uint8, copy=False),
                              "weights": value.weights.astype(np.int64,
                                                              copy=False)}
            else:
                name, arr = pack(value)
                out_arrays = {name: arr}
            self.out.put(_response_frame(req_id, result, out_arrays))

        fut.add_done_callback(deliver)

    def _handle_ctrl(self, meta: dict) -> bool:
        """Returns False when the loop should stop (drain requested)."""
        kind = meta.get("kind")
        req_id = int(meta.get("id", 0))
        if kind == "drain":
            return False
        if kind == "refresh":
            version = self.service.refresh()
            self.out.put(_response_frame(
                req_id, {"version": version, "worker": self.worker_id}, {}))
        elif kind == "stats":
            self.out.put(_response_frame(
                req_id,
                {"worker": self.worker_id, "pid": os.getpid(),
                 "version": self.service.active_version(),
                 "service": self.service.stats()},
                {}))
        elif kind == "ping":
            self.out.put(_response_frame(
                req_id, {"worker": self.worker_id}, {}))
        # Unknown ctrl kinds are ignored (forward compatibility).
        return True

    # ------------------------------------------------------------- the loop
    def run(self) -> int:
        self.writer.start()
        self.service.start()
        send_ctrl(self.sock, kind="worker-hello", worker_id=self.worker_id,
                  pid=os.getpid(), version=self.service.active_version())
        drain = False
        try:
            while not self.send_failed.is_set():
                try:
                    ftype, meta, raw = recv_frame(self.sock)
                except (ConnectionError, OSError):
                    break  # router gone: emergency shutdown
                if ftype == FRAME_CTRL and meta.get("kind") != "request":
                    if not self._handle_ctrl(meta):
                        drain = True
                        break
                    continue
                try:
                    req_id, op, args, arrays = parse_request(ftype, meta, raw)
                except ClusterProtocolError as exc:
                    rid = meta.get("id") if isinstance(meta.get("id"), int) \
                        else 0
                    self.out.put(_error_frame(rid, "bad-request", str(exc)))
                    continue
                try:
                    self._submit(req_id, op, args, arrays)
                except BaseException as exc:  # noqa: BLE001 - per request
                    self.out.put(_error_frame(req_id, _error_code(exc),
                                              str(exc)))
        finally:
            # Graceful drain: close(drain=True) answers every accepted
            # request (their callbacks enqueue responses) before we say bye.
            self.service.close(drain=drain)
            if drain:
                self.out.put(build_frame(FRAME_CTRL,
                                         {"kind": "worker-bye",
                                          "worker_id": self.worker_id}))
            self.out.put(_SENTINEL)
            self.writer.join(timeout=10.0)
            try:
                self.sock.close()
            except OSError:
                pass
        return 0 if drain else 1


def run_worker(run_dir, connect: str, worker_id: int, serve_spec=None) -> int:
    """Entry point behind ``python -m repro serve-worker`` (router-spawned).

    Builds the service over ``run_dir``'s registry + Hamiltonian, dials the
    router's internal listener, and serves frames until drained or the
    router disappears.
    """
    from repro.api.driver import serve_run

    config = serve_spec.to_serve_config() if serve_spec is not None else None
    service = serve_run(run_dir, config=config)
    host, port = parse_addr(connect)
    sock = connect_with_retry(host, port, timeout=30.0)
    return _Worker(service, sock, int(worker_id)).run()
