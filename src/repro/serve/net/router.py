"""The router: HTTP front door, worker supervisor, consistent-hash dispatch.

:class:`NetServer` is the acceptor/router process behind ``python -m repro
serve <run_dir> --port P --workers W``.  It owns three jobs:

1. **HTTP front door** — a stdlib ``ThreadingHTTPServer`` speaking JSON:
   ``POST /v1/{log_amplitudes,amplitudes,sample,conditional_probs,
   local_energy,refresh}`` and ``GET /v1/{stats,versions,healthz}``.
   Complex results are encoded as ``[re, im]`` pairs (JSON floats round-trip
   bit-exactly, so served amplitudes compare bit-identical to direct
   in-process evaluation).

2. **Worker supervision** — spawns ``W`` worker subprocesses (``python -m
   repro serve-worker``), each dialing back into the router's internal
   listener with a ``worker-hello`` frame.  A dead worker's *slot stays in
   the hash ring* through the respawn window: its keys deterministically
   answer 503 (retryable) instead of silently migrating to — and colding
   out on — a neighbor that will lose them again when the respawn lands.

3. **Consistent-hash dispatch** — each request's
   :func:`~repro.serve.net.protocol.routing_key` is looked up on a
   :class:`~repro.serve.net.hashring.HashRing` over worker slots, so the
   per-worker prefix/session caches and amplitude tables shard across
   workers instead of duplicating.

Backpressure is enforced at both tiers: the worker's bounded MicroBatcher
queue rejects with ``overloaded`` (HTTP 429), and the router refuses to
put more than ``queue_capacity + max_batch_size`` requests in flight per
worker (:class:`RouterOverloadedError`, also 429) so a slow worker's
backlog is bounded even before frames reach its queue.

Shutdown (``close()``, wired to SIGTERM/SIGINT by the CLI) is a graceful
drain: stop HTTP intake, snapshot worker stats, send each worker a
``drain`` control frame — its service answers every accepted request, says
``worker-bye`` and exits 0 — then write ``serve_stats.json`` into the run
directory (surfaced by ``python -m repro info``).
"""
from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

import repro
from repro.parallel.rendezvous import (
    FRAME_CTRL,
    ClusterProtocolError,
    recv_frame,
    send_frame,
)
from repro.serve.net.hashring import HashRing
from repro.serve.net.protocol import (
    ERROR_STATUS,
    OPS,
    parse_response,
    routing_key,
    send_request,
)
from repro.serve.registry import ModelRegistry

__all__ = ["NetServer", "RouterOverloadedError", "WorkerUnavailableError",
           "SERVE_STATS_FILE"]

SERVE_STATS_FILE = "serve_stats.json"

# Largest accepted HTTP request body; JSON for bigger batches belongs in the
# framed protocol, not the front door.
_MAX_BODY_BYTES = 64 * 1024 * 1024


class RouterOverloadedError(RuntimeError):
    """Router-tier backpressure: the owning worker's in-flight cap is full
    (maps to HTTP 429, like the worker-tier queue-full rejection)."""


class WorkerUnavailableError(RuntimeError):
    """The worker owning this key is down/draining; retry after the respawn
    window (maps to HTTP 503)."""


def _json_array(arr: np.ndarray):
    """ndarray -> JSON-encodable nested lists; complex as [re, im] pairs."""
    if np.iscomplexobj(arr):
        return np.stack([arr.real, arr.imag], axis=-1).tolist()
    return arr.tolist()


class _WorkerHandle:
    """One live worker connection: request multiplexing + in-flight cap.

    Requests carry a per-connection sequence id; a reader thread resolves
    the matching future when the response frame arrives, so many HTTP
    handler threads share one socket without head-of-line coupling.
    Outcomes are delivered as values — ``("ok", result, arrays)`` or
    ``("error", {code, message})`` — never exceptions, so worker-reported
    failures (429/503/400) stay distinct from transport failures.
    """

    def __init__(self, slot: int, sock: socket.socket, pid: int | None,
                 inflight_cap: int):
        self.slot = slot
        self.sock = sock
        self.pid = pid
        self.inflight_cap = max(int(inflight_cap), 1)
        self.alive = True
        self.bye = threading.Event()
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._next_id = 0
        self._reader = threading.Thread(target=self._read_loop, daemon=True,
                                        name=f"net-router-reader-{slot}")
        self._reader.start()

    def inflight(self) -> int:
        with self._lock:
            return len(self._pending)

    # ------------------------------------------------------------- inbound
    def _read_loop(self) -> None:
        try:
            while True:
                ftype, meta, raw = recv_frame(self.sock)
                if ftype == FRAME_CTRL and meta.get("kind") == "worker-bye":
                    self.bye.set()
                    return
                req_id, error, result, arrays = parse_response(ftype, meta,
                                                               raw)
                with self._lock:
                    fut = self._pending.pop(req_id, None)
                if fut is None:
                    continue  # timed out on our side; answer is stale
                if error is not None:
                    fut.set_result(("error", error))
                else:
                    fut.set_result(("ok", result, arrays))
        except (ConnectionError, OSError, ClusterProtocolError):
            pass  # worker died or spoke garbage: tear the connection down
        finally:
            self.alive = False
            with self._lock:
                stranded = list(self._pending.values())
                self._pending.clear()
            for fut in stranded:
                if not fut.done():
                    fut.set_result(("error", {
                        "code": "unavailable",
                        "message": f"worker {self.slot} connection lost",
                    }))

    # ------------------------------------------------------------ outbound
    def _issue(self) -> tuple[int, Future]:
        with self._lock:
            if len(self._pending) >= self.inflight_cap:
                raise RouterOverloadedError(
                    f"worker {self.slot} has {len(self._pending)} requests "
                    f"in flight (cap {self.inflight_cap})"
                )
            self._next_id += 1
            fut: Future = Future()
            self._pending[self._next_id] = fut
            return self._next_id, fut

    def _await(self, req_id: int, fut: Future, timeout: float):
        try:
            return fut.result(timeout=timeout)
        except FutureTimeoutError:
            with self._lock:
                self._pending.pop(req_id, None)
            raise WorkerUnavailableError(
                f"worker {self.slot} did not answer within {timeout}s"
            ) from None

    def request(self, op: str, args: dict, arrays: dict, timeout: float):
        if not self.alive:
            raise WorkerUnavailableError(f"worker {self.slot} is down")
        req_id, fut = self._issue()
        try:
            with self._send_lock:
                send_request(self.sock, req_id, op, args, arrays)
        except (OSError, ClusterProtocolError) as exc:
            with self._lock:
                self._pending.pop(req_id, None)
            self.alive = False
            raise WorkerUnavailableError(
                f"worker {self.slot} send failed: {exc}"
            ) from None
        return self._await(req_id, fut, timeout)

    def ctrl(self, kind: str, timeout: float = 10.0, **fields):
        """A control round-trip (refresh / stats / ping) on the same id
        space as requests."""
        if not self.alive:
            raise WorkerUnavailableError(f"worker {self.slot} is down")
        req_id, fut = self._issue()
        try:
            with self._send_lock:
                send_frame(self.sock, FRAME_CTRL,
                           {"kind": kind, "id": req_id, **fields})
        except (OSError, ClusterProtocolError) as exc:
            with self._lock:
                self._pending.pop(req_id, None)
            self.alive = False
            raise WorkerUnavailableError(
                f"worker {self.slot} send failed: {exc}"
            ) from None
        return self._await(req_id, fut, timeout)

    def send_drain(self) -> None:
        try:
            with self._send_lock:
                send_frame(self.sock, FRAME_CTRL, {"kind": "drain"})
        except (OSError, ClusterProtocolError):
            pass  # already gone; the supervisor reaps the process

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:
            pass


class _Httpd(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # The default listen backlog (5) resets connections under bursts the
    # 429 path is specifically designed to absorb.
    request_queue_size = 128
    net: "NetServer"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 - silence stderr spam
        pass

    # ------------------------------------------------------------- helpers
    def _send_json(self, status: int, obj: dict) -> None:
        body = json.dumps(obj).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.net.record_status(status)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(status, {"ok": False,
                                 "error": {"code": code, "message": message}})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length > _MAX_BODY_BYTES:
            raise _BodyTooLarge(length)
        if length <= 0:
            return {}
        body = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    # ------------------------------------------------------------- routes
    def do_GET(self):  # noqa: N802 - stdlib handler API
        net = self.server.net
        if self.path == "/v1/healthz":
            self._send_json(200, {"ok": True, "workers": net.live_workers(),
                                  "of": net.workers})
        elif self.path == "/v1/stats":
            self._send_json(200, {"ok": True, **net.stats()})
        elif self.path == "/v1/versions":
            self._send_json(200, {"ok": True, **net.registry_versions()})
        else:
            self._send_error_json(404, "bad-request",
                                  f"unknown path {self.path}")

    def do_POST(self):  # noqa: N802 - stdlib handler API
        net = self.server.net
        if not self.path.startswith("/v1/"):
            self._send_error_json(404, "bad-request",
                                  f"unknown path {self.path}")
            return
        op = self.path[len("/v1/"):]
        try:
            if op == "refresh":
                self._send_json(200, {"ok": True, **net.refresh()})
                return
            if op not in OPS:
                self._send_error_json(
                    404, "bad-request",
                    f"unknown op {op!r} (valid: {', '.join(OPS)})")
                return
            try:
                args, arrays = _parse_op_body(op, self._read_body())
            except _BodyTooLarge as exc:
                self._send_error_json(
                    413, "bad-request",
                    f"{exc.length}-byte body exceeds {_MAX_BODY_BYTES}")
                return
            except (KeyError, ValueError, TypeError) as exc:
                self._send_error_json(400, "bad-request", _bad_body(op, exc))
                return
            outcome = net.dispatch(op, args, arrays)
        except RouterOverloadedError as exc:
            self._send_error_json(429, "overloaded", str(exc))
            return
        except WorkerUnavailableError as exc:
            self._send_error_json(503, "unavailable", str(exc))
            return
        except KeyError as exc:  # empty ring
            self._send_error_json(503, "unavailable", str(exc))
            return
        if outcome[0] == "error":
            error = outcome[1]
            self._send_error_json(ERROR_STATUS.get(error["code"], 500),
                                  error["code"], error["message"])
            return
        _, result, arrays = outcome
        payload = {"ok": True, **result}
        for name, arr in arrays.items():
            payload[name] = _json_array(arr)
        self._send_json(200, payload)


class _BodyTooLarge(Exception):
    def __init__(self, length: int):
        super().__init__(length)
        self.length = length


def _bad_body(op: str, exc: BaseException) -> str:
    if isinstance(exc, KeyError):
        return f"op {op!r} requires field {exc.args[0]!r}"
    return f"malformed body for op {op!r}: {exc}"


def _parse_op_body(op: str, body: dict) -> tuple[dict, dict]:
    """JSON body -> (args, arrays) for the framed hop; raises on bad input."""
    args: dict = {}
    arrays: dict[str, np.ndarray] = {}
    if body.get("version") is not None:
        args["version"] = int(body["version"])
    if op in ("log_amplitudes", "amplitudes"):
        arrays["bits"] = np.atleast_2d(np.asarray(body["bits"],
                                                  dtype=np.uint8))
    elif op == "sample":
        args["n_samples"] = int(body["n_samples"])
        args["seed"] = int(body.get("seed", 0))
    elif op == "conditional_probs":
        arrays["prefix_tokens"] = np.atleast_2d(
            np.asarray(body["prefix_tokens"], dtype=np.int64))
        arrays["counts_up"] = np.asarray(body["counts_up"], dtype=np.int64)
        arrays["counts_dn"] = np.asarray(body["counts_dn"], dtype=np.int64)
    elif op == "local_energy":
        arrays["bits"] = np.atleast_2d(np.asarray(body["bits"],
                                                  dtype=np.uint8))
        arrays["weights"] = np.asarray(body["weights"], dtype=np.int64)
        if body.get("mode") is not None:
            args["mode"] = str(body["mode"])
    return args, arrays


class NetServer:
    """Router + supervisor for the multi-worker HTTP serving tier."""

    def __init__(self, run_dir, host: str = "127.0.0.1", port: int = 0,
                 workers: int | None = None, serve_spec=None,
                 worker_args: list[str] | None = None,
                 request_timeout: float = 120.0):
        if serve_spec is None:
            from repro.api.spec import ServeSpec
            serve_spec = ServeSpec()
        self.run_dir = Path(run_dir)
        self.spec = serve_spec
        self.workers = int(workers) if workers is not None \
            else int(serve_spec.workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.worker_args = list(worker_args or [])
        self.request_timeout = float(request_timeout)
        self._inflight_cap = (int(serve_spec.queue_capacity)
                              + int(serve_spec.max_batch_size))

        self._ring = HashRing(replicas=int(serve_spec.hash_replicas))
        for slot in range(self.workers):
            self._ring.add(slot)
        self._slots: list[_WorkerHandle | None] = [None] * self.workers
        self._procs: list[subprocess.Popen | None] = [None] * self.workers
        self._respawn_at: list[float | None] = [None] * self.workers
        self._lock = threading.RLock()
        self._closing = False
        self._closed = False
        self._restarts = 0
        self._started_at = time.time()

        self._stats_lock = threading.Lock()
        self._http_requests = 0
        self._http_statuses: dict[str, int] = {}

        # Internal listener the workers dial back into (loopback only: the
        # framed hop is a private channel, not part of the public surface).
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.5)
        self.internal_port = self._listener.getsockname()[1]

        self._httpd = _Httpd((host, int(port)), _Handler)
        self._httpd.net = self
        self.host, self.port = self._httpd.server_address[:2]

        self._threads: list[threading.Thread] = []

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "NetServer":
        for slot in range(self.workers):
            self._spawn(slot)
        for target, name in ((self._accept_loop, "net-accept"),
                             (self._supervise, "net-supervisor"),
                             (self._refresh_poll, "net-refresh-poll"),
                             (self._httpd.serve_forever, "net-http")):
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)
        return self

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def wait_ready(self, timeout: float = 60.0) -> "NetServer":
        """Block until every worker slot has dialed in (or raise)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.live_workers() == self.workers:
                return self
            time.sleep(0.05)
        raise TimeoutError(
            f"only {self.live_workers()}/{self.workers} workers connected "
            f"within {timeout}s"
        )

    def _spawn(self, slot: int) -> None:
        argv = [sys.executable, "-m", "repro", "serve-worker",
                str(self.run_dir),
                "--connect", f"127.0.0.1:{self.internal_port}",
                "--worker-id", str(slot), *self.worker_args]
        env = os.environ.copy()
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self._procs[slot] = subprocess.Popen(argv, env=env)

    # ------------------------------------------------------- worker intake
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                conn.settimeout(10.0)
                ftype, meta, _ = recv_frame(conn)
                if ftype != FRAME_CTRL or meta.get("kind") != "worker-hello":
                    raise ClusterProtocolError("expected worker-hello")
                slot = int(meta["worker_id"])
                if not 0 <= slot < self.workers:
                    raise ClusterProtocolError(f"bogus worker id {slot}")
                conn.settimeout(None)
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except (ClusterProtocolError, ConnectionError, OSError,
                    KeyError, ValueError, socket.timeout):
                conn.close()
                continue
            handle = _WorkerHandle(slot, conn, meta.get("pid"),
                                   self._inflight_cap)
            with self._lock:
                old, self._slots[slot] = self._slots[slot], handle
                self._respawn_at[slot] = None
            if old is not None:
                old.close()

    def _supervise(self) -> None:
        backoff = float(self.spec.respawn_backoff_s)
        while not self._closing:
            time.sleep(0.1)
            now = time.monotonic()
            for slot in range(self.workers):
                with self._lock:
                    handle = self._slots[slot]
                    if handle is not None and not handle.alive:
                        self._slots[slot] = None
                        handle.close()
                proc = self._procs[slot]
                if proc is not None and proc.poll() is None:
                    continue  # process up (running or still dialing in)
                if self._closing:
                    return
                with self._lock:
                    due = self._respawn_at[slot]
                    if due is None:
                        # First sighting of the corpse: reap, start backoff.
                        self._respawn_at[slot] = now + backoff
                        continue
                if now >= due:
                    with self._lock:
                        self._respawn_at[slot] = None
                        self._restarts += 1
                    self._spawn(slot)

    def _refresh_poll(self) -> None:
        """Zero-downtime rollover: when the registry publishes a new
        snapshot, broadcast ``refresh`` so workers pick it up mid-traffic."""
        period = float(self.spec.refresh_poll_s)
        if period <= 0:
            return
        last = self._latest_registry_version()
        while not self._closing:
            time.sleep(period)
            if self._closing:
                return
            latest = self._latest_registry_version()
            if latest is not None and latest != last:
                last = latest
                try:
                    self.refresh()
                except Exception:  # noqa: BLE001 - next poll retries
                    pass

    def _latest_registry_version(self) -> int | None:
        try:
            return ModelRegistry(self.run_dir / "models").latest_version()
        except Exception:  # noqa: BLE001 - registry mid-publish
            return None

    # ------------------------------------------------------------ dispatch
    def live_workers(self) -> int:
        with self._lock:
            return sum(1 for h in self._slots if h is not None and h.alive)

    def record_status(self, status: int) -> None:
        with self._stats_lock:
            self._http_requests += 1
            key = str(status)
            self._http_statuses[key] = self._http_statuses.get(key, 0) + 1

    def dispatch(self, op: str, args: dict, arrays: dict):
        """Route one request to the worker owning its key; returns the
        worker outcome tuple (see :class:`_WorkerHandle.request`)."""
        key = routing_key(op, args, arrays,
                          prefix_anchor=int(self.spec.prefix_anchor))
        slot = self._ring.lookup(key)
        with self._lock:
            handle = self._slots[slot]
        if handle is None or not handle.alive:
            raise WorkerUnavailableError(
                f"worker {slot} (owner of this key) is down; respawn pending"
            )
        return handle.request(op, args, arrays, timeout=self.request_timeout)

    # ----------------------------------------------------------- broadcast
    def _live_handles(self) -> list[_WorkerHandle]:
        with self._lock:
            return [h for h in self._slots if h is not None and h.alive]

    def refresh(self) -> dict:
        """Tell every live worker to re-read the registry; returns the
        versions they now serve."""
        versions = {}
        for handle in self._live_handles():
            try:
                outcome = handle.ctrl("refresh")
            except WorkerUnavailableError:
                continue
            if outcome[0] == "ok":
                versions[str(handle.slot)] = outcome[1].get("version")
        live = [v for v in versions.values() if v is not None]
        return {"version": max(live) if live else None,
                "workers": versions}

    def stats(self) -> dict:
        per_worker = []
        for slot in range(self.workers):
            with self._lock:
                handle = self._slots[slot]
                proc = self._procs[slot]
            entry: dict = {"slot": slot,
                           "alive": handle is not None and handle.alive,
                           "pid": proc.pid if proc is not None else None}
            if handle is not None and handle.alive:
                entry["inflight"] = handle.inflight()
                try:
                    outcome = handle.ctrl("stats")
                    if outcome[0] == "ok":
                        entry.update(outcome[1])
                except WorkerUnavailableError:
                    entry["alive"] = False
            per_worker.append(entry)
        with self._stats_lock:
            http = {"requests": self._http_requests,
                    "statuses": dict(self._http_statuses)}
        return {"workers": self.workers, "live": self.live_workers(),
                "restarts": self._restarts, "http": http,
                "per_worker": per_worker,
                "uptime_s": time.time() - self._started_at}

    def registry_versions(self) -> dict:
        registry = ModelRegistry(self.run_dir / "models")
        return {"versions": registry.versions(),
                "latest": registry.latest_version()}

    # -------------------------------------------------------------- drain
    def close(self, timeout: float | None = None) -> dict | None:
        """Graceful drain; returns the final stats written to
        ``serve_stats.json`` (None when already closed)."""
        with self._lock:
            if self._closed:
                return None
            self._closed = True
        if timeout is None:
            timeout = float(self.spec.drain_timeout_s)
        deadline = time.monotonic() + max(timeout, 0.1)

        # 1. Stop HTTP intake; give in-flight handler threads a moment to
        #    finish so the final stats include them.
        self._httpd.shutdown()
        self._httpd.server_close()
        settle_by = min(deadline, time.monotonic() + 2.0)
        while time.monotonic() < settle_by:
            if all(h.inflight() == 0 for h in self._live_handles()):
                break
            time.sleep(0.05)

        # 2. Snapshot stats while workers can still answer.
        final_stats = self.stats()
        final_stats["drained"] = True

        # 3. Drain the workers: every accepted request is answered, then
        #    each says worker-bye and exits 0.
        self._closing = True  # stops accept/supervise/poll loops
        handles = self._live_handles()
        for handle in handles:
            handle.send_drain()
        for handle in handles:
            handle.bye.wait(timeout=max(deadline - time.monotonic(), 0.0))
        for slot, proc in enumerate(self._procs):
            if proc is None:
                continue
            try:
                proc.wait(timeout=max(deadline - time.monotonic(), 0.1))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

        # 4. Tear down sockets and record the session.
        with self._lock:
            leftovers = [h for h in self._slots if h is not None]
        for handle in leftovers:
            handle.close()
        try:
            self._listener.close()
        except OSError:
            pass
        final_stats["finished_at"] = time.time()
        try:
            stats_path = self.run_dir / SERVE_STATS_FILE
            stats_path.write_text(json.dumps(final_stats, indent=2,
                                             default=str))
        except OSError:
            pass
        return final_stats
