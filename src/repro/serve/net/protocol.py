"""Router <-> worker wire protocol + the request routing-key definition.

One hop, one frame.  Every message between the router and a worker is a
single frame of the cluster transport's framed wire protocol
(:mod:`repro.parallel.rendezvous`: magic/version/type header + JSON meta +
raw payload), so ndarray request/response payloads cross the socket as raw
bytes — no base64 inflation, no pickling.  This module owns what rides *in*
the frames:

* **multi-array payloads** — a request or response may carry several arrays
  (``conditional_probs`` sends prefix tokens and two count vectors); the
  meta lists ``{name, dtype, shape}`` per array in order and the raw payload
  is their concatenated bytes.  :func:`unpack_arrays` validates dtype,
  shape, and that the declared sizes tile the payload exactly, raising
  :class:`NetProtocolError` instead of reconstructing garbage — the same
  contract as the cluster transport's array frames.

* **the request/response envelope** — requests are ``FRAME_BLOB`` with meta
  ``{kind: "request", id, op, args, arrays}``; successful responses are
  ``FRAME_BLOB`` with ``{kind: "response", id, ok: true, result, arrays}``;
  failures are ``FRAME_CTRL`` with ``{kind: "response", id, ok: false,
  error: {code, message}}``.  ``id`` multiplexes concurrent requests over
  one connection; the worker echoes it verbatim.

* **error codes -> HTTP status** — :data:`ERROR_STATUS` is the single place
  the backpressure contract is spelled out: ``overloaded`` -> 429 (bounded
  queue full at either tier), ``closed``/``unavailable`` -> 503 (worker
  draining, dead, or not yet respawned), ``bad-request`` -> 400,
  ``internal`` -> 500.

* **the routing key** — :func:`routing_key` maps a request to the bytes the
  consistent-hash ring hashes (see DESIGN.md "Network serving tier" for the
  full definition and rationale).
"""
from __future__ import annotations

import math
import socket

import numpy as np

from repro.parallel.rendezvous import (
    FRAME_BLOB,
    FRAME_CTRL,
    ClusterProtocolError,
    send_frame,
)

__all__ = [
    "ERROR_STATUS",
    "NetProtocolError",
    "pack_arrays",
    "parse_request",
    "parse_response",
    "routing_key",
    "send_error",
    "send_request",
    "send_response",
    "unpack_arrays",
]


class NetProtocolError(ClusterProtocolError):
    """A router<->worker message violates the serving-tier envelope."""


# The backpressure contract on one line per failure mode.  429 means "the
# system is up but full — retry with backoff"; 503 means "the worker that
# owns this key is draining/dead — retry after the respawn window".
ERROR_STATUS = {
    "overloaded": 429,
    "closed": 503,
    "unavailable": 503,
    "bad-request": 400,
    "internal": 500,
}

# Ops a worker serves; the router rejects anything else with 404 before a
# byte crosses the internal socket.
OPS = ("log_amplitudes", "amplitudes", "sample", "conditional_probs",
       "local_energy")


# ------------------------------------------------------------ array payloads
def pack_arrays(arrays: dict[str, np.ndarray]) -> tuple[list[dict], bytes]:
    """``{name: ndarray}`` -> (meta list, concatenated raw bytes)."""
    metas, chunks = [], []
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        metas.append({"name": str(name), "dtype": arr.dtype.str,
                      "shape": list(arr.shape)})
        chunks.append(arr.tobytes())
    return metas, b"".join(chunks)


def unpack_arrays(metas: list, raw: bytes) -> dict[str, np.ndarray]:
    """Validated inverse of :func:`pack_arrays`.

    Raises :class:`NetProtocolError` on malformed metadata, a size mismatch
    between the declared arrays and the payload, or duplicate names.
    """
    if not isinstance(metas, list):
        raise NetProtocolError(
            f"arrays meta must be a list, got {type(metas).__name__}"
        )
    out: dict[str, np.ndarray] = {}
    offset = 0
    for meta in metas:
        if not isinstance(meta, dict):
            raise NetProtocolError(f"array meta must be a dict, got {meta!r}")
        try:
            name = str(meta["name"])
            dtype = np.dtype(meta["dtype"])
            shape = tuple(meta["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise NetProtocolError(f"malformed array meta: {exc!r}") from None
        if dtype.hasobject:
            raise NetProtocolError(f"array {name!r} declares an object dtype")
        if not all(isinstance(d, int) and d >= 0 for d in shape):
            raise NetProtocolError(f"array {name!r}: malformed shape {shape!r}")
        if name in out:
            raise NetProtocolError(f"duplicate array name {name!r}")
        nbytes = int(math.prod(shape)) * dtype.itemsize
        if offset + nbytes > len(raw):
            raise NetProtocolError(
                f"array {name!r} ({nbytes} bytes at offset {offset}) overruns "
                f"the {len(raw)}-byte payload"
            )
        out[name] = np.frombuffer(
            raw, dtype=dtype, count=int(math.prod(shape)), offset=offset
        ).reshape(shape).copy()
        offset += nbytes
    if offset != len(raw):
        raise NetProtocolError(
            f"declared arrays cover {offset} of {len(raw)} payload bytes"
        )
    return out


# -------------------------------------------------------------- the envelope
def send_request(sock: socket.socket, req_id: int, op: str,
                 args: dict | None = None,
                 arrays: dict[str, np.ndarray] | None = None) -> int:
    metas, raw = pack_arrays(arrays or {})
    meta = {"kind": "request", "id": int(req_id), "op": str(op),
            "args": args or {}, "arrays": metas}
    return send_frame(sock, FRAME_BLOB, meta, raw)


def send_response(sock: socket.socket, req_id: int,
                  result: dict | None = None,
                  arrays: dict[str, np.ndarray] | None = None) -> int:
    metas, raw = pack_arrays(arrays or {})
    meta = {"kind": "response", "id": int(req_id), "ok": True,
            "result": result or {}, "arrays": metas}
    return send_frame(sock, FRAME_BLOB, meta, raw)


def send_error(sock: socket.socket, req_id: int, code: str,
               message: str) -> int:
    if code not in ERROR_STATUS:
        code = "internal"
    meta = {"kind": "response", "id": int(req_id), "ok": False,
            "error": {"code": code, "message": str(message)}}
    return send_frame(sock, FRAME_CTRL, meta)


def _require_envelope(meta: dict, kind: str) -> int:
    if meta.get("kind") != kind:
        raise NetProtocolError(
            f"expected a {kind} envelope, got kind={meta.get('kind')!r}"
        )
    req_id = meta.get("id")
    if not isinstance(req_id, int):
        raise NetProtocolError(f"envelope id must be an int, got {req_id!r}")
    return req_id


def parse_request(ftype: int, meta: dict,
                  raw: bytes) -> tuple[int, str, dict, dict]:
    """Validated ``(id, op, args, arrays)`` from one received frame."""
    if ftype != FRAME_BLOB:
        raise NetProtocolError(f"requests are blob frames, got type {ftype}")
    req_id = _require_envelope(meta, "request")
    op = meta.get("op")
    if op not in OPS:
        raise NetProtocolError(f"unknown op {op!r} (valid: {', '.join(OPS)})")
    args = meta.get("args", {})
    if not isinstance(args, dict):
        raise NetProtocolError(f"request args must be a dict, got {args!r}")
    return req_id, op, args, unpack_arrays(meta.get("arrays", []), raw)


def parse_response(ftype: int, meta: dict,
                   raw: bytes) -> tuple[int, dict | None, dict, dict]:
    """Validated ``(id, error, result, arrays)``; ``error`` is None when ok.

    A failure response carries ``error = {"code", "message"}`` with the code
    normalized into :data:`ERROR_STATUS`.
    """
    req_id = _require_envelope(meta, "response")
    if meta.get("ok"):
        if ftype != FRAME_BLOB:
            raise NetProtocolError(
                f"ok responses are blob frames, got type {ftype}"
            )
        result = meta.get("result", {})
        if not isinstance(result, dict):
            raise NetProtocolError(f"response result must be a dict: {result!r}")
        return req_id, None, result, unpack_arrays(meta.get("arrays", []), raw)
    error = meta.get("error")
    if not isinstance(error, dict) or "code" not in error:
        raise NetProtocolError(f"malformed error envelope: {error!r}")
    code = error["code"] if error["code"] in ERROR_STATUS else "internal"
    return req_id, {"code": code,
                    "message": str(error.get("message", ""))}, {}, {}


# -------------------------------------------------------------- routing keys
def routing_key(op: str, args: dict, arrays: dict[str, np.ndarray],
                prefix_anchor: int = 8) -> bytes:
    """The bytes the consistent-hash ring hashes for one request.

    The key is chosen so state a worker builds while answering a request is
    *findable* by the requests that can reuse it (see DESIGN.md):

    * ``conditional_probs`` — the first ``prefix_anchor`` tokens of the
      first prefix row.  A client driving an autoregressive decode extends
      its prefix one token at a time; hashing only the anchor keeps every
      extension of one trajectory on the worker holding its live KV-cache
      session, while distinct trajectories (different openings) shard.
    * ``sample`` — the request seed: repeats of a seeded sweep return to the
      same worker's session pool; distinct seeds spread.
    * ``log_amplitudes`` / ``amplitudes`` / ``local_energy`` — the bytes of
      the first configuration row: batches over a coherent region of
      configuration space co-locate (amplitude-table reuse for
      ``local_energy``) while unrelated batches spread uniformly.
    """
    if op == "conditional_probs":
        prefix = arrays.get("prefix_tokens")
        if prefix is None or prefix.size == 0:
            return b"cp:"
        head = np.ascontiguousarray(prefix.reshape(prefix.shape[0], -1)[0])
        return b"cp:" + head[: max(int(prefix_anchor), 1)].tobytes()
    if op == "sample":
        return b"sd:%d" % int(args.get("seed", 0))
    bits = arrays.get("bits")
    if bits is None or bits.size == 0:
        return b"bt:"
    return b"bt:" + np.ascontiguousarray(
        bits.reshape(bits.shape[0], -1)[0]
    ).tobytes()
