"""The network serving tier: an HTTP front door over multi-process workers.

``python -m repro serve <run_dir> --port P --workers W`` turns a completed
run into a socket-facing inference service (see DESIGN.md "Network serving
tier"):

* a **router** process — a stdlib ``ThreadingHTTPServer`` accepting
  HTTP/JSON requests, plus a supervisor for ``W`` worker subprocesses;
* **workers** — each hosts one in-process
  :class:`~repro.serve.service.WavefunctionService` over the run's shared
  on-disk :class:`~repro.serve.registry.ModelRegistry`;
* the router <-> worker hop reuses the cluster transport's framed wire
  protocol (:mod:`repro.parallel.rendezvous`), so ndarray payloads cross as
  raw bytes, never base64;
* requests are routed by a **consistent hash** of their sampling prefix /
  coalescing key (:mod:`repro.serve.net.hashring`), so the per-worker
  prefix/session caches and amplitude tables *shard* across workers instead
  of duplicating;
* backpressure is end to end: bounded queues at both tiers map
  :class:`~repro.serve.scheduler.ServiceOverloadedError` to HTTP 429 and
  dead/closed workers to HTTP 503.
"""
from repro.serve.net.hashring import HashRing
from repro.serve.net.protocol import (
    ERROR_STATUS,
    NetProtocolError,
    pack_arrays,
    parse_request,
    parse_response,
    routing_key,
    send_error,
    send_request,
    send_response,
    unpack_arrays,
)
from repro.serve.net.router import (
    NetServer,
    RouterOverloadedError,
    WorkerUnavailableError,
)

__all__ = [
    "ERROR_STATUS",
    "HashRing",
    "NetProtocolError",
    "NetServer",
    "RouterOverloadedError",
    "WorkerUnavailableError",
    "pack_arrays",
    "parse_request",
    "parse_response",
    "routing_key",
    "send_error",
    "send_request",
    "send_response",
    "unpack_arrays",
]
