"""Consistent-hash ring: stable request -> worker placement.

Why consistent hashing instead of round-robin or ``hash(key) % W``: the
whole point of multi-worker serving over the PR 1/PR 2 cache machinery is
that the per-worker prefix/session caches and amplitude tables **shard**
rather than duplicate — a worker only ever sees the slice of key space it
owns, so W workers hold W distinct cache working sets.  That only pays off
if ownership is *stable*: with ``% W`` the entire mapping reshuffles when a
worker dies or the pool resizes, and every warmed cache everywhere becomes
garbage at once.  On a ring, removing a node remaps only the keys that node
owned (its arc is absorbed by the clockwise neighbors) and adding it back
restores the original placement exactly — the property the router leans on
when it keeps a crashed worker's slot in the ring through the respawn
window.

Each node is placed at ``replicas`` pseudo-random positions (blake2b of
``"{node}:{i}"``), which evens out arc lengths; lookups hash the key and
take the first node position clockwise.  Pure data structure, no locking —
the router serializes mutations behind its own lock.
"""
from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b

__all__ = ["HashRing"]


def _position(data: bytes) -> int:
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """Maps arbitrary key bytes to one of the registered node ids."""

    def __init__(self, replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._positions: list[int] = []   # sorted vnode positions
        self._owner: dict[int, object] = {}  # position -> node id

    def __len__(self) -> int:
        return len(set(self._owner.values()))

    def nodes(self) -> set:
        return set(self._owner.values())

    def add(self, node) -> None:
        if node in self.nodes():
            return
        for i in range(self.replicas):
            pos = _position(f"{node}:{i}".encode())
            # Astronomically unlikely 64-bit collision; skip rather than
            # silently stealing another node's vnode.
            if pos in self._owner:
                continue
            self._owner[pos] = node
            self._positions.insert(bisect_right(self._positions, pos), pos)

    def remove(self, node) -> None:
        gone = [pos for pos, owner in self._owner.items() if owner == node]
        for pos in gone:
            del self._owner[pos]
        if gone:
            dead = set(gone)
            self._positions = [p for p in self._positions if p not in dead]

    def lookup(self, key: bytes):
        """The node owning ``key`` (first vnode clockwise of its hash)."""
        if not self._positions:
            raise KeyError("hash ring is empty (no live workers)")
        idx = bisect_right(self._positions, _position(key))
        if idx == len(self._positions):
            idx = 0  # wrap past the top of the ring
        return self._owner[self._positions[idx]]
