"""`WavefunctionService`: concurrent evaluation of trained NNQS ansätze.

The trained wavefunction is a long-lived artifact queried by many downstream
consumers — sampling, local energies, observables, PES scans (cf. the
QiankunNet LM-for-chemistry framing and the Fugaku-scale NNQS follow-up).
This module turns the in-process :class:`NNQSWavefunction` into a service:

* request APIs: ``sample``, ``log_amplitudes``, ``amplitudes``,
  ``conditional_probs``, ``local_energy`` — synchronous wrappers around
  ``submit_*`` future-returning variants;
* a :class:`~repro.serve.scheduler.MicroBatcher` coalescing concurrent
  amplitude requests into single vectorized forward passes (bounded queue,
  backpressure, latency/batch-size knobs);
* a per-version :class:`~repro.serve.pool.SessionPool` +
  :class:`~repro.serve.pool.PrefixSessionCache` reusing KV caches across
  requests;
* a :class:`~repro.serve.registry.ModelRegistry` binding, so clients pin a
  model version while training publishes new ones.

Determinism contract:

* ``sample`` requests carry their own seed and run as one seeded
  ``batch_autoregressive_sample`` per request — responses are bit-identical
  to a direct in-process call with the same seed, for every ansatz.
* ``log_amplitudes`` / ``amplitudes`` are deterministic in their inputs;
  when a request is fused with others, per-element results may differ from
  a direct call by BLAS reduction-order rounding (<= 1e-15 relative;
  a group containing a single request reproduces the direct call exactly).
* ``local_energy`` reuses the service's per-version amplitude table: in
  ``exact`` mode the result is the same Eq. (4) sum either way; in
  ``sample_aware`` mode the accumulated table means the service sums over a
  *superset* of the single-request sampled set (less biased, documented).

Every model evaluation runs on the scheduler thread, so per-version state
needs no locking.  Versions are immutable once published; the service keys
all derived state by version, which is what makes cached amplitude tables
safe (their ``log Psi`` entries are only valid per parameter vector).
"""
from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.backend import get_backend, use_backend
from repro.core.local_energy import (
    AmplitudeTable,
    ElocPlan,
    build_amplitude_table,
    local_energy,
    merge_amplitude_tables,
    normalize_amplitude_table,
)
from repro.core.sampler import SampleBatch, batch_autoregressive_sample
from repro.core.wavefunction import NNQSWavefunction
from repro.hamiltonian.compressed import CompressedHamiltonian, compress_hamiltonian
from repro.serve.pool import PrefixSessionCache, SessionPool
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import MicroBatcher, RequestFailure, ServiceClosedError
from repro.utils.bitstrings import pack_bits, searchsorted_keys

__all__ = ["ServeConfig", "WavefunctionService"]


@dataclass
class ServeConfig:
    """Scheduler / cache knobs (trade-offs documented in DESIGN.md)."""

    max_batch_size: int = 256        # rows fused into one forward pass
    max_wait_ms: float = 2.0         # stragglers-latency budget per batch
    queue_capacity: int = 1024       # bounded queue => backpressure
    submit_timeout: float = 30.0     # seconds before overload rejection
    max_loaded_versions: int = 4     # resident snapshot LRU
    session_pool_size: int = 4       # idle sessions kept per version
    prefix_cache_entries: int = 8    # live decoding sessions per version
    table_max_entries: int = 500_000  # per-version amplitude-table cap
    backend: str = "numpy"           # array backend evaluations run under


class _LoadedModel:
    """One resident snapshot: wavefunction + its per-version reuse state."""

    __slots__ = ("version", "wf", "pool", "prefix_cache", "table",
                 "table_overflows", "eloc_plan", "backend")

    def __init__(self, version: int, wf: NNQSWavefunction, cfg: ServeConfig):
        self.version = version
        self.wf = wf
        # Per-version array-backend placement: every evaluation of this
        # snapshot (fused forwards, sampling, local energies) runs under
        # this backend's xp namespace on the scheduler thread.
        self.backend = get_backend(cfg.backend)
        self.pool = SessionPool(wf.amplitude, max_idle=cfg.session_pool_size)
        self.prefix_cache = PrefixSessionCache(
            self.pool, max_entries=cfg.prefix_cache_entries
        )
        self.table: AmplitudeTable | None = None
        self.table_overflows = 0
        # Compiled local-energy plan, one per version alongside the cached
        # amplitude table (built lazily on the first local_energy request;
        # evicted together with the snapshot's other per-version caches).
        self.eloc_plan: ElocPlan | None = None


class WavefunctionService:
    """Serve one or more wavefunction snapshots to concurrent clients.

    ``model`` is either a :class:`ModelRegistry` (versioned serving: clients
    may pin any published version, ``refresh()`` follows the latest) or a
    bare :class:`NNQSWavefunction` (single-model serving as version 0; the
    service treats the parameters as immutable — republish through a
    registry to change them).
    """

    LOCAL_VERSION = 0

    def __init__(
        self,
        model: ModelRegistry | NNQSWavefunction,
        hamiltonian: CompressedHamiltonian | Any | None = None,
        config: ServeConfig | None = None,
    ):
        self.config = config or ServeConfig()
        self._models: OrderedDict[int, _LoadedModel] = OrderedDict()
        if isinstance(model, ModelRegistry):
            self.registry: ModelRegistry | None = model
            self._active_version = model.latest_version()
        else:
            self.registry = None
            self._active_version = self.LOCAL_VERSION
            self._models[self.LOCAL_VERSION] = _LoadedModel(
                self.LOCAL_VERSION, model, self.config
            )
        self.comp: CompressedHamiltonian | None = None
        if hamiltonian is not None:
            self.comp = (
                hamiltonian
                if isinstance(hamiltonian, CompressedHamiltonian)
                else compress_hamiltonian(hamiltonian)
            )
        self._batcher = MicroBatcher(
            self._run_group,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            queue_capacity=self.config.queue_capacity,
            submit_timeout=self.config.submit_timeout,
        )
        self._op_counts: dict[str, int] = {}
        # Guards _models / _op_counts structure: the scheduler thread
        # mutates them while monitoring threads snapshot via stats().
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "WavefunctionService":
        self._batcher.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Shut the service down; with ``drain`` (default) every accepted
        request is answered first — see :meth:`MicroBatcher.close`."""
        self._batcher.close(drain=drain)

    def __enter__(self) -> "WavefunctionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- versions
    def refresh(self) -> int | None:
        """Re-read the registry; subsequent unpinned requests use the latest
        published version.  Pinned (explicit-version) requests are unaffected."""
        if self.registry is not None:
            self._active_version = self.registry.latest_version()
        return self._active_version

    def active_version(self) -> int | None:
        return self._active_version

    def _resolve(self, version: int | None) -> int:
        if version is not None:
            return int(version)
        if self._active_version is None:
            raise ServiceClosedError(
                "registry has no published versions yet (publish, then refresh())"
            )
        return self._active_version

    def _model(self, version: int) -> _LoadedModel:
        """Resident snapshot for ``version`` (scheduler thread only)."""
        with self._state_lock:
            entry = self._models.get(version)
            if entry is not None:
                self._models.move_to_end(version)
                return entry
        if self.registry is None:
            raise KeyError(
                f"single-model service only serves version {self.LOCAL_VERSION}, "
                f"got {version}"
            )
        wf, _ = self.registry.load(version)
        entry = _LoadedModel(version, wf, self.config)
        with self._state_lock:
            self._models[version] = entry
            while len(self._models) > self.config.max_loaded_versions:
                self._models.popitem(last=False)  # evict LRU snapshot + caches
        return entry

    # ------------------------------------------------------------- requests
    def submit_sample(self, n_samples: int, seed: int, version: int | None = None,
                      timeout: float | None = None):
        return self._batcher.submit(
            ("sample", self._resolve(version)), (int(n_samples), int(seed)),
            timeout=timeout,
        )

    def sample(self, n_samples: int, seed: int, version: int | None = None) -> SampleBatch:
        """Seeded BAS sampling; bit-identical to the same direct seeded call."""
        return self.submit_sample(n_samples, seed, version).result()

    def submit_log_amplitudes(self, bits: np.ndarray, version: int | None = None,
                              timeout: float | None = None):
        bits = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
        return self._batcher.submit(
            ("log_amps", self._resolve(version)), bits, n_rows=len(bits),
            timeout=timeout,
        )

    def log_amplitudes(self, bits: np.ndarray, version: int | None = None) -> np.ndarray:
        """(B,) complex log Psi(x) — the microbatched hot path."""
        return self.submit_log_amplitudes(bits, version).result()

    def submit_amplitudes(self, bits: np.ndarray, version: int | None = None,
                          timeout: float | None = None):
        bits = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
        return self._batcher.submit(
            ("amps", self._resolve(version)), bits, n_rows=len(bits),
            timeout=timeout,
        )

    def amplitudes(self, bits: np.ndarray, version: int | None = None) -> np.ndarray:
        return self.submit_amplitudes(bits, version).result()

    def submit_conditional_probs(self, prefix_tokens: np.ndarray,
                                 counts_up: np.ndarray, counts_dn: np.ndarray,
                                 version: int | None = None,
                                 timeout: float | None = None):
        payload = (
            np.atleast_2d(np.asarray(prefix_tokens, dtype=np.int64)),
            np.asarray(counts_up, dtype=np.int64),
            np.asarray(counts_dn, dtype=np.int64),
        )
        return self._batcher.submit(
            ("cond_probs", self._resolve(version)), payload,
            n_rows=len(payload[0]), timeout=timeout,
        )

    def conditional_probs(self, prefix_tokens: np.ndarray, counts_up: np.ndarray,
                          counts_dn: np.ndarray,
                          version: int | None = None) -> np.ndarray:
        """(B, vocab) masked next-token conditionals, KV-cache accelerated.

        Successive calls extending the same prefix by one token are served
        with a single cached ``step`` (the inference-server decode loop);
        identical repeats replay stored logits.
        """
        return self.submit_conditional_probs(
            prefix_tokens, counts_up, counts_dn, version
        ).result()

    def submit_local_energy(self, batch: SampleBatch, mode: str = "exact",
                            version: int | None = None,
                            timeout: float | None = None):
        if self.comp is None:
            raise ValueError("service was built without a Hamiltonian")
        return self._batcher.submit(
            ("local_energy", self._resolve(version)), (batch, mode),
            n_rows=batch.n_unique, timeout=timeout,
        )

    def local_energy(self, batch: SampleBatch, mode: str = "exact",
                     version: int | None = None) -> np.ndarray:
        """(U,) E_loc over ``batch``, reusing the version's amplitude table."""
        return self.submit_local_energy(batch, mode, version).result()

    # ------------------------------------------------------------ execution
    def _run_group(self, key: tuple, payloads: list) -> list:
        op, version = key
        with self._state_lock:
            self._op_counts[op] = self._op_counts.get(op, 0) + len(payloads)
        model = self._model(version)
        with use_backend(model.backend):
            if op == "log_amps":
                return self._run_fused(model.wf.log_amplitudes, payloads)
            if op == "amps":
                return self._run_fused(model.wf.amplitudes, payloads)
            if op == "cond_probs":
                return [self._run_cond_probs(model, p) for p in payloads]
            if op == "sample":
                return [self._run_sample(model, p) for p in payloads]
            if op == "local_energy":
                return [self._run_local_energy(model, p) for p in payloads]
        raise RuntimeError(f"unknown op {op!r}")  # pragma: no cover

    @staticmethod
    def _run_fused(evaluate, payloads: list) -> list:
        """One vectorized forward over the concatenated request rows.

        A group that fails as a whole (e.g. one client sent malformed bits,
        breaking the concatenation) falls back to per-request evaluation so
        a single bad request cannot poison the others fused with it.
        """
        if len(payloads) == 1:
            return [evaluate(payloads[0])]
        try:
            sizes = np.cumsum([len(p) for p in payloads])[:-1]
            out = evaluate(np.concatenate(payloads, axis=0))
            return np.split(out, sizes)
        except Exception:  # noqa: BLE001 - isolated per request below
            results = []
            for p in payloads:
                try:
                    results.append(evaluate(p))
                except Exception as exc:  # noqa: BLE001
                    results.append(RequestFailure(exc))
            return results

    def _run_cond_probs(self, model: _LoadedModel, payload) -> np.ndarray:
        prefix, counts_up, counts_dn = payload
        logits = model.prefix_cache.next_logits(prefix)
        return model.wf.probs_from_logits(
            logits, counts_up, counts_dn, prefix.shape[1]
        )

    def _run_sample(self, model: _LoadedModel, payload) -> SampleBatch:
        n_samples, seed = payload
        rng = np.random.default_rng(seed)
        with model.pool.lease(model.wf):
            return batch_autoregressive_sample(model.wf, n_samples, rng)

    def _run_local_energy(self, model: _LoadedModel, payload) -> np.ndarray:
        batch, mode = payload
        if model.eloc_plan is None:
            model.eloc_plan = ElocPlan(self.comp)
        table = self._table_with_samples(model, batch)
        eloc, table = local_energy(model.wf, self.comp, batch, mode=mode,
                                   table=table, plan=model.eloc_plan)
        if table.n_entries <= self.config.table_max_entries:
            model.table = table
        else:
            # Over the cap: keep the previous under-cap table (bounded
            # memory, reuse of the older working set preserved) rather than
            # dropping to a permanent cold start.
            model.table_overflows += 1
        return eloc

    def _table_with_samples(self, model: _LoadedModel,
                            batch: SampleBatch) -> AmplitudeTable:
        """The version's table, grown to cover ``batch`` — only amplitudes of
        configurations never seen under this version are evaluated.

        Client batches are untrusted: rows may repeat (the SampleBatch
        unique-rows contract is a sampler guarantee, not a wire invariant),
        so both the first-request build and every merge normalize to the
        sorted-unique table invariant — a duplicate key would make later
        binary searches hit an arbitrary copy.
        """
        if model.table is None:
            return normalize_amplitude_table(build_amplitude_table(model.wf, batch))
        keys = pack_bits(batch.bits)
        missing = searchsorted_keys(model.table.keys, keys) < 0
        if not missing.any():
            return model.table
        fresh = build_amplitude_table(
            model.wf,
            SampleBatch(bits=batch.bits[missing],
                        weights=np.ones(int(missing.sum()), dtype=np.int64)),
        )
        return merge_amplitude_tables(model.table, fresh)

    # ----------------------------------------------------------- monitoring
    def stats(self) -> dict:
        """Scheduler + per-version reuse counters (for tests and benches)."""
        with self._state_lock:
            models = list(self._models.items())
            ops = dict(self._op_counts)
        per_version = {
            v: {
                "pool": m.pool.stats(),
                "prefix_cache": m.prefix_cache.stats(),
                "table_entries": 0 if m.table is None else m.table.n_entries,
                "table_overflows": m.table_overflows,
                "eloc_plan_compiled": m.eloc_plan is not None,
            }
            for v, m in models
        }
        return {
            "batcher": self._batcher.stats.as_dict(),
            "ops": ops,
            "versions": per_version,
            "active_version": self._active_version,
        }
