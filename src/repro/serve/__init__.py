"""The serving layer: concurrent wavefunction evaluation as a service.

Turns a trained NNQS ansatz into a long-lived, versioned artifact that many
concurrent consumers query — the production-inference shape the paper's
batched sampler and amplitude LUT are already built for.  See DESIGN.md
("Serving layer") for the architecture:

* :class:`WavefunctionService` — request APIs (``sample``,
  ``log_amplitudes``, ``conditional_probs``, ``local_energy``) behind a
  microbatching scheduler;
* :class:`MicroBatcher` — bounded-queue request coalescing with
  latency/batch-size knobs and backpressure;
* :class:`SessionPool` / :class:`PrefixSessionCache` — KV-cache reuse
  across requests;
* :class:`ModelRegistry` — versioned, immutable model snapshots; clients
  pin a version while training publishes new ones.
"""
from repro.serve.pool import PrefixSessionCache, SessionPool
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import (
    BatcherStats,
    MicroBatcher,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve.service import ServeConfig, WavefunctionService

__all__ = [
    "BatcherStats",
    "MicroBatcher",
    "ModelRegistry",
    "PrefixSessionCache",
    "ServeConfig",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "SessionPool",
    "WavefunctionService",
]
