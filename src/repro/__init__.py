"""NNQS-Transformer (QiankunNet) reproduction — SC '23.

A from-scratch Python implementation of "NNQS-Transformer: an Efficient and
Scalable Neural Network Quantum States Approach for Ab initio Quantum
Chemistry" (Wu, Guo, Fan, Zhou, Shang), including every substrate the paper
relies on: a numpy autograd engine + transformer (PyTorch substitute), a
Gaussian-integral/HF/FCI/CCSD quantum-chemistry stack (PySCF substitute),
Jordan-Wigner + compressed Pauli Hamiltonian storage (OpenFermion
substitute), batch autoregressive sampling, the vectorized local-energy
kernel, and the data-centric parallel VMC driver.

Quickstart::

    from repro import build_problem, build_qiankunnet, VMC, VMCConfig

    prob = build_problem("H2", "sto-3g")
    wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn)
    vmc = VMC(wf, prob.hamiltonian, VMCConfig(n_samples=10**5))
    vmc.run(400, log_every=50)
    print(vmc.best_energy())
"""
from repro.chem import build_problem, make_molecule, run_ccsd, run_fci, run_rhf
from repro import api
from repro.api import RunSpec, run, resume, serve_run
from repro.core import (
    VMC,
    VMCConfig,
    batch_autoregressive_sample,
    build_qiankunnet,
    local_energy,
    pretrain_to_reference,
)
from repro.hamiltonian import compress_hamiltonian, jordan_wigner
from repro.parallel import (
    DataParallelVMC,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)

__version__ = "1.0.0"

__all__ = [
    "api",
    "RunSpec",
    "run",
    "resume",
    "serve_run",
    "build_problem",
    "make_molecule",
    "run_ccsd",
    "run_fci",
    "run_rhf",
    "VMC",
    "VMCConfig",
    "batch_autoregressive_sample",
    "build_qiankunnet",
    "local_energy",
    "pretrain_to_reference",
    "compress_hamiltonian",
    "jordan_wigner",
    "DataParallelVMC",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "__version__",
]
