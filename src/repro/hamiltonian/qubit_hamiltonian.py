"""Container for a qubit (spin) Hamiltonian: H = sum_i c_i P_i  (Eq. 10).

Terms are stored in the symplectic (x_mask, z_mask) representation as packed
uint64 arrays so the local-energy kernels can operate on them with vectorized
numpy.  Coefficients are kept in the *letter* basis (real for molecular
Hamiltonians); the identity constant (including nuclear repulsion) is kept
separately so <H> is the total energy.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hamiltonian.pauli import PauliTerm, xz_to_letters
from repro.utils.bitstrings import popcount64

__all__ = ["QubitHamiltonian"]


@dataclass
class QubitHamiltonian:
    n_qubits: int
    x_masks: np.ndarray       # (K, W) uint64 — XY occurrence masks (flip masks)
    z_masks: np.ndarray       # (K, W) uint64 — YZ occurrence masks (sign masks)
    coeffs: np.ndarray        # (K,) float64 — letter-basis coefficients
    constant: float = 0.0     # identity coefficient (incl. nuclear repulsion)
    n_electrons: int | None = None

    def __post_init__(self):
        self.x_masks = np.atleast_2d(np.asarray(self.x_masks, dtype=np.uint64))
        self.z_masks = np.atleast_2d(np.asarray(self.z_masks, dtype=np.uint64))
        self.coeffs = np.asarray(self.coeffs, dtype=np.float64)

    @property
    def n_terms(self) -> int:
        """N_h: number of non-identity Pauli strings."""
        return len(self.coeffs)

    @property
    def n_words(self) -> int:
        return self.x_masks.shape[1]

    def y_counts(self) -> np.ndarray:
        """Number of Y letters per term = |x & z|."""
        return popcount64(self.x_masks & self.z_masks).sum(axis=1)

    def to_terms(self) -> list[PauliTerm]:
        """Expand into PauliTerm objects (letter-basis coeff -> xz coeff)."""
        out = []
        for k in range(self.n_terms):
            x = z = 0
            for w in range(self.n_words):
                x |= int(self.x_masks[k, w]) << (64 * w)
                z |= int(self.z_masks[k, w]) << (64 * w)
            n_y = bin(x & z).count("1")
            out.append(
                PauliTerm(x=x, z=z, coeff=self.coeffs[k] * (1j) ** n_y, n=self.n_qubits)
            )
        return out

    def term_strings(self) -> list[tuple[float, str]]:
        """[(coeff, 'XYZI...'), ...] — the Fig. 6(a) symbolic representation."""
        out = []
        for t in self.to_terms():
            out.append((float(np.real(t.letter_coeff())), xz_to_letters(t.x, t.z, self.n_qubits)))
        return out

    def memory_bytes_symbolic(self) -> int:
        """Fig. 6(a): one byte per Pauli letter + an 8-byte coefficient."""
        return self.n_terms * (self.n_qubits + 8)

    def prune(self, tol: float = 1e-12) -> "QubitHamiltonian":
        keep = np.abs(self.coeffs) > tol
        return QubitHamiltonian(
            n_qubits=self.n_qubits,
            x_masks=self.x_masks[keep],
            z_masks=self.z_masks[keep],
            coeffs=self.coeffs[keep],
            constant=self.constant,
            n_electrons=self.n_electrons,
        )
