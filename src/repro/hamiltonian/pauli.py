"""Symplectic Pauli-operator algebra over integer bit masks.

A Pauli string on N qubits is stored as a pair of Python integers
``(x_mask, z_mask)`` representing the operator ``X^x Z^z`` (site-wise
``X^{x_j} Z^{z_j}``) with a complex coefficient.  The Pauli letters are
recovered via ``Y = i X Z``:

    letters(x, z): X where x&~z, Z where z&~x, Y where x&z  (phase i^{n_Y})

Products are computed with the symplectic rule
``X^a Z^b · X^c Z^d = (-1)^{|b & c|} X^{a^c} Z^{b^d}``, which is all that is
needed to assemble molecular Hamiltonians under the Jordan-Wigner mapping.

Matrix elements in the computational basis (bit j of ``x`` = occupation of
qubit j, Z|b> = (-1)^b |b>):

    <x'| c * X^a Z^b |x> = c * (-1)^{|b & x|} * delta_{x', x XOR a}

so a term's *letter-basis* coefficient and Y-count determine the real
"new coefficient" used by the paper's compressed data structure
(Algorithm 1, line 13): c_letters * real((-i)^{n_Y}).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PauliTerm",
    "pauli_mul",
    "letters_to_xz",
    "xz_to_letters",
    "term_matrix",
    "strings_to_matrix",
]


@dataclass(frozen=True)
class PauliTerm:
    """A single Pauli string ``coeff * X^x Z^z`` on ``n`` qubits."""

    x: int
    z: int
    coeff: complex
    n: int

    @property
    def n_y(self) -> int:
        return bin(self.x & self.z).count("1")

    def letter_coeff(self) -> complex:
        """Coefficient in the Pauli-letter basis (I/X/Y/Z products)."""
        # X^x Z^z = (-i)^{n_Y} * letters  =>  letters coeff = coeff * i^{-n_Y}?
        # From letters = i^{n_Y} X^x Z^z:  coeff_letters * letters =
        # coeff_letters * i^{n_Y} X^x Z^z, so coeff_xz = coeff_letters * i^{n_Y}.
        return self.coeff / (1j) ** self.n_y

    def letters(self) -> str:
        return xz_to_letters(self.x, self.z, self.n)


def pauli_mul(x1: int, z1: int, x2: int, z2: int) -> tuple[int, int, int]:
    """(X^x1 Z^z1)(X^x2 Z^z2) = sign * X^{x1^x2} Z^{z1^z2}; returns (x, z, sign)."""
    sign = -1 if bin(z1 & x2).count("1") % 2 else 1
    return x1 ^ x2, z1 ^ z2, sign


def letters_to_xz(pauli: str) -> tuple[int, int, complex]:
    """'XIYZ' (qubit 0 first) -> (x_mask, z_mask, phase) with phase = i^{n_Y}."""
    x = z = 0
    n_y = 0
    for j, ch in enumerate(pauli):
        if ch == "X":
            x |= 1 << j
        elif ch == "Y":
            x |= 1 << j
            z |= 1 << j
            n_y += 1
        elif ch == "Z":
            z |= 1 << j
        elif ch != "I":
            raise ValueError(f"invalid Pauli letter {ch!r}")
    return x, z, (1j) ** n_y


def xz_to_letters(x: int, z: int, n: int) -> str:
    out = []
    for j in range(n):
        xb, zb = (x >> j) & 1, (z >> j) & 1
        out.append("IXZY"[xb + 2 * zb] if (xb + 2 * zb) != 3 else "Y")
    return "".join(out)


# ----------------------------------------------------------- dense matrices
_X = np.array([[0.0, 1.0], [1.0, 0.0]])
_Z = np.array([[1.0, 0.0], [0.0, -1.0]])
_I = np.eye(2)


def term_matrix(x: int, z: int, n: int) -> np.ndarray:
    """Dense matrix of X^x Z^z on n qubits (qubit 0 = least significant bit).

    Basis index of configuration c is the integer c itself, i.e. qubit j
    contributes bit j.  Used only in tests / tiny exact diagonalization.
    """
    mat = np.array([[1.0]])
    for j in range(n):
        op = _I
        xb, zb = (x >> j) & 1, (z >> j) & 1
        if xb and zb:
            op = _X @ _Z
        elif xb:
            op = _X
        elif zb:
            op = _Z
        # qubit j is the *low* bit: index = sum_j b_j 2^j -> kron(op_j later)
        mat = np.kron(op, mat)
    return mat


def strings_to_matrix(terms: list[PauliTerm]) -> np.ndarray:
    """Dense Hamiltonian from a term list (test helper; exponential cost)."""
    if not terms:
        return np.zeros((1, 1))
    n = terms[0].n
    dim = 2**n
    H = np.zeros((dim, dim), dtype=np.complex128)
    for t in terms:
        H += t.coeff * term_matrix(t.x, t.z, n)
    return H
