"""Qubit operators for physical observables beyond the energy.

All operators act on the interleaved spin-orbital layout of the paper
(spatial orbital ``i`` -> qubits ``2i`` (alpha) and ``2i + 1`` (beta)) and are
returned as :class:`~repro.hamiltonian.qubit_hamiltonian.QubitHamiltonian`
instances, so every expectation value can be estimated with exactly the same
local-estimator machinery (Eq. 4 with H replaced by O) and, on small systems,
checked against the sector-exact value.

Provided operators:

* ``number_operator``        — total electron number N = sum_P n_P
* ``number_up/dn_operator``  — per-spin electron counts
* ``sz_operator``            — S_z = (N_up - N_dn) / 2
* ``s2_operator``            — total spin S^2 = S_- S_+ + S_z (S_z + 1)
* ``occupation_operator``    — n_P of a single spin orbital
* ``double_occupancy_operator`` — sum_i n_{i,up} n_{i,dn}
* ``one_body_operator``      — generic sum_PQ o_PQ a+_P a_Q (e.g. dipole)
"""
from __future__ import annotations

import numpy as np

from repro.hamiltonian.jordan_wigner import jordan_wigner_fermion_terms
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian

__all__ = [
    "number_operator",
    "number_up_operator",
    "number_dn_operator",
    "sz_operator",
    "s2_operator",
    "occupation_operator",
    "double_occupancy_operator",
    "one_body_operator",
]


def occupation_operator(p: int, n_qubits: int) -> QubitHamiltonian:
    """n_P = a+_P a_P for one spin orbital (qubit) ``p``."""
    return jordan_wigner_fermion_terms(
        [(1.0, [(p, True), (p, False)])], n_qubits
    )


def _number(orbitals: list[int], n_qubits: int) -> QubitHamiltonian:
    terms = [(1.0, [(p, True), (p, False)]) for p in orbitals]
    return jordan_wigner_fermion_terms(terms, n_qubits)


def number_operator(n_qubits: int) -> QubitHamiltonian:
    """Total electron number operator N."""
    return _number(list(range(n_qubits)), n_qubits)


def number_up_operator(n_qubits: int) -> QubitHamiltonian:
    """N_up: number of spin-up electrons (even qubits)."""
    return _number(list(range(0, n_qubits, 2)), n_qubits)


def number_dn_operator(n_qubits: int) -> QubitHamiltonian:
    """N_dn: number of spin-down electrons (odd qubits)."""
    return _number(list(range(1, n_qubits, 2)), n_qubits)


def sz_operator(n_qubits: int) -> QubitHamiltonian:
    """S_z = (N_up - N_dn) / 2 in units of hbar."""
    terms = [(+0.5, [(p, True), (p, False)]) for p in range(0, n_qubits, 2)]
    terms += [(-0.5, [(p, True), (p, False)]) for p in range(1, n_qubits, 2)]
    return jordan_wigner_fermion_terms(terms, n_qubits)


def s2_operator(n_qubits: int) -> QubitHamiltonian:
    """Total spin S^2 = S_- S_+ + S_z (S_z + 1).

    With S_+ = sum_i a+_{i,up} a_{i,dn}:

        S_- S_+ = sum_{ij} a+_{i,dn} a_{i,up} a+_{j,up} a_{j,dn}

    and S_z^2 expands into two-body number products.  Eigenvalues are
    S (S + 1): 0 for singlets, 2 for triplets, etc.
    """
    if n_qubits % 2:
        raise ValueError("spin operators need an even number of qubits")
    n_orb = n_qubits // 2
    up = [2 * i for i in range(n_orb)]
    dn = [2 * i + 1 for i in range(n_orb)]
    terms: list[tuple[complex, list[tuple[int, bool]]]] = []
    # S_- S_+
    for i in range(n_orb):
        for j in range(n_orb):
            terms.append(
                (1.0, [(dn[i], True), (up[i], False), (up[j], True), (dn[j], False)])
            )
    # S_z^2 = 1/4 sum_{ij} (n_iu - n_id)(n_ju - n_jd)
    for i in range(n_orb):
        for j in range(n_orb):
            for (p, sp) in ((up[i], +1), (dn[i], -1)):
                for (q, sq) in ((up[j], +1), (dn[j], -1)):
                    terms.append(
                        (0.25 * sp * sq,
                         [(p, True), (p, False), (q, True), (q, False)])
                    )
    # + S_z
    for p in up:
        terms.append((+0.5, [(p, True), (p, False)]))
    for p in dn:
        terms.append((-0.5, [(p, True), (p, False)]))
    return jordan_wigner_fermion_terms(terms, n_qubits)


def double_occupancy_operator(n_qubits: int) -> QubitHamiltonian:
    """sum_i n_{i,up} n_{i,dn} — number of doubly occupied spatial orbitals."""
    if n_qubits % 2:
        raise ValueError("double occupancy needs an even number of qubits")
    terms = []
    for i in range(n_qubits // 2):
        u, d = 2 * i, 2 * i + 1
        terms.append((1.0, [(u, True), (u, False), (d, True), (d, False)]))
    return jordan_wigner_fermion_terms(terms, n_qubits)


def one_body_operator(o: np.ndarray, constant: float = 0.0) -> QubitHamiltonian:
    """Generic one-body operator sum_PQ o[P, Q] a+_P a_Q (+ constant).

    ``o`` must be a Hermitian ``(n_so, n_so)`` matrix in the *spin-orbital*
    basis (use :func:`repro.chem.mo_integrals.to_spin_orbitals`-style
    interleaving).  Typical use: dipole-moment components, density operators.
    """
    o = np.asarray(o)
    if o.ndim != 2 or o.shape[0] != o.shape[1]:
        raise ValueError("one-body operator must be a square matrix")
    if not np.allclose(o, o.conj().T, atol=1e-10):
        raise ValueError("one-body operator must be Hermitian")
    n = o.shape[0]
    terms = []
    for p, q in zip(*np.nonzero(np.abs(o) > 1e-12)):
        terms.append((o[p, q], [(int(p), True), (int(q), False)]))
    return jordan_wigner_fermion_terms(terms, n, constant=constant)
