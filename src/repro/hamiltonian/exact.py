"""Exact ground state in a fixed particle-number sector (the FCI backend).

The qubit Hamiltonian conserves the number of spin-up electrons (even qubits)
and spin-down electrons (odd qubits) separately, so the exact ground state can
be found in the C(n_orb, n_up) x C(n_orb, n_dn) determinant sector.  The
matrix-vector product reuses the compressed (Fig. 6c) structure: every unique
XY mask is one permutation x -> x XOR mask of the sector basis, with a
sign/coefficient computed from the YZ masks — i.e. exactly the arithmetic of
the paper's local-energy kernel, applied to the whole sector at once.
"""
from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np
import scipy.sparse.linalg as spla

from repro.hamiltonian.compressed import CompressedHamiltonian, compress_hamiltonian
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian
from repro.utils.bitstrings import (
    lexsort_keys,
    pack_bits,
    parity64,
    searchsorted_keys,
    unpack_bits,
)

__all__ = ["SectorBasis", "sector_basis", "exact_ground_state", "sector_hamiltonian_dense"]


@dataclass
class SectorBasis:
    """Sorted packed keys of all determinants with (n_up, n_dn) electrons."""

    n_qubits: int
    n_up: int
    n_dn: int
    keys: np.ndarray  # (D, W) uint64, lexsorted

    @property
    def dim(self) -> int:
        return len(self.keys)

    def bits(self) -> np.ndarray:
        return unpack_bits(self.keys, self.n_qubits)


def sector_basis(n_qubits: int, n_up: int, n_dn: int) -> SectorBasis:
    """Enumerate the particle-number sector (interleaved spin convention)."""
    if n_qubits % 2:
        raise ValueError("interleaved spin convention requires even qubit count")
    n_orb = n_qubits // 2
    up_masks = [sum(1 << (2 * i) for i in occ) for occ in combinations(range(n_orb), n_up)]
    dn_masks = [sum(1 << (2 * i + 1) for i in occ) for occ in combinations(range(n_orb), n_dn)]
    total = [u | d for u in up_masks for d in dn_masks]
    w = (n_qubits + 63) // 64
    keys = np.zeros((len(total), w), dtype=np.uint64)
    mask64 = (1 << 64) - 1
    for i, v in enumerate(total):
        for word in range(w):
            keys[i, word] = (v >> (64 * word)) & mask64
    keys = keys[lexsort_keys(keys)]
    return SectorBasis(n_qubits=n_qubits, n_up=n_up, n_dn=n_dn, keys=keys)


def _group_structure(comp: CompressedHamiltonian, basis: SectorBasis):
    """Precompute, per XY group, the permutation and sign-coefficients.

    Returns lists (targets, coefs): for group g, ``targets[g]`` maps each
    source determinant index to the index of x XOR mask (or -1 if outside the
    sector) and ``coefs[g][d] = sum_i c_i (-1)^{|x_d & yz_i|}``.
    """
    keys = basis.keys
    targets, coefs = [], []
    for g in range(comp.n_groups):
        mask = comp.xy_unique[g]
        flipped = keys ^ mask[None, :]
        tgt = searchsorted_keys(keys, flipped)
        lo, hi = comp.idxs[g], comp.idxs[g + 1]
        acc = np.zeros(basis.dim)
        for j in range(lo, hi):
            # total parity of |x & yz| across all 64-bit words
            par = parity64(keys & comp.yz_buf[j][None, :]).sum(axis=1) % 2
            acc += comp.coeffs_buf[j] * (1.0 - 2.0 * par)
        targets.append(tgt)
        coefs.append(acc)
    return targets, coefs


def exact_ground_state(
    h: QubitHamiltonian | CompressedHamiltonian,
    n_up: int | None = None,
    n_dn: int | None = None,
    k: int = 1,
    method: str = "auto",
) -> tuple[float, np.ndarray, SectorBasis]:
    """Lowest eigenpair(s) of H restricted to the (n_up, n_dn) sector.

    Returns ``(energy, ground_state_vector, basis)``; the energy includes the
    Hamiltonian constant (nuclear repulsion), i.e. it is the FCI total energy.

    ``method``: ``'dense'`` (full diagonalization), ``'davidson'`` (Davidson–
    Liu with diagonal preconditioning — the production solver for big
    sectors), ``'lanczos'`` (scipy eigsh), or ``'auto'`` (dense for small
    sectors, Davidson otherwise, Lanczos as a convergence fallback).
    """
    comp = h if isinstance(h, CompressedHamiltonian) else compress_hamiltonian(h)
    if n_up is None or n_dn is None:
        if comp.n_electrons is None:
            raise ValueError("specify n_up / n_dn or set n_electrons")
        n_up = comp.n_electrons // 2 + comp.n_electrons % 2
        n_dn = comp.n_electrons // 2
    basis = sector_basis(comp.n_qubits, n_up, n_dn)
    targets, coefs = _group_structure(comp, basis)
    dim = basis.dim

    def matvec(v: np.ndarray) -> np.ndarray:
        out = np.zeros_like(v)
        for tgt, coef in zip(targets, coefs):
            ok = tgt >= 0
            np.add.at(out, tgt[ok], coef[ok] * v[ok])
        return out

    if dim == 1:
        e = float(matvec(np.ones(1))[0])
        return e + comp.constant, np.ones(1), basis
    if method == "dense" or (method == "auto" and dim <= 600):
        H = np.zeros((dim, dim))
        eye = np.eye(dim)
        for i in range(dim):
            H[:, i] = matvec(eye[:, i])
        w, v = np.linalg.eigh(H)
        if k > 1:
            return float(w[0] + comp.constant), v[:, 0], basis
        return float(w[0] + comp.constant), v[:, 0], basis

    if method in ("davidson", "auto"):
        from repro.chem.davidson import davidson, sector_diagonal

        diag = sector_diagonal(comp, basis)
        res = davidson(matvec, diag, k=k, tol=1e-9)
        if res.converged:
            order = np.argsort(res.eigenvalues)
            return (
                float(res.eigenvalues[order[0]] + comp.constant),
                res.eigenvectors[:, order[0]],
                basis,
            )
        if method == "davidson":
            raise RuntimeError(
                f"Davidson failed to converge (residuals {res.residual_norms})"
            )
        # 'auto': fall through to Lanczos.

    op = spla.LinearOperator((dim, dim), matvec=matvec, dtype=np.float64)
    vals, vecs = spla.eigsh(op, k=k, which="SA", maxiter=5000)
    order = np.argsort(vals)
    return float(vals[order[0]] + comp.constant), vecs[:, order[0]], basis


def sector_hamiltonian_dense(
    h: QubitHamiltonian | CompressedHamiltonian, n_up: int, n_dn: int
) -> tuple[np.ndarray, SectorBasis]:
    """Dense sector Hamiltonian (tests / tiny systems only)."""
    comp = h if isinstance(h, CompressedHamiltonian) else compress_hamiltonian(h)
    basis = sector_basis(comp.n_qubits, n_up, n_dn)
    targets, coefs = _group_structure(comp, basis)
    dim = basis.dim
    H = np.zeros((dim, dim))
    for tgt, coef in zip(targets, coefs):
        ok = tgt >= 0
        H[tgt[ok], np.flatnonzero(ok)] += coef[ok]
    return H + comp.constant * np.eye(dim), basis
