"""Jordan-Wigner transformation of the second-quantized Hamiltonian (Eq. 9/10).

Ladder operators in the symplectic representation:

    a_p      = Z_{<p} X_p (I - Z_p)/2  =  1/2 (Z_{<p} X_p  -  Z_{<p} X_p Z_p)
    a_p^dag  = Z_{<p} X_p (I + Z_p)/2  =  1/2 (Z_{<p} X_p  +  Z_{<p} X_p Z_p)

(occupation bit 1 = occupied, Z|b> = (-1)^b |b>).  Products of 2 and 4 ladder
operators are expanded term-by-term with the symplectic multiplication rule
and accumulated in a dictionary keyed by (x_mask, z_mask); imaginary residues
cancel to < 1e-12 for Hermitian inputs and are dropped.

Spin-orbital ordering is the paper's: spatial orbital i -> qubits (2i, 2i+1).
"""
from __future__ import annotations

import numpy as np

from repro.chem.mo_integrals import SpinOrbitalIntegrals
from repro.hamiltonian.pauli import pauli_mul
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian

__all__ = ["jordan_wigner", "jordan_wigner_fermion_terms", "ladder_terms"]


def ladder_terms(p: int, dagger: bool) -> list[tuple[int, int, complex]]:
    """[(x, z, coeff), ...] for a_p or a_p^dagger under Jordan-Wigner."""
    z_string = (1 << p) - 1  # Z on qubits 0..p-1
    x = 1 << p
    sign = 0.5 if dagger else -0.5
    return [
        (x, z_string, 0.5),
        (x, z_string | (1 << p), sign),
    ]


def _accumulate_product(acc: dict, ops: list[list[tuple[int, int, complex]]],
                        weight: complex) -> None:
    """Expand a product of ladder operators into ``acc`` (dict keyed (x,z))."""
    # Iterative expansion: list of (x, z, coeff) partial products.
    partial = [(0, 0, weight)]
    for op in ops:
        new = []
        for x1, z1, c1 in partial:
            for x2, z2, c2 in op:
                x, z, s = pauli_mul(x1, z1, x2, z2)
                new.append((x, z, c1 * c2 * s))
        partial = new
    for x, z, c in partial:
        key = (x, z)
        acc[key] = acc.get(key, 0.0) + c


def _finalize(acc: dict, n: int, constant: float, coeff_tol: float,
              n_electrons: int | None) -> QubitHamiltonian:
    """Dict keyed (x, z) with xz-basis coefficients -> QubitHamiltonian."""
    xs, zs, cs = [], [], []
    n_words = (n + 63) // 64
    mask64 = (1 << 64) - 1
    for (x, z), c in acc.items():
        if abs(c) < coeff_tol:
            continue
        if x == 0 and z == 0:
            constant += float(np.real(c))
            continue
        n_y = bin(x & z).count("1")
        letter_c = c / (1j) ** n_y
        if abs(np.imag(letter_c)) > 1e-9:
            raise ValueError("non-Hermitian residue in Jordan-Wigner output")
        xs.append([(x >> (64 * w)) & mask64 for w in range(n_words)])
        zs.append([(z >> (64 * w)) & mask64 for w in range(n_words)])
        cs.append(float(np.real(letter_c)))
    return QubitHamiltonian(
        n_qubits=n,
        x_masks=np.array(xs, dtype=np.uint64).reshape(len(cs), n_words),
        z_masks=np.array(zs, dtype=np.uint64).reshape(len(cs), n_words),
        coeffs=np.array(cs),
        constant=float(constant),
        n_electrons=n_electrons,
    )


def jordan_wigner_fermion_terms(
    terms: list[tuple[complex, list[tuple[int, bool]]]],
    n_qubits: int,
    constant: float = 0.0,
    coeff_tol: float = 1e-10,
    n_electrons: int | None = None,
) -> QubitHamiltonian:
    """Jordan-Wigner any Hermitian sum of ladder-operator products.

    ``terms`` is ``[(weight, [(orbital, dagger), ...]), ...]`` where the
    ladder operators of one product are listed left to right.  This is the
    generic entry point used for observables (number, S_z, S^2, dipole
    operators) beyond the molecular Hamiltonian itself.
    """
    acc: dict[tuple[int, int], complex] = {}
    for weight, ops in terms:
        if abs(weight) < coeff_tol:
            continue
        expanded = [ladder_terms(p, dagger=d) for (p, d) in ops]
        _accumulate_product(acc, expanded, weight)
    return _finalize(acc, n_qubits, constant, coeff_tol, n_electrons)


def jordan_wigner(so: SpinOrbitalIntegrals, coeff_tol: float = 1e-10) -> QubitHamiltonian:
    """Map spin-orbital integrals to a qubit Hamiltonian.

    H = sum_PQ h_PQ a+_P a_Q + 1/2 sum_PQRS <PQ|RS> a+_P a+_Q a_S a_R + E_nuc.
    """
    n = so.n_so
    acc: dict[tuple[int, int], complex] = {}

    ann = [ladder_terms(p, dagger=False) for p in range(n)]
    cre = [ladder_terms(p, dagger=True) for p in range(n)]

    # One-body part.
    h1 = so.h1
    for p, q in zip(*np.nonzero(np.abs(h1) > coeff_tol)):
        _accumulate_product(acc, [cre[p], ann[q]], h1[p, q])

    # Two-body part: iterate only over non-negligible <PQ|RS>.
    g2 = so.g2
    idx = np.argwhere(np.abs(g2) > coeff_tol)
    for p, q, s, r in idx:  # g2[p, q, s, r] multiplies a+_p a+_q a_r a_s
        # <PQ|SR> convention: g2[P,Q,R,S] = <PQ|RS> multiplies a+P a+Q a_S a_R.
        if p == q or s == r:
            continue  # a+_p a+_p = a_r a_r = 0
        _accumulate_product(
            acc, [cre[p], cre[q], ann[r], ann[s]], 0.5 * g2[p, q, s, r]
        )

    # Separate the identity; convert xz coefficients to letter-basis reals.
    return _finalize(acc, n, so.e_nuc, coeff_tol, so.n_electrons)
