"""Qubit Hamiltonians: Pauli algebra, Jordan-Wigner, compressed storage."""
from repro.hamiltonian.pauli import (
    PauliTerm,
    letters_to_xz,
    pauli_mul,
    strings_to_matrix,
    term_matrix,
    xz_to_letters,
)
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian
from repro.hamiltonian.jordan_wigner import (
    jordan_wigner,
    jordan_wigner_fermion_terms,
    ladder_terms,
)
from repro.hamiltonian.operators import (
    double_occupancy_operator,
    number_dn_operator,
    number_operator,
    number_up_operator,
    occupation_operator,
    one_body_operator,
    s2_operator,
    sz_operator,
)
from repro.hamiltonian.compressed import (
    CompressedHamiltonian,
    ReferenceHamiltonianData,
    build_reference,
    compress_hamiltonian,
)
from repro.hamiltonian.exact import (
    SectorBasis,
    exact_ground_state,
    sector_basis,
    sector_hamiltonian_dense,
)
from repro.hamiltonian.synthetic import synthetic_molecular_hamiltonian

__all__ = [
    "PauliTerm",
    "letters_to_xz",
    "pauli_mul",
    "strings_to_matrix",
    "term_matrix",
    "xz_to_letters",
    "QubitHamiltonian",
    "jordan_wigner",
    "jordan_wigner_fermion_terms",
    "ladder_terms",
    "double_occupancy_operator",
    "number_dn_operator",
    "number_operator",
    "number_up_operator",
    "occupation_operator",
    "one_body_operator",
    "s2_operator",
    "sz_operator",
    "CompressedHamiltonian",
    "ReferenceHamiltonianData",
    "build_reference",
    "compress_hamiltonian",
    "SectorBasis",
    "exact_ground_state",
    "sector_basis",
    "sector_hamiltonian_dense",
    "synthetic_molecular_hamiltonian",
]
