"""Synthetic qubit Hamiltonians with molecular structural statistics.

Used by the scaling benches to exercise the >100-qubit code paths (sampling
tree partitioning, packed-key lookup tables, chunked local-energy kernels)
without paying for pure-Python benzene/6-31G integrals — the documented
substitution for the paper's 120-qubit workload (DESIGN.md Sec. 1).

The generator mimics Jordan-Wigner output: every term carries an even number
of Y letters (real Hamiltonian), flip masks touch at most four spin orbitals
(two-body operators), Z-strings span the JW ladder between them, and the
number of terms scales as O(N^4) capped at ``n_terms``.
"""
from __future__ import annotations

import numpy as np

from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian

__all__ = ["synthetic_molecular_hamiltonian"]


def synthetic_molecular_hamiltonian(
    n_qubits: int,
    n_terms: int,
    seed: int = 0,
    n_electrons: int | None = None,
) -> QubitHamiltonian:
    rng = np.random.default_rng(seed)
    w = (n_qubits + 63) // 64
    mask64 = (1 << 64) - 1

    xs = np.zeros((n_terms, w), dtype=np.uint64)
    zs = np.zeros((n_terms, w), dtype=np.uint64)
    seen: dict[tuple, int] = {}
    count = 0
    while count < n_terms:
        kind = rng.random()
        if kind < 0.3:
            # Diagonal term: Z-string on 1, 2 or 4 qubits (number operators).
            sites = rng.choice(n_qubits, size=rng.choice([1, 2, 4]), replace=False)
            x = 0
            z = sum(1 << int(s) for s in sites)
        else:
            # Excitation-like term: X/Y pair or quadruple with a JW Z-bridge.
            n_flip = 2 if kind < 0.75 else 4
            sites = np.sort(rng.choice(n_qubits, size=n_flip, replace=False))
            x = sum(1 << int(s) for s in sites)
            # Z string between the flipped pairs.
            z = 0
            for a, b in zip(sites[::2], sites[1::2]):
                for j in range(int(a) + 1, int(b)):
                    z |= 1 << j
            # Promote an even number of flip sites to Y (x & z overlap).
            n_y = 2 * rng.integers(0, n_flip // 2 + 1)
            for s in rng.choice(sites, size=int(n_y), replace=False):
                z |= 1 << int(s)
        key = (x, z)
        if x == 0 and z == 0 or key in seen:
            continue
        seen[key] = count
        for word in range(w):
            xs[count, word] = (x >> (64 * word)) & mask64
            zs[count, word] = (z >> (64 * word)) & mask64
        count += 1

    coeffs = rng.normal(scale=0.1, size=n_terms)
    coeffs[: n_terms // 20] *= 10.0  # a few dominant terms, as in molecules
    return QubitHamiltonian(
        n_qubits=n_qubits,
        x_masks=xs,
        z_masks=zs,
        coeffs=coeffs,
        constant=0.0,
        n_electrons=n_electrons or n_qubits // 4 * 2,
    )
