"""Hamiltonian storage schemes of Fig. 6 and the Algorithm-1 preprocessing.

Three representations, with byte-level memory accounting used by the Fig. 9
benchmark:

* Fig. 6(a) — symbolic list of Pauli strings (``QubitHamiltonian.term_strings``).
* Fig. 6(b) — the Ref. [27] scheme (:class:`ReferenceHamiltonianData`): per
  term, a boolean "Pauli mat XY" tuple (X or Y occurrence, the flip mask), a
  boolean "Pauli mat YZ" tuple (Y or Z occurrence, the sign mask), and an
  integer Y-occurrence count used for the phase.
* Fig. 6(c) — the paper's compressed scheme (:class:`CompressedHamiltonian`):
  only the *unique* XY masks are kept, the YZ masks are reorganized into a
  contiguous buffer grouped by XY mask with a CSR-style ``idxs`` offset array,
  and the Y-phase ``real((-i)^{Y_occ})`` is folded into the coefficient
  in-place (Algorithm 1, line 13).

Because every Pauli string sharing an XY mask couples an input configuration
``x`` to the *same* output ``x' = x XOR mask``, the compressed layout lets the
local-energy kernel evaluate each unique coupled configuration exactly once
(Fig. 7(b)) — that is what the SA/FUSE/LUT kernels in
``repro.core.local_energy`` consume.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.dtypes import bool_, int64
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian
from repro.utils.bitstrings import lexsort_keys, popcount64

__all__ = [
    "ReferenceHamiltonianData",
    "CompressedHamiltonian",
    "build_reference",
    "compress_hamiltonian",
]


@dataclass
class ReferenceHamiltonianData:
    """Fig. 6(b): one (XY, YZ, Y-count, coeff) record per Pauli string."""

    n_qubits: int
    xy: np.ndarray        # (K, W) uint64
    yz: np.ndarray        # (K, W) uint64
    y_occ: np.ndarray     # (K,) int64
    coeffs: np.ndarray    # (K,) float64
    constant: float

    @property
    def n_terms(self) -> int:
        return len(self.coeffs)

    def memory_bytes(self) -> int:
        """Booleans stored 1 byte/qubit (two tuples) + int + float per term."""
        per_term = 2 * self.n_qubits + 8 + 8
        return self.n_terms * per_term


@dataclass
class CompressedHamiltonian:
    """Fig. 6(c) / Algorithm 1 output.

    ``idxs[g] : idxs[g+1]`` delimits the YZ records of unique XY mask ``g``
    in the contiguous ``yz_buf`` / ``coeffs_buf`` buffers.
    """

    n_qubits: int
    xy_unique: np.ndarray   # (G, W) uint64 — compressed Pauli mat XY
    idxs: np.ndarray        # (G + 1,) int64 — CSR offsets into the buffers
    yz_buf: np.ndarray      # (K, W) uint64 — reorganized Pauli mat YZ
    coeffs_buf: np.ndarray  # (K,) float64 — phase-folded coefficients
    constant: float
    n_electrons: int | None = None

    @property
    def n_groups(self) -> int:
        """N_h^opt: number of unique XY masks."""
        return len(self.xy_unique)

    @property
    def n_terms(self) -> int:
        return len(self.coeffs_buf)

    def memory_bytes(self) -> int:
        """Unique XY tuples + offsets + YZ tuples + coefficients."""
        return (
            self.n_groups * self.n_qubits          # compressed Pauli mat XY
            + (self.n_groups + 1) * 8              # idxs
            + self.n_terms * self.n_qubits         # Pauli mat YZ
            + self.n_terms * 8                     # new coefficients
        )

    def group_sizes(self) -> np.ndarray:
        return np.diff(self.idxs)


def build_reference(h: QubitHamiltonian) -> ReferenceHamiltonianData:
    """Fig. 6(b): the Ref. [27] layout, straight from the term list."""
    return ReferenceHamiltonianData(
        n_qubits=h.n_qubits,
        xy=h.x_masks.copy(),
        yz=h.z_masks.copy(),
        y_occ=h.y_counts(),
        coeffs=h.coeffs.copy(),
        constant=h.constant,
    )


def compress_hamiltonian(h: QubitHamiltonian) -> CompressedHamiltonian:
    """Algorithm 1: group by XY mask, fold the Y phase into the coefficients.

    For molecular (real) Hamiltonians every Pauli string carries an even
    number of Y letters, so ``real((-i)^{Y_occ}) = (-1)^{Y_occ / 2}`` is +-1;
    an odd count would make the term's matrix elements imaginary and is
    rejected.
    """
    y_occ = h.y_counts()
    if np.any(y_occ % 2):
        raise ValueError("odd Y-count term: Hamiltonian not real — cannot fold phase")
    folded = h.coeffs * np.where(y_occ % 4 == 0, 1.0, -1.0)  # (-1)^{y/2}

    order = lexsort_keys(h.x_masks)
    xy_sorted = h.x_masks[order]
    yz_sorted = h.z_masks[order]
    coeff_sorted = folded[order]

    # Find group boundaries among the sorted XY masks.
    if len(xy_sorted) == 0:
        new_group = np.zeros(0, dtype=bool_)
    else:
        new_group = np.ones(len(xy_sorted), dtype=bool_)
        new_group[1:] = np.any(xy_sorted[1:] != xy_sorted[:-1], axis=1)
    starts = np.flatnonzero(new_group)
    idxs = np.concatenate([starts, [len(xy_sorted)]]).astype(int64)

    return CompressedHamiltonian(
        n_qubits=h.n_qubits,
        xy_unique=xy_sorted[starts],
        idxs=idxs,
        yz_buf=yz_sorted,
        coeffs_buf=coeff_sorted,
        constant=h.constant,
        n_electrons=h.n_electrons,
    )
