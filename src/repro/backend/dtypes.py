"""The repository's dtype policy, in one place.

Every hot-path module takes its dtypes from here instead of spelling
``np.float64`` / ``np.complex128`` literals inline, so the policy (all VMC
math in float64, amplitudes in complex128, packed configuration keys in
uint64) is stated once and adapters can translate it per backend:

* float64 everywhere real-valued — VMC gradients are small differences of
  local energies; float32 noise visibly degrades chemical-accuracy
  convergence (DESIGN.md).
* complex128 for log-amplitudes ``log Psi = 0.5 log pi + i phi``.
* uint64 for packed bitstring keys (64 qubits per word, multi-word rows);
  uint8 for unpacked bit arrays; int64 for weights/counts/indices;
  uint32 for natural-width wire counts.

These are numpy scalar types (usable both as ``dtype=`` arguments and as
converters, e.g. ``float64(x)``); non-numpy backends translate them inside
their ``xp`` adapter namespace, so kernel code never branches on the
backend to pick a dtype.
"""
from __future__ import annotations

import numpy as _np

__all__ = [
    "float64",
    "float32",
    "complex128",
    "uint64",
    "uint32",
    "uint8",
    "int64",
    "int32",
    "bool_",
]

float64 = _np.float64
float32 = _np.float32
complex128 = _np.complex128
uint64 = _np.uint64
uint32 = _np.uint32
uint8 = _np.uint8
int64 = _np.int64
int32 = _np.int32
bool_ = _np.bool_
