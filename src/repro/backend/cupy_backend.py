"""The cupy backend (import-gated): numpy's API on a CUDA device.

cupy implements the numpy namespace natively, so — unlike torch — no
adapter layer is needed: ``xp`` *is* the cupy module and the only backend
work is the explicit host boundary (``cupy.asnumpy`` / ``cupy.asarray``).
Not part of the base environment; :func:`repro.backend.get_backend`
surfaces a clear error when the wheel (and a CUDA runtime) is absent.
"""
from __future__ import annotations

from repro.backend.core import ArrayBackend

__all__ = ["CupyBackend", "cupy_available"]


def _import_cupy():
    try:
        import cupy
    except ImportError as exc:  # pragma: no cover - exercised without cupy
        raise ImportError(
            "backend 'cupy' requires the optional cupy wheel and a CUDA "
            "runtime; neither is part of the base environment"
        ) from exc
    return cupy


def cupy_available() -> bool:
    try:
        import cupy  # noqa: F401
    except ImportError:
        return False
    return True


class CupyBackend(ArrayBackend):
    name = "cupy"
    device_resident = True

    def __init__(self, device: str | None = None):
        cupy = _import_cupy()
        self._cupy = cupy
        if device is not None:
            # "cuda:1" / "1" -> device ordinal
            ordinal = int(str(device).rsplit(":", 1)[-1])
            cupy.cuda.Device(ordinal).use()
        super().__init__(cupy)

    def to_host(self, arr, tag: str | None = None):
        if isinstance(arr, self._cupy.ndarray):
            return self._cupy.asnumpy(arr)
        return arr

    def from_host(self, arr):
        return self._cupy.asarray(arr)
