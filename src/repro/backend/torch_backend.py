"""The torch backend: a numpy-compatible adapter over ``torch`` (import-gated).

Torch is an *optional* dependency: this module imports lazily and
:func:`repro.backend.get_backend` raises a clear error when the wheel is
absent.  The adapter implements the numpy subset used by the autograd
substrate and the nn kernels (the "kernel-equivalence subset" exercised by
the optional torch-CPU CI job); it deliberately does **not** cover the
structured-record dtypes of the compiled local-energy plan — that path is
host-bound by design and stays on numpy/mock.

Conventions translated here so kernel code never branches on the backend:

* numpy scalar dtypes (``repro.backend.dtypes``) -> torch dtypes;
* ``axis``/``keepdims`` -> ``dim``/``keepdim`` (incl. ``axis=None``);
* creation functions default to float64 (numpy's default, not torch's
  float32 — the repo's dtype policy is float64 everywhere);
* ``xp.add.at`` -> ``index_put_(accumulate=True)`` scatter-add.
"""
from __future__ import annotations

import math

import numpy as np

from repro.backend.core import ArrayBackend

__all__ = ["TorchBackend", "torch_available"]


def _import_torch():
    try:
        import torch
    except ImportError as exc:  # pragma: no cover - exercised without torch
        raise ImportError(
            "backend 'torch' requires the optional torch wheel "
            "(pip install torch); it is not part of the base environment"
        ) from exc
    return torch


def torch_available() -> bool:
    try:
        import torch  # noqa: F401
    except ImportError:
        return False
    return True


class _TorchNamespace:
    """numpy-flavored function namespace over torch."""

    def __init__(self, torch, device):
        self._torch = torch
        self._device = device
        self._dtype_map = {
            np.float64: torch.float64,
            np.float32: torch.float32,
            np.complex128: torch.complex128,
            np.int64: torch.int64,
            np.int32: torch.int32,
            np.uint8: torch.uint8,
            np.bool_: torch.bool,
            None: None,
        }
        self.pi = math.pi
        self.ndarray = torch.Tensor
        self.add = _ScatterAdd(self)

    # ------------------------------------------------------------- plumbing
    def _dtype(self, dtype):
        if dtype in self._dtype_map:
            return self._dtype_map[dtype]
        key = np.dtype(dtype).type
        if key not in self._dtype_map:
            raise TypeError(f"torch backend has no mapping for dtype {dtype!r}")
        return self._dtype_map[key]

    def _as(self, x, dtype=None):
        t = self._torch.as_tensor(x, dtype=self._dtype(dtype),
                                  device=self._device)
        return t

    @staticmethod
    def _dim(axis):
        return axis

    # ------------------------------------------------------------- creation
    def asarray(self, a, dtype=None):
        return self._as(a, dtype)

    def array(self, a, dtype=None):
        t = self._as(a, dtype)
        return t.clone()

    def ascontiguousarray(self, a, dtype=None):
        return self._as(a, dtype).contiguous()

    def zeros(self, shape, dtype=np.float64):
        return self._torch.zeros(self._shape(shape), dtype=self._dtype(dtype),
                                 device=self._device)

    def ones(self, shape, dtype=np.float64):
        return self._torch.ones(self._shape(shape), dtype=self._dtype(dtype),
                                device=self._device)

    def empty(self, shape, dtype=np.float64):
        return self._torch.empty(self._shape(shape), dtype=self._dtype(dtype),
                                 device=self._device)

    def full(self, shape, fill, dtype=None):
        if dtype is None:
            dtype = np.int64 if isinstance(fill, int) else np.float64
        return self._torch.full(self._shape(shape), fill,
                                dtype=self._dtype(dtype), device=self._device)

    def arange(self, *args, dtype=None):
        if dtype is None:
            dtype = (np.float64 if any(isinstance(a, float) for a in args)
                     else np.int64)
        return self._torch.arange(*args, dtype=self._dtype(dtype),
                                  device=self._device)

    @staticmethod
    def _shape(shape):
        return shape if isinstance(shape, (tuple, list)) else (shape,)

    def zeros_like(self, a):
        return self._torch.zeros_like(self._as(a))

    def ones_like(self, a):
        return self._torch.ones_like(self._as(a))

    def eye(self, n, dtype=np.float64):
        return self._torch.eye(n, dtype=self._dtype(dtype),
                               device=self._device)

    def triu(self, a, k=0):
        return self._torch.triu(self._as(a), diagonal=k)

    def repeat(self, a, repeats, axis=None):
        t = self._as(a)
        if axis is None:
            t = t.reshape(-1)
            axis = 0
        return self._torch.repeat_interleave(t, repeats, dim=axis)

    # ------------------------------------------------------------ structure
    def concatenate(self, arrays, axis=0):
        return self._torch.cat([self._as(a) for a in arrays], dim=axis)

    def stack(self, arrays, axis=0):
        return self._torch.stack([self._as(a) for a in arrays], dim=axis)

    def broadcast_to(self, a, shape):
        return self._torch.broadcast_to(self._as(a), shape)

    def expand_dims(self, a, axis):
        return self._torch.unsqueeze(self._as(a), axis)

    def reshape(self, a, shape):
        return self._as(a).reshape(shape)

    def swapaxes(self, a, a1, a2):
        return self._torch.swapaxes(self._as(a), a1, a2)

    def transpose(self, a, axes=None):
        t = self._as(a)
        if axes is None:
            axes = tuple(reversed(range(t.dim())))
        return t.permute(tuple(int(x) for x in axes))

    def take(self, a, indices, axis=None):
        t = self._as(a)
        if axis is None:
            t = t.reshape(-1)
            axis = 0
        if isinstance(indices, int):
            return t.select(axis, indices)
        return self._torch.index_select(
            t, axis, self._as(indices, np.int64)
        )

    def split(self, a, sections, axis=0):
        t = self._as(a)
        if isinstance(sections, int):
            size = t.shape[axis] // sections
            return list(self._torch.split(t, size, dim=axis))
        bounds = [0] + [int(s) for s in sections] + [t.shape[axis]]
        sizes = [b - a_ for a_, b in zip(bounds[:-1], bounds[1:])]
        return list(self._torch.split(t, sizes, dim=axis))

    # ------------------------------------------------------------ reductions
    def sum(self, a, axis=None, keepdims=False):
        t = self._as(a)
        if axis is None:
            out = t.sum()
            if keepdims:
                out = out.reshape((1,) * t.dim())
            return out
        return t.sum(dim=axis, keepdim=keepdims)

    def max(self, a, axis=None, keepdims=False):
        t = self._as(a)
        if axis is None:
            out = t.amax()
            if keepdims:
                out = out.reshape((1,) * t.dim())
            return out
        return t.amax(dim=axis, keepdim=keepdims)

    def mean(self, a, axis=None, keepdims=False):
        t = self._as(a)
        if axis is None:
            out = t.mean()
            if keepdims:
                out = out.reshape((1,) * t.dim())
            return out
        return t.mean(dim=axis, keepdim=keepdims)

    def cumsum(self, a, axis=None):
        t = self._as(a)
        if axis is None:
            return t.reshape(-1).cumsum(0)
        return t.cumsum(axis)

    def argsort(self, a, axis=-1):
        return self._torch.argsort(self._as(a), dim=axis, stable=True)

    # ----------------------------------------------------------- elementwise
    def where(self, cond, a, b):
        cond_t = self._as(cond)
        a_t, b_t = self._as(a), self._as(b)
        if a_t.dtype != b_t.dtype:
            promoted = self._torch.promote_types(a_t.dtype, b_t.dtype)
            a_t, b_t = a_t.to(promoted), b_t.to(promoted)
        return self._torch.where(cond_t, a_t, b_t)

    def outer(self, a, b):
        return self._torch.outer(self._as(a), self._as(b))

    def __getattr__(self, name):
        # exp/log/sqrt/tanh/sign/abs/... share names and unary signatures.
        fn = getattr(self._torch, name, None)
        if fn is None:
            raise AttributeError(
                f"torch backend namespace has no {name!r} — this code path "
                "is host-bound; run it on the numpy or mock backend"
            )
        ns = self

        def forward(*args, **kwargs):
            args = tuple(ns._as(a) if isinstance(a, (np.ndarray, list))
                         else a for a in args)
            return fn(*args, **kwargs)

        return forward


class _ScatterAdd:
    """``xp.add`` stand-in providing the ``at`` scatter-add ufunc method."""

    def __init__(self, ns: _TorchNamespace):
        self._ns = ns

    def __call__(self, a, b):
        return self._ns._as(a) + self._ns._as(b)

    def at(self, a, idx, b):
        ns = self._ns
        b_t = ns._as(b, None).to(a.dtype)
        if isinstance(idx, tuple):
            index = tuple(ns._as(i, np.int64) for i in idx)
        else:
            index = (ns._as(idx, np.int64),)
        a.index_put_(index, b_t.broadcast_to(a[tuple(index)].shape)
                     if b_t.dim() == 0 else b_t, accumulate=True)


class TorchBackend(ArrayBackend):
    name = "torch"
    device_resident = True

    def __init__(self, device: str | None = None):
        torch = _import_torch()
        self._torch = torch
        self.device = torch.device(device or "cpu")
        super().__init__(_TorchNamespace(torch, self.device))

    def to_host(self, arr, tag: str | None = None):
        if isinstance(arr, self._torch.Tensor):
            return arr.detach().cpu().numpy()
        return arr

    def from_host(self, arr):
        return self._torch.as_tensor(arr, device=self.device)
