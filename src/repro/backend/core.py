"""The array-backend protocol: what every ``xp`` implementation provides.

An :class:`ArrayBackend` bundles three things:

* ``xp`` — a numpy-like array namespace the hot kernels call into
  (``xp.zeros``, ``xp.exp``, ``xp.concatenate``, ...).  For the numpy
  backend it *is* the numpy module; adapters (torch, cupy) expose a
  compatible subset and translate dtype/axis conventions.
* ``to_host(arr, tag=...)`` / ``from_host(arr)`` — the explicit
  device<->host boundary.  Every device->host crossing in the pipeline is
  *tagged* (``"sampling.probs"``, ``"stage2.amps"``, ``"stage6.grad"``,
  ...); an untagged crossing is by definition unplanned, which is what the
  mock backend's counters (and the CI smoke) police.
* ``counter_snapshot()`` — instrumentation hook; ``None`` on uncounted
  backends, a dict of allocation/transfer counts on the mock backend.

The residency contract the tags encode (see DESIGN.md "Array backend"):
parameters, activations, KV caches, logits, log-amplitudes and gradients
live on the device; sampled bit arrays, packed uint64 keys, weights, RNG
state and comm payloads live on the host.  Only the sampling probability
sync and the stage-2/stage-6 collectives may cross, and each crossing is
tagged at the call site.
"""
from __future__ import annotations

from typing import Any

__all__ = ["ArrayBackend", "UNTAGGED"]

# Counter key for device->host crossings that carried no tag — i.e. the
# unplanned transfers the equivalence suite asserts to be zero.
UNTAGGED = "untagged"


class ArrayBackend:
    """Base array backend: identity transfers over a numpy-like namespace."""

    #: registry name ("numpy", "mock", "torch", "cupy")
    name: str = "base"
    #: whether arrays live off-host (True => to_host really copies)
    device_resident: bool = False

    def __init__(self, xp_namespace: Any):
        self.xp = xp_namespace

    # ------------------------------------------------------------- transfers
    def to_host(self, arr, tag: str | None = None):
        """Materialize ``arr`` as a host ndarray.

        ``tag`` names the planned crossing ("sampling.probs",
        "stage2.amps", "stage6.grad"); leaving it ``None`` marks the
        transfer as unplanned, which instrumented backends count
        separately.  The numpy backend is the identity either way.
        """
        return arr

    def from_host(self, arr):
        """Move a host ndarray onto the backend's device (identity on host)."""
        return arr

    # ------------------------------------------------------- instrumentation
    def counter_snapshot(self) -> dict | None:
        """A copy of the backend's counters, or ``None`` when uncounted."""
        return None

    def reset_counters(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def counter_delta(before: dict | None, after: dict | None) -> dict | None:
    """Per-window counter difference (both ``None`` => uncounted backend)."""
    if before is None or after is None:
        return None
    out: dict = {}
    for key, val in after.items():
        prev = before.get(key, 0 if not isinstance(val, dict) else {})
        if isinstance(val, dict):
            sub = {k: v - prev.get(k, 0) for k, v in val.items()}
            out[key] = {k: v for k, v in sub.items() if v}
        else:
            out[key] = val - prev
    return out
