"""The instrumented mock backend: numpy semantics + transfer/alloc counters.

``MockBackend`` delegates every ``xp`` call to numpy — returned arrays are
plain ndarrays, so every kernel is trivially bit-identical to the numpy
oracle — while counting, per thread:

* allocations: calls to the array-creating functions (``zeros``, ``empty``,
  ``asarray``, ``concatenate``, ...), a proxy for device-memory traffic;
* ``to_host`` crossings, keyed by tag (untagged = unplanned — the quantity
  the equivalence suite and the CI mock smoke assert to be zero inside the
  sampling loop);
* ``from_host`` crossings.

Counters are ``threading.local`` so FakeMPI thread ranks count
independently; the engine snapshots them around each stage window
(:func:`repro.backend.core.counter_delta`) and ships per-rank deltas home
with the rank results.
"""
from __future__ import annotations

import threading

import numpy as np

from repro.backend.core import UNTAGGED, ArrayBackend

__all__ = ["MockBackend", "ALLOC_FNS"]

# The curated set of allocating creation functions worth counting.  Anything
# else forwards to numpy uncounted (ufuncs allocate too, but counting every
# temp would swamp the signal the residency contract cares about).
ALLOC_FNS = frozenset({
    "empty", "zeros", "ones", "full",
    "empty_like", "zeros_like", "ones_like", "full_like",
    "array", "asarray", "ascontiguousarray", "arange",
    "concatenate", "stack", "eye", "linspace",
})


class _Counters(threading.local):
    def __init__(self):
        self.alloc = 0
        self.to_host: dict[str, int] = {}
        self.from_host = 0


class _CountingNamespace:
    """numpy's namespace with allocation-counting wrappers on ``ALLOC_FNS``."""

    def __init__(self, counters: _Counters):
        self._counters = counters
        self._cache: dict[str, object] = {}

    def __getattr__(self, name: str):
        cache = self.__dict__["_cache"]
        attr = cache.get(name)
        if attr is None:
            attr = getattr(np, name)
            if name in ALLOC_FNS:
                attr = self._wrap(attr)
            cache[name] = attr
        return attr

    def _wrap(self, fn):
        counters = self._counters

        def counted(*args, **kwargs):
            counters.alloc += 1
            return fn(*args, **kwargs)

        counted.__name__ = fn.__name__
        return counted


class MockBackend(ArrayBackend):
    name = "mock"
    # Arrays are host ndarrays, but the backend *accounts* as if they were
    # device-resident: that is how CPU-only CI proves the residency contract
    # a real GPU backend will rely on.
    device_resident = True

    def __init__(self):
        self._counters = _Counters()
        super().__init__(_CountingNamespace(self._counters))

    # ------------------------------------------------------------- transfers
    def to_host(self, arr, tag: str | None = None):
        key = tag if tag is not None else UNTAGGED
        c = self._counters
        c.to_host[key] = c.to_host.get(key, 0) + 1
        return arr

    def from_host(self, arr):
        self._counters.from_host += 1
        return arr

    # ------------------------------------------------------- instrumentation
    def counter_snapshot(self) -> dict:
        c = self._counters
        return {
            "alloc": c.alloc,
            "to_host": dict(c.to_host),
            "from_host": c.from_host,
        }

    def reset_counters(self) -> None:
        c = self._counters
        c.alloc = 0
        c.to_host = {}
        c.from_host = 0
