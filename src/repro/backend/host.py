"""The explicit host-side numpy alias for hot-path modules.

The backend lint (``tools/lint_backend.py``) forbids bare ``import numpy``
/ ``np.`` in the designated hot-path modules: array math there must go
through the active backend's ``xp`` namespace.  Some objects, however, are
host-resident *by contract* regardless of backend — RNG streams, packed
comm payloads, checkpoint buffers — and code touching them spells that out
by importing ``host_np`` from here.  The distinct name is the point: a
``host_np.`` call is a reviewed, intentional host operation, not a stray
numpy dependency the seam missed.
"""
from __future__ import annotations

import numpy as host_np

__all__ = ["host_np"]
