"""The default backend: ``xp`` is the numpy module itself.

Zero indirection on the hot path beyond one attribute forward per call —
kernels run bit-identically to the pre-seam code because they execute the
very same numpy functions on the very same ndarrays.  ``to_host`` /
``from_host`` are identities (host arrays already live on the host).
"""
from __future__ import annotations

import numpy as np

from repro.backend.core import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    name = "numpy"
    device_resident = False

    def __init__(self):
        super().__init__(np)
