"""``repro.backend`` — the array-module seam under every hot kernel.

Hot-path modules (the autograd substrate, the nn step kernels, the
local-energy plan, the engine stages) never import numpy directly; they
import the module-level :data:`xp` proxy from here and the dtype policy
from :mod:`repro.backend.dtypes`.  ``xp`` forwards each call to the
*active* backend's namespace:

* the process-wide default is the numpy backend — bit-identical to the
  pre-seam code, zero configuration;
* :func:`use_backend` pushes a thread-local override, which is how the
  engine runs each rank's iteration on the run's configured backend
  (``--set backend.name=...``), the serving layer places each loaded model
  version, and the benchmarks switch per row.

Registered backends: ``numpy`` (default), ``mock`` (numpy + allocation /
transfer counters — the CI oracle for the residency contract), ``torch``
and ``cupy`` (import-gated; absent wheels raise a clear error at
``get_backend`` time, not mid-iteration).
"""
from __future__ import annotations

import contextlib
import threading

from repro.backend.core import UNTAGGED, ArrayBackend, counter_delta
from repro.backend.mock import MockBackend
from repro.backend.numpy_backend import NumpyBackend

__all__ = [
    "ArrayBackend",
    "BACKEND_NAMES",
    "UNTAGGED",
    "active_backend",
    "counter_delta",
    "get_backend",
    "use_backend",
    "xp",
]

#: spec-valid backend names (availability of the gated ones is checked at
#: materialize time, not spec-validation time)
BACKEND_NAMES = ("numpy", "mock", "torch", "cupy")

_numpy_backend = NumpyBackend()
_instances: dict[str, ArrayBackend] = {"numpy": _numpy_backend}
_lock = threading.Lock()
_active = threading.local()


def get_backend(name: str | ArrayBackend, device: str | None = None) -> ArrayBackend:
    """Resolve a backend by registry name (idempotent per (name, device)).

    Passing an :class:`ArrayBackend` instance returns it unchanged, so call
    sites accept either form.  Import-gated backends raise ``ImportError``
    with installation guidance when their wheel is missing.
    """
    if isinstance(name, ArrayBackend):
        return name
    key = name if device is None else f"{name}@{device}"
    with _lock:
        backend = _instances.get(key)
        if backend is not None:
            return backend
        if name == "numpy":
            backend = _numpy_backend
        elif name == "mock":
            backend = MockBackend()
        elif name == "torch":
            from repro.backend.torch_backend import TorchBackend

            backend = TorchBackend(device)
        elif name == "cupy":
            from repro.backend.cupy_backend import CupyBackend

            backend = CupyBackend(device)
        else:
            raise ValueError(
                f"unknown array backend {name!r}; registered: {BACKEND_NAMES}"
            )
        _instances[key] = backend
        return backend


def active_backend() -> ArrayBackend:
    """The backend ``xp`` currently forwards to (thread-local; numpy default)."""
    stack = getattr(_active, "stack", None)
    if stack:
        return stack[-1]
    return _numpy_backend


@contextlib.contextmanager
def use_backend(backend: str | ArrayBackend, device: str | None = None):
    """Thread-locally activate ``backend`` for the duration of the block."""
    backend = get_backend(backend, device)
    stack = getattr(_active, "stack", None)
    if stack is None:
        stack = _active.stack = []
    stack.append(backend)
    try:
        yield backend
    finally:
        stack.pop()


class _XpProxy:
    """Module-level ``xp``: one attribute forward per call to the active
    backend's namespace.  Hot modules bind it once at import time and stay
    backend-agnostic — the indirection resolves per call, per thread."""

    __slots__ = ()

    def __getattr__(self, name: str):
        return getattr(active_backend().xp, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<xp proxy -> {active_backend().name}>"


xp = _XpProxy()
