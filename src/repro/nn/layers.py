"""Basic layers: Linear, Embedding, LayerNorm, positional embedding.

Initializations follow the PyTorch defaults the paper's implementation
inherits (Kaiming-uniform linear layers, N(0,1)-scaled embeddings).
Initialization is host-side by contract (the seeded ``host_np`` Generator
defines the parameter bitstream); the resulting Parameters live on the
active array backend via the Tensor constructor.
"""
from __future__ import annotations

import math

from repro.autograd import Tensor, embedding_lookup
from repro.backend import xp
from repro.backend.dtypes import int64
from repro.backend.host import host_np
from repro.nn.module import Module, Parameter

__all__ = ["Linear", "Embedding", "LayerNorm", "PositionalEmbedding"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: host_np.random.Generator | None = None):
        super().__init__()
        rng = rng or host_np.random.default_rng()
        bound = 1.0 / math.sqrt(in_features)
        self.weight = Parameter(rng.uniform(-bound, bound, size=(out_features, in_features)))
        self.bias = Parameter(rng.uniform(-bound, bound, size=(out_features,))) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token embedding table with scatter-add backward."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: host_np.random.Generator | None = None):
        super().__init__()
        rng = rng or host_np.random.default_rng()
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, dim)))
        self.num_embeddings = num_embeddings
        self.dim = dim

    def forward(self, idx) -> Tensor:
        return embedding_lookup(self.weight, xp.asarray(idx, dtype=int64))


class PositionalEmbedding(Module):
    """Learned absolute positional embedding (GPT-style, as in QiankunNet)."""

    def __init__(self, max_len: int, dim: int,
                 rng: host_np.random.Generator | None = None):
        super().__init__()
        rng = rng or host_np.random.default_rng()
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(max_len, dim)))
        self.max_len = max_len

    def forward(self, length: int) -> Tensor:
        return self.weight[xp.arange(length)]


class LayerNorm(Module):
    """Layer normalization over the last axis with learned affine."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(xp.ones(dim))
        self.beta = Parameter(xp.zeros(dim))
        self.eps = eps
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv = (var + self.eps) ** -0.5
        return centered * inv * self.gamma + self.beta
