"""Baseline amplitude networks: MADE (Ref. [27]) and NAQS-style MLP (Ref. [26]).

Both expose the same ``conditional_logits`` interface as
:class:`repro.nn.transformer.TransformerAmplitude`, so they can be dropped
into the same wavefunction / sampler / VMC stack — this is exactly what the
paper's comparison (Table 1) and our ansatz ablation bench require.

MADE (masked autoencoder for distribution estimation, Germain et al. 2015)
enforces autoregressive structure with binary masks on dense-layer weights:
output block ``i`` only receives paths from input blocks ``< i``.

The NAQS-style MLP mimics Barrett et al.'s "MLP with hard-coded pre- and
postprocessing to ensure the autoregressive property": one shared MLP is
applied per position to the prefix (positions >= i zeroed out) concatenated
with a one-hot position encoding.

One-hot input staging and the constant autoregressive masks allocate through
the active backend's ``xp`` namespace, so both baselines run on the same
array seam as the transformer.
"""
from __future__ import annotations

import math

from repro.autograd import Tensor, concat, stack
from repro.backend import xp
from repro.backend.dtypes import float64, int64
from repro.backend.host import host_np
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter

__all__ = ["MADEAmplitude", "NAQSMLPAmplitude"]


class _MaskedLinear(Module):
    def __init__(self, in_features: int, out_features: int, mask,
                 rng: host_np.random.Generator):
        super().__init__()
        bound = 1.0 / math.sqrt(in_features)
        self.weight = Parameter(rng.uniform(-bound, bound, (out_features, in_features)))
        self.bias = Parameter(rng.uniform(-bound, bound, (out_features,)))
        self.mask = xp.asarray(mask, dtype=float64)  # (out, in), constant

    def forward(self, x: Tensor) -> Tensor:
        w = self.weight * Tensor(self.mask)
        return x @ w.transpose() + self.bias


class MADEAmplitude(Module):
    """Masked autoencoder over one-hot token inputs.

    Input degrees: token ``i`` (0-based) has degree ``i + 1``; hidden units get
    degrees cycling over ``1..T-1``; a hidden unit of degree ``m`` connects to
    inputs of degree ``<= m``; the output block of token ``i`` (degree
    ``i + 1``) connects to hidden units of degree ``< i + 1``.  Hence output
    ``i`` depends only on tokens ``< i`` (block 0 depends on nothing but bias).
    """

    fixed_length = True  # the input layer has width n_tokens * vocab

    def __init__(self, n_tokens: int, vocab_size: int = 4,
                 hidden: tuple[int, ...] = (128, 128),
                 rng: host_np.random.Generator | None = None):
        super().__init__()
        rng = rng or host_np.random.default_rng()
        self.n_tokens = n_tokens
        self.vocab_size = vocab_size
        t, v = n_tokens, vocab_size

        in_deg = xp.repeat(xp.arange(1, t + 1), v)  # one-hot blocks
        prev_deg = in_deg
        layers = []
        for h in hidden:
            deg = 1 + (xp.arange(h) % max(t - 1, 1))
            mask = (deg[:, None] >= prev_deg[None, :])
            layers.append(_MaskedLinear(len(prev_deg), h, mask, rng))
            prev_deg = deg
        out_deg = xp.repeat(xp.arange(1, t + 1), v)
        out_mask = (out_deg[:, None] > prev_deg[None, :])
        layers.append(_MaskedLinear(len(prev_deg), t * v, out_mask, rng))
        self.layers = layers

    def conditional_logits(self, tokens) -> Tensor:
        tokens = xp.asarray(tokens, dtype=int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        b, t = tokens.shape
        onehot = xp.zeros((b, t * self.vocab_size))
        flat = tokens + xp.arange(t) * self.vocab_size
        onehot[xp.arange(b)[:, None], flat] = 1.0
        x = Tensor(onehot)
        for layer in self.layers[:-1]:
            x = layer(x).relu()
        out = self.layers[-1](x)
        return out.reshape(b, t, self.vocab_size)


class NAQSMLPAmplitude(Module):
    """Shared per-position MLP over the zero-masked prefix + position one-hot."""

    fixed_length = True  # the input layer has width n_tokens * (vocab + 1)

    def __init__(self, n_tokens: int, vocab_size: int = 4,
                 hidden: tuple[int, ...] = (128,),
                 rng: host_np.random.Generator | None = None):
        super().__init__()
        rng = rng or host_np.random.default_rng()
        self.n_tokens = n_tokens
        self.vocab_size = vocab_size
        in_dim = n_tokens * vocab_size + n_tokens  # masked prefix + position one-hot
        sizes = (in_dim, *hidden, vocab_size)
        self.layers = [Linear(sizes[i], sizes[i + 1], rng=rng) for i in range(len(sizes) - 1)]

    def conditional_logits(self, tokens) -> Tensor:
        tokens = xp.asarray(tokens, dtype=int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        b, t = tokens.shape
        v = self.vocab_size
        onehot = xp.zeros((b, t, v))
        onehot[xp.arange(b)[:, None], xp.arange(t)[None, :], tokens] = 1.0
        outs = []
        for i in range(t):
            prefix = xp.zeros((b, t, v))
            prefix[:, :i] = onehot[:, :i]
            pos = xp.zeros((b, t))
            pos[:, i] = 1.0
            x = Tensor(xp.concatenate([prefix.reshape(b, -1), pos], axis=1))
            for layer in self.layers[:-1]:
                x = layer(x).relu()
            outs.append(self.layers[-1](x))
        return stack(outs, axis=1)  # (b, t, v)
