"""Restricted Boltzmann machine wavefunction (the Ref. [25] baseline).

The paper's introduction contrasts QiankunNet against the RBM NNQS line
(Carleo-Troyer 2017; Choo-Mezzacapo-Carleo 2020 for chemistry): a
*non-autoregressive* ansatz whose amplitudes are

    Psi(x) = exp(sum_j a_j s_j) * prod_k 2 cosh(b_k + sum_j W_kj s_j),

with s_j = 2 x_j - 1.  Because |Psi|^2 is not normalized, sampling requires
Markov-chain Monte Carlo (see repro.core.mcmc) — the cost the paper's batch
autoregressive sampling eliminates.  Complex parameters are represented as
separate real/imaginary Parameter pairs so the numpy autograd engine (which
is real-valued) trains them; log Psi gradients are assembled analytically in
``log_psi_and_grad`` for the VMC estimator.
"""
from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["RBMWavefunction"]


class RBMWavefunction(Module):
    """Complex RBM over N qubits with ``alpha * N`` hidden units."""

    def __init__(self, n_qubits: int, alpha: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        n_hidden = alpha * n_qubits
        scale = 0.01
        self.a_re = Parameter(rng.normal(0, scale, n_qubits))
        self.a_im = Parameter(rng.normal(0, scale, n_qubits))
        self.b_re = Parameter(rng.normal(0, scale, n_hidden))
        self.b_im = Parameter(rng.normal(0, scale, n_hidden))
        self.w_re = Parameter(rng.normal(0, scale, (n_hidden, n_qubits)))
        self.w_im = Parameter(rng.normal(0, scale, (n_hidden, n_qubits)))
        self.n_qubits = n_qubits
        self.n_hidden = n_hidden

    # ------------------------------------------------------------- inference
    def _complex_params(self):
        a = self.a_re.data + 1j * self.a_im.data
        b = self.b_re.data + 1j * self.b_im.data
        w = self.w_re.data + 1j * self.w_im.data
        return a, b, w

    def log_amplitudes(self, bits: np.ndarray) -> np.ndarray:
        """(B,) complex log Psi(x)."""
        bits = np.atleast_2d(np.asarray(bits, dtype=np.float64))
        s = 2.0 * bits - 1.0
        a, b, w = self._complex_params()
        theta = s @ w.T + b[None, :]
        return s @ a + np.log(2.0 * np.cosh(theta)).sum(axis=1)

    def amplitudes(self, bits: np.ndarray) -> np.ndarray:
        return np.exp(self.log_amplitudes(bits))

    # ------------------------------------------------------------- gradients
    def log_psi_grad(self, bits: np.ndarray) -> np.ndarray:
        """(B, M) complex d log Psi / d theta for the complex parameters.

        Parameter order matches ``parameters()``: (a_re, a_im, b_re, b_im,
        w_re, w_im) — the derivative wrt a real part is the complex gradient
        itself, wrt an imaginary part it is ``1j`` times it, so the VMC
        estimator can treat all real parameters uniformly.
        """
        bits = np.atleast_2d(np.asarray(bits, dtype=np.float64))
        s = 2.0 * bits - 1.0
        a, b, w = self._complex_params()
        theta = s @ w.T + b[None, :]          # (B, H)
        t = np.tanh(theta)
        g_a = s.astype(np.complex128)          # (B, N)
        g_b = t                                # (B, H)
        g_w = np.einsum("bh,bn->bhn", t, s)    # (B, H, N)
        batch = s.shape[0]
        return np.concatenate(
            [
                g_a, 1j * g_a,
                g_b, 1j * g_b,
                g_w.reshape(batch, -1), 1j * g_w.reshape(batch, -1),
            ],
            axis=1,
        )

    def apply_gradient(self, grad_flat: np.ndarray) -> None:
        """Store a real flat gradient into the parameter ``grad`` slots."""
        self.set_flat_grads(grad_flat)
