"""Incremental-decoding inference engine: KV caches and sampling sessions.

The batch autoregressive sampler (Fig. 3) only ever asks the amplitude
network one question: "given this prefix, what is the conditional of the
*next* token?".  Re-running the full transformer over the whole prefix at
every local sampling step costs O(sum_k k^2) attention recompute per layer
and sweep; with per-layer key/value caches the same sweep costs O(k) — the
standard incremental-decoding trick of GPT-style inference servers, applied
to the NNQS sampling loop.

Architecture (see DESIGN.md):

* :class:`KVCache` — the cached keys/values of one attention layer, shape
  ``(batch, heads, t, d_head)``, appended to as the prefix grows and
  *gathered* when the BAS tree branches (one cache row per unique prefix).
* :class:`TransformerInferenceSession` — one in-flight decoding session:
  a list of per-layer caches plus the current position.  ``step()`` consumes
  one token per row and returns the next-position logits;
  ``prefill()`` bootstraps the caches from a whole prefix in one batched
  causal pass (used when resuming a mid-tree :class:`BASTreeState` that
  arrives without a session, e.g. after the parallel split of Fig. 5);
  ``select()`` realigns the cache rows with the surviving/branched prefixes.
* :class:`FallbackInferenceSession` — the protocol implementation for
  amplitude networks without an incremental path (MADE / NAQS-MLP declare
  ``fixed_length = True``): it stores the consumed tokens and re-runs the
  full ``conditional_logits`` each step, which reproduces the pre-cache
  numerics bit for bit.

Everything in this module is graph-free math on raw ``.data`` buffers,
allocated through the active backend's ``xp`` namespace — the KV caches and
step activations stay device-resident for the whole sweep.  The
differentiable full-forward path (``conditional_logits``) remains the
training-time code path and the correctness oracle in the tests.
"""
from __future__ import annotations

import math

from repro.backend import xp
from repro.backend.dtypes import int64

__all__ = [
    "KVCache",
    "TransformerInferenceSession",
    "FallbackInferenceSession",
    "make_inference_session",
    "padded_next_logits",
    "linear_np",
    "layer_norm_np",
    "gelu_np",
    "softmax_np",
]


def padded_next_logits(model, prefix_tokens):
    """Next-position logits via the full ``conditional_logits`` forward.

    The one place that knows the padding contract: fixed-width ansätze
    (``fixed_length = True``) must be padded to ``n_tokens``, everything else
    only to ``k + 1``.  Shared by the fallback session and the wavefunction's
    full-forward oracle so the two paths cannot drift apart.
    """
    from repro.autograd import no_grad

    prefix_tokens = xp.asarray(prefix_tokens, dtype=int64)
    b, k = prefix_tokens.shape
    length = model.n_tokens if getattr(model, "fixed_length", False) else k + 1
    padded = xp.zeros((b, length), dtype=int64)
    padded[:, :k] = prefix_tokens
    with no_grad():
        return model.conditional_logits(padded).data[:, k, :]


# --------------------------------------------------------------------------
# Graph-free xp kernels, numerically identical to their autograd counterparts
# (same operations in the same order as repro.autograd.tensor).
# --------------------------------------------------------------------------
def linear_np(x, layer):
    """``y = x W^T + b`` on raw buffers (mirrors ``Linear.forward``)."""
    out = x @ xp.swapaxes(layer.weight.data, -1, -2)
    if layer.bias is not None:
        out = out + layer.bias.data
    return out


def layer_norm_np(x, layer):
    """LayerNorm on raw buffers (mirrors ``LayerNorm.forward``)."""
    mu = xp.mean(x, axis=-1, keepdims=True)
    centered = x - mu
    var = xp.mean(centered * centered, axis=-1, keepdims=True)
    inv = (var + layer.eps) ** -0.5
    return centered * inv * layer.gamma.data + layer.beta.data


def gelu_np(x):
    """tanh-approximation GELU (mirrors ``Tensor.gelu``)."""
    c = math.sqrt(2.0 / math.pi)
    inner = c * (x + 0.044715 * x**3)
    return 0.5 * x * (1.0 + xp.tanh(inner))


def softmax_np(x, axis: int = -1):
    m = xp.max(x, axis=axis, keepdims=True)
    e = xp.exp(x - m)
    return e / xp.sum(e, axis=axis, keepdims=True)


# --------------------------------------------------------------------------
# KV cache
# --------------------------------------------------------------------------
class KVCache:
    """Cached keys/values of one attention layer: ``(batch, heads, t, d_head)``.

    ``t`` grows by one per decoding step (or by ``k`` on a prefill).  The
    batch axis is *row-aligned with the sampler's unique prefixes*: when the
    BAS tree branches, :meth:`select` duplicates the parent rows for every
    surviving child and drops pruned ones.
    """

    __slots__ = ("k", "v")

    def __init__(self, k=None, v=None):
        self.k = k  # None until the first append
        self.v = v

    @property
    def length(self) -> int:
        return 0 if self.k is None else self.k.shape[2]

    def append(self, k_new, v_new) -> None:
        """Append ``(batch, heads, t_new, d_head)`` keys/values along time."""
        if self.k is None:
            self.k, self.v = k_new, v_new
        else:
            self.k = xp.concatenate([self.k, k_new], axis=2)
            self.v = xp.concatenate([self.v, v_new], axis=2)

    def select(self, idx) -> "KVCache":
        """Gather cache rows: duplicates branching prefixes, drops pruned ones."""
        if self.k is None:
            return KVCache()
        return KVCache(k=self.k[idx], v=self.v[idx])


# --------------------------------------------------------------------------
# Sessions
# --------------------------------------------------------------------------
class TransformerInferenceSession:
    """One in-flight incremental decoding of a :class:`TransformerAmplitude`.

    Invariant: ``pos`` input positions have been consumed (position 0 is the
    BOS token), so the caches cover inputs ``0..pos-1`` and logits have been
    produced for sequence positions ``0..pos-1``.
    """

    def __init__(self, model, batch_size: int = 1):
        self.model = model
        self.batch_size = batch_size
        self.pos = 0
        self.caches = [KVCache() for _ in model.layers]

    def step(self, prev_tokens=None):
        """Consume one token per row, return ``(batch, vocab)`` next logits.

        ``prev_tokens`` is the token sampled at the previous position
        (``None`` on the very first call, which consumes the BOS token).
        """
        return self.model.step(prev_tokens, self)

    def prefill(self, prefix_tokens):
        """Bootstrap the caches from a ``(batch, k)`` prefix in one pass.

        Returns the ``(batch, vocab)`` logits of position ``k``.  Only valid
        on a fresh session (``pos == 0``).
        """
        return self.model.prefill(prefix_tokens, self)

    def select(self, idx) -> "TransformerInferenceSession":
        """Realign cache rows with branched/pruned prefixes (BAS tree split)."""
        out = TransformerInferenceSession.__new__(TransformerInferenceSession)
        out.model = self.model
        out.batch_size = len(idx)
        out.pos = self.pos
        out.caches = [c.select(idx) for c in self.caches]
        return out

    def copy(self) -> "TransformerInferenceSession":
        """Deep-copied session: stepping the copy never mutates the original."""
        out = TransformerInferenceSession.__new__(TransformerInferenceSession)
        out.model = self.model
        out.batch_size = self.batch_size
        out.pos = self.pos
        out.caches = [
            KVCache(None if c.k is None else xp.array(c.k),
                    None if c.v is None else xp.array(c.v))
            for c in self.caches
        ]
        return out

    def reset(self, batch_size: int | None = None) -> "TransformerInferenceSession":
        """Return the session to its fresh state (serving-layer pool hook).

        A reset session is indistinguishable from a newly constructed one —
        the pool's recycled sessions therefore keep sampling bit-identical.
        """
        if batch_size is not None:
            self.batch_size = batch_size
        self.pos = 0
        self.caches = [KVCache() for _ in self.model.layers]
        return self


class FallbackInferenceSession:
    """Session protocol for fixed-input-width ansätze (MADE, NAQS-MLP).

    These networks have no incremental path — their input layer consumes the
    whole (padded) sequence — so each ``step`` stores the new token column
    and re-runs the full ``conditional_logits`` under ``no_grad``, exactly
    as the pre-session ``conditional_probs`` did.  The session interface is
    identical, so the sampler does not care which kind it is driving.
    """

    def __init__(self, model, batch_size: int = 1):
        self.model = model
        self.batch_size = batch_size
        self.tokens = xp.zeros((batch_size, 0), dtype=int64)
        self._started = False

    @property
    def pos(self) -> int:
        return self.tokens.shape[1]

    def _next_logits(self):
        return padded_next_logits(self.model, self.tokens)

    def step(self, prev_tokens=None):
        # Same misuse contract as the transformer session: the first call
        # takes no token, every later call must consume one.
        if prev_tokens is None:
            if self._started:
                raise ValueError("prev_tokens required once the session has started")
        else:
            if not self._started:
                raise ValueError(
                    "the first step consumes BOS: call step(None) or prefill()"
                )
            prev = xp.asarray(prev_tokens, dtype=int64).reshape(-1, 1)
            self.tokens = xp.concatenate([self.tokens, prev], axis=1)
        self._started = True
        return self._next_logits()

    def prefill(self, prefix_tokens):
        if self._started or self.tokens.shape[1] > 0:
            # Same misuse contract as the transformer session.
            raise ValueError("prefill requires a fresh session")
        self._started = True
        prefix = xp.asarray(prefix_tokens, dtype=int64)
        if prefix.ndim == 1:
            prefix = prefix[None, :]
        self.tokens = prefix
        return self._next_logits()

    def select(self, idx) -> "FallbackInferenceSession":
        out = FallbackInferenceSession.__new__(FallbackInferenceSession)
        out.model = self.model
        out.batch_size = len(idx)
        out.tokens = self.tokens[idx]
        out._started = self._started
        return out

    def copy(self) -> "FallbackInferenceSession":
        out = FallbackInferenceSession.__new__(FallbackInferenceSession)
        out.model = self.model
        out.batch_size = self.batch_size
        out.tokens = xp.array(self.tokens)
        out._started = self._started
        return out

    def reset(self, batch_size: int | None = None) -> "FallbackInferenceSession":
        """Return the session to its fresh state (serving-layer pool hook)."""
        if batch_size is not None:
            self.batch_size = batch_size
        self.tokens = xp.zeros((self.batch_size, 0), dtype=int64)
        self._started = False
        return self


def make_inference_session(amplitude, batch_size: int = 1):
    """Open a decoding session for any amplitude network.

    Networks exposing ``make_session`` (the transformer) get their native
    KV-cached session; everything else gets the recompute fallback, so the
    sampler's session-driven loop works for every ansatz.
    """
    if hasattr(amplitude, "make_session"):
        return amplitude.make_session(batch_size)
    return FallbackInferenceSession(amplitude, batch_size)
