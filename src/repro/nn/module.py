"""Minimal module system (Parameter registration, state flattening).

Mirrors ``torch.nn.Module`` closely enough that the QiankunNet code in
``repro.core`` reads like the paper's PyTorch implementation.  Parameter
vectors can be flattened to a single float64 array — that is the ``M``-sized
buffer whose Allreduce dominates the communication volume analysis of
Sec. 3.2 (8·M·N_p bytes per iteration).
"""
from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A Tensor that is registered as trainable state of a Module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class: attribute assignment auto-registers parameters/submodules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, key, value):
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(v, Module) for v in value
        ):
            for i, v in enumerate(value):
                self._modules[f"{key}.{i}"] = v
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------- traversal
    def parameters(self) -> Iterator[Parameter]:
        yield from self._parameters.values()
        for m in self._modules.values():
            yield from m.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for k, p in self._parameters.items():
            yield (f"{prefix}{k}", p)
        for name, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ---------------------------------------------------------- flat buffers
    def get_flat_params(self) -> np.ndarray:
        """All parameters concatenated into one float64 vector (length M)."""
        parts = [p.data.reshape(-1) for p in self.parameters()]
        return np.concatenate(parts) if parts else np.zeros(0)

    def set_flat_params(self, flat: np.ndarray) -> None:
        offset = 0
        for p in self.parameters():
            n = p.size
            p.data[...] = flat[offset : offset + n].reshape(p.shape)
            offset += n
        if offset != flat.size:
            raise ValueError(f"flat vector size {flat.size} != model size {offset}")

    def get_flat_grads(self) -> np.ndarray:
        parts = [
            (p.grad if p.grad is not None else np.zeros_like(p.data)).reshape(-1)
            for p in self.parameters()
        ]
        return np.concatenate(parts) if parts else np.zeros(0)

    def set_flat_grads(self, flat: np.ndarray) -> None:
        offset = 0
        for p in self.parameters():
            n = p.size
            p.grad = flat[offset : offset + n].reshape(p.shape).copy()
            offset += n

    # ----------------------------------------------------------------- call
    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
