"""Masked multi-head self-attention and the transformer decoder block (Fig. 2).

The paper's amplitude sub-network is a stack of GPT-style *decoders*: masked
multi-head self-attention followed by a position-wise feed-forward layer, each
wrapped in residual connections with layer normalization.  The causal mask is
what makes the network autoregressive — the conditional for token i only sees
tokens < i — which in turn is what enables batch autoregressive sampling.

All array math goes through the active backend's ``xp`` namespace: the
training forward builds an autograd graph over backend arrays, and the
KV-cache ``step`` kernels allocate their masks and attention buffers via
``xp`` so the incremental decode stays device-resident end to end.
"""
from __future__ import annotations

import math

from repro.autograd import Tensor
from repro.backend import xp
from repro.backend.dtypes import bool_
from repro.backend.host import host_np
from repro.nn.inference import KVCache, gelu_np, layer_norm_np, linear_np, softmax_np
from repro.nn.layers import LayerNorm, Linear
from repro.nn.module import Module

__all__ = ["CausalSelfAttention", "FeedForward", "DecoderLayer"]


class CausalSelfAttention(Module):
    """Multi-head self-attention with a causal (lower-triangular) mask."""

    def __init__(self, d_model: int, n_heads: int,
                 rng: host_np.random.Generator | None = None):
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.qkv = Linear(d_model, 3 * d_model, rng=rng)
        self.proj = Linear(d_model, d_model, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """x: (batch, seq, d_model) -> (batch, seq, d_model)."""
        b, t, d = x.shape
        h, dh = self.n_heads, self.d_head
        qkv = self.qkv(x)  # (b, t, 3d)
        qkv = qkv.reshape(b, t, 3, h, dh).transpose(2, 0, 3, 1, 4)  # (3, b, h, t, dh)
        q, k, v = qkv[0], qkv[1], qkv[2]
        att = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(dh))  # (b, h, t, t)
        causal = xp.triu(xp.ones((t, t), dtype=bool_), k=1)
        att = att.masked_fill(causal, -1e30)
        att = att.softmax(axis=-1)
        out = att @ v  # (b, h, t, dh)
        out = out.transpose(0, 2, 1, 3).reshape(b, t, d)
        return self.proj(out)

    def step(self, x, cache: KVCache):
        """Incremental decode: attend ``t_new`` new positions against the cache.

        ``x``: raw ``(batch, t_new, d_model)`` backend activations.  The new
        keys/values are appended to ``cache``; queries attend to every cached
        position plus (causally) the other new positions, so a single call
        with ``t_new == k`` on an empty cache is a batched prefill while
        ``t_new == 1`` is one decoding step.  No autograd graph is built.
        """
        b, t_new, d = x.shape
        h, dh = self.n_heads, self.d_head
        t0 = cache.length
        qkv = linear_np(x, self.qkv)
        qkv = xp.transpose(qkv.reshape(b, t_new, 3, h, dh), (2, 0, 3, 1, 4))
        q, k, v = qkv[0], qkv[1], qkv[2]
        cache.append(k, v)
        att = (q @ xp.swapaxes(cache.k, -1, -2)) * (1.0 / math.sqrt(dh))
        if t_new > 1:
            # New position i (absolute t0+i) must not see absolute j > t0+i.
            causal = xp.triu(xp.ones((t_new, t_new), dtype=bool_), k=1)
            mask = xp.zeros((t_new, t0 + t_new), dtype=bool_)
            mask[:, t0:] = causal
            att = xp.where(mask, -1e30, att)
        att = softmax_np(att, axis=-1)
        out = att @ cache.v  # (b, h, t_new, dh)
        out = xp.transpose(out, (0, 2, 1, 3)).reshape(b, t_new, d)
        return linear_np(out, self.proj)


class FeedForward(Module):
    """Position-wise feed-forward network (d_model -> 4 d_model -> d_model)."""

    def __init__(self, d_model: int, d_ff: int | None = None,
                 rng: host_np.random.Generator | None = None):
        super().__init__()
        d_ff = d_ff or 4 * d_model
        self.fc1 = Linear(d_model, d_ff, rng=rng)
        self.fc2 = Linear(d_ff, d_model, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).gelu())

    def step(self, x):
        """Stateless ``xp`` twin of ``forward`` for the inference sessions."""
        return linear_np(gelu_np(linear_np(x, self.fc1)), self.fc2)


class DecoderLayer(Module):
    """Pre-norm transformer decoder block: x + MHA(LN(x)), then x + FF(LN(x))."""

    def __init__(self, d_model: int, n_heads: int, d_ff: int | None = None,
                 rng: host_np.random.Generator | None = None):
        super().__init__()
        self.ln1 = LayerNorm(d_model)
        self.attn = CausalSelfAttention(d_model, n_heads, rng=rng)
        self.ln2 = LayerNorm(d_model)
        self.ff = FeedForward(d_model, d_ff, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        x = x + self.ff(self.ln2(x))
        return x

    def step(self, x, cache: KVCache):
        """Incremental decode of ``t_new`` new positions through the block."""
        x = x + self.attn.step(layer_norm_np(x, self.ln1), cache)
        x = x + self.ff.step(layer_norm_np(x, self.ln2))
        return x
