"""The phase sub-network: a multilevel perceptron phi(x) (Fig. 2, right).

The paper decomposes Psi(x) = |Psi(x)| e^{i phi(x)} and models the phase with
an MLP of layer sizes N x 512 x 512 x 1 (Sec. 4.1).  The input is the raw
qubit bitstring mapped to {-1, +1}; the output is an unconstrained real phase
in radians.
"""
from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.layers import Linear
from repro.nn.module import Module

__all__ = ["PhaseMLP"]


class PhaseMLP(Module):
    def __init__(self, n_qubits: int, hidden: tuple[int, ...] = (512, 512),
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        sizes = (n_qubits, *hidden, 1)
        self.layers = [Linear(sizes[i], sizes[i + 1], rng=rng) for i in range(len(sizes) - 1)]
        self.n_qubits = n_qubits

    def forward(self, bits: np.ndarray) -> Tensor:
        """(batch, N) 0/1 bits -> (batch,) phase in radians."""
        bits = np.asarray(bits, dtype=np.float64)
        if bits.ndim == 1:
            bits = bits[None, :]
        x = Tensor(2.0 * bits - 1.0)
        for layer in self.layers[:-1]:
            x = layer(x).tanh()
        out = self.layers[-1](x)
        return out.reshape(out.shape[0])
