"""Neural-network building blocks (the torch.nn substitute)."""
from repro.nn.module import Module, Parameter
from repro.nn.layers import Embedding, LayerNorm, Linear, PositionalEmbedding
from repro.nn.inference import (
    FallbackInferenceSession,
    KVCache,
    TransformerInferenceSession,
    make_inference_session,
)
from repro.nn.attention import CausalSelfAttention, DecoderLayer, FeedForward
from repro.nn.transformer import TransformerAmplitude
from repro.nn.phase import PhaseMLP
from repro.nn.made import MADEAmplitude, NAQSMLPAmplitude
from repro.nn.rbm import RBMWavefunction

__all__ = [
    "Module",
    "Parameter",
    "Embedding",
    "LayerNorm",
    "Linear",
    "PositionalEmbedding",
    "KVCache",
    "TransformerInferenceSession",
    "FallbackInferenceSession",
    "make_inference_session",
    "CausalSelfAttention",
    "DecoderLayer",
    "FeedForward",
    "TransformerAmplitude",
    "PhaseMLP",
    "MADEAmplitude",
    "NAQSMLPAmplitude",
    "RBMWavefunction",
]
