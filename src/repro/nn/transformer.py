"""The QiankunNet amplitude sub-network: a stack of transformer decoders.

Fig. 2 of the paper: token embedding + positional embedding, L stacked
decoders (masked multi-head self-attention + feed-forward), and a final
linear + softmax head that emits the conditional distribution
pi(x_i | x_{i-1}, ..., x_1) for every position in one forward pass.

Tokens.  The paper samples *two qubits per step* ("since they correspond to
the same spatial orbital", Sec. 3.3), i.e. the vocabulary is
{00, 01, 10, 11} = {empty, up, down, doubly-occupied} and the sequence length
is N/2 for N qubits.  ``vocab_size`` is configurable (2 for the 1-qubit-token
ablation).

Interface contract (shared with the MADE / NAQS-MLP baselines):
``conditional_logits(tokens)`` takes an int array of shape ``(batch, T)``
(right-padded with zeros beyond the known prefix) and returns a
``(batch, T, vocab)`` Tensor of *unnormalized* logits where the entry at
position ``i`` depends only on tokens ``< i`` — so the caller may feed any
padding for positions ``>= prefix`` without corrupting earlier conditionals.
"""
from __future__ import annotations

from repro.autograd import Tensor
from repro.backend import xp
from repro.backend.dtypes import int64
from repro.backend.host import host_np
from repro.nn.attention import DecoderLayer
from repro.nn.inference import TransformerInferenceSession, layer_norm_np, linear_np
from repro.nn.layers import Embedding, LayerNorm, Linear, PositionalEmbedding
from repro.nn.module import Module

__all__ = ["TransformerAmplitude"]


class TransformerAmplitude(Module):
    """Decoder-only transformer emitting autoregressive conditional logits.

    Parameters (paper defaults, Sec. 4.1): ``d_model=16``, ``n_heads=4``,
    ``n_layers=2`` decoders; the embedding has one extra begin-of-sequence
    token so that the conditional of the first position is also learned.
    """

    def __init__(self, n_tokens: int, vocab_size: int = 4, d_model: int = 16,
                 n_heads: int = 4, n_layers: int = 2, d_ff: int | None = None,
                 rng: host_np.random.Generator | None = None):
        super().__init__()
        rng = rng or host_np.random.default_rng()
        self.n_tokens = n_tokens
        self.vocab_size = vocab_size
        self.d_model = d_model
        self.bos = vocab_size  # index of the begin-of-sequence token
        self.tok_emb = Embedding(vocab_size + 1, d_model, rng=rng)
        self.pos_emb = PositionalEmbedding(n_tokens + 1, d_model, rng=rng)
        self.layers = [DecoderLayer(d_model, n_heads, d_ff, rng=rng) for _ in range(n_layers)]
        self.ln_f = LayerNorm(d_model)
        self.head = Linear(d_model, vocab_size, rng=rng)

    def conditional_logits(self, tokens) -> Tensor:
        """(batch, T) int tokens -> (batch, T, vocab) logits, causally masked."""
        tokens = xp.asarray(tokens, dtype=int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        b, t = tokens.shape
        # Shift right: position i attends to [BOS, x_1, ..., x_{i-1}].
        shifted = xp.concatenate(
            [xp.full((b, 1), self.bos, dtype=int64), tokens[:, : t - 1]], axis=1
        )
        x = self.tok_emb(shifted) + self.pos_emb(t)
        for layer in self.layers:
            x = layer(x)
        return self.head(self.ln_f(x))

    # ------------------------------------------------- incremental decoding
    def make_session(self, batch_size: int = 1) -> TransformerInferenceSession:
        """Open a KV-cached decoding session (see repro.nn.inference)."""
        return TransformerInferenceSession(self, batch_size)

    def cache_bytes(self, n_rows: int, length: int) -> int:
        """Session-cache footprint of ``n_rows`` prefixes of ``length`` tokens:
        one float64 K and V array of ``length * d_model`` per layer and row."""
        return n_rows * len(self.layers) * 2 * length * self.d_model * 8

    def _decode(self, inputs, session: TransformerInferenceSession):
        """Run ``(batch, t_new)`` *input* tokens through the cached stack.

        Inputs are already shifted (BOS first); returns the ``(batch, vocab)``
        logits of the last new position.  Graph-free ``xp`` math only.
        """
        b, t_new = inputs.shape
        pos = session.pos
        # Valid inputs are BOS + the first n_tokens-1 tokens; one more step
        # would read the never-trained extra positional-embedding row.
        if pos + t_new > self.n_tokens:
            raise ValueError(
                f"decoding past the model's {self.n_tokens}-token sequence "
                f"(position {pos + t_new - 1})"
            )
        x = self.tok_emb.weight.data[inputs] + self.pos_emb.weight.data[pos:pos + t_new]
        for layer, cache in zip(self.layers, session.caches):
            x = layer.step(x, cache)
        session.pos = pos + t_new
        logits = linear_np(layer_norm_np(x[:, -1:, :], self.ln_f), self.head)
        return logits[:, 0, :]

    def step(self, prev_tokens, session: TransformerInferenceSession):
        """Consume one token per row; return next-position ``(batch, vocab)`` logits."""
        if prev_tokens is None:
            if session.pos != 0:
                raise ValueError("prev_tokens required once the session has started")
            inputs = xp.full((session.batch_size, 1), self.bos, dtype=int64)
        else:
            if session.pos == 0:
                raise ValueError(
                    "the first step consumes BOS: call step(None) or prefill()"
                )
            inputs = xp.asarray(prev_tokens, dtype=int64).reshape(-1, 1)
        return self._decode(inputs, session)

    def prefill(self, prefix_tokens, session: TransformerInferenceSession):
        """Build the session caches from a whole ``(batch, k)`` prefix at once."""
        if session.pos != 0:
            raise ValueError("prefill requires a fresh session")
        prefix = xp.asarray(prefix_tokens, dtype=int64)
        if prefix.ndim == 1:
            prefix = prefix[None, :]
        bos = xp.full((len(prefix), 1), self.bos, dtype=int64)
        return self._decode(xp.concatenate([bos, prefix], axis=1), session)
