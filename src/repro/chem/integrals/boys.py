"""The Boys function F_m(x) = ∫_0^1 t^{2m} exp(-x t^2) dt.

Evaluated through Kummer's confluent hypergeometric function,
F_m(x) = 1F1(m + 1/2; m + 3/2; -x) / (2m + 1), which scipy computes stably
for the argument ranges occurring in molecular integrals.  Downward recursion
fills all orders 0..m_max from the highest one.
"""
from __future__ import annotations

import numpy as np
from scipy.special import hyp1f1

__all__ = ["boys", "boys_array"]


def boys(m: int, x: float) -> float:
    return float(hyp1f1(m + 0.5, m + 1.5, -x)) / (2 * m + 1)


def boys_array(m_max: int, x: np.ndarray) -> np.ndarray:
    """F_m(x) for m = 0..m_max, vectorized over x.

    Returns shape ``(m_max + 1, *x.shape)``.  Uses the downward recursion
    F_m(x) = (2x F_{m+1}(x) + exp(-x)) / (2m + 1), which is numerically stable
    (upward recursion loses precision at small x).
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty((m_max + 1,) + x.shape)
    out[m_max] = hyp1f1(m_max + 0.5, m_max + 1.5, -x) / (2 * m_max + 1)
    ex = np.exp(-x)
    for m in range(m_max - 1, -1, -1):
        out[m] = (2.0 * x * out[m + 1] + ex) / (2 * m + 1)
    return out
