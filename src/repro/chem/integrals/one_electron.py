"""One-electron integrals: overlap S, kinetic T, nuclear attraction V.

All matrices are returned in the *cartesian* AO basis with each component
individually normalized; the driver applies the spherical transform.
"""
from __future__ import annotations

import numpy as np

from repro.chem.basis.shells import BasisSet, Shell, cartesian_components
from repro.chem.integrals.hermite import e_coefficients, hermite_coulomb_batch

__all__ = ["overlap", "kinetic", "nuclear_attraction", "dipole"]


def _pair_e_tables(sha: Shell, shb: Shell, extra_b: int = 0):
    """E tables for every primitive pair: list over (ia, ib) of 3 tables.

    ``extra_b`` raises the b-side angular momentum (needed by the kinetic
    integral, which differentiates the right Gaussian twice).
    """
    ab = sha.center - shb.center
    tables = {}
    for ia, a in enumerate(sha.exps):
        for ib, b in enumerate(shb.exps):
            tables[ia, ib] = [
                e_coefficients(sha.l, shb.l + extra_b, a, b, ab[d]) for d in range(3)
            ]
    return tables


def _overlap_1d(E: np.ndarray, i: int, j: int, p: float) -> float:
    return E[i, j, 0] * np.sqrt(np.pi / p)


def overlap(basis: BasisSet) -> np.ndarray:
    n = basis.n_cart_ao
    S = np.zeros((n, n))
    slices = basis.shell_slices_cart()
    for A, sha in enumerate(basis.shells):
        compsA = cartesian_components(sha.l)
        normA = sha.component_norms()
        for B in range(A + 1):
            shb = basis.shells[B]
            compsB = cartesian_components(shb.l)
            normB = shb.component_norms()
            E = _pair_e_tables(sha, shb)
            block = np.zeros((sha.n_cart, shb.n_cart))
            for ia, a in enumerate(sha.exps):
                ca = sha.norm_coefs[ia]
                for ib, b in enumerate(shb.exps):
                    cb = shb.norm_coefs[ib]
                    p = a + b
                    Ex, Ey, Ez = E[ia, ib]
                    pref = ca * cb * (np.pi / p) ** 1.5
                    for qa, (l1, m1, n1) in enumerate(compsA):
                        for qb, (l2, m2, n2) in enumerate(compsB):
                            block[qa, qb] += pref * Ex[l1, l2, 0] * Ey[m1, m2, 0] * Ez[n1, n2, 0]
            block *= normA[:, None] * normB[None, :]
            S[slices[A], slices[B]] = block
            S[slices[B], slices[A]] = block.T
    return S


def kinetic(basis: BasisSet) -> np.ndarray:
    r"""T_{ab} = -1/2 <a|\nabla^2|b>, via the 1D relation

      T_{ij} = -2 b^2 S_{i,j+2} + b (2j+1) S_{ij} - j(j-1)/2 S_{i,j-2}.
    """
    n = basis.n_cart_ao
    T = np.zeros((n, n))
    slices = basis.shell_slices_cart()
    for A, sha in enumerate(basis.shells):
        compsA = cartesian_components(sha.l)
        normA = sha.component_norms()
        for B in range(A + 1):
            shb = basis.shells[B]
            compsB = cartesian_components(shb.l)
            normB = shb.component_norms()
            E = _pair_e_tables(sha, shb, extra_b=2)
            block = np.zeros((sha.n_cart, shb.n_cart))
            for ia, a in enumerate(sha.exps):
                ca = sha.norm_coefs[ia]
                for ib, b in enumerate(shb.exps):
                    cb = shb.norm_coefs[ib]
                    p = a + b
                    tabs = E[ia, ib]
                    root = np.sqrt(np.pi / p)

                    def s1d(dim, i, j):
                        return tabs[dim][i, j, 0] * root if j >= 0 else 0.0

                    def t1d(dim, i, j):
                        val = -2.0 * b * b * s1d(dim, i, j + 2)
                        val += b * (2 * j + 1) * s1d(dim, i, j)
                        if j >= 2:
                            val -= 0.5 * j * (j - 1) * s1d(dim, i, j - 2)
                        return val

                    for qa, (l1, m1, n1) in enumerate(compsA):
                        for qb, (l2, m2, n2) in enumerate(compsB):
                            val = (
                                t1d(0, l1, l2) * s1d(1, m1, m2) * s1d(2, n1, n2)
                                + s1d(0, l1, l2) * t1d(1, m1, m2) * s1d(2, n1, n2)
                                + s1d(0, l1, l2) * s1d(1, m1, m2) * t1d(2, n1, n2)
                            )
                            block[qa, qb] += ca * cb * val
            block *= normA[:, None] * normB[None, :]
            T[slices[A], slices[B]] = block
            T[slices[B], slices[A]] = block.T
    return T


def dipole(basis: BasisSet, origin=None) -> np.ndarray:
    r"""First-moment integrals ``D[w, a, b] = <a| (r - origin)_w |b>``.

    With the Hermite recurrence ``x_P \Lambda_t = t \Lambda_{t-1} +
    \Lambda_{t+1} / (2p)`` the 1D moment about the composite center P is
    ``E[i, j, 1] \sqrt{\pi/p}``, so the moment about an arbitrary origin C is
    ``(E[i, j, 1] + (P - C)_w E[i, j, 0]) \sqrt{\pi/p}``.
    """
    origin = np.zeros(3) if origin is None else np.asarray(origin, dtype=np.float64)
    n = basis.n_cart_ao
    D = np.zeros((3, n, n))
    slices = basis.shell_slices_cart()
    for A, sha in enumerate(basis.shells):
        compsA = cartesian_components(sha.l)
        normA = sha.component_norms()
        for B in range(A + 1):
            shb = basis.shells[B]
            compsB = cartesian_components(shb.l)
            normB = shb.component_norms()
            # extra_b=1 so the t=1 Hermite coefficient exists for all (i, j).
            E = _pair_e_tables(sha, shb, extra_b=1)
            block = np.zeros((3, sha.n_cart, shb.n_cart))
            for ia, a in enumerate(sha.exps):
                ca = sha.norm_coefs[ia]
                for ib, b in enumerate(shb.exps):
                    cb = shb.norm_coefs[ib]
                    p = a + b
                    P = (a * sha.center + b * shb.center) / p
                    pc = P - origin
                    tabs = E[ia, ib]
                    pref = ca * cb * (np.pi / p) ** 1.5
                    for qa, ijkA in enumerate(compsA):
                        for qb, ijkB in enumerate(compsB):
                            s1 = [tabs[d][ijkA[d], ijkB[d], 0] for d in range(3)]
                            for w in range(3):
                                m1 = tabs[w][ijkA[w], ijkB[w], 1] + pc[w] * s1[w]
                                val = m1
                                for d in range(3):
                                    if d != w:
                                        val *= s1[d]
                                block[w, qa, qb] += pref * val
            block *= normA[None, :, None] * normB[None, None, :]
            for w in range(3):
                D[w][slices[A], slices[B]] = block[w]
                D[w][slices[B], slices[A]] = block[w].T
    return D


def nuclear_attraction(basis: BasisSet) -> np.ndarray:
    """V_{ab} = -sum_C Z_C <a| 1/|r - R_C| |b> over all nuclei."""
    mol = basis.molecule
    charges = mol.atomic_numbers.astype(np.float64)
    centers = mol.coords_array
    n = basis.n_cart_ao
    V = np.zeros((n, n))
    slices = basis.shell_slices_cart()
    for A, sha in enumerate(basis.shells):
        compsA = cartesian_components(sha.l)
        normA = sha.component_norms()
        for B in range(A + 1):
            shb = basis.shells[B]
            compsB = cartesian_components(shb.l)
            normB = shb.component_norms()
            lmax = sha.l + shb.l
            E = _pair_e_tables(sha, shb)
            block = np.zeros((sha.n_cart, shb.n_cart))
            for ia, a in enumerate(sha.exps):
                ca = sha.norm_coefs[ia]
                for ib, b in enumerate(shb.exps):
                    cb = shb.norm_coefs[ib]
                    p = a + b
                    P = (a * sha.center + b * shb.center) / p
                    rpc = P[None, :] - centers  # (n_atoms, 3)
                    R = hermite_coulomb_batch(lmax, np.full(len(charges), p), rpc)
                    # Charge-weighted sum over nuclei.
                    Rw = np.einsum("c,ctuv->tuv", -charges, R)
                    Ex, Ey, Ez = E[ia, ib]
                    pref = ca * cb * 2.0 * np.pi / p
                    for qa, (l1, m1, n1) in enumerate(compsA):
                        for qb, (l2, m2, n2) in enumerate(compsB):
                            acc = np.einsum(
                                "t,u,v,tuv->",
                                Ex[l1, l2, : l1 + l2 + 1],
                                Ey[m1, m2, : m1 + m2 + 1],
                                Ez[n1, n2, : n1 + n2 + 1],
                                Rw[: l1 + l2 + 1, : m1 + m2 + 1, : n1 + n2 + 1],
                            )
                            block[qa, qb] += pref * acc
            block *= normA[:, None] * normB[None, :]
            V[slices[A], slices[B]] = block
            V[slices[B], slices[A]] = block.T
    return V
