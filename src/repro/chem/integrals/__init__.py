"""Gaussian integral engine (McMurchie-Davidson)."""
from repro.chem.integrals.boys import boys, boys_array
from repro.chem.integrals.driver import AOIntegrals, compute_integrals
from repro.chem.integrals.one_electron import kinetic, nuclear_attraction, overlap
from repro.chem.integrals.two_electron import electron_repulsion

__all__ = [
    "boys",
    "boys_array",
    "AOIntegrals",
    "compute_integrals",
    "kinetic",
    "nuclear_attraction",
    "overlap",
    "electron_repulsion",
]
