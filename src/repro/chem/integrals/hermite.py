"""McMurchie–Davidson Hermite machinery.

Two pieces:

* ``e_coefficients`` — the expansion of a cartesian Gaussian product
  G_i(a, x-Ax) G_j(b, x-Bx) in Hermite Gaussians Λ_t(p, x-Px):
  recursion over (i, j, t).
* ``hermite_coulomb`` — the auxiliary integrals R_{tuv} built from Boys
  function values by the standard three-term recursion, vectorized over a
  batch of Gaussian-pair centers (needed to keep the pure-Python ERI loop
  tolerable: one numpy pass handles all primitive quartets of a shell
  quartet).
"""
from __future__ import annotations

import numpy as np

from repro.chem.integrals.boys import boys_array

__all__ = ["e_coefficients", "hermite_coulomb_batch"]


def e_coefficients(la: int, lb: int, a: float, b: float, qx: float) -> np.ndarray:
    """E_t^{ij} table, shape (la+1, lb+1, la+lb+1).

    ``qx = Ax - Bx`` is the center separation along one axis; ``a``/``b`` the
    primitive exponents.  Standard recursions:

      E_t^{i+1,j} = E_{t-1}^{ij}/(2p) - (b/p) qx E_t^{ij} + (t+1) E_{t+1}^{ij}
      E_t^{i,j+1} = E_{t-1}^{ij}/(2p) + (a/p) qx E_t^{ij} + (t+1) E_{t+1}^{ij}

    with E_0^{00} = exp(-mu qx^2), mu = a b / p, p = a + b.
    """
    p = a + b
    mu = a * b / p
    tmax = la + lb
    E = np.zeros((la + 1, lb + 1, tmax + 2))  # one slack slot for t+1 access
    E[0, 0, 0] = np.exp(-mu * qx * qx)
    # Build up i first (j = 0), then extend j for every i.
    for i in range(1, la + 1):
        for t in range(i + 1):
            val = -(b / p) * qx * E[i - 1, 0, t] + (t + 1) * E[i - 1, 0, t + 1]
            if t > 0:
                val += E[i - 1, 0, t - 1] / (2.0 * p)
            E[i, 0, t] = val
    for j in range(1, lb + 1):
        for i in range(la + 1):
            for t in range(i + j + 1):
                val = (a / p) * qx * E[i, j - 1, t] + (t + 1) * E[i, j - 1, t + 1]
                if t > 0:
                    val += E[i, j - 1, t - 1] / (2.0 * p)
                E[i, j, t] = val
    return E[:, :, : tmax + 1]


def hermite_coulomb_batch(lmax: int, alpha: np.ndarray, rpq: np.ndarray) -> np.ndarray:
    """R^0_{tuv} for a batch of centers, shape (batch, lmax+1, lmax+1, lmax+1).

    ``alpha``: (batch,) effective exponents; ``rpq``: (batch, 3) separation
    vectors.  Only entries with t+u+v <= lmax are meaningful.  Recursion:

      R^n_{t+1,u,v} = t R^{n+1}_{t-1,u,v} + X R^{n+1}_{t,u,v}   (etc. for u, v)
      R^n_{0,0,0}   = (-2 alpha)^n F_n(alpha |rpq|^2)
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    rpq = np.asarray(rpq, dtype=np.float64)
    batch = alpha.shape[0]
    x2 = np.einsum("bi,bi->b", rpq, rpq)
    fm = boys_array(lmax, alpha * x2)  # (lmax+1, batch)
    minus2a = (-2.0 * alpha)[None, :] ** np.arange(lmax + 1)[:, None]
    base = fm * minus2a  # R^n_000, shape (lmax+1, batch)

    L = lmax + 1
    # R[n, t, u, v, b]; build n from high to low.
    R = np.zeros((L, L, L, L, batch))
    R[:, 0, 0, 0, :] = base
    X, Y, Z = rpq[:, 0], rpq[:, 1], rpq[:, 2]
    for n in range(lmax - 1, -1, -1):
        span = lmax - n  # max t+u+v needed at this n
        for t in range(span + 1):
            for u in range(span - t + 1):
                for v in range(span - t - u + 1):
                    if t == u == v == 0:
                        continue
                    if t > 0:
                        val = X * R[n + 1, t - 1, u, v]
                        if t > 1:
                            val += (t - 1) * R[n + 1, t - 2, u, v]
                    elif u > 0:
                        val = Y * R[n + 1, t, u - 1, v]
                        if u > 1:
                            val += (u - 1) * R[n + 1, t, u - 2, v]
                    else:
                        val = Z * R[n + 1, t, u, v - 1]
                        if v > 1:
                            val += (v - 1) * R[n + 1, t, u, v - 2]
                    R[n, t, u, v] = val
    return np.moveaxis(R[0], -1, 0)  # (batch, L, L, L)
