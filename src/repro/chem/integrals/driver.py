"""Integral driver: assemble spherical-AO integral tensors for a molecule."""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.basis.shells import BasisSet, build_basis
from repro.chem.geometry import Molecule
from repro.chem.integrals.one_electron import dipole, kinetic, nuclear_attraction, overlap
from repro.chem.integrals.two_electron import electron_repulsion

__all__ = ["AOIntegrals", "compute_integrals", "compute_dipole_integrals"]


@dataclass
class AOIntegrals:
    """AO-basis integrals in the spherical-harmonic basis.

    ``eri`` uses chemists' notation: eri[p,q,r,s] = (pq|rs).
    """

    molecule: Molecule
    basis: BasisSet
    S: np.ndarray
    T: np.ndarray
    V: np.ndarray
    eri: np.ndarray
    e_nuc: float

    @property
    def hcore(self) -> np.ndarray:
        return self.T + self.V

    @property
    def n_ao(self) -> int:
        return self.S.shape[0]


def compute_dipole_integrals(
    molecule: Molecule, basis_name: str = "sto-3g", origin=None
) -> np.ndarray:
    """Spherical-AO first-moment integrals ``(3, n_ao, n_ao)`` about ``origin``."""
    basis = build_basis(molecule, basis_name)
    C = basis.cart_to_sph_matrix()
    D = dipole(basis, origin=origin)
    return np.stack([C @ D[w] @ C.T for w in range(3)])


def compute_integrals(molecule: Molecule, basis_name: str = "sto-3g") -> AOIntegrals:
    basis = build_basis(molecule, basis_name)
    C = basis.cart_to_sph_matrix()  # (n_sph, n_cart)
    S = C @ overlap(basis) @ C.T
    T = C @ kinetic(basis) @ C.T
    V = C @ nuclear_attraction(basis) @ C.T
    eri_cart = electron_repulsion(basis)
    eri = np.einsum("pi,qj,rk,sl,ijkl->pqrs", C, C, C, C, eri_cart, optimize=True)
    return AOIntegrals(
        molecule=molecule,
        basis=basis,
        S=S,
        T=T,
        V=V,
        eri=eri,
        e_nuc=molecule.nuclear_repulsion(),
    )
