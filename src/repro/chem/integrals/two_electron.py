"""Two-electron repulsion integrals (ERIs) in chemists' notation (ab|cd).

McMurchie–Davidson with the full 8-fold permutational symmetry at the
shell-quartet level.  The pure-Python loop structure follows the HPC guides'
advice: Python iterates only over shell quartets, while everything inside a
quartet — primitive combinations, Hermite Coulomb tensors, component
contraction — is one batched numpy einsum.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.basis.shells import BasisSet, Shell, cartesian_components
from repro.chem.integrals.hermite import e_coefficients, hermite_coulomb_batch

__all__ = ["electron_repulsion"]

_SCREEN = 1e-14  # Gaussian-product prefactor screening threshold


@dataclass
class _PairData:
    """Precomputed primitive-pair data for one shell pair."""

    p: np.ndarray        # (K,) combined exponents
    P: np.ndarray        # (K, 3) product centers
    coef: np.ndarray     # (K,) contraction coefficient products
    theta: np.ndarray    # (K, ncA, ncB, T, T, T) E-coefficient products
    lab: int


def _build_pair(sha: Shell, shb: Shell) -> _PairData:
    compsA = np.array(cartesian_components(sha.l))
    compsB = np.array(cartesian_components(shb.l))
    lab = sha.l + shb.l
    T = lab + 1
    ab = sha.center - shb.center
    mu_r2 = np.add.outer(
        np.zeros(len(sha.exps)), np.zeros(len(shb.exps))
    )  # placeholder shape (na, nb)
    ps, Ps, coefs, thetas = [], [], [], []
    for ia, a in enumerate(sha.exps):
        for ib, b in enumerate(shb.exps):
            p = a + b
            if np.exp(-(a * b / p) * float(ab @ ab)) < _SCREEN:
                continue
            E = [e_coefficients(sha.l, shb.l, a, b, ab[d]) for d in range(3)]
            # theta[qa, qb, t, u, v] = Ex[l1,l2,t] Ey[m1,m2,u] Ez[n1,n2,v]
            Ex = E[0][compsA[:, 0][:, None], compsB[:, 0][None, :], :]
            Ey = E[1][compsA[:, 1][:, None], compsB[:, 1][None, :], :]
            Ez = E[2][compsA[:, 2][:, None], compsB[:, 2][None, :], :]
            theta = np.einsum("abt,abu,abv->abtuv", Ex, Ey, Ez)
            ps.append(p)
            Ps.append((a * sha.center + b * shb.center) / p)
            coefs.append(sha.norm_coefs[ia] * shb.norm_coefs[ib])
            thetas.append(theta)
    if not ps:  # fully screened pair
        ncA, ncB = len(compsA), len(compsB)
        return _PairData(np.zeros(0), np.zeros((0, 3)), np.zeros(0),
                         np.zeros((0, ncA, ncB, T, T, T)), lab)
    return _PairData(
        np.array(ps), np.array(Ps), np.array(coefs), np.array(thetas), lab
    )


def _quartet(bra: _PairData, ket: _PairData) -> np.ndarray:
    """(ncA, ncB, ncC, ncD) cartesian ERI block for one shell quartet."""
    K1, K2 = len(bra.p), len(ket.p)
    ncA, ncB = bra.theta.shape[1:3]
    ncC, ncD = ket.theta.shape[1:3]
    Tb, Tk = bra.lab + 1, ket.lab + 1
    if K1 == 0 or K2 == 0:
        return np.zeros((ncA, ncB, ncC, ncD))
    i1 = np.repeat(np.arange(K1), K2)
    i2 = np.tile(np.arange(K2), K1)
    p1, p2 = bra.p[i1], ket.p[i2]
    alpha = p1 * p2 / (p1 + p2)
    rpq = bra.P[i1] - ket.P[i2]
    L = bra.lab + ket.lab
    R = hermite_coulomb_batch(L, alpha, rpq)  # (K, L+1, L+1, L+1)
    pref = (
        2.0 * np.pi**2.5 / (p1 * p2 * np.sqrt(p1 + p2)) * bra.coef[i1] * ket.coef[i2]
    )
    # R6[k, t, u, v, x, y, z] = R[k, t+x, u+y, v+z]
    t1 = np.arange(Tb)
    t2 = np.arange(Tk)
    tt = t1[:, None, None, None, None, None] + t2[None, None, None, :, None, None]
    uu = t1[None, :, None, None, None, None] + t2[None, None, None, None, :, None]
    vv = t1[None, None, :, None, None, None] + t2[None, None, None, None, None, :]
    R6 = R[:, tt, uu, vv]
    # Fold (-1)^{x+y+z} into the ket theta.
    sign = (-1.0) ** (
        t2[:, None, None] + t2[None, :, None] + t2[None, None, :]
    )
    theta_ket = ket.theta * sign[None, None, None]
    return np.einsum(
        "k,kabtuv,kcdxyz,ktuvxyz->abcd",
        pref,
        bra.theta[i1],
        theta_ket[i2],
        R6,
        optimize=True,
    )


def electron_repulsion(basis: BasisSet) -> np.ndarray:
    """Full (n,n,n,n) cartesian ERI tensor, chemists' notation (ab|cd)."""
    shells = basis.shells
    slices = basis.shell_slices_cart()
    norms = [sh.component_norms() for sh in shells]
    n = basis.n_cart_ao
    eri = np.zeros((n, n, n, n))

    # Canonical shell pairs (A >= B) with precomputed pair data.
    pairs: list[tuple[int, int, _PairData]] = []
    for A in range(len(shells)):
        for B in range(A + 1):
            pairs.append((A, B, _build_pair(shells[A], shells[B])))

    for pid1, (A, B, bra) in enumerate(pairs):
        for pid2 in range(pid1 + 1):
            C, D, ket = pairs[pid2]
            block = _quartet(bra, ket)
            block = np.einsum(
                "abcd,a,b,c,d->abcd", block, norms[A], norms[B], norms[C], norms[D]
            )
            sA, sB, sC, sD = slices[A], slices[B], slices[C], slices[D]
            eri[sA, sB, sC, sD] = block
            eri[sB, sA, sC, sD] = block.transpose(1, 0, 2, 3)
            eri[sA, sB, sD, sC] = block.transpose(0, 1, 3, 2)
            eri[sB, sA, sD, sC] = block.transpose(1, 0, 3, 2)
            eri[sC, sD, sA, sB] = block.transpose(2, 3, 0, 1)
            eri[sD, sC, sA, sB] = block.transpose(3, 2, 0, 1)
            eri[sC, sD, sB, sA] = block.transpose(2, 3, 1, 0)
            eri[sD, sC, sB, sA] = block.transpose(3, 2, 1, 0)
    return eri
