"""Periodic-table data needed by the integrals and SCF code."""
from __future__ import annotations

__all__ = ["SYMBOLS", "atomic_number", "ANGSTROM_TO_BOHR"]

# Elements H..Ar cover every molecule in the paper's evaluation.
SYMBOLS = [
    "H", "He",
    "Li", "Be", "B", "C", "N", "O", "F", "Ne",
    "Na", "Mg", "Al", "Si", "P", "S", "Cl", "Ar",
]

_Z = {sym: i + 1 for i, sym in enumerate(SYMBOLS)}

ANGSTROM_TO_BOHR = 1.8897259886


def atomic_number(symbol: str) -> int:
    try:
        return _Z[symbol.capitalize() if len(symbol) > 1 else symbol.upper()]
    except KeyError as exc:
        raise ValueError(f"unsupported element {symbol!r} (H..Ar supported)") from exc
