"""Geometries of every molecule appearing in the paper's evaluation.

Equilibrium geometries (Angstrom) follow standard experimental/computational
values; where the paper's exact geometry is unknown these are the common
NIST/CCCBDB equilibrium structures — absolute energies shift by milli-Hartrees
but every qualitative comparison (method orderings, error trends) is
unaffected.
"""
from __future__ import annotations

import numpy as np

from repro.chem.geometry import Molecule

__all__ = ["make_molecule", "MOLECULES", "paper_table1_molecules", "fig9_molecules"]


def _h2(r: float = 0.7414) -> Molecule:
    return Molecule.from_angstrom([("H", (0, 0, 0)), ("H", (0, 0, r))], name="H2")


def _lih(r: float = 1.5949) -> Molecule:
    return Molecule.from_angstrom([("Li", (0, 0, 0)), ("H", (0, 0, r))], name="LiH")


def _beh2(r: float = 1.3264) -> Molecule:
    return Molecule.from_angstrom(
        [("Be", (0, 0, 0)), ("H", (0, 0, -r)), ("H", (0, 0, r))], name="BeH2"
    )


def _h2o(r: float = 0.9578, theta_deg: float = 104.478) -> Molecule:
    th = np.deg2rad(theta_deg) / 2.0
    return Molecule.from_angstrom(
        [
            ("O", (0.0, 0.0, 0.0)),
            ("H", (r * np.sin(th), 0.0, r * np.cos(th))),
            ("H", (-r * np.sin(th), 0.0, r * np.cos(th))),
        ],
        name="H2O",
    )


def _nh3() -> Molecule:
    # C3v, r(NH) = 1.0124 A, HNH = 106.67 deg
    r, hnh = 1.0124, np.deg2rad(106.67)
    # Place H atoms on a cone around z.
    rho = r * np.sqrt(2.0 / 3.0 * (1.0 - np.cos(hnh)))
    z = -np.sqrt(max(r * r - rho * rho, 0.0))
    atoms = [("N", (0.0, 0.0, 0.0))]
    for k in range(3):
        phi = 2.0 * np.pi * k / 3.0
        atoms.append(("H", (rho * np.cos(phi), rho * np.sin(phi), z)))
    return Molecule.from_angstrom(atoms, name="NH3")


def _n2(r: float = 1.0977) -> Molecule:
    return Molecule.from_angstrom([("N", (0, 0, 0)), ("N", (0, 0, r))], name="N2")


def _o2(r: float = 1.2075) -> Molecule:
    return Molecule.from_angstrom([("O", (0, 0, 0)), ("O", (0, 0, r))], name="O2")


def _c2(r: float = 1.2425) -> Molecule:
    return Molecule.from_angstrom([("C", (0, 0, 0)), ("C", (0, 0, r))], name="C2")


def _h2s(r: float = 1.3356, theta_deg: float = 92.11) -> Molecule:
    th = np.deg2rad(theta_deg) / 2.0
    return Molecule.from_angstrom(
        [
            ("S", (0.0, 0.0, 0.0)),
            ("H", (r * np.sin(th), 0.0, r * np.cos(th))),
            ("H", (-r * np.sin(th), 0.0, r * np.cos(th))),
        ],
        name="H2S",
    )


def _ph3() -> Molecule:
    r, hph = 1.4200, np.deg2rad(93.5)
    rho = r * np.sqrt(2.0 / 3.0 * (1.0 - np.cos(hph)))
    z = -np.sqrt(max(r * r - rho * rho, 0.0))
    atoms = [("P", (0.0, 0.0, 0.0))]
    for k in range(3):
        phi = 2.0 * np.pi * k / 3.0
        atoms.append(("H", (rho * np.cos(phi), rho * np.sin(phi), z)))
    return Molecule.from_angstrom(atoms, name="PH3")


def _licl(r: float = 2.0207) -> Molecule:
    return Molecule.from_angstrom([("Li", (0, 0, 0)), ("Cl", (0, 0, r))], name="LiCl")


def _li2o(r: float = 1.606) -> Molecule:
    # Linear Li-O-Li.
    return Molecule.from_angstrom(
        [("O", (0, 0, 0)), ("Li", (0, 0, r)), ("Li", (0, 0, -r))], name="Li2O"
    )


def _c2h4o() -> Molecule:
    # Ethylene oxide (oxirane), C2v; standard experimental geometry.
    return Molecule.from_angstrom(
        [
            ("O", (0.0, 0.0, 0.8573)),
            ("C", (0.0, 0.7311, -0.3745)),
            ("C", (0.0, -0.7311, -0.3745)),
            ("H", (0.9124, 1.2618, -0.6360)),
            ("H", (-0.9124, 1.2618, -0.6360)),
            ("H", (0.9124, -1.2618, -0.6360)),
            ("H", (-0.9124, -1.2618, -0.6360)),
        ],
        name="C2H4O",
    )


def _c3h6() -> Molecule:
    # Cyclopropane, D3h: C ring radius 0.8754 A (r_CC=1.512), r_CH=1.083.
    rc = 1.5120 / np.sqrt(3.0)
    atoms = []
    hc = 1.083
    # H-C-H plane perpendicular to ring; HCH angle 114.5 deg.
    half = np.deg2rad(114.5) / 2.0
    for k in range(3):
        phi = 2.0 * np.pi * k / 3.0
        cx, cy = rc * np.cos(phi), rc * np.sin(phi)
        atoms.append(("C", (cx, cy, 0.0)))
        # Hydrogens above/below the plane, displaced radially outward.
        out = np.array([np.cos(phi), np.sin(phi), 0.0])
        for sz in (+1.0, -1.0):
            pos = np.array([cx, cy, 0.0]) + hc * (
                np.sin(half) * sz * np.array([0.0, 0.0, 1.0]) + np.cos(half) * out
            )
            atoms.append(("H", tuple(pos)))
    return Molecule.from_angstrom(atoms, name="C3H6")


def _benzene() -> Molecule:
    # D6h, r_CC = 1.397 A, r_CH = 1.084 A — the 6-31G / 120-qubit workload.
    rc, rh = 1.397, 1.397 + 1.084
    atoms = []
    for k in range(6):
        phi = np.pi * k / 3.0
        atoms.append(("C", (rc * np.cos(phi), rc * np.sin(phi), 0.0)))
        atoms.append(("H", (rh * np.cos(phi), rh * np.sin(phi), 0.0)))
    return Molecule.from_angstrom(atoms, name="C6H6")


_FACTORIES = {
    "H2": _h2,
    "LiH": _lih,
    "BeH2": _beh2,
    "H2O": _h2o,
    "NH3": _nh3,
    "N2": _n2,
    "O2": _o2,
    "C2": _c2,
    "H2S": _h2s,
    "PH3": _ph3,
    "LiCl": _licl,
    "Li2O": _li2o,
    "C2H4O": _c2h4o,
    "C3H6": _c3h6,
    "C6H6": _benzene,
}

MOLECULES = sorted(_FACTORIES)


def make_molecule(name: str, **kwargs) -> Molecule:
    """Build a preset molecule by name; geometry kwargs forwarded (e.g. r=...)."""
    try:
        factory = _FACTORIES[name]
    except KeyError as exc:
        raise ValueError(f"unknown molecule {name!r}; available: {MOLECULES}") from exc
    return factory(**kwargs)


def paper_table1_molecules() -> list[str]:
    """The Table 1 systems, smallest first."""
    return ["H2O", "N2", "O2", "H2S", "PH3", "LiCl", "Li2O"]


def fig9_molecules() -> list[str]:
    """The Fig. 9 memory-reduction systems."""
    return ["LiH", "H2O", "C2", "N2", "NH3", "Li2O", "C2H4O", "C3H6"]
