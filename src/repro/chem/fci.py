"""Full configuration interaction via the sector-restricted qubit Hamiltonian.

This deliberately reuses the Jordan-Wigner + compressed-storage machinery that
the VMC local-energy kernel consumes: the FCI matvec applies exactly the same
"XOR flip + YZ parity sign" arithmetic to the whole determinant sector, so a
correct FCI energy doubles as an integration test of the Hamiltonian pipeline.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hamiltonian.exact import SectorBasis, exact_ground_state
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian

__all__ = ["FCIResult", "run_fci"]


@dataclass
class FCIResult:
    energy: float
    ground_state: np.ndarray
    basis: SectorBasis

    @property
    def dim(self) -> int:
        return self.basis.dim


def run_fci(hamiltonian: QubitHamiltonian, n_up: int | None = None,
            n_dn: int | None = None) -> FCIResult:
    e, vec, basis = exact_ground_state(hamiltonian, n_up=n_up, n_dn=n_dn)
    return FCIResult(energy=e, ground_state=vec, basis=basis)
