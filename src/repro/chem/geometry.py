"""Molecular geometry container."""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.elements import ANGSTROM_TO_BOHR, atomic_number

__all__ = ["Molecule"]


@dataclass(frozen=True)
class Molecule:
    """A molecule: element symbols + coordinates (stored in Bohr).

    ``charge`` shifts the electron count; ``n_electrons`` is derived.
    """

    symbols: tuple[str, ...]
    coords: tuple[tuple[float, float, float], ...]  # Bohr
    charge: int = 0
    name: str = ""

    @staticmethod
    def from_angstrom(atoms: list[tuple[str, tuple[float, float, float]]],
                      charge: int = 0, name: str = "") -> "Molecule":
        symbols = tuple(sym for sym, _ in atoms)
        coords = tuple(
            tuple(float(c) * ANGSTROM_TO_BOHR for c in xyz) for _, xyz in atoms
        )
        return Molecule(symbols, coords, charge=charge, name=name)

    @property
    def n_atoms(self) -> int:
        return len(self.symbols)

    @property
    def atomic_numbers(self) -> np.ndarray:
        return np.array([atomic_number(s) for s in self.symbols], dtype=np.int64)

    @property
    def n_electrons(self) -> int:
        return int(self.atomic_numbers.sum()) - self.charge

    @property
    def coords_array(self) -> np.ndarray:
        return np.array(self.coords, dtype=np.float64)

    def nuclear_repulsion(self) -> float:
        """E_nn = sum_{A<B} Z_A Z_B / |R_A - R_B| (Hartree)."""
        z = self.atomic_numbers.astype(np.float64)
        r = self.coords_array
        e = 0.0
        for a in range(self.n_atoms):
            for b in range(a + 1, self.n_atoms):
                e += z[a] * z[b] / np.linalg.norm(r[a] - r[b])
        return e

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "".join(self.symbols)
        return f"Molecule({label}, {self.n_electrons} e-)"
