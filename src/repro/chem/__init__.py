"""Quantum-chemistry substrate (the PySCF substitute)."""
from repro.chem.geometry import Molecule
from repro.chem.molecules import MOLECULES, fig9_molecules, make_molecule, paper_table1_molecules
from repro.chem.integrals import AOIntegrals, compute_integrals
from repro.chem.integrals.driver import compute_dipole_integrals
from repro.chem.properties import (
    AU_TO_DEBYE,
    DipoleResult,
    dipole_moment,
    mulliken_charges,
    natural_occupations,
    one_rdm_spin_orbital,
    spatial_rdm,
)
from repro.chem.scf import RHFResult, run_rhf
from repro.chem.mo_integrals import (
    MOIntegrals,
    SpinOrbitalIntegrals,
    mo_transform,
    to_spin_orbitals,
)
from repro.chem.ccsd import CCSDResult, run_ccsd
from repro.chem.mp2 import MP2Result, run_mp2
from repro.chem.fci import FCIResult, run_fci
from repro.chem.ci import TruncatedCIResult, excitation_basis, run_cis, run_cisd, run_truncated_ci
from repro.chem.davidson import DavidsonResult, davidson, sector_diagonal
from repro.chem.pipeline import MolecularProblem, build_problem

__all__ = [
    "Molecule",
    "MOLECULES",
    "fig9_molecules",
    "make_molecule",
    "paper_table1_molecules",
    "AOIntegrals",
    "compute_integrals",
    "compute_dipole_integrals",
    "AU_TO_DEBYE",
    "DipoleResult",
    "dipole_moment",
    "mulliken_charges",
    "natural_occupations",
    "one_rdm_spin_orbital",
    "spatial_rdm",
    "RHFResult",
    "run_rhf",
    "MOIntegrals",
    "SpinOrbitalIntegrals",
    "mo_transform",
    "to_spin_orbitals",
    "CCSDResult",
    "run_ccsd",
    "MP2Result",
    "run_mp2",
    "FCIResult",
    "run_fci",
    "TruncatedCIResult",
    "excitation_basis",
    "run_cis",
    "run_cisd",
    "run_truncated_ci",
    "DavidsonResult",
    "davidson",
    "sector_diagonal",
    "MolecularProblem",
    "build_problem",
]
