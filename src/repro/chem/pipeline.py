"""End-to-end chemistry pipeline: molecule name -> qubit Hamiltonian.

This is the PySCF + OpenFermion portion of the paper's workflow collapsed
into one call, with disk caching of the (deterministic, integral-heavy)
result for the larger Fig. 9 molecules.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.integrals.driver import compute_integrals
from repro.chem.mo_integrals import mo_transform, to_spin_orbitals
from repro.chem.molecules import make_molecule
from repro.chem.scf.rhf import run_rhf
from repro.hamiltonian.jordan_wigner import jordan_wigner
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian
from repro.utils.cache import disk_cache

__all__ = ["MolecularProblem", "build_problem"]


@dataclass
class MolecularProblem:
    """Everything the VMC and baseline solvers need for one molecule."""

    name: str
    basis: str
    hamiltonian: QubitHamiltonian
    e_hf: float
    n_qubits: int
    n_electrons: int
    hf_bits: np.ndarray  # (N,) occupation of the HF reference determinant

    @property
    def n_up(self) -> int:
        return self.n_electrons // 2 + self.n_electrons % 2

    @property
    def n_dn(self) -> int:
        return self.n_electrons // 2


# Bump when upstream numerics change in ways that alter cached artifacts
# (v2: multi-guess SCF — N2/O2/C2-class molecules previously cached an
# excited Roothaan solution's MO basis).
_CACHE_VERSION = 2


@disk_cache
def _cached_hamiltonian(name: str, basis: str, geom_kwargs: tuple,
                        n_frozen: int, n_active, version: int = _CACHE_VERSION):
    mol = make_molecule(name, **dict(geom_kwargs))
    ints = compute_integrals(mol, basis)
    scf = run_rhf(ints)
    mo = mo_transform(ints, scf, n_frozen=n_frozen, n_active=n_active)
    so = to_spin_orbitals(mo)
    ham = jordan_wigner(so).prune()
    return ham, scf.energy


def build_problem(name: str, basis: str = "sto-3g", n_frozen: int = 0,
                  n_active: int | None = None, **geom_kwargs) -> MolecularProblem:
    """Molecule name -> :class:`MolecularProblem` (cached on disk)."""
    ham, e_hf = _cached_hamiltonian(
        name, basis.lower(), tuple(sorted(geom_kwargs.items())), n_frozen, n_active,
        version=_CACHE_VERSION,
    )
    n = ham.n_qubits
    n_elec = ham.n_electrons
    hf_bits = np.zeros(n, dtype=np.uint8)
    n_up = n_elec // 2 + n_elec % 2
    n_dn = n_elec // 2
    hf_bits[0 : 2 * n_up : 2] = 1   # alpha spin orbitals of lowest orbitals
    hf_bits[1 : 2 * n_dn : 2] = 1   # beta
    return MolecularProblem(
        name=name,
        basis=basis.lower(),
        hamiltonian=ham,
        e_hf=e_hf,
        n_qubits=n,
        n_electrons=n_elec,
        hf_bits=hf_bits,
    )
