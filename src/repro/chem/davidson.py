"""Davidson–Liu iterative eigensolver for sector Hamiltonians.

The FCI/CISD matrices of this package are only available as matrix-vector
products (the XOR-permutation matvec of ``repro.hamiltonian.exact``), and
their diagonal is strongly dominant — exactly the regime the Davidson
algorithm with a diagonal preconditioner was designed for.  Compared to the
generic Lanczos of ``scipy.sparse.linalg.eigsh`` it typically converges the
ground state of a molecular sector in a handful of matvecs.

The implementation is a textbook block Davidson with:

* diagonal (Jacobi) preconditioning ``t = r / (diag - theta)``;
* Gram–Schmidt re-orthogonalization of new directions;
* subspace collapse (thick restart) when the basis exceeds ``max_subspace``.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hamiltonian.compressed import CompressedHamiltonian
from repro.hamiltonian.exact import SectorBasis
from repro.utils.bitstrings import parity64

__all__ = ["DavidsonResult", "davidson", "sector_diagonal"]


@dataclass
class DavidsonResult:
    eigenvalues: np.ndarray   # (k,)
    eigenvectors: np.ndarray  # (dim, k)
    n_matvec: int
    n_iterations: int
    converged: bool
    residual_norms: np.ndarray


def sector_diagonal(comp: CompressedHamiltonian, basis: SectorBasis) -> np.ndarray:
    """<x|H|x> for every determinant x of the sector (without the constant).

    Only Pauli groups with an all-zero XY mask (pure Z strings) touch the
    diagonal; their contribution is ``sum_k c_k (-1)^{|x & z_k|}``.
    """
    keys = basis.keys
    diag = np.zeros(basis.dim)
    zero_groups = np.flatnonzero(~comp.xy_unique.any(axis=1))
    for g in zero_groups:
        for k in range(comp.idxs[g], comp.idxs[g + 1]):
            par = parity64(keys & comp.yz_buf[k][None, :]).sum(axis=1) % 2
            diag += comp.coeffs_buf[k] * (1.0 - 2.0 * par)
    return diag


def davidson(
    matvec: Callable[[np.ndarray], np.ndarray],
    diag: np.ndarray,
    k: int = 1,
    v0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 200,
    max_subspace: int | None = None,
    rng: np.random.Generator | None = None,
) -> DavidsonResult:
    """Lowest ``k`` eigenpairs of a symmetric operator given by ``matvec``.

    ``diag`` is the operator diagonal (the preconditioner); ``v0`` an optional
    ``(dim, m)`` block of start vectors (m >= k).  Convergence is declared
    when every target residual norm falls below ``tol``.
    """
    dim = len(diag)
    if k > dim:
        raise ValueError(f"requested {k} eigenpairs of a dim-{dim} operator")
    rng = rng or np.random.default_rng(0)
    max_subspace = max_subspace or min(dim, max(8 * k, 24))

    # --- initial block: unit vectors on the k smallest diagonal entries
    if v0 is None:
        order = np.argsort(diag)[: max(k, 2)]
        V = np.zeros((dim, len(order)))
        V[order, np.arange(len(order))] = 1.0
    else:
        V = np.atleast_2d(np.asarray(v0, dtype=np.float64))
        if V.shape[0] != dim:
            V = V.T
    V, _ = np.linalg.qr(V)

    AV = np.column_stack([matvec(V[:, j]) for j in range(V.shape[1])])
    n_matvec = V.shape[1]
    theta = np.zeros(k)
    X = V[:, :k].copy()
    res_norms = np.full(k, np.inf)

    for iteration in range(1, max_iterations + 1):
        # Rayleigh–Ritz in the current subspace.
        G = V.T @ AV
        G = 0.5 * (G + G.T)
        evals, evecs = np.linalg.eigh(G)
        theta = evals[:k]
        Y = evecs[:, :k]
        X = V @ Y
        AX = AV @ Y
        R = AX - X * theta[None, :]
        res_norms = np.linalg.norm(R, axis=0)
        if np.all(res_norms < tol):
            return DavidsonResult(theta, X, n_matvec, iteration, True, res_norms)

        # Collapse the subspace before it grows past max_subspace.
        if V.shape[1] + k > max_subspace:
            keep = evecs[:, : min(2 * k, V.shape[1])]
            V = V @ keep
            AV = AV @ keep

        # Preconditioned new directions for unconverged targets.
        new_dirs = []
        for j in range(k):
            if res_norms[j] < tol:
                continue
            denom = diag - theta[j]
            denom = np.where(np.abs(denom) < 1e-8, 1e-8, denom)
            t = R[:, j] / denom
            # Orthogonalize twice against the subspace (classical GS x2).
            for _ in range(2):
                t -= V @ (V.T @ t)
            norm = np.linalg.norm(t)
            if norm < 1e-12:  # stagnation: inject a random direction
                t = rng.standard_normal(dim)
                t -= V @ (V.T @ t)
                norm = np.linalg.norm(t)
            t /= norm
            new_dirs.append(t)
            V = np.column_stack([V, t])
        if not new_dirs:
            break
        add = np.column_stack([matvec(t) for t in new_dirs])
        n_matvec += len(new_dirs)
        AV = np.column_stack([AV, add])

    return DavidsonResult(theta, X, n_matvec, max_iterations, False, res_norms)
