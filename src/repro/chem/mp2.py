"""Second-order Moller-Plesset perturbation theory (spin-orbital form).

E_MP2 = 1/4 sum_{ijab} |<ij||ab>|^2 / (e_i + e_j - e_a - e_b) — the cheapest
correlated baseline; used in tests as a bracketing check
(E_HF > E_MP2-total > ~E_CCSD for well-behaved systems) and available to
library users as a quick correlation estimate.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.mo_integrals import SpinOrbitalIntegrals

__all__ = ["MP2Result", "run_mp2"]


@dataclass
class MP2Result:
    energy: float
    e_corr: float
    e_scf: float


def run_mp2(so: SpinOrbitalIntegrals) -> MP2Result:
    n = so.n_so
    n_occ = so.n_electrons
    o = slice(0, n_occ)
    v = slice(n_occ, n)
    w = so.antisymmetrized
    f = so.h1 + np.einsum("piqi->pq", w[:, o, :, o])
    eps = f.diagonal()
    e_scf = (
        np.einsum("ii->", so.h1[o, o])
        + 0.5 * np.einsum("ijij->", w[o, o, o, o])
        + so.e_nuc
    )
    d2 = (
        eps[o, None, None, None] + eps[None, o, None, None]
        - eps[None, None, v, None] - eps[None, None, None, v]
    )
    t2 = w[o, o, v, v] / d2
    e_corr = 0.25 * np.einsum("ijab,ijab->", w[o, o, v, v], t2)
    return MP2Result(energy=float(e_scf + e_corr), e_corr=float(e_corr),
                     e_scf=float(e_scf))
