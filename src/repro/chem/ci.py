"""Truncated configuration interaction (CIS, CISD, ...) baselines.

The paper's Table 1 compares NNQS against CC methods; truncated CI is the
classic variational counterpart (Sec. 1: "the truncated configuration
interaction considers only excitations above the HF reference state up to a
fixed order").  We diagonalize the qubit Hamiltonian in the span of all
determinants within ``max_rank`` excitations of the Hartree–Fock reference,
reusing the sector matvec of ``repro.hamiltonian.exact`` — couplings leaving
the truncated space are dropped, which is precisely the CI truncation.

``rank = n_orb`` (or anything >= min(n_elec, n_virtuals)) recovers FCI.
"""
from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.chem.davidson import davidson, sector_diagonal
from repro.hamiltonian.compressed import CompressedHamiltonian, compress_hamiltonian
from repro.hamiltonian.exact import SectorBasis, _group_structure
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian
from repro.utils.bitstrings import lexsort_keys, pack_bits

__all__ = ["TruncatedCIResult", "excitation_basis", "run_truncated_ci", "run_cis", "run_cisd"]


@dataclass
class TruncatedCIResult:
    energy: float
    ground_state: np.ndarray
    basis: SectorBasis
    rank: int
    n_matvec: int

    @property
    def dim(self) -> int:
        return self.basis.dim


def excitation_basis(hf_bits: np.ndarray, max_rank: int) -> SectorBasis:
    """All determinants within ``max_rank`` spin-conserving excitations of HF.

    Electrons are moved from occupied to unoccupied spin orbitals of the same
    spin (alpha = even qubits, beta = odd), with the total excitation rank
    (alpha moves + beta moves) bounded by ``max_rank``.
    """
    hf_bits = np.asarray(hf_bits, dtype=np.uint8).ravel()
    n = len(hf_bits)
    if n % 2:
        raise ValueError("interleaved spin convention requires even qubit count")
    occ_up = [p for p in range(0, n, 2) if hf_bits[p]]
    vir_up = [p for p in range(0, n, 2) if not hf_bits[p]]
    occ_dn = [p for p in range(1, n, 2) if hf_bits[p]]
    vir_dn = [p for p in range(1, n, 2) if not hf_bits[p]]

    dets: set[int] = set()
    hf_int = 0
    for p in range(n):
        if hf_bits[p]:
            hf_int |= 1 << p
    for r_up in range(0, max_rank + 1):
        for r_dn in range(0, max_rank + 1 - r_up):
            if r_up > min(len(occ_up), len(vir_up)):
                continue
            if r_dn > min(len(occ_dn), len(vir_dn)):
                continue
            for rem_u in combinations(occ_up, r_up):
                for add_u in combinations(vir_up, r_up):
                    base = hf_int
                    for p in rem_u:
                        base &= ~(1 << p)
                    for p in add_u:
                        base |= 1 << p
                    for rem_d in combinations(occ_dn, r_dn):
                        for add_d in combinations(vir_dn, r_dn):
                            det = base
                            for p in rem_d:
                                det &= ~(1 << p)
                            for p in add_d:
                                det |= 1 << p
                            dets.add(det)

    w = (n + 63) // 64
    mask64 = (1 << 64) - 1
    keys = np.zeros((len(dets), w), dtype=np.uint64)
    for i, v in enumerate(sorted(dets)):
        for word in range(w):
            keys[i, word] = (v >> (64 * word)) & mask64
    keys = keys[lexsort_keys(keys)]
    return SectorBasis(n_qubits=n, n_up=len(occ_up), n_dn=len(occ_dn), keys=keys)


def run_truncated_ci(
    hamiltonian: QubitHamiltonian | CompressedHamiltonian,
    hf_bits: np.ndarray,
    max_rank: int,
    tol: float = 1e-9,
) -> TruncatedCIResult:
    """Variational ground state within ``max_rank`` excitations of HF."""
    comp = (
        hamiltonian
        if isinstance(hamiltonian, CompressedHamiltonian)
        else compress_hamiltonian(hamiltonian)
    )
    basis = excitation_basis(hf_bits, max_rank)
    targets, coefs = _group_structure(comp, basis)

    def matvec(v: np.ndarray) -> np.ndarray:
        out = np.zeros_like(v)
        for tgt, coef in zip(targets, coefs):
            ok = tgt >= 0
            np.add.at(out, tgt[ok], coef[ok] * v[ok])
        return out

    diag = sector_diagonal(comp, basis)
    # Start from the HF determinant itself.
    hf_key = pack_bits(np.asarray(hf_bits, dtype=np.uint8))
    from repro.utils.bitstrings import searchsorted_keys

    hf_idx = int(searchsorted_keys(basis.keys, hf_key)[0])
    if hf_idx < 0:
        raise ValueError("HF reference missing from the excitation basis")
    v0 = np.zeros((basis.dim, 2))
    v0[hf_idx, 0] = 1.0
    v0[np.argsort(diag)[min(1, basis.dim - 1)], 1] = 1.0
    if basis.dim == 1:
        e = float(matvec(np.ones(1))[0]) + comp.constant
        return TruncatedCIResult(e, np.ones(1), basis, max_rank, 1)
    res = davidson(matvec, diag, k=1, v0=v0, tol=tol)
    energy = float(res.eigenvalues[0] + comp.constant)
    vec = res.eigenvectors[:, 0]
    return TruncatedCIResult(energy, vec, basis, max_rank, res.n_matvec)


def run_cis(hamiltonian, hf_bits) -> TruncatedCIResult:
    """CI with single excitations (by Brillouin's theorem E_CIS ~= E_HF)."""
    return run_truncated_ci(hamiltonian, hf_bits, max_rank=1)


def run_cisd(hamiltonian, hf_bits) -> TruncatedCIResult:
    """CI with single and double excitations."""
    return run_truncated_ci(hamiltonian, hf_bits, max_rank=2)
