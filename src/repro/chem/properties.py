"""Molecular properties from CI vectors and NNQS samples.

Beyond the ground-state energy, a production electronic-structure code must
expose the one-particle reduced density matrix (1-RDM) and the observables
derived from it.  Everything here works on the same determinant-sector
representation as the FCI/CISD solvers, so any CI vector — and, through
:func:`repro.core.observables.sector_expectation`, any NNQS wave function
evaluated on a sector — can be analyzed with the same code path.

Conventions: spin orbitals are interleaved (spatial ``i`` -> qubits ``2i``,
``2i+1``); the 1-RDM is ``gamma[P, Q] = <a+_P a_Q>``; dipole moments are in
atomic units (1 a.u. = 2.5417 Debye) with the electron charge -1.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.geometry import Molecule
from repro.hamiltonian.exact import SectorBasis
from repro.utils.bitstrings import popcount64, searchsorted_keys

__all__ = [
    "one_rdm_spin_orbital",
    "spatial_rdm",
    "natural_occupations",
    "DipoleResult",
    "dipole_moment",
    "mulliken_charges",
    "AU_TO_DEBYE",
]

AU_TO_DEBYE = 2.541746473


def _jw_sign_between(keys: np.ndarray, p: int, q: int) -> np.ndarray:
    """(-1)^{number of occupied orbitals strictly between p and q} per row."""
    lo, hi = (p, q) if p < q else (q, p)
    if hi - lo < 2:
        return np.ones(len(keys))
    mask_int = 0
    for j in range(lo + 1, hi):
        mask_int |= 1 << j
    w = keys.shape[1]
    mask = np.array(
        [(mask_int >> (64 * word)) & ((1 << 64) - 1) for word in range(w)],
        dtype=np.uint64,
    )
    par = popcount64(keys & mask[None, :]).sum(axis=1) % 2
    return 1.0 - 2.0 * par


def one_rdm_spin_orbital(vec: np.ndarray, basis: SectorBasis) -> np.ndarray:
    """1-RDM ``gamma[P, Q] = <v| a+_P a_Q |v>`` for a normalized CI vector.

    Works directly on the packed determinant keys: for each (P, Q) the
    operator is a bit test + bit flip + Jordan–Wigner parity between the two
    positions — the same arithmetic as the local-energy kernel.
    """
    vec = np.asarray(vec, dtype=np.float64)
    n = basis.n_qubits
    keys = basis.keys
    w = keys.shape[1]
    gamma = np.zeros((n, n))

    occ = np.zeros((len(keys), n), dtype=bool)
    for word in range(w):
        hi = min(64 * (word + 1), n)
        shifts = np.arange(hi - 64 * word, dtype=np.uint64)
        occ[:, 64 * word : hi] = ((keys[:, word : word + 1] >> shifts) & np.uint64(1)) == 1

    def flip(keys_in: np.ndarray, j: int) -> np.ndarray:
        out = keys_in.copy()
        out[:, j // 64] ^= np.uint64(1 << (j % 64))
        return out

    for q in range(n):
        has_q = occ[:, q]
        if not has_q.any():
            continue
        # Diagonal: <n_q>.
        gamma[q, q] = np.sum(vec[has_q] ** 2)
        for p in range(n):
            if p == q:
                continue
            ok = has_q & ~occ[:, p]
            if not ok.any():
                continue
            src = np.flatnonzero(ok)
            moved = flip(flip(keys[src], q), p)
            tgt = searchsorted_keys(keys, moved)
            found = tgt >= 0
            if not found.any():
                continue
            src, tgt = src[found], tgt[found]
            sign = _jw_sign_between(keys[src], p, q)[: len(src)]
            gamma[p, q] += np.sum(vec[tgt] * sign * vec[src])
    return gamma


def spatial_rdm(gamma_so: np.ndarray) -> np.ndarray:
    """Spin-traced spatial 1-RDM: D[i, j] = gamma[2i,2j] + gamma[2i+1,2j+1]."""
    return gamma_so[0::2, 0::2] + gamma_so[1::2, 1::2]


def natural_occupations(gamma_so: np.ndarray) -> np.ndarray:
    """Natural-orbital occupation numbers of the spatial RDM, descending.

    For an N-electron state they lie in [0, 2] and sum to N; deviations from
    {0, 2} measure static correlation.
    """
    d = spatial_rdm(gamma_so)
    occ = np.linalg.eigvalsh(0.5 * (d + d.T))
    return occ[::-1]


@dataclass
class DipoleResult:
    electronic: np.ndarray  # (3,) a.u.
    nuclear: np.ndarray     # (3,) a.u.

    @property
    def total(self) -> np.ndarray:
        return self.electronic + self.nuclear

    @property
    def magnitude(self) -> float:
        return float(np.linalg.norm(self.total))

    @property
    def magnitude_debye(self) -> float:
        return self.magnitude * AU_TO_DEBYE


def dipole_moment(
    molecule: Molecule,
    dipole_ao: np.ndarray,
    mo_coeff: np.ndarray,
    spatial_density: np.ndarray,
    origin=None,
) -> DipoleResult:
    """Total dipole from the spatial 1-RDM (MO basis) and AO moment integrals.

    ``dipole_ao``: output of ``compute_dipole_integrals`` about ``origin``.
    ``spatial_density``: MO-basis spin-traced RDM (HF: diag(2,...,2,0,...)).
    """
    origin = np.zeros(3) if origin is None else np.asarray(origin, dtype=np.float64)
    mu_e = np.zeros(3)
    n_act = spatial_density.shape[0]
    c_act = mo_coeff[:, :n_act]
    d_ao = c_act @ spatial_density @ c_act.T
    for w in range(3):
        mu_e[w] = -np.sum(d_ao * dipole_ao[w])
    z = molecule.atomic_numbers.astype(np.float64)
    mu_n = (z[:, None] * (molecule.coords_array - origin[None, :])).sum(axis=0)
    return DipoleResult(electronic=mu_e, nuclear=mu_n)


def mulliken_charges(
    molecule: Molecule,
    overlap_ao: np.ndarray,
    d_ao: np.ndarray,
    ao_atom_indices: np.ndarray,
) -> np.ndarray:
    """Mulliken atomic charges q_A = Z_A - sum_{mu on A} (D S)_{mu mu}."""
    pops = np.diag(d_ao @ overlap_ao)
    z = molecule.atomic_numbers.astype(np.float64)
    charges = z.copy()
    for mu, a in enumerate(ao_atom_indices):
        charges[a] -= pops[mu]
    return charges
