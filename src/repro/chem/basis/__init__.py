"""Basis sets: data tables, contracted shells, spherical transforms."""
from repro.chem.basis.data import available_basis_sets, element_shells
from repro.chem.basis.shells import BasisSet, Shell, build_basis, cartesian_components

__all__ = [
    "available_basis_sets",
    "element_shells",
    "BasisSet",
    "Shell",
    "build_basis",
    "cartesian_components",
]
