"""Contracted Gaussian shells and basis construction.

A :class:`Shell` is a contracted set of primitive Gaussians sharing a center
and angular momentum ``l``.  Integrals are evaluated over *cartesian*
components x^i y^j z^k e^{-a r^2} (each component individually normalized);
``d`` shells are then transformed to the 5 real solid harmonics so that basis
dimensions match the standard spherical counts the paper quotes (cc-pVTZ H2 =
28 spatial orbitals = 56 qubits).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.special import factorial2

from repro.chem.basis.data import element_shells
from repro.chem.geometry import Molecule

__all__ = ["Shell", "BasisSet", "cartesian_components", "build_basis"]


def cartesian_components(l: int) -> list[tuple[int, int, int]]:
    """Cartesian (lx, ly, lz) components of angular momentum l, canonical order."""
    return [
        (lx, ly, l - lx - ly)
        for lx in range(l, -1, -1)
        for ly in range(l - lx, -1, -1)
    ]


def _df(n: int) -> float:
    """(2n-1)!! with the convention (-1)!! = 1."""
    return float(factorial2(2 * n - 1)) if n > 0 else 1.0


def primitive_norm(a: float, lx: int, ly: int, lz: int) -> float:
    """Normalization constant of x^lx y^ly z^lz exp(-a r^2)."""
    l = lx + ly + lz
    pref = (2.0 * a / np.pi) ** 0.75 * (4.0 * a) ** (l / 2.0)
    return pref / np.sqrt(_df(lx) * _df(ly) * _df(lz))


@dataclass
class Shell:
    l: int
    exps: np.ndarray
    coefs: np.ndarray  # coefficients for *normalized* primitives (EMSL style)
    center: np.ndarray
    atom_index: int
    # effective contraction coefficients for raw primitives of the (l,0,0)
    # component, rescaled so every individually-normalized cartesian component
    # of the contracted function has unit self-overlap:
    norm_coefs: np.ndarray = field(default=None, repr=False)

    def __post_init__(self):
        self.exps = np.asarray(self.exps, dtype=np.float64)
        self.coefs = np.asarray(self.coefs, dtype=np.float64)
        self.center = np.asarray(self.center, dtype=np.float64)
        self.norm_coefs = self._normalize()

    @property
    def n_cart(self) -> int:
        return (self.l + 1) * (self.l + 2) // 2

    @property
    def n_sph(self) -> int:
        return 2 * self.l + 1

    def _normalize(self) -> np.ndarray:
        """Fold primitive norms into coefficients and normalize the contraction.

        All cartesian components of a shell share the same radial part; using
        the (l,0,0) primitive norm for every component and then renormalizing
        the contracted (l,0,0) self-overlap makes every component of the shell
        carry the same effective coefficients.  Off-axis components (e.g. xy)
        then get their distinct angular normalization from the E-coefficient
        machinery itself because we *also* divide the final AO by its own
        self-overlap — handled in the integral driver via `component_norms`.
        """
        l = self.l
        a = self.exps
        c = self.coefs * np.array([primitive_norm(ai, l, 0, 0) for ai in a])
        # Self-overlap of the contracted (l,0,0) function:
        #   <g|g> = sum_ij c_i c_j (2l-1)!! / (2(a_i+a_j))^l * (pi/(a_i+a_j))^{3/2}
        # (standard closed form for cartesian Gaussian overlap on one center).
        s = 0.0
        for i in range(len(a)):
            for j in range(len(a)):
                p = a[i] + a[j]
                s += c[i] * c[j] * _df(l) / (2.0 * p) ** l * (np.pi / p) ** 1.5
        return c / np.sqrt(s)

    def component_norms(self) -> np.ndarray:
        """Per-cartesian-component renormalization factors.

        With ``norm_coefs`` the (l,0,0) component is exactly normalized; a
        component (lx,ly,lz) of the same shell has self-overlap
        (2lx-1)!!(2ly-1)!!(2lz-1)!! / (2l-1)!!, so dividing by its square root
        normalizes every component individually.
        """
        out = np.empty(self.n_cart)
        for idx, (lx, ly, lz) in enumerate(cartesian_components(self.l)):
            out[idx] = np.sqrt(_df(self.l) / (_df(lx) * _df(ly) * _df(lz)))
        return out


# Spherical-harmonic transforms *in terms of individually normalized cartesian
# components* (see analysis in repro.chem.basis docstring): rows = m components
# ordered (-l..l), columns = cartesian components in canonical order.
_SPH_TRANSFORMS: dict[int, np.ndarray] = {
    0: np.array([[1.0]]),
    1: np.eye(3),  # canonical cartesian order (x, y, z) -> (p_x, p_y, p_z)
    # cartesian order for l=2: xx, xy, xz, yy, yz, zz
    2: np.array(
        [
            [0.0, 1.0, 0.0, 0.0, 0.0, 0.0],                      # d_{xy}   (m=-2)
            [0.0, 0.0, 0.0, 0.0, 1.0, 0.0],                      # d_{yz}   (m=-1)
            [-0.5, 0.0, 0.0, -0.5, 0.0, 1.0],                    # d_{z^2}  (m= 0)
            [0.0, 0.0, 1.0, 0.0, 0.0, 0.0],                      # d_{xz}   (m=+1)
            [np.sqrt(3) / 2, 0.0, 0.0, -np.sqrt(3) / 2, 0.0, 0.0],  # d_{x2-y2}
        ]
    ),
}


def spherical_transform(l: int) -> np.ndarray:
    try:
        return _SPH_TRANSFORMS[l]
    except KeyError as exc:  # pragma: no cover - guarded by basis data
        raise NotImplementedError(f"spherical transform for l={l} not needed/implemented") from exc


@dataclass
class BasisSet:
    """All shells of a molecule plus AO bookkeeping (spherical AO basis)."""

    molecule: Molecule
    basis_name: str
    shells: list[Shell]

    @property
    def n_ao(self) -> int:
        return sum(sh.n_sph for sh in self.shells)

    @property
    def n_cart_ao(self) -> int:
        return sum(sh.n_cart for sh in self.shells)

    def shell_slices_cart(self) -> list[slice]:
        out, off = [], 0
        for sh in self.shells:
            out.append(slice(off, off + sh.n_cart))
            off += sh.n_cart
        return out

    def shell_slices_sph(self) -> list[slice]:
        out, off = [], 0
        for sh in self.shells:
            out.append(slice(off, off + sh.n_sph))
            off += sh.n_sph
        return out

    def ao_atom_indices(self) -> np.ndarray:
        """Atom index of every spherical AO (for population analysis)."""
        out = []
        for sh in self.shells:
            out.extend([sh.atom_index] * sh.n_sph)
        return np.array(out, dtype=np.int64)

    def cart_to_sph_matrix(self) -> np.ndarray:
        """Block-diagonal (n_sph_ao, n_cart_ao) transformation matrix."""
        mat = np.zeros((self.n_ao, self.n_cart_ao))
        ro = co = 0
        for sh in self.shells:
            block = spherical_transform(sh.l)
            mat[ro : ro + sh.n_sph, co : co + sh.n_cart] = block
            ro += sh.n_sph
            co += sh.n_cart
        return mat


def build_basis(molecule: Molecule, basis: str = "sto-3g") -> BasisSet:
    shells: list[Shell] = []
    for ai, (sym, xyz) in enumerate(zip(molecule.symbols, molecule.coords)):
        for l, exps, coefs in element_shells(sym, basis):
            shells.append(Shell(l, np.array(exps), np.array(coefs), np.array(xyz), ai))
    return BasisSet(molecule, basis.lower(), shells)
