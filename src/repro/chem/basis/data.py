"""Gaussian basis-set tables.

STO-3G is generated with the standard Hehre–Stewart–Pople construction:
universal 3-Gaussian least-squares fits to Slater 1s/2sp/3sp functions, scaled
by per-element Slater exponents zeta (exponents scale as zeta^2).  The 1s and
2sp unit fits and the zeta table reproduce the published STO-3G exponents to
all printed digits (e.g. H 1s: 1.24^2 * 2.227660584 = 3.42525091).  Third-row
3sp parameters are tabulated directly.

6-31G (H, C, N, O — enough for benzene and common test molecules) and
cc-pVTZ / aug-cc-pVTZ for hydrogen (the Fig. 13 basis sets) are tabulated
explicitly from the standard distributions.

Each entry is a list of shells ``(l, [exponents], [contraction coefficients])``
with coefficients referring to *normalized primitives* (the EMSL convention).
"""
from __future__ import annotations

__all__ = ["element_shells", "available_basis_sets"]

# ----------------------------------------------------------------- STO-3G
# Universal STO-3G fits (Hehre, Stewart, Pople, JCP 51, 2657 (1969)).
_STO3G_1S_EXP = (2.227660584, 0.405771156, 0.109818036)
_STO3G_1S_COEF = (0.154328967, 0.535328142, 0.444634542)

_STO3G_2SP_EXP = (0.994203122, 0.231031409, 0.0751386017)
_STO3G_2S_COEF = (-0.0999672292, 0.399512826, 0.700115469)
_STO3G_2P_COEF = (0.155916275, 0.607683719, 0.391957393)

_STO3G_3S_COEF = (-0.2196203690, 0.2255954336, 0.9003984260)
_STO3G_3P_COEF = (0.0105876180, 0.5951670053, 0.4620010120)

# Slater exponents (zeta) used by standard STO-3G.
_ZETA_1S = {
    "H": 1.24, "He": 1.69,
    "Li": 2.69, "Be": 3.68, "B": 4.68, "C": 5.67, "N": 6.67, "O": 7.66,
    "F": 8.65, "Ne": 9.64,
    "Na": 10.61, "Mg": 11.59, "Al": 12.56, "Si": 13.53, "P": 14.50,
    "S": 15.47, "Cl": 16.43, "Ar": 17.40,
}
_ZETA_2SP = {
    "Li": 0.80, "Be": 1.15, "B": 1.50, "C": 1.72, "N": 1.95, "O": 2.25,
    "F": 2.55, "Ne": 2.88,
    "Na": 3.48, "Mg": 3.90, "Al": 4.36, "Si": 4.83, "P": 5.31, "S": 5.79,
    "Cl": 6.26, "Ar": 6.74,
}
# Third-row 3sp STO-3G: unit fit derived from the published P/S/Cl exponents
# (mutually consistent to 5 significant figures) with zeta3sp below.
_STO3G_3SP_EXP_UNIT = (0.4828540806, 0.1347150629, 0.0527268347)
_ZETA_3SP = {
    "Na": 1.75, "Mg": 1.70, "Al": 1.70, "Si": 1.75, "P": 1.90, "S": 2.05,
    "Cl": 2.10, "Ar": 2.33,
}


def _scale(exps, zeta):
    return [e * zeta * zeta for e in exps]


def _sto3g(symbol: str):
    shells = [(0, _scale(_STO3G_1S_EXP, _ZETA_1S[symbol]), list(_STO3G_1S_COEF))]
    if symbol in _ZETA_2SP:
        e2 = _scale(_STO3G_2SP_EXP, _ZETA_2SP[symbol])
        shells.append((0, e2, list(_STO3G_2S_COEF)))
        shells.append((1, e2, list(_STO3G_2P_COEF)))
    if symbol in _ZETA_3SP:
        e3 = _scale(_STO3G_3SP_EXP_UNIT, _ZETA_3SP[symbol])
        shells.append((0, e3, list(_STO3G_3S_COEF)))
        shells.append((1, e3, list(_STO3G_3P_COEF)))
    return shells


# ------------------------------------------------------------------ 6-31G
_631G = {
    "H": [
        (0, [18.7311370, 2.8253937, 0.6401217],
            [0.03349460, 0.23472695, 0.81375733]),
        (0, [0.1612778], [1.0]),
    ],
    "C": [
        (0, [3047.5249, 457.36951, 103.94869, 29.210155, 9.2866630, 3.1639270],
            [0.0018347, 0.0140373, 0.0688426, 0.2321844, 0.4679413, 0.3623120]),
        (0, [7.8682724, 1.8812885, 0.5442493],
            [-0.1193324, -0.1608542, 1.1434564]),
        (1, [7.8682724, 1.8812885, 0.5442493],
            [0.0689991, 0.3164240, 0.7443083]),
        (0, [0.1687144], [1.0]),
        (1, [0.1687144], [1.0]),
    ],
    "N": [
        (0, [4173.5110, 627.45790, 142.90210, 40.234330, 12.820210, 4.3904370],
            [0.0018348, 0.0139950, 0.0685870, 0.2322410, 0.4690700, 0.3604550]),
        (0, [11.626358, 2.7162800, 0.7722180],
            [-0.1149610, -0.1691180, 1.1458520]),
        (1, [11.626358, 2.7162800, 0.7722180],
            [0.0675800, 0.3239070, 0.7408950]),
        (0, [0.2120313], [1.0]),
        (1, [0.2120313], [1.0]),
    ],
    "O": [
        (0, [5484.6717, 825.23495, 188.04696, 52.964500, 16.897570, 5.7996353],
            [0.0018311, 0.0139501, 0.0684451, 0.2327143, 0.4701930, 0.3585209]),
        (0, [15.539616, 3.5999336, 1.0137618],
            [-0.1107775, -0.1480263, 1.1307670]),
        (1, [15.539616, 3.5999336, 1.0137618],
            [0.0708743, 0.3397528, 0.7271586]),
        (0, [0.2700058], [1.0]),
        (1, [0.2700058], [1.0]),
    ],
}

# --------------------------------------------------- cc-pVTZ (hydrogen only)
_CCPVTZ_H = [
    (0, [33.8700, 5.0950, 1.1590, 0.3258, 0.1027],
        [0.0060680, 0.0453080, 0.2028220, 0.5039030, 0.3834210]),
    (0, [0.3258], [1.0]),
    (0, [0.1027], [1.0]),
    (1, [1.4070], [1.0]),
    (1, [0.3880], [1.0]),
    (2, [1.0570], [1.0]),
]
_AUG_CCPVTZ_H = _CCPVTZ_H + [
    (0, [0.0252600], [1.0]),
    (1, [0.1020000], [1.0]),
    (2, [0.2470000], [1.0]),
]


def available_basis_sets() -> list[str]:
    return ["sto-3g", "6-31g", "cc-pvtz", "aug-cc-pvtz"]


def element_shells(symbol: str, basis: str):
    """Return the shell list ``[(l, exps, coefs), ...]`` for an element."""
    basis = basis.lower()
    symbol = symbol.capitalize() if len(symbol) > 1 else symbol.upper()
    if basis == "sto-3g":
        if symbol not in _ZETA_1S:
            raise ValueError(f"STO-3G not tabulated for {symbol}")
        return _sto3g(symbol)
    if basis == "6-31g":
        if symbol not in _631G:
            raise ValueError(f"6-31G tabulated only for {sorted(_631G)}, got {symbol}")
        return _631G[symbol]
    if basis == "cc-pvtz":
        if symbol != "H":
            raise ValueError("cc-pVTZ tabulated for H only (the Fig. 13 workload)")
        return _CCPVTZ_H
    if basis == "aug-cc-pvtz":
        if symbol != "H":
            raise ValueError("aug-cc-pVTZ tabulated for H only (the Fig. 13 workload)")
        return _AUG_CCPVTZ_H
    raise ValueError(f"unknown basis {basis!r}; available: {available_basis_sets()}")
