"""Spin-orbital CCSD — the "gold standard" baseline column of Table 1.

Implements the standard spin-orbital coupled-cluster singles and doubles
equations (Stanton, Gauss, Watts, Bartlett, JCP 94, 4334 (1991) intermediates)
with DIIS-free damping; molecule sizes in this reproduction are tiny, so plain
einsum over the full antisymmetrized integral tensor is ample.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.mo_integrals import SpinOrbitalIntegrals

__all__ = ["CCSDResult", "run_ccsd"]


@dataclass
class CCSDResult:
    energy: float            # total energy (e_nuc + E_HF_elec + E_corr)
    e_corr: float
    e_scf: float
    converged: bool
    n_iter: int


def run_ccsd(so: SpinOrbitalIntegrals, max_iter: int = 100,
             conv_tol: float = 1e-9) -> CCSDResult:
    n = so.n_so
    n_occ = so.n_electrons
    o = slice(0, n_occ)
    v = slice(n_occ, n)

    # Spin-orbital Fock matrix and HF energy from h1 + <PQ||RS>.
    w = so.antisymmetrized  # <pq||rs>
    f = so.h1 + np.einsum("piqi->pq", w[:, o, :, o])
    e_scf = (
        np.einsum("ii->", so.h1[o, o])
        + 0.5 * np.einsum("ijij->", w[o, o, o, o])
        + so.e_nuc
    )

    eps = f.diagonal()
    d1 = eps[o, None] - eps[None, v]                        # D_ia
    d2 = (
        eps[o, None, None, None] + eps[None, o, None, None]
        - eps[None, None, v, None] - eps[None, None, None, v]
    )                                                       # D_ijab

    t1 = np.zeros((n_occ, n - n_occ))
    t2 = w[o, o, v, v] / d2                                 # MP2 guess

    def tau_tilde(t1, t2):
        x = np.einsum("ia,jb->ijab", t1, t1)
        return t2 + 0.5 * (x - x.transpose(0, 1, 3, 2))

    def tau(t1, t2):
        x = np.einsum("ia,jb->ijab", t1, t1)
        return t2 + x - x.transpose(0, 1, 3, 2)

    def energy(t1, t2):
        e = np.einsum("ia,ia->", f[o, v], t1)
        e += 0.25 * np.einsum("ijab,ijab->", w[o, o, v, v], t2)
        e += 0.5 * np.einsum("ijab,ia,jb->", w[o, o, v, v], t1, t1)
        return e

    e_old = energy(t1, t2)
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        tt = tau_tilde(t1, t2)
        tf = tau(t1, t2)

        Fae = f[v, v] - np.diag(eps[v])
        Fae -= 0.5 * np.einsum("me,ma->ae", f[o, v], t1)
        Fae += np.einsum("mf,mafe->ae", t1, w[o, v, v, v])
        Fae -= 0.5 * np.einsum("mnaf,mnef->ae", tt, w[o, o, v, v])

        Fmi = f[o, o] - np.diag(eps[o])
        Fmi += 0.5 * np.einsum("ie,me->mi", t1, f[o, v])
        Fmi += np.einsum("ne,mnie->mi", t1, w[o, o, o, v])
        Fmi += 0.5 * np.einsum("inef,mnef->mi", tt, w[o, o, v, v])

        Fme = f[o, v] + np.einsum("nf,mnef->me", t1, w[o, o, v, v])

        Wmnij = w[o, o, o, o].copy()
        x = np.einsum("je,mnie->mnij", t1, w[o, o, o, v])
        Wmnij += x - x.transpose(0, 1, 3, 2)
        Wmnij += 0.25 * np.einsum("ijef,mnef->mnij", tf, w[o, o, v, v])

        Wabef = w[v, v, v, v].copy()
        x = np.einsum("mb,amef->abef", t1, w[v, o, v, v])
        Wabef -= x - x.transpose(1, 0, 2, 3)
        Wabef += 0.25 * np.einsum("mnab,mnef->abef", tf, w[o, o, v, v])

        Wmbej = w[o, v, v, o].copy()
        Wmbej += np.einsum("jf,mbef->mbej", t1, w[o, v, v, v])
        Wmbej -= np.einsum("nb,mnej->mbej", t1, w[o, o, v, o])
        Wmbej -= np.einsum("jnfb,mnef->mbej", 0.5 * t2 + np.einsum("jf,nb->jnfb", t1, t1), w[o, o, v, v])

        # T1 equations.
        rhs1 = f[o, v].copy()
        rhs1 += np.einsum("ie,ae->ia", t1, Fae)
        rhs1 -= np.einsum("ma,mi->ia", t1, Fmi)
        rhs1 += np.einsum("imae,me->ia", t2, Fme)
        rhs1 -= np.einsum("nf,naif->ia", t1, w[o, v, o, v])
        rhs1 -= 0.5 * np.einsum("imef,maef->ia", t2, w[o, v, v, v])
        rhs1 -= 0.5 * np.einsum("mnae,nmei->ia", t2, w[o, o, v, o])
        t1_new = rhs1 / d1

        # T2 equations.
        rhs2 = w[o, o, v, v].copy()
        tmp = Fae - 0.5 * np.einsum("mb,me->be", t1, Fme)
        x = np.einsum("ijae,be->ijab", t2, tmp)
        rhs2 += x - x.transpose(0, 1, 3, 2)
        tmp = Fmi + 0.5 * np.einsum("je,me->mj", t1, Fme)
        x = np.einsum("imab,mj->ijab", t2, tmp)
        rhs2 -= x - x.transpose(1, 0, 2, 3)
        rhs2 += 0.5 * np.einsum("mnab,mnij->ijab", tf, Wmnij)
        rhs2 += 0.5 * np.einsum("ijef,abef->ijab", tf, Wabef)
        x = np.einsum("imae,mbej->ijab", t2, Wmbej)
        x -= np.einsum("ie,ma,mbej->ijab", t1, t1, w[o, v, v, o])
        x = x - x.transpose(0, 1, 3, 2)
        rhs2 += x - x.transpose(1, 0, 2, 3)
        x = np.einsum("ie,abej->ijab", t1, w[v, v, v, o])
        rhs2 += x - x.transpose(1, 0, 2, 3)
        x = np.einsum("ma,mbij->ijab", t1, w[o, v, o, o])
        rhs2 -= x - x.transpose(0, 1, 3, 2)
        t2_new = rhs2 / d2

        t1, t2 = t1_new, t2_new
        e_new = energy(t1, t2)
        if abs(e_new - e_old) < conv_tol:
            converged = True
            e_old = e_new
            break
        e_old = e_new

    return CCSDResult(
        energy=float(e_scf + e_old),
        e_corr=float(e_old),
        e_scf=float(e_scf),
        converged=converged,
        n_iter=it,
    )
