"""AO -> MO and spatial -> spin-orbital integral transformations.

Spin-orbital convention (matches the paper's Jordan-Wigner layout, Sec. 3.3):
spatial orbital ``i`` maps to the two *interleaved* spin orbitals / qubits
``2i`` (spin up / alpha) and ``2i + 1`` (spin down / beta).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.integrals.driver import AOIntegrals
from repro.chem.scf.rhf import RHFResult

__all__ = ["MOIntegrals", "SpinOrbitalIntegrals", "mo_transform", "to_spin_orbitals"]


@dataclass
class MOIntegrals:
    """MO-basis integrals (spatial orbitals, chemists' notation (pq|rs))."""

    h: np.ndarray      # (n, n) core Hamiltonian in MO basis
    eri: np.ndarray    # (n, n, n, n), (pq|rs)
    e_nuc: float
    n_electrons: int

    @property
    def n_orb(self) -> int:
        return self.h.shape[0]


@dataclass
class SpinOrbitalIntegrals:
    """Spin-orbital integrals: h1[P,Q] and antisymmetrized <PQ||RS>."""

    h1: np.ndarray       # (2n, 2n)
    g2: np.ndarray       # (2n, 2n, 2n, 2n) physicists' <PQ|RS> (not antisym.)
    e_nuc: float
    n_electrons: int

    @property
    def n_so(self) -> int:
        return self.h1.shape[0]

    @property
    def antisymmetrized(self) -> np.ndarray:
        """<PQ||RS> = <PQ|RS> - <PQ|SR>."""
        return self.g2 - self.g2.transpose(0, 1, 3, 2)


def mo_transform(ints: AOIntegrals, scf: RHFResult, n_frozen: int = 0,
                 n_active: int | None = None) -> MOIntegrals:
    """Rotate AO integrals into the (optionally frozen-core) MO basis.

    ``n_frozen`` doubly-occupied core orbitals are folded into an effective
    core energy and one-body operator; ``n_active`` truncates virtuals.
    """
    C = scf.mo_coeff
    h_mo = C.T @ ints.hcore @ C
    eri_mo = np.einsum(
        "pi,qj,rk,sl,pqrs->ijkl", C, C, C, C, ints.eri, optimize=True
    )
    e_core = ints.e_nuc
    if n_frozen:
        core = slice(0, n_frozen)
        # Frozen-core energy: 2 sum_c h_cc + sum_cd (2 (cc|dd) - (cd|dc))
        e_core += 2.0 * np.trace(h_mo[core, core])
        e_core += np.einsum("ccdd->", 2.0 * eri_mo[core, core, core, core])
        e_core -= np.einsum("cddc->", eri_mo[core, core, core, core])
        # Effective one-body term for active electrons.
        h_eff = (
            h_mo
            + 2.0 * np.einsum("pqcc->pq", eri_mo[:, :, core, core])
            - np.einsum("pccq->pq", eri_mo[:, core, core, :])
        )
        h_mo = h_eff
    lo = n_frozen
    hi = lo + n_active if n_active is not None else h_mo.shape[0]
    act = slice(lo, hi)
    return MOIntegrals(
        h=h_mo[act, act],
        eri=eri_mo[act, act, act, act],
        e_nuc=float(e_core),
        n_electrons=ints.molecule.n_electrons - 2 * n_frozen,
    )


def to_spin_orbitals(mo: MOIntegrals) -> SpinOrbitalIntegrals:
    """Expand spatial MO integrals into interleaved spin orbitals.

    ``g2`` is returned in physicists' notation <PQ|RS> = (PR|QS)_chem with the
    spin selection rules sigma(P)=sigma(R), sigma(Q)=sigma(S).
    """
    n = mo.n_orb
    ns = 2 * n
    h1 = np.zeros((ns, ns))
    h1[0::2, 0::2] = mo.h
    h1[1::2, 1::2] = mo.h
    # <PQ|RS> = (pr|qs) delta(sP,sR) delta(sQ,sS)
    g2 = np.zeros((ns, ns, ns, ns))
    chem = mo.eri
    for sp in (0, 1):
        for sq in (0, 1):
            g2[sp::2, sq::2, sp::2, sq::2] = chem.transpose(0, 2, 1, 3)
    return SpinOrbitalIntegrals(
        h1=h1, g2=g2, e_nuc=mo.e_nuc, n_electrons=mo.n_electrons
    )
