"""Restricted Hartree-Fock with DIIS convergence acceleration.

Provides the reference determinant, molecular orbitals and the HF energies
reported in Table 1 / Figs. 8 and 13 of the paper.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.chem.integrals.driver import AOIntegrals

__all__ = ["RHFResult", "run_rhf"]


@dataclass
class RHFResult:
    energy: float            # total energy (electronic + nuclear)
    e_electronic: float
    mo_coeff: np.ndarray     # (n_ao, n_mo) MO coefficients, columns = MOs
    mo_energy: np.ndarray
    density: np.ndarray      # AO density matrix (doubly-occupied convention)
    fock: np.ndarray
    n_occ: int               # number of doubly occupied spatial orbitals
    converged: bool
    n_iter: int


class _DIIS:
    """Pulay DIIS on the antisymmetric error matrix e = FDS - SDF."""

    def __init__(self, max_vecs: int = 8):
        self.focks: list[np.ndarray] = []
        self.errors: list[np.ndarray] = []
        self.max_vecs = max_vecs

    def update(self, fock: np.ndarray, err: np.ndarray) -> np.ndarray:
        self.focks.append(fock)
        self.errors.append(err)
        if len(self.focks) > self.max_vecs:
            self.focks.pop(0)
            self.errors.pop(0)
        m = len(self.focks)
        if m < 2:
            return fock
        B = -np.ones((m + 1, m + 1))
        B[m, m] = 0.0
        for i in range(m):
            for j in range(m):
                B[i, j] = np.vdot(self.errors[i], self.errors[j])
        rhs = np.zeros(m + 1)
        rhs[m] = -1.0
        try:
            coeff = np.linalg.solve(B, rhs)[:m]
        except np.linalg.LinAlgError:
            return fock
        return sum(c * f for c, f in zip(coeff, self.focks))


def run_rhf(ints: AOIntegrals, max_iter: int = 200, conv_tol: float = 1e-10,
            level_shift: float = 0.0, n_guesses: int = 3) -> RHFResult:
    """Solve the RHF equations; electrons must pair (closed-shell).

    The Roothaan fixed point is not unique: multiply bonded systems (N2, C2)
    have aufbau-stable *excited* SCF solutions, and the core-Hamiltonian
    guess driven straight into DIIS can converge to one of them (for N2 it
    lands 0.73 Ha above the ground solution).  We therefore (a) damp the
    density for the first few iterations before enabling DIIS and (b) rerun
    from ``n_guesses`` deterministic starting points (core Hamiltonian, GWH,
    seeded random orthogonal orbitals) and keep the lowest converged
    solution — the pure-Python cost of an extra SCF is negligible next to
    the integrals.
    """
    n_elec = ints.molecule.n_electrons
    if n_elec % 2 != 0:
        raise ValueError("RHF requires an even electron count (closed shell)")
    n_occ = n_elec // 2
    S, hcore, eri = ints.S, ints.hcore, ints.eri

    # Symmetric orthogonalization (canonical if S is near-singular).
    s_eig, s_vec = np.linalg.eigh(S)
    keep = s_eig > 1e-8
    X = s_vec[:, keep] / np.sqrt(s_eig[keep])

    def fock_matrix(D: np.ndarray) -> np.ndarray:
        J = np.einsum("pqrs,rs->pq", eri, D, optimize=True)
        K = np.einsum("prqs,rs->pq", eri, D, optimize=True)
        return hcore + J - 0.5 * K

    def density_from_fock(F: np.ndarray):
        Fp = X.T @ F @ X
        if level_shift:
            # Shift virtual orbitals up to stabilize oscillating SCF.
            eps0, C0 = np.linalg.eigh(Fp)
            shift = np.zeros_like(eps0)
            shift[n_occ:] = level_shift
            Fp = C0 @ np.diag(eps0 + shift) @ C0.T
        eps, Cp = np.linalg.eigh(Fp)
        C = X @ Cp
        occ = C[:, :n_occ]
        return 2.0 * occ @ occ.T, C, eps

    def scf(D: np.ndarray, n_damped: int = 6, damping: float = 0.5) -> RHFResult:
        diis = _DIIS()
        C = eps = None
        e_old = 0.0
        converged = False
        it = 0
        for it in range(1, max_iter + 1):
            F = fock_matrix(D)
            e_elec = 0.5 * np.einsum("pq,pq->", D, hcore + F)
            err = F @ D @ S - S @ D @ F
            if it > n_damped:
                F = diis.update(F, err)
            D_new, C, eps = density_from_fock(F)
            if it <= n_damped:
                D = damping * D_new + (1.0 - damping) * D
            else:
                D = D_new
            if abs(e_elec - e_old) < conv_tol and np.max(np.abs(err)) < 1e-6:
                converged = True
                break
            e_old = e_elec
        F = fock_matrix(D)
        e_elec = 0.5 * np.einsum("pq,pq->", D, hcore + F)
        return RHFResult(
            energy=float(e_elec + ints.e_nuc),
            e_electronic=float(e_elec),
            mo_coeff=C,
            mo_energy=eps,
            density=D,
            fock=F,
            n_occ=n_occ,
            converged=converged,
            n_iter=it,
        )

    # --- starting densities (deterministic) -------------------------------
    guesses: list[np.ndarray] = []
    guesses.append(density_from_fock(hcore)[0])  # core Hamiltonian
    if n_guesses >= 2:
        # Generalized Wolfsberg-Helmholz: F_ij = 0.875 (H_ii + H_jj) S_ij.
        hd = np.diag(hcore)
        gwh = 0.875 * (hd[:, None] + hd[None, :]) * S
        np.fill_diagonal(gwh, hd)
        guesses.append(density_from_fock(gwh)[0])
    rng = np.random.default_rng(20230711)  # fixed: results must be reproducible
    for _ in range(max(0, n_guesses - 2)):
        q, _ = np.linalg.qr(rng.standard_normal((X.shape[1], X.shape[1])))
        c0 = X @ q
        guesses.append(2.0 * c0[:, :n_occ] @ c0[:, :n_occ].T)

    best: RHFResult | None = None
    for D0 in guesses:
        res = scf(D0)
        if res.converged and (best is None or not best.converged
                              or res.energy < best.energy - 1e-10):
            best = res
        elif best is None:
            best = res
    return best
