"""Self-consistent field methods."""
from repro.chem.scf.rhf import RHFResult, run_rhf

__all__ = ["RHFResult", "run_rhf"]
