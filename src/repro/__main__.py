"""``python -m repro`` — the single front door to the experiment API."""
import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
