"""Independent-stream batch sampling — the paper's Sec. 4.4 outlook.

"For even larger scale parallelization in the future implementation, one
could still take advantage of the conventional Monte Carlo sampling by simply
implementing several independent [runs of] the batch sampling algorithm,
which will be effective as long as a larger number of unique samples are
going to be important for that problem."

:func:`merged_batch_sample` runs ``n_streams`` independent BAS sweeps (each
with its own RNG stream and its own share of the sample budget) and merges
the resulting unique sets, summing occurrence weights.  Each stream is an
embarrassingly parallel unit — on a cluster every stream would live on its
own process group; here the streams run sequentially and the merge cost and
unique-sample statistics (the quantities that decide whether the scheme pays
off) are reported.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampler import SampleBatch, batch_autoregressive_sample
from repro.core.wavefunction import NNQSWavefunction
from repro.utils.bitstrings import lexsort_keys, pack_bits, unpack_bits

__all__ = ["MergeStats", "merge_batches", "merged_batch_sample"]


@dataclass
class MergeStats:
    """Unique-sample bookkeeping for an independent-stream merge."""

    n_streams: int
    uniques_per_stream: list[int]
    n_unique_merged: int
    n_samples: int

    @property
    def overlap_fraction(self) -> float:
        """1 - merged/summed uniques: how much work the streams duplicated."""
        total = sum(self.uniques_per_stream)
        return 1.0 - self.n_unique_merged / total if total else 0.0


def merge_batches(batches: list[SampleBatch], n_qubits: int) -> SampleBatch:
    """Union of unique samples across batches, occurrence weights summed."""
    if not batches:
        raise ValueError("need at least one batch to merge")
    keys = np.concatenate([pack_bits(b.bits) for b in batches], axis=0)
    weights = np.concatenate([b.weights for b in batches])
    order = lexsort_keys(keys)
    keys, weights = keys[order], weights[order]
    boundary = np.ones(len(keys), dtype=bool)
    boundary[1:] = np.any(keys[1:] != keys[:-1], axis=1)
    group = np.cumsum(boundary) - 1
    merged_w = np.bincount(group, weights=weights).astype(np.int64)
    merged_keys = keys[boundary]
    return SampleBatch(bits=unpack_bits(merged_keys, n_qubits), weights=merged_w)


def merged_batch_sample(
    wf: NNQSWavefunction,
    n_samples: int,
    rng: np.random.Generator,
    n_streams: int = 4,
    use_cache: bool = True,
) -> tuple[SampleBatch, MergeStats]:
    """Run ``n_streams`` independent BAS sweeps and merge their outputs.

    The budget is split evenly (remainder to the first stream); each stream
    gets an independent child RNG so results are reproducible and the streams
    are statistically independent, as required for the variance argument of
    Sec. 4.4.  Every stream runs its own incremental-decoding session
    (``use_cache=False`` forces the full-forward oracle path).
    """
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    share = n_samples // n_streams
    budgets = [share] * n_streams
    budgets[0] += n_samples - share * n_streams
    children = rng.spawn(n_streams)
    batches = [
        batch_autoregressive_sample(wf, ns, child, use_cache=use_cache)
        for ns, child in zip(budgets, children)
        if ns > 0
    ]
    merged = merge_batches(batches, wf.n_qubits)
    stats = MergeStats(
        n_streams=len(batches),
        uniques_per_stream=[b.n_unique for b in batches],
        n_unique_merged=merged.n_unique,
        n_samples=merged.n_samples,
    )
    return merged, stats
