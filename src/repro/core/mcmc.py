"""Metropolis-Hastings sampling + VMC for non-autoregressive ansatze (RBM).

This is the sampling regime the paper's batch autoregressive sampling
replaces: a Markov chain over particle-number-conserving moves (exchange an
occupied and an empty spin orbital of the same spin), with acceptance
|Psi(x')/Psi(x)|^2.  Exposes the same SampleBatch contract as the BAS
sampler so the compressed-Hamiltonian local-energy kernels apply unchanged —
which is exactly what makes the sampling-cost comparison (bench_ablations)
apples-to-apples.

``RBMVMC`` optimizes the RBM with the standard complex-parameter VMC
gradient  grad = 2 Re( <E_loc* O> - <E_loc>* <O> )  where O = d log Psi / d
theta, optionally preconditioned with stochastic reconfiguration (SR) — the
technique the paper notes conventional NNQS needs for stable convergence
(Sec. 1, challenge 1).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampler import SampleBatch
from repro.hamiltonian.compressed import CompressedHamiltonian, compress_hamiltonian
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian
from repro.nn.rbm import RBMWavefunction
from repro.core.local_energy import AmplitudeTable, ElocPlan, local_energy_planned
from repro.utils.bitstrings import lexsort_keys, pack_bits

__all__ = ["metropolis_sample", "MCMCStats", "RBMVMC"]


@dataclass
class MCMCStats:
    acceptance_rate: float
    n_sweeps: int


def _exchange_move(bits: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Propose a same-spin occupied->empty exchange (number conserving)."""
    out = bits.copy()
    n = bits.shape[0]
    spin = rng.integers(0, 2)
    channel = np.arange(spin, n, 2)
    occ = channel[bits[channel] == 1]
    emp = channel[bits[channel] == 0]
    if len(occ) == 0 or len(emp) == 0:
        return out
    out[rng.choice(occ)] = 0
    out[rng.choice(emp)] = 1
    return out


def metropolis_sample(
    wf,
    start_bits: np.ndarray,
    n_samples: int,
    rng: np.random.Generator,
    n_burnin: int = 200,
    thin: int = 2,
) -> tuple[SampleBatch, MCMCStats]:
    """Single-chain Metropolis sampling of |Psi(x)|^2.

    ``wf`` needs only ``log_amplitudes``; the chain records every ``thin``-th
    state after burn-in and the output collapses duplicates into the
    (unique, weight) SampleBatch format.
    """
    x = np.asarray(start_bits, dtype=np.uint8).copy()
    log_p = 2.0 * np.real(wf.log_amplitudes(x[None, :])[0])
    accepted = 0
    proposed = 0
    records: list[bytes] = []
    total_steps = n_burnin + n_samples * thin
    for step in range(total_steps):
        cand = _exchange_move(x, rng)
        log_p_cand = 2.0 * np.real(wf.log_amplitudes(cand[None, :])[0])
        proposed += 1
        if np.log(rng.random() + 1e-300) < log_p_cand - log_p:
            x = cand
            log_p = log_p_cand
            accepted += 1
        if step >= n_burnin and (step - n_burnin) % thin == 0:
            records.append(x.tobytes())
    counts: dict[bytes, int] = {}
    for r in records:
        counts[r] = counts.get(r, 0) + 1
    bits = np.array([np.frombuffer(k, dtype=np.uint8) for k in counts])
    weights = np.array(list(counts.values()), dtype=np.int64)
    return (
        SampleBatch(bits=bits, weights=weights),
        MCMCStats(acceptance_rate=accepted / max(proposed, 1), n_sweeps=total_steps),
    )


class RBMVMC:
    """VMC for the RBM baseline: MCMC sampling + analytic gradient (+SR)."""

    def __init__(self, wf: RBMWavefunction,
                 hamiltonian: QubitHamiltonian | CompressedHamiltonian,
                 start_bits: np.ndarray, n_samples: int = 2000,
                 lr: float = 0.02, use_sr: bool = False,
                 sr_shift: float = 1e-3, seed: int = 0):
        self.wf = wf
        self.comp = (
            hamiltonian
            if isinstance(hamiltonian, CompressedHamiltonian)
            else compress_hamiltonian(hamiltonian)
        )
        self.start_bits = np.asarray(start_bits, dtype=np.uint8)
        self.n_samples = n_samples
        self.lr = lr
        self.use_sr = use_sr
        self.sr_shift = sr_shift
        self.rng = np.random.default_rng(seed)
        # Compiled once per run: the Hamiltonian-static local-energy plan
        # (the MCMC loop calls the kernel every iteration with a fresh table).
        self.eloc_plan = ElocPlan(self.comp)
        self.history: list[float] = []

    def step(self) -> float:
        batch, _ = metropolis_sample(
            self.wf, self.start_bits, self.n_samples, self.rng
        )
        keys = pack_bits(batch.bits)
        order = lexsort_keys(keys)
        table = AmplitudeTable(
            keys=keys[order], log_amps=self.wf.log_amplitudes(batch.bits)[order]
        )
        sorted_batch = SampleBatch(bits=batch.bits[order], weights=batch.weights[order])
        eloc = local_energy_planned(self.comp, sorted_batch, table,
                                    plan=self.eloc_plan)
        w = sorted_batch.weights / sorted_batch.weights.sum()
        e_mean = np.sum(w * eloc)
        self.history.append(float(e_mean.real))

        # Complex VMC gradient: grad_k = 2 Re( <(E_loc - E)^* O_k> ).
        O = self.wf.log_psi_grad(sorted_batch.bits)          # (B, M) complex
        centered = (eloc - e_mean).conj()
        grad = 2.0 * np.real(np.einsum("b,b,bm->m", w, centered, O))
        if self.use_sr:
            O_mean = np.einsum("b,bm->m", w, O)
            Oc = O - O_mean[None, :]
            S = np.einsum("b,bm,bn->mn", w, Oc.conj(), Oc).real
            S[np.diag_indices_from(S)] += self.sr_shift
            grad = np.linalg.solve(S, grad)
        flat = self.wf.get_flat_params()
        self.wf.set_flat_params(flat - self.lr * grad)
        return float(e_mean.real)

    def run(self, n_iterations: int) -> list[float]:
        for _ in range(n_iterations):
            self.step()
        return self.history
