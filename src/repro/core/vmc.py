"""The variational Monte Carlo driver (Fig. 1): sample -> E_loc -> gradient.

One iteration (see :mod:`repro.core.engine` for the staged pipeline):

1. Batch autoregressive sampling produces N_u unique samples with weights.
2. Amplitudes of the unique set are tabulated (wf_lut, Algorithm 2) and the
   local energies evaluated with the vectorized kernel.
3. The energy estimate is the weighted mean (Eq. 6) and the gradient follows
   Eq. 7; with Psi = sqrt(pi) e^{i phi} it splits into

   grad = E_p[ Re(E_loc - E) * grad log pi(x) ] + 2 E_p[ Im(E_loc - E) * grad phi(x) ]

   implemented as a surrogate scalar loss with stop-gradient coefficients.
4. AdamW + the Eq. 13 warmup schedule update the parameters.

:class:`VMC` owns the iteration *state* (wavefunction, optimizer, schedule,
RNG, history — the checkpoint surface); *how* an iteration executes is the
``backend``'s job: :class:`~repro.core.engine.SerialBackend` (default),
``ThreadBackend`` or ``ProcessBackend`` all schedule the same stage
functions, so the serial driver and the data-parallel drivers share exactly
one implementation of the Eq. 7 update.

The pre-training protocol of Sec. 4.1 (small N_s for the first iterations,
then growing toward 1e12) is expressed through ``ns_schedule``.
"""
from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.engine import (
    ELOC_MODES,
    ExecutionBackend,
    SerialBackend,
    VMCConfig,
    VMCStats,
    execute_iteration,
    stage_backward,
    stage_sample,
    stage_update,
)
from repro.core.local_energy import ElocPlan, resolve_batch_kernel
from repro.core.sampler import SampleBatch
from repro.core.wavefunction import NNQSWavefunction
from repro.hamiltonian.compressed import CompressedHamiltonian, compress_hamiltonian
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian
from repro.optim import AdamW, NoamSchedule

__all__ = [
    "ELOC_MODES",
    "VMCConfig",
    "VMCStats",
    "VMC",
    "best_energy",
    "default_ns_schedule",
]


def default_ns_schedule(pretrain_iters: int = 100, ns_pretrain: int = 10**5,
                        ns_max: int = 10**12, growth: float = 1.3) -> Callable[[int], int]:
    """The paper's sample-budget schedule: small N_s early, growing to 1e12."""

    def schedule(iteration: int) -> int:
        if iteration < pretrain_iters:
            return ns_pretrain
        n = ns_pretrain * growth ** (iteration - pretrain_iters)
        return int(min(n, ns_max))

    return schedule


class VMC:
    """The VMC optimizer: engine state + a pluggable execution backend."""

    def __init__(self, wf: NNQSWavefunction,
                 hamiltonian: QubitHamiltonian | CompressedHamiltonian,
                 config: VMCConfig | None = None,
                 backend: ExecutionBackend | None = None,
                 array_backend=None):
        from repro.backend import get_backend

        self.wf = wf
        # The array backend every xp allocation of the staged iteration lands
        # on (name, ArrayBackend instance, or None for the numpy default).
        self.array_backend = get_backend(array_backend or "numpy")
        self.comp = (
            hamiltonian
            if isinstance(hamiltonian, CompressedHamiltonian)
            else compress_hamiltonian(hamiltonian)
        )
        self.config = config or VMCConfig()
        self.backend = backend or SerialBackend()
        # Resolved once per run: the batch kernel named by the config (fails
        # here, not mid-iteration) and, for the planned kernel, the compiled
        # local-energy plan — Hamiltonian-static scaffolds shared by all
        # ranks of every backend (stage 3 hands both to the kernel; other
        # kernels receive plan=None and may compile their own).
        self.eloc_kernel_fn = resolve_batch_kernel(self.config.eloc_kernel)
        self.eloc_plan = ElocPlan(
            self.comp,
            group_chunk=self.config.group_chunk,
            sample_chunk=self.config.sample_chunk,
            memory_budget_bytes=self.config.eloc_memory_budget_bytes(),
        ) if self.config.eloc_kernel == "planned" else None
        self.rng = np.random.default_rng(self.config.seed)
        self.optimizer = AdamW(
            wf, lr=0.0, weight_decay=self.config.weight_decay
        )
        d_model = getattr(wf.amplitude, "d_model", 16)
        self.schedule = NoamSchedule(
            self.optimizer, d_model=d_model, warmup=self.config.warmup,
            scale=self.config.lr_scale,
        )
        self.iteration = 0
        self.history: list[VMCStats] = []
        # Cross-iteration diff baseline for the stage-2 codec: the previous
        # iteration's lexsorted global unique set (multi-rank codec runs
        # only); part of the checkpoint surface so resume stays bitwise.
        self.comm_baseline: np.ndarray | None = None

    # ------------------------------------------------------------ internals
    def _n_samples(self) -> int:
        ns = self.config.n_samples
        return ns(self.iteration) if callable(ns) else ns

    def sample(self) -> SampleBatch:
        """One serial sampling stage on the engine's RNG (stage 1)."""
        return stage_sample(self.wf, self._n_samples(), self.rng,
                            sampler=self.config.sampler)

    def gradient_step(self, batch: SampleBatch, eloc: np.ndarray) -> None:
        """Backpropagate Eq. 7 and update parameters (stages 5-6, one rank)."""
        w = batch.weights.astype(np.float64)
        w_total = w.sum()
        e_mean = float(np.sum(w * eloc.real) / w_total)
        e_imag = float(np.sum(w * eloc.imag) / w_total)
        grad = stage_backward(self.wf, batch, w / w_total, eloc, e_mean, e_imag)
        stage_update(self, grad)

    # ------------------------------------------------------------ main loop
    def step(self) -> VMCStats:
        stats = execute_iteration(self)
        self.history.append(stats)
        return stats

    def run(self, n_iterations: int, log_every: int = 0,
            callback: Callable[[VMCStats], None] | None = None) -> list[VMCStats]:
        for _ in range(n_iterations):
            stats = self.step()
            if callback is not None:
                callback(stats)
            if log_every and stats.iteration % log_every == 0:
                print(
                    f"iter {stats.iteration:5d}  E = {stats.energy:+.6f} Ha  "
                    f"var = {stats.variance:.2e}  N_u = {stats.n_unique}"
                )
        return self.history

    def best_energy(self, window: int = 20) -> float:
        """Variance-weighted energy over the trailing window (final estimate)."""
        return best_energy(self.history, window)


def best_energy(history: list[VMCStats], window: int = 20) -> float:
    """Variance-weighted mean energy over the trailing ``window`` iterations.

    The final-estimate convention shared by :meth:`VMC.best_energy` and
    :func:`repro.core.trainer.build_report` — one definition, so the number
    printed by a driver and the one written to ``report.json`` agree.  Works
    on any backend's history: serial and parallel iterations report the same
    unified :class:`~repro.core.engine.VMCStats` (variance included).
    """
    tail = history[-window:]
    if not tail:
        raise RuntimeError("no VMC iterations have run")
    es = np.array([s.energy for s in tail])
    vs = np.array([max(s.variance, 1e-12) for s in tail])
    wts = 1.0 / vs
    return float(np.sum(wts * es) / np.sum(wts))
