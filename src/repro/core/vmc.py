"""The variational Monte Carlo driver (Fig. 1): sample -> E_loc -> gradient.

One iteration:

1. Batch autoregressive sampling produces N_u unique samples with weights.
2. Amplitudes of the unique set are tabulated (wf_lut, Algorithm 2) and the
   local energies evaluated with the vectorized kernel.
3. The energy estimate is the weighted mean (Eq. 6) and the gradient follows
   Eq. 7; with Psi = sqrt(pi) e^{i phi} it splits into

   grad = E_p[ Re(E_loc - E) * grad log pi(x) ] + 2 E_p[ Im(E_loc - E) * grad phi(x) ]

   implemented as a surrogate scalar loss with stop-gradient coefficients.
4. AdamW + the Eq. 13 warmup schedule update the parameters.

The pre-training protocol of Sec. 4.1 (small N_s for the first iterations,
then growing toward 1e12) is expressed through ``ns_schedule``.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.autograd import Tensor
from repro.core.local_energy import build_amplitude_table, local_energy
from repro.core.sampler import SampleBatch, batch_autoregressive_sample
from repro.core.wavefunction import NNQSWavefunction
from repro.hamiltonian.compressed import CompressedHamiltonian, compress_hamiltonian
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian
from repro.optim import AdamW, NoamSchedule

__all__ = ["VMCConfig", "VMCStats", "VMC", "best_energy", "default_ns_schedule"]


def default_ns_schedule(pretrain_iters: int = 100, ns_pretrain: int = 10**5,
                        ns_max: int = 10**12, growth: float = 1.3) -> Callable[[int], int]:
    """The paper's sample-budget schedule: small N_s early, growing to 1e12."""

    def schedule(iteration: int) -> int:
        if iteration < pretrain_iters:
            return ns_pretrain
        n = ns_pretrain * growth ** (iteration - pretrain_iters)
        return int(min(n, ns_max))

    return schedule


ELOC_MODES = ("exact", "sample_aware")


@dataclass
class VMCConfig:
    n_samples: int | Callable[[int], int] = 10**5
    eloc_mode: str = "exact"          # 'exact' | 'sample_aware'
    lr_scale: float = 1.0             # rescales the Eq. 13 schedule
    warmup: int = 4000
    weight_decay: float = 0.01
    grad_clip: float | None = 1.0     # max-norm clip (stabilizes small batches)
    seed: int = 0
    # Pluggable sampler fn(wf, n_samples, rng) -> SampleBatch; None keeps the
    # default batch autoregressive sweep (see repro.api sampler registry).
    sampler: Callable | None = None

    def __post_init__(self) -> None:
        if not callable(self.n_samples) and self.n_samples <= 0:
            raise ValueError(
                f"VMCConfig.n_samples must be positive, got {self.n_samples!r}"
            )
        if self.eloc_mode not in ELOC_MODES:
            raise ValueError(
                f"VMCConfig.eloc_mode must be one of {ELOC_MODES}, "
                f"got {self.eloc_mode!r}"
            )
        if self.lr_scale <= 0:
            raise ValueError(
                f"VMCConfig.lr_scale must be positive, got {self.lr_scale!r}"
            )
        if self.warmup <= 0:
            raise ValueError(
                f"VMCConfig.warmup must be positive, got {self.warmup!r}"
            )
        if self.weight_decay < 0:
            raise ValueError(
                f"VMCConfig.weight_decay must be >= 0, got {self.weight_decay!r}"
            )
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError(
                f"VMCConfig.grad_clip must be None or positive, "
                f"got {self.grad_clip!r}"
            )


@dataclass
class VMCStats:
    iteration: int
    energy: float
    variance: float
    n_unique: int
    n_samples: int
    lr: float
    eloc_imag: float  # residual imaginary part of the energy (sanity signal)


class VMC:
    """Serial VMC optimizer; the parallel version lives in repro.parallel."""

    def __init__(self, wf: NNQSWavefunction,
                 hamiltonian: QubitHamiltonian | CompressedHamiltonian,
                 config: VMCConfig | None = None):
        self.wf = wf
        self.comp = (
            hamiltonian
            if isinstance(hamiltonian, CompressedHamiltonian)
            else compress_hamiltonian(hamiltonian)
        )
        self.config = config or VMCConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.optimizer = AdamW(
            wf, lr=0.0, weight_decay=self.config.weight_decay
        )
        d_model = getattr(wf.amplitude, "d_model", 16)
        self.schedule = NoamSchedule(
            self.optimizer, d_model=d_model, warmup=self.config.warmup,
            scale=self.config.lr_scale,
        )
        self.iteration = 0
        self.history: list[VMCStats] = []

    # ------------------------------------------------------------ internals
    def _n_samples(self) -> int:
        ns = self.config.n_samples
        return ns(self.iteration) if callable(ns) else ns

    def sample(self) -> SampleBatch:
        sampler = self.config.sampler or batch_autoregressive_sample
        return sampler(self.wf, self._n_samples(), self.rng)

    def gradient_step(self, batch: SampleBatch, eloc: np.ndarray) -> None:
        """Backpropagate Eq. 7 and update parameters."""
        w = batch.weights / batch.weights.sum()
        e_mean = np.sum(w * eloc)
        centered = eloc - e_mean
        coeff_amp = w * centered.real
        coeff_phase = 2.0 * w * centered.imag
        self.optimizer.zero_grad()
        logp = self.wf.log_prob(batch.bits)
        phi = self.wf.phase_of(batch.bits)
        loss = (Tensor(coeff_amp) * logp).sum() + (Tensor(coeff_phase) * phi).sum()
        loss.backward()
        if self.config.grad_clip is not None:
            g = self.wf.get_flat_grads()
            norm = np.linalg.norm(g)
            if norm > self.config.grad_clip:
                self.wf.set_flat_grads(g * (self.config.grad_clip / norm))
        self.schedule.step()
        self.optimizer.step()

    # ------------------------------------------------------------ main loop
    def step(self) -> VMCStats:
        batch = self.sample()
        eloc, _ = local_energy(
            self.wf, self.comp, batch, mode=self.config.eloc_mode
        )
        w = batch.weights / batch.weights.sum()
        energy = float(np.sum(w * eloc.real))
        variance = float(np.sum(w * (eloc.real - energy) ** 2))
        self.gradient_step(batch, eloc)
        self.iteration += 1
        stats = VMCStats(
            iteration=self.iteration,
            energy=energy,
            variance=variance,
            n_unique=batch.n_unique,
            n_samples=batch.n_samples,
            lr=self.optimizer.lr,
            eloc_imag=float(np.abs(np.sum(w * eloc.imag))),
        )
        self.history.append(stats)
        return stats

    def run(self, n_iterations: int, log_every: int = 0,
            callback: Callable[[VMCStats], None] | None = None) -> list[VMCStats]:
        for _ in range(n_iterations):
            stats = self.step()
            if callback is not None:
                callback(stats)
            if log_every and stats.iteration % log_every == 0:
                print(
                    f"iter {stats.iteration:5d}  E = {stats.energy:+.6f} Ha  "
                    f"var = {stats.variance:.2e}  N_u = {stats.n_unique}"
                )
        return self.history

    def best_energy(self, window: int = 20) -> float:
        """Variance-weighted energy over the trailing window (final estimate)."""
        return best_energy(self.history, window)


def best_energy(history: list[VMCStats], window: int = 20) -> float:
    """Variance-weighted mean energy over the trailing ``window`` iterations.

    The final-estimate convention shared by :meth:`VMC.best_energy` and
    :func:`repro.core.trainer.build_report` — one definition, so the number
    printed by a driver and the one written to ``report.json`` agree.
    """
    tail = history[-window:]
    if not tail:
        raise RuntimeError("no VMC iterations have run")
    es = np.array([s.energy for s in tail])
    vs = np.array([max(s.variance, 1e-12) for s in tail])
    wts = 1.0 / vs
    return float(np.sum(wts * es) / np.sum(wts))
