"""Supervised warm start: bias the amplitude network toward a reference state.

The paper starts VMC from random parameters with a reduced sample budget
("pre-training stage", Sec. 4.1).  In the small iteration budgets of this
reproduction, an optional explicit warm start to the Hartree-Fock determinant
(maximize log pi(x_HF) for a few steps) shortens the random-search phase
without changing the variational optimum; all benches report whether it was
used.
"""
from __future__ import annotations

import numpy as np

from repro.core.wavefunction import NNQSWavefunction
from repro.optim import AdamW

__all__ = ["pretrain_to_reference"]


def pretrain_to_reference(wf: NNQSWavefunction, bits: np.ndarray,
                          n_steps: int = 200, lr: float = 1e-2,
                          target_prob: float = 0.5) -> float:
    """Maximize log pi(reference) until it exceeds log(target_prob).

    Returns the final pi(reference).  Phase parameters are untouched.
    """
    bits = np.atleast_2d(bits)
    opt = AdamW(wf, lr=lr, weight_decay=0.0)
    logp_val = -np.inf
    for _ in range(n_steps):
        opt.zero_grad()
        logp = wf.log_prob(bits).sum()
        (-logp).backward()
        opt.step()
        logp_val = logp.item()
        if logp_val > np.log(target_prob):
            break
    return float(np.exp(logp_val))
