"""The paper's core contribution: QiankunNet ansatz, BAS sampler, VMC."""
from repro.core.constraints import ParticleNumberConstraint
from repro.core.wavefunction import NNQSWavefunction, build_qiankunnet
from repro.core.sampler import (
    SampleBatch,
    BASTreeState,
    autoregressive_sample,
    batch_autoregressive_sample,
    bas_prefix_sweep,
)
from repro.core.local_energy import (
    AmplitudeTable,
    ElocPlan,
    build_amplitude_table,
    compile_eloc_plan,
    extend_amplitude_table,
    merge_amplitude_tables,
    normalize_amplitude_table,
    local_energy,
    local_energy_baseline,
    local_energy_planned,
    local_energy_sa_fuse,
    local_energy_sa_fuse_lut,
    local_energy_vectorized,
)
from repro.core.vmc import VMC, VMCConfig, VMCStats, default_ns_schedule
from repro.core.pretrain import pretrain_to_reference
from repro.core.mcmc import MCMCStats, RBMVMC, metropolis_sample
from repro.core.checkpoint import (
    load_checkpoint,
    load_model_snapshot,
    save_checkpoint,
    save_model_snapshot,
)
from repro.core.observables import (
    EstimateResult,
    ObservableSet,
    estimate,
    fidelity,
    occupations,
    one_rdm_sampled,
    sector_expectation,
)
from repro.core.diagnostics import (
    ExtrapolationResult,
    correlation_energy_fraction,
    detect_plateau,
    v_score,
    zero_variance_extrapolation,
)
from repro.core.sr import SRConfig, SRStepInfo, StochasticReconfiguration
from repro.core.trainer import TrainConfig, Trainer, TrainReport
from repro.core.hybrid_sampling import MergeStats, merge_batches, merged_batch_sample

__all__ = [
    "ParticleNumberConstraint",
    "NNQSWavefunction",
    "build_qiankunnet",
    "SampleBatch",
    "BASTreeState",
    "autoregressive_sample",
    "batch_autoregressive_sample",
    "bas_prefix_sweep",
    "AmplitudeTable",
    "ElocPlan",
    "build_amplitude_table",
    "compile_eloc_plan",
    "extend_amplitude_table",
    "merge_amplitude_tables",
    "normalize_amplitude_table",
    "local_energy",
    "local_energy_baseline",
    "local_energy_planned",
    "local_energy_sa_fuse",
    "local_energy_sa_fuse_lut",
    "local_energy_vectorized",
    "VMC",
    "VMCConfig",
    "VMCStats",
    "default_ns_schedule",
    "pretrain_to_reference",
    "MCMCStats",
    "RBMVMC",
    "metropolis_sample",
    "load_checkpoint",
    "save_checkpoint",
    "load_model_snapshot",
    "save_model_snapshot",
    "EstimateResult",
    "ObservableSet",
    "estimate",
    "fidelity",
    "occupations",
    "sector_expectation",
    "SRConfig",
    "SRStepInfo",
    "StochasticReconfiguration",
    "TrainConfig",
    "Trainer",
    "TrainReport",
    "MergeStats",
    "merge_batches",
    "merged_batch_sample",
    "one_rdm_sampled",
    "ExtrapolationResult",
    "correlation_energy_fraction",
    "detect_plateau",
    "v_score",
    "zero_variance_extrapolation",
]
