"""Autoregressive sampling and batch autoregressive sampling (BAS, Fig. 3).

Plain autoregressive sampling draws one configuration per run (N local
samplings).  BAS instead pushes a *budget* of N_s samples down the sampling
tree at once: at every step the current unique prefixes hold integer weights
(occurrence counts) that are split multinomially among the allowed child
tokens, and zero-weight children are pruned.  The output is the set of unique
samples with their occurrence counts — N_s can be astronomically large (the
paper uses up to 1e12) at a cost that depends only on the number of unique
prefixes per layer.

``SampleBatch`` is the data-centric unit handed to the local-energy kernel
and the gradient step (Fig. 4): unique bitstrings, weights, and nothing else.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.wavefunction import NNQSWavefunction

__all__ = ["SampleBatch", "autoregressive_sample", "batch_autoregressive_sample", "BASTreeState"]


@dataclass
class SampleBatch:
    """Unique samples with occurrence weights (the paper's N_u records)."""

    bits: np.ndarray     # (U, N) uint8
    weights: np.ndarray  # (U,) int64 occurrence counts; sum = N_s

    @property
    def n_unique(self) -> int:
        return len(self.weights)

    @property
    def n_samples(self) -> int:
        return int(self.weights.sum())

    def frequencies(self) -> np.ndarray:
        return self.weights / max(self.n_samples, 1)


@dataclass
class BASTreeState:
    """An intermediate layer of the BAS tree (used by the parallel splitter)."""

    prefixes: np.ndarray   # (P, k) tokens
    weights: np.ndarray    # (P,) int64
    counts_up: np.ndarray  # (P,)
    counts_dn: np.ndarray  # (P,)
    step: int


def autoregressive_sample(wf: NNQSWavefunction, n_samples: int,
                          rng: np.random.Generator) -> SampleBatch:
    """Fig. 3(a): one sample per run — the O(N_s N^3) reference algorithm."""
    t = wf.n_tokens
    tokens = np.zeros((n_samples, 0), dtype=np.int64)
    cu = np.zeros(n_samples, dtype=np.int64)
    cd = np.zeros(n_samples, dtype=np.int64)
    for step in range(t):
        probs = wf.conditional_probs(tokens, cu, cd)  # (B, vocab)
        u = rng.random((n_samples, 1))
        choice = (probs.cumsum(axis=1) < u).sum(axis=1)
        choice = np.minimum(choice, wf.vocab_size - 1)
        tokens = np.concatenate([tokens, choice[:, None]], axis=1)
        du, dd = wf.sector_counts(choice[:, None])
        cu += du
        cd += dd
    bits = wf.tokens_to_bits(tokens)
    # Collapse duplicates into (unique, weight) form.
    uniq, inverse = np.unique(bits, axis=0, return_inverse=True)
    weights = np.bincount(inverse, minlength=len(uniq)).astype(np.int64)
    return SampleBatch(bits=uniq.astype(np.uint8), weights=weights)


def _multinomial_rows(rng: np.random.Generator, weights: np.ndarray,
                      probs: np.ndarray) -> np.ndarray:
    """Split each integer weight among the outcomes of its probability row."""
    out = np.zeros(probs.shape, dtype=np.int64)
    for i in range(len(weights)):  # rows are few (unique prefixes), keep simple
        out[i] = rng.multinomial(int(weights[i]), probs[i])
    return out


def _bas_step(wf: NNQSWavefunction, state: BASTreeState,
              rng: np.random.Generator) -> BASTreeState:
    """One local sampling step: expand every prefix, prune zero weights."""
    probs = wf.conditional_probs(state.prefixes, state.counts_up, state.counts_dn)
    counts = _multinomial_rows(rng, state.weights, probs)  # (P, vocab)
    parent_idx, token = np.nonzero(counts)
    new_prefixes = np.concatenate(
        [state.prefixes[parent_idx], token[:, None]], axis=1
    )
    du, dd = wf.sector_counts(token[:, None].astype(np.int64))
    return BASTreeState(
        prefixes=new_prefixes,
        weights=counts[parent_idx, token],
        counts_up=state.counts_up[parent_idx] + du,
        counts_dn=state.counts_dn[parent_idx] + dd,
        step=state.step + 1,
    )


def initial_tree_state(batch: int = 1) -> BASTreeState:
    """Empty BAS tree root (step 0, no prefixes, zero weights)."""
    return BASTreeState(
        prefixes=np.zeros((batch, 0), dtype=np.int64),
        weights=np.zeros(batch, dtype=np.int64),
        counts_up=np.zeros(batch, dtype=np.int64),
        counts_dn=np.zeros(batch, dtype=np.int64),
        step=0,
    )


def batch_autoregressive_sample(
    wf: NNQSWavefunction,
    n_samples: int,
    rng: np.random.Generator,
    start: BASTreeState | None = None,
) -> SampleBatch:
    """Fig. 3(b): generate N_s samples in one tree sweep, cost ~ O(N_u N^3/3).

    ``start`` allows resuming from a mid-tree state — the hook used by the
    parallel BAS of Fig. 5, where ranks share the first k steps and then
    continue on disjoint subsets of the layer-k nodes.
    """
    state = start
    if state is None:
        state = initial_tree_state()
        state = BASTreeState(
            prefixes=state.prefixes,
            weights=np.array([n_samples], dtype=np.int64),
            counts_up=state.counts_up,
            counts_dn=state.counts_dn,
            step=0,
        )
    while state.step < wf.n_tokens:
        state = _bas_step(wf, state, rng)
    bits = wf.tokens_to_bits(state.prefixes)
    return SampleBatch(bits=bits, weights=state.weights.copy())


def bas_prefix_sweep(
    wf: NNQSWavefunction,
    n_samples: int,
    rng: np.random.Generator,
    stop_unique: int,
) -> BASTreeState:
    """Run BAS until the layer holds >= stop_unique nodes (or the tree ends).

    This implements the paper's dynamic choice of the split step k: "we set a
    threshold N_u^* and choose k to be the first local sampling step such that
    the current number of unique samples N_{u,k} is larger than N_u^*".
    """
    state = initial_tree_state()
    state = BASTreeState(
        prefixes=state.prefixes,
        weights=np.array([n_samples], dtype=np.int64),
        counts_up=state.counts_up,
        counts_dn=state.counts_dn,
        step=0,
    )
    while state.step < wf.n_tokens and len(state.weights) < stop_unique:
        state = _bas_step(wf, state, rng)
    return state
