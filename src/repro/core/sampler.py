"""Autoregressive sampling and batch autoregressive sampling (BAS, Fig. 3).

Plain autoregressive sampling draws one configuration per run (N local
samplings).  BAS instead pushes a *budget* of N_s samples down the sampling
tree at once: at every step the current unique prefixes hold integer weights
(occurrence counts) that are split multinomially among the allowed child
tokens, and zero-weight children are pruned.  The output is the set of unique
samples with their occurrence counts — N_s can be astronomically large (the
paper uses up to 1e12) at a cost that depends only on the number of unique
prefixes per layer.

Each local sampling step is *incremental*: the tree state carries an
inference session (per-layer KV caches, one row per unique prefix) so step k
costs O(k) attention work instead of re-running the full transformer over
the prefix (O(k^2) per layer).  When prefixes branch at
``np.nonzero(counts)`` the cache rows are gathered/duplicated along with
them, and pruned zero-weight children drop their rows.  ``use_cache=False``
forces the retained full-forward oracle path (the training-time numerics)
for testing and benchmarking.

``SampleBatch`` is the data-centric unit handed to the local-energy kernel
and the gradient step (Fig. 4): unique bitstrings, weights, and nothing else.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.backend import active_backend
from repro.core.wavefunction import NNQSWavefunction

__all__ = ["SampleBatch", "autoregressive_sample", "batch_autoregressive_sample", "BASTreeState"]


@dataclass
class SampleBatch:
    """Unique samples with occurrence weights (the paper's N_u records)."""

    bits: np.ndarray     # (U, N) uint8
    weights: np.ndarray  # (U,) int64 occurrence counts; sum = N_s

    @property
    def n_unique(self) -> int:
        return len(self.weights)

    @property
    def n_samples(self) -> int:
        return int(self.weights.sum())

    def frequencies(self) -> np.ndarray:
        return self.weights / max(self.n_samples, 1)


@dataclass
class BASTreeState:
    """An intermediate layer of the BAS tree (used by the parallel splitter).

    ``session`` is the incremental-decoding state whose cache rows are
    aligned with ``prefixes`` (invariant: the session has consumed inputs
    for positions ``< step``, i.e. BOS plus all but the last prefix column).
    A state without a session (e.g. rebuilt after a parallel split shipped
    it across ranks) is resumed by prefilling the caches from the prefix.
    """

    prefixes: np.ndarray   # (P, k) tokens
    weights: np.ndarray    # (P,) int64
    counts_up: np.ndarray  # (P,)
    counts_dn: np.ndarray  # (P,)
    step: int
    session: object | None = field(default=None, repr=False, compare=False)


def autoregressive_sample(wf: NNQSWavefunction, n_samples: int,
                          rng: np.random.Generator,
                          use_cache: bool = True) -> SampleBatch:
    """Fig. 3(a): one sample per run — the O(N_s N^3) reference algorithm.

    With ``use_cache`` (default) a single session of ``n_samples`` rows is
    decoded incrementally; ``use_cache=False`` re-runs the full forward at
    every step (the pre-cache oracle path).
    """
    t = wf.n_tokens
    tokens = np.zeros((n_samples, 0), dtype=np.int64)
    cu = np.zeros(n_samples, dtype=np.int64)
    cd = np.zeros(n_samples, dtype=np.int64)
    session = wf.make_session(n_samples) if use_cache else None
    for step in range(t):
        if session is not None:
            logits = session.step(tokens[:, -1] if step > 0 else None)
            probs = wf.probs_from_logits(logits, cu, cd, step)
        else:
            probs = wf.conditional_probs_reference(tokens, cu, cd)  # (B, vocab)
        # The one planned device->host sync of the sampling loop: the host
        # RNG consumes the conditional probabilities.
        probs = active_backend().to_host(probs, tag="sampling.probs")
        u = rng.random((n_samples, 1))
        choice = (probs.cumsum(axis=1) < u).sum(axis=1)
        choice = np.minimum(choice, wf.vocab_size - 1)
        tokens = np.concatenate([tokens, choice[:, None]], axis=1)
        du, dd = wf.sector_counts(choice[:, None])
        cu += du
        cd += dd
    bits = wf.tokens_to_bits(tokens)
    # Collapse duplicates into (unique, weight) form.
    uniq, inverse = np.unique(bits, axis=0, return_inverse=True)
    weights = np.bincount(inverse, minlength=len(uniq)).astype(np.int64)
    return SampleBatch(bits=uniq.astype(np.uint8), weights=weights)


def _multinomial_rows(rng: np.random.Generator, weights: np.ndarray,
                      probs: np.ndarray) -> np.ndarray:
    """Split each integer weight among the outcomes of its probability row.

    One batched draw: ``Generator.multinomial`` broadcasts row-wise and
    consumes the bit stream in the same order as a per-row Python loop, so
    seeded results are unchanged from the scalar implementation.
    """
    if len(weights) == 0:
        return np.zeros(probs.shape, dtype=np.int64)
    return rng.multinomial(weights.astype(np.int64), probs).astype(np.int64)


def _estimated_cache_bytes(wf: NNQSWavefunction, n_rows: int, length: int) -> int:
    """Projected session-cache footprint of ``n_rows`` prefixes, ``length`` tokens.

    Delegates to the amplitude's ``cache_bytes`` (the class that owns the
    cache layout); amplitudes without one (fallback sessions store tokens
    only) are treated as free.
    """
    cache_bytes = getattr(wf.amplitude, "cache_bytes", None)
    return 0 if cache_bytes is None else cache_bytes(n_rows, length)


def _bas_step(wf: NNQSWavefunction, state: BASTreeState,
              rng: np.random.Generator, use_cache: bool = True,
              cache_budget_bytes: int | None = None) -> BASTreeState:
    """One local sampling step: expand every prefix, prune zero weights.

    The returned state's session rows are gathered with ``parent_idx`` so
    branched prefixes duplicate their parent's KV cache rows and pruned
    children (zero weight) drop theirs.  When ``cache_budget_bytes`` is set
    and the projected cache footprint of this layer exceeds it, the step
    drops the session and computes the conditionals with a one-shot numpy
    prefill instead — O(k^2) per step again, but with only transient memory
    (the escape hatch for huge-N_u layers; see DESIGN.md).
    """
    if use_cache:
        session = state.session
        over_budget = cache_budget_bytes is not None and _estimated_cache_bytes(
            wf, len(state.weights), state.step + 1
        ) > cache_budget_bytes
        if session is not None:
            # A carried session is always cheapest to use (O(k) step); the
            # budget only decides whether its caches are *retained* below.
            logits = session.step(state.prefixes[:, -1] if state.step > 0 else None)
            probs = wf.probs_from_logits(logits, state.counts_up, state.counts_dn,
                                         state.step)
        elif over_budget:
            # No caches to reuse and retaining new ones would bust the
            # budget: one-shot transient prefill, keep nothing.
            probs = wf.conditional_probs(
                state.prefixes, state.counts_up, state.counts_dn
            )
        else:
            # Fresh root, or a mid-tree state that lost its session (e.g.
            # shipped across ranks by the Fig. 5 splitter, or dropped by
            # the cache budget): batched prefill, caches retained.
            session = wf.make_session(len(state.weights))
            logits = session.prefill(state.prefixes)
            probs = wf.probs_from_logits(logits, state.counts_up, state.counts_dn,
                                         state.step)
    else:
        session = None
        probs = wf.conditional_probs_reference(
            state.prefixes, state.counts_up, state.counts_dn
        )
    # The one planned device->host sync per BAS step: the host RNG's
    # multinomial split consumes the conditional probabilities.
    probs = active_backend().to_host(probs, tag="sampling.probs")
    counts = _multinomial_rows(rng, state.weights, probs)  # (P, vocab)
    parent_idx, token = np.nonzero(counts)
    new_prefixes = np.concatenate(
        [state.prefixes[parent_idx], token[:, None]], axis=1
    )
    du, dd = wf.sector_counts(token[:, None].astype(np.int64))
    if session is not None and cache_budget_bytes is not None and _estimated_cache_bytes(
        wf, len(parent_idx), state.step + 1
    ) > cache_budget_bytes:
        # Branching multiplied the rows (up to x vocab) past the budget:
        # don't retain the gathered caches; the next step prefills or falls
        # back under its own budget check.
        session = None
    return BASTreeState(
        prefixes=new_prefixes,
        weights=counts[parent_idx, token],
        counts_up=state.counts_up[parent_idx] + du,
        counts_dn=state.counts_dn[parent_idx] + dd,
        step=state.step + 1,
        session=session.select(parent_idx) if session is not None else None,
    )


def initial_tree_state(batch: int = 1) -> BASTreeState:
    """Empty BAS tree root (step 0, no prefixes, zero weights)."""
    return BASTreeState(
        prefixes=np.zeros((batch, 0), dtype=np.int64),
        weights=np.zeros(batch, dtype=np.int64),
        counts_up=np.zeros(batch, dtype=np.int64),
        counts_dn=np.zeros(batch, dtype=np.int64),
        step=0,
    )


def batch_autoregressive_sample(
    wf: NNQSWavefunction,
    n_samples: int,
    rng: np.random.Generator,
    start: BASTreeState | None = None,
    use_cache: bool = True,
    cache_budget_bytes: int | None = None,
) -> SampleBatch:
    """Fig. 3(b): generate N_s samples in one tree sweep, cost ~ O(N_u N^3/3).

    ``start`` allows resuming from a mid-tree state — the hook used by the
    parallel BAS of Fig. 5, where ranks share the first k steps and then
    continue on disjoint subsets of the layer-k nodes.  A resumed state
    reuses its carried inference session when present, otherwise the caches
    are rebuilt with one batched prefill.  ``use_cache=False`` runs the
    retained full-forward oracle path.
    """
    state = start
    if state is None:
        state = initial_tree_state()
        state = BASTreeState(
            prefixes=state.prefixes,
            weights=np.array([n_samples], dtype=np.int64),
            counts_up=state.counts_up,
            counts_dn=state.counts_dn,
            step=0,
        )
    elif use_cache and state.session is not None:
        # Stepping mutates a session in place (cache append + position
        # advance): work on a copy so the caller's state stays resumable.
        state = replace(state, session=state.session.copy())
    while state.step < wf.n_tokens:
        state = _bas_step(wf, state, rng, use_cache=use_cache,
                          cache_budget_bytes=cache_budget_bytes)
    bits = wf.tokens_to_bits(state.prefixes)
    return SampleBatch(bits=bits, weights=state.weights.copy())


def bas_prefix_sweep(
    wf: NNQSWavefunction,
    n_samples: int,
    rng: np.random.Generator,
    stop_unique: int,
    use_cache: bool = True,
    cache_budget_bytes: int | None = None,
) -> BASTreeState:
    """Run BAS until the layer holds >= stop_unique nodes (or the tree ends).

    This implements the paper's dynamic choice of the split step k: "we set a
    threshold N_u^* and choose k to be the first local sampling step such that
    the current number of unique samples N_{u,k} is larger than N_u^*".
    The returned state carries its inference session, so continuing the sweep
    (``batch_autoregressive_sample(..., start=state)``) keeps the KV caches.
    """
    state = initial_tree_state()
    state = BASTreeState(
        prefixes=state.prefixes,
        weights=np.array([n_samples], dtype=np.int64),
        counts_up=state.counts_up,
        counts_dn=state.counts_dn,
        step=0,
    )
    while state.step < wf.n_tokens and len(state.weights) < stop_unique:
        state = _bas_step(wf, state, rng, use_cache=use_cache,
                          cache_budget_bytes=cache_budget_bytes)
    return state
