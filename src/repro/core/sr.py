"""Stochastic reconfiguration (SR) — the optimizer the paper engineers around.

Sec. 1 of the paper: conventional NNQS needs "the stochastic reconfiguration
(SR) technique for stable convergence to the global minimum, for which one
needs to (approximately) compute the inverse of the M x M SR matrix for a
neural network with M parameters, thus greatly prohibiting the usage of very
deep neural networks as well as the scalability to a large number of
processes".  This module implements SR so that claim can be *measured*
(``benchmarks/bench_ablations.py``): per-iteration cost and convergence are
compared against the AdamW + autoregressive-sampling path the paper uses.

For a wave function Psi_theta with real parameters theta, the log-derivative
operators are ``O_k(x) = d ln Psi*_theta(x) / d theta_k`` (here
``1/2 d log pi - i d phi``), and one SR step solves

    (S + lambda I) delta = -lr * F,
    S_kk' = Re( <O_k* O_k'> - <O_k*><O_k'> ),
    F_k   = Re( <(E_loc - <E>) O_k*> ),

with expectations over the sampled distribution.  The dense M x M solve (and
the per-sample Jacobian it needs) is exactly the bottleneck the paper points
at; we guard with ``max_params`` instead of hiding it.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampler import SampleBatch
from repro.core.wavefunction import NNQSWavefunction

__all__ = ["SRConfig", "SRStepInfo", "StochasticReconfiguration", "per_sample_jacobians"]


def per_sample_jacobians(
    wf: NNQSWavefunction, bits: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Rows ``J_logp[b] = d log pi(x_b)/d theta`` and ``J_phi[b] = d phi(x_b)/d theta``.

    One backward pass per sample and head — O(B * M) memory, O(B * cost)
    time.  This is the scaling wall SR imposes; documented, not optimized.
    """
    bits = np.atleast_2d(bits)
    m = wf.num_parameters()
    j_logp = np.zeros((len(bits), m))
    j_phi = np.zeros((len(bits), m))
    for b in range(len(bits)):
        wf.zero_grad()
        wf.log_prob(bits[b : b + 1]).sum().backward()
        j_logp[b] = wf.get_flat_grads()
        wf.zero_grad()
        wf.phase_of(bits[b : b + 1]).sum().backward()
        j_phi[b] = wf.get_flat_grads()
    wf.zero_grad()
    return j_logp, j_phi


@dataclass
class SRConfig:
    lr: float = 0.05
    diag_shift: float = 0.01   # relative Tikhonov shift (units of the top eigenvalue)
    rcond: float = 1e-10       # singular-value cutoff relative to the largest
    max_params: int = 20_000   # refuse the dense solve beyond this M


@dataclass
class SRStepInfo:
    energy: float
    grad_norm: float
    update_norm: float
    s_condition: float


class StochasticReconfiguration:
    """SR optimizer over an :class:`NNQSWavefunction`.

    Usage mirrors the VMC driver: sample a batch, compute local energies with
    any engine, then ``sr.step(batch, eloc)``.
    """

    def __init__(self, wf: NNQSWavefunction, config: SRConfig | None = None):
        self.wf = wf
        self.config = config or SRConfig()
        m = wf.num_parameters()
        if m > self.config.max_params:
            raise ValueError(
                f"SR needs a dense {m} x {m} solve; refusing above "
                f"max_params={self.config.max_params}.  This is the paper's "
                "point — use the AdamW path for deep networks."
            )

    def step(self, batch: SampleBatch, eloc: np.ndarray) -> SRStepInfo:
        cfg = self.config
        w = batch.weights / batch.weights.sum()
        e_mean = complex(np.sum(w * eloc))

        j_logp, j_phi = per_sample_jacobians(self.wf, batch.bits)
        # O = d ln Psi* = 1/2 d log pi - i d phi   (rows per sample)
        o = 0.5 * j_logp - 1j * j_phi
        o_mean = w @ o
        oc = o - o_mean[None, :]

        # F_k = Re <(E_loc - E) O_k> with O = d ln Psi* (Eq. 7's gradient);
        # no extra conjugation — O already carries the Psi* convention.
        f = np.real((w * (eloc - e_mean)) @ oc)

        # S = Re(A^H A) with A = sqrt(w) * oc; rank(S) <= 2 N_u, so solve in
        # the sample subspace via SVD of the stacked real representation.
        # Directions outside the span carry no curvature information and are
        # projected out (the pseudo-inverse convention used in practice) —
        # a dense (S + lambda I)^{-1} would blow them up by 1/lambda.
        a = np.sqrt(w)[:, None] * oc
        ar = np.vstack([a.real, a.imag])  # (2B, M): S = ar.T @ ar exactly
        _, sing, vt = np.linalg.svd(ar, full_matrices=False)
        s2 = sing**2
        top = s2[0] if len(s2) and s2[0] > 0 else 1.0
        keep = s2 > cfg.rcond * top
        proj = vt[keep] @ f
        delta = vt[keep].T @ (proj / (s2[keep] + cfg.diag_shift * top))

        theta = self.wf.get_flat_params()
        self.wf.set_flat_params(theta - cfg.lr * delta)
        cond = float(s2[keep][0] / s2[keep][-1]) if keep.any() else 1.0
        return SRStepInfo(
            energy=float(np.real(e_mean)),
            grad_norm=float(np.linalg.norm(f)),
            update_norm=float(cfg.lr * np.linalg.norm(delta)),
            s_condition=cond,
        )
