"""Convergence diagnostics for VMC runs.

The paper assesses "the efficacy of the model ... based on convergence
precision" (Sec. 4.1).  This module provides quantitative diagnostics used by
the benches and examples:

* :func:`v_score` — the dimensionless variance score
  ``N_qubits * Var[E_loc] / (E - E_ref)^2`` (Wu et al., "Variational benchmarks
  for quantum many-body problems"-style metric): the smaller, the closer the
  ansatz is to an eigenstate relative to the remaining energy error.
* :func:`zero_variance_extrapolation` — linear fit of E against Var[E_loc]
  over trailing iterations; an eigenstate has zero variance, so the
  Var -> 0 intercept is a (non-variational) improved energy estimate.
* :func:`detect_plateau` — has the energy trace stopped improving?
* :func:`correlation_energy_fraction` — recovered correlation energy
  (E_HF - E) / (E_HF - E_FCI), the "who wins" quantity of Table 1.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.vmc import VMCStats

__all__ = [
    "v_score",
    "zero_variance_extrapolation",
    "detect_plateau",
    "correlation_energy_fraction",
    "ExtrapolationResult",
]


def v_score(energy: float, variance: float, n_qubits: int,
            e_ref: float = 0.0) -> float:
    """Dimensionless variance score: N * Var[E_loc] / (E - e_ref)^2.

    ``e_ref`` should be a scale reference (0 for total energies works since
    |E| >> 1 Ha for molecules; pass E_HF-E style gaps for sharper scoring).
    """
    denom = (energy - e_ref) ** 2
    if denom <= 0.0:
        raise ValueError("energy must differ from the reference")
    return float(n_qubits * variance / denom)


@dataclass
class ExtrapolationResult:
    energy: float          # Var -> 0 intercept
    slope: float           # dE/dVar of the fit
    r_squared: float       # fit quality
    n_points: int

    @property
    def reliable(self) -> bool:
        """A meaningful extrapolation needs decent correlation and spread."""
        return self.n_points >= 5 and self.r_squared > 0.25


def zero_variance_extrapolation(history: list[VMCStats],
                                window: int = 50) -> ExtrapolationResult:
    """Least-squares fit E = a + b * Var over the trailing ``window`` iterations.

    As the ansatz approaches an eigenstate both E and Var[E_loc] decrease;
    their joint trajectory is asymptotically linear and the Var=0 intercept
    estimates the eigenvalue (standard zero-variance extrapolation).
    """
    tail = history[-window:]
    if len(tail) < 2:
        raise ValueError("need at least two iterations to extrapolate")
    e = np.array([s.energy for s in tail])
    v = np.array([s.variance for s in tail])
    vm, em = v.mean(), e.mean()
    denom = np.sum((v - vm) ** 2)
    if denom < 1e-300:
        return ExtrapolationResult(energy=float(em), slope=0.0, r_squared=0.0,
                                   n_points=len(tail))
    slope = float(np.sum((v - vm) * (e - em)) / denom)
    intercept = float(em - slope * vm)
    pred = intercept + slope * v
    ss_res = float(np.sum((e - pred) ** 2))
    ss_tot = float(np.sum((e - em) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return ExtrapolationResult(energy=intercept, slope=slope, r_squared=r2,
                               n_points=len(tail))


def detect_plateau(history: list[VMCStats], window: int = 50,
                   rel_tol: float = 1e-6) -> bool:
    """True when the windowed mean energy stopped improving.

    Compares the means of the last two ``window``-sized blocks; a plateau is
    declared when the improvement is below ``rel_tol * |E|``.
    """
    if len(history) < 2 * window:
        return False
    recent = np.mean([s.energy for s in history[-window:]])
    previous = np.mean([s.energy for s in history[-2 * window : -window]])
    return bool(previous - recent < rel_tol * abs(recent))


def correlation_energy_fraction(energy: float, e_hf: float, e_exact: float) -> float:
    """(E_HF - E) / (E_HF - E_exact): 0 at HF quality, 1 at exactness."""
    denom = e_hf - e_exact
    if abs(denom) < 1e-14:
        raise ValueError("reference energies coincide; no correlation to recover")
    return float((e_hf - energy) / denom)
