"""The unified VMC execution engine: one staged iteration, many backends.

Every execution backend — serial, thread ranks, forked process ranks — runs
the *same* per-iteration stage functions, in the data-centric order of
Fig. 4 (Sec. 3.2):

  stage 1  sample           parallel BAS (Fig. 5) for N_p > 1: identical
                            seeded prefix sweep to the dynamic split step k,
                            then each rank finishes its weight-balanced share
                            of the layer-k nodes; a single rank runs the
                            plain serial sweep on the engine's persistent RNG
                            (bit-identical to the serial backend).
  stage 2  gather/table     Allgather of (packed unique samples, weights,
                            log amplitudes); lexsorted into the global
                            amplitude table (Algorithm 2's id_lut/wf_lut).
  stage 3  eloc shard       each rank evaluates local energies for its
                            weight-balanced chunk of the global unique set
                            (Sec. 3.3 load balancing) against the table.
  stage 4  energy reduce    Allreduce of the weighted energy sums.
  stage 5  backward         Eq. 7 surrogate loss + backward on the chunk.
  stage 6  gradient reduce  one Allreduce carries the gradient *and* the
                            centered second moment (variance), so parallel
                            histories report variance/eloc_imag exactly like
                            serial ones.

The reduced gradient flows back to the engine, which applies the single
clip -> schedule -> optimizer update (exactly one implementation of the
Eq. 7 update, shared by all backends).  Reductions are rank-ordered and
therefore deterministic: ``n_ranks=1`` is bit-identical to the serial
backend, and ``n_ranks>1`` is run-to-run reproducible.

Backends are thin schedulers over the stages:

* :class:`SerialBackend`  — the stages inline, on a size-1 communicator.
* :class:`ThreadBackend`  — FakeMPI thread ranks (numpy kernels release the
  GIL, so stages 1/3/5 genuinely overlap on multicore hosts).
* :class:`ProcessBackend` — forked OS processes over
  :func:`repro.parallel.multiprocess.run_spmd_processes`.

The "engine" object the backends drive is any object with the VMC state
surface (``wf``, ``comp``, ``config``, ``rng``, ``optimizer``, ``schedule``,
``iteration``, ``backend``) — in practice :class:`repro.core.vmc.VMC`, which
keeps the checkpoint/resume format unchanged.
"""
from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.autograd import Tensor
from repro.backend import active_backend, counter_delta, get_backend, use_backend, xp
from repro.backend.dtypes import float64, int64, uint32, uint64
from repro.backend.host import host_np
from repro.core.local_energy import (
    AmplitudeTable,
    ElocPlan,
    extend_amplitude_table,
    resolve_batch_kernel,
)
from repro.core.sampler import (
    SampleBatch,
    bas_prefix_sweep,
    batch_autoregressive_sample,
)
from repro.utils.bitstrings import lexsort_keys, pack_bits, unpack_bits

__all__ = [
    "ELOC_MODES",
    "ELOC_PARTITIONS",
    "VMCConfig",
    "VMCStats",
    "stats_record",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "stage_sample",
    "stage_sample_parallel",
    "stage_gather_table",
    "stage_partition",
    "stage_local_energy",
    "stage_backward",
    "stage_update",
    "execute_iteration",
]

ELOC_MODES = ("exact", "sample_aware")
ELOC_PARTITIONS = ("balanced", "contiguous")


@dataclass
class VMCConfig:
    n_samples: int | Callable[[int], int] = 10**5
    eloc_mode: str = "exact"          # 'exact' | 'sample_aware'
    lr_scale: float = 1.0             # rescales the Eq. 13 schedule
    warmup: int = 4000
    weight_decay: float = 0.01
    grad_clip: float | None = 1.0     # max-norm clip (stabilizes small batches)
    seed: int = 0
    # Pluggable sampler fn(wf, n_samples, rng) -> SampleBatch; None keeps the
    # default batch autoregressive sweep (see repro.api sampler registry).
    # Parallel backends (n_ranks > 1) require the default: a custom sampler
    # cannot be split across ranks by the Fig. 5 prefix-sweep scheme.
    sampler: Callable | None = None
    # Local-energy kernel chunking (Sec. 3.4 / Fig. 9 memory story): the
    # batch kernels materialize (sample_chunk x group_chunk) packed keys
    # at a time; eloc_memory_budget_mb caps that materialization, shrinking
    # sample_chunk automatically on wide Hamiltonians.
    group_chunk: int = 512
    sample_chunk: int = 4096
    eloc_memory_budget_mb: float | None = None
    # Which batch kernel evaluates stage 3, by eloc_kernel-registry name.
    # 'planned' (default) = compiled ElocPlan + coupled-key dedup;
    # 'vectorized' = the unplanned reference kernel.  Bit-identical values.
    eloc_kernel: str = "planned"

    def __post_init__(self) -> None:
        if not callable(self.n_samples) and self.n_samples <= 0:
            raise ValueError(
                f"VMCConfig.n_samples must be positive, got {self.n_samples!r}"
            )
        if self.eloc_mode not in ELOC_MODES:
            raise ValueError(
                f"VMCConfig.eloc_mode must be one of {ELOC_MODES}, "
                f"got {self.eloc_mode!r}"
            )
        if self.lr_scale <= 0:
            raise ValueError(
                f"VMCConfig.lr_scale must be positive, got {self.lr_scale!r}"
            )
        if self.warmup <= 0:
            raise ValueError(
                f"VMCConfig.warmup must be positive, got {self.warmup!r}"
            )
        if self.weight_decay < 0:
            raise ValueError(
                f"VMCConfig.weight_decay must be >= 0, got {self.weight_decay!r}"
            )
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError(
                f"VMCConfig.grad_clip must be None or positive, "
                f"got {self.grad_clip!r}"
            )
        if not isinstance(self.group_chunk, int) or self.group_chunk <= 0:
            raise ValueError(
                f"VMCConfig.group_chunk must be a positive int, "
                f"got {self.group_chunk!r}"
            )
        if not isinstance(self.sample_chunk, int) or self.sample_chunk <= 0:
            raise ValueError(
                f"VMCConfig.sample_chunk must be a positive int, "
                f"got {self.sample_chunk!r}"
            )
        if self.eloc_memory_budget_mb is not None and self.eloc_memory_budget_mb <= 0:
            raise ValueError(
                "VMCConfig.eloc_memory_budget_mb must be None or positive, "
                f"got {self.eloc_memory_budget_mb!r}"
            )
        if not isinstance(self.eloc_kernel, str) or not self.eloc_kernel:
            raise ValueError(
                "VMCConfig.eloc_kernel must name a registered batch kernel, "
                f"got {self.eloc_kernel!r}"
            )

    def eloc_memory_budget_bytes(self) -> int | None:
        if self.eloc_memory_budget_mb is None:
            return None
        return int(self.eloc_memory_budget_mb * 2**20)


@dataclass
class VMCStats:
    """One iteration's record — the same shape on every backend.

    The parallel fields default to their serial values (``comm_bytes`` /
    ``per_rank_unique`` are ``None`` on the serial backend), so one history
    type feeds ``best_energy``, the Trainer's metrics log, checkpoints and
    the scaling benches regardless of how the iteration executed.  Equality
    compares the *trajectory* (energies, counts, comm volume) — wall-clock
    timings are excluded, so bit-identical runs compare equal.
    """

    iteration: int
    energy: float
    variance: float
    n_unique: int
    n_samples: int
    lr: float
    eloc_imag: float  # residual imaginary part of the energy (sanity signal)
    wall_time: float = field(default=0.0, compare=False)
    time_sampling: float = field(default=0.0, compare=False)  # max over ranks
    time_local_energy: float = field(default=0.0, compare=False)
    time_gradient: float = field(default=0.0, compare=False)
    comm_bytes: int | None = None     # None: no communicator (serial backend)
    per_rank_unique: list[int] | None = field(default=None)
    # Wire bytes actually moved (<= comm_bytes with the codec on); None on
    # serial iterations and on histories recorded before the split existed.
    comm_bytes_wire: int | None = None
    # Array-backend transfer/allocation counters (instrumented backends only;
    # None on the numpy backend).  Observability data: excluded from equality,
    # from stats_record (metrics.jsonl stays bit-identical across backends)
    # and from checkpoints; surfaced through report.json's backend section.
    transfers: dict | None = field(default=None, compare=False)


def stats_record(stats: VMCStats) -> dict:
    """The metrics.jsonl form of one iteration's stats.

    Serial iterations keep the historical six-field record; iterations that
    ran on a communicating backend additionally carry the comm volume and the
    per-rank decomposition (asserted by the CI parallel smoke step).
    """
    rec = {
        "iteration": stats.iteration,
        "energy": stats.energy,
        "variance": stats.variance,
        "n_unique": stats.n_unique,
        "n_samples": stats.n_samples,
        "lr": stats.lr,
    }
    if stats.comm_bytes is not None:
        rec.update(
            comm_bytes=stats.comm_bytes,
            comm_bytes_wire=(
                stats.comm_bytes_wire
                if stats.comm_bytes_wire is not None
                else stats.comm_bytes
            ),
            wall_time=stats.wall_time,
            time_sampling=stats.time_sampling,
            time_local_energy=stats.time_local_energy,
            time_gradient=stats.time_gradient,
            per_rank_unique=list(stats.per_rank_unique or []),
        )
    return rec


# --------------------------------------------------------------------------
# Stage functions (the one implementation every backend schedules)
# --------------------------------------------------------------------------
def stage_sample(wf, n_samples: int, rng: host_np.random.Generator,
                 sampler: Callable | None = None) -> SampleBatch:
    """Stage 1, single rank: one BAS sweep (or a custom sampler hook)."""
    sample = sampler or batch_autoregressive_sample
    return sample(wf, n_samples, rng)


def stage_sample_parallel(wf, n_samples: int, seed: int, iteration: int,
                          nu_star: int, comm) -> SampleBatch:
    """Stage 1, N_p ranks: the parallel BAS of Fig. 5.

    Every rank replays the identical seeded prefix sweep up to the dynamic
    split step k (first layer holding >= N_u^* unique prefixes), takes its
    weight-balanced share of the layer-k nodes, and finishes the subtree with
    a rank-private stream.  Streams are derived from (seed, iteration, rank),
    so the iteration is reproducible from the checkpointed iteration counter
    alone — no RNG state crosses ranks.
    """
    from repro.parallel.partition import split_tree_state

    rank, size = comm.Get_rank(), comm.Get_size()
    shared_rng = host_np.random.default_rng((seed, iteration, 0xBA5))
    state = bas_prefix_sweep(wf, n_samples, shared_rng, nu_star)
    my_state = split_tree_state(state, size)[rank]
    cont_rng = host_np.random.default_rng((seed, iteration, rank + 1))
    return batch_autoregressive_sample(wf, 0, cont_rng, start=my_state)


def _counts_array(weights):
    """Integer multiplicities at natural width: uint32 when they fit (the
    common case — counts are bounded by the per-rank sample budget), uint64
    for the paper's N_s -> 1e12 tail."""
    if weights.size and int(weights.max()) > 0xFFFFFFFF:
        return weights.astype(uint64)
    return weights.astype(uint32)


def stage_gather_table(comm, wf, local: SampleBatch, *, codec: bool = True,
                       baseline=None):
    """Stage 2: Allgather the unique sets; build the global amplitude table.

    Returns ``(keys, weights, table)`` with the global unique set lexsorted —
    the rank-independent canonical order every chunk indexes into.

    The multi-rank payload is split into two typed channels:

    * ``stage2_samples`` — packed keys + integer counts.  With ``codec``
      on, each rank lexsorts locally and ships a delta/varint payload
      (:mod:`repro.parallel.codec`), diffed against ``baseline`` (the
      previous iteration's global unique set) when one is available; with
      ``codec`` off the keys and uint32 counts travel as raw typed arrays.
    * ``stage2_amps`` — the complex128 log-amplitudes, always raw (lossless
      float compression is not worth the cycles).

    Amplitudes are evaluated on ``local.bits`` in sampler order *before* any
    local sort, so the network sees exactly the batches it always saw; the
    global set is unique across ranks (disjoint BAS subtrees), hence the
    final lexsort yields the same table bit-for-bit regardless of the wire
    encoding.
    """
    local_keys = pack_bits(local.bits)
    # The stage-2 comm boundary: log-amplitudes leave the device exactly once
    # per rank and iteration, entering the host-resident global table (and,
    # multi-rank, the stage2_amps collective).
    local_amps = active_backend().to_host(
        wf.log_amplitudes(local.bits), tag="stage2.amps"
    )
    if comm.Get_size() == 1:
        order = lexsort_keys(local_keys)
        keys = local_keys[order]
        weights = local.weights.astype(int64)[order]
        amps = local_amps[order]
        return keys, weights, AmplitudeTable(keys=keys, log_amps=amps)

    order = lexsort_keys(local_keys)
    skeys = local_keys[order]
    sweights = local.weights.astype(int64)[order]
    samps = local_amps[order]
    rank = comm.Get_rank()
    if codec and hasattr(comm, "allgather_blob"):
        from repro.parallel.codec import (
            decode_sample_payload,
            encode_sample_payload,
        )

        blob = encode_sample_payload(skeys, sweights, baseline=baseline)
        logical = skeys.nbytes + _counts_array(sweights).nbytes
        blobs = comm.allgather_blob(blob, logical_bytes=logical,
                                    channel="stage2_samples")
        key_parts, weight_parts = [], []
        for r, b in enumerate(blobs):
            if r == rank:  # own payload: skip the (lossless) decode
                key_parts.append(skeys)
                weight_parts.append(sweights)
            else:
                k, c = decode_sample_payload(b, baseline=baseline)
                key_parts.append(k)
                weight_parts.append(c)
    else:
        counts = _counts_array(sweights)
        key_parts = comm.allgather_ndarray(skeys, channel="stage2_samples")
        weight_parts = [
            c.astype(int64)
            for c in comm.allgather_ndarray(counts, channel="stage2_samples")
        ]
    amp_parts = comm.allgather_ndarray(samps, channel="stage2_amps")
    keys = xp.concatenate(key_parts, axis=0)
    weights = xp.concatenate(weight_parts)
    amps = xp.concatenate(amp_parts)
    order = lexsort_keys(keys)
    keys, weights, amps = keys[order], weights[order], amps[order]
    return keys, weights, AmplitudeTable(keys=keys, log_amps=amps)


def stage_partition(weights, n_ranks: int,
                    mode: str = "balanced") -> list:
    """Stage 3 prologue: split the global unique set into per-rank chunks.

    ``balanced`` (default) reuses the Sec. 3.3 weight-balancing heuristic —
    contiguous cuts of ~equal total sample weight — instead of the naive
    contiguous ``1/N_p`` count split (kept as ``contiguous`` for the
    benchmark comparison).
    """
    if mode == "balanced":
        from repro.parallel.partition import balanced_weight_partition

        return balanced_weight_partition(weights, n_ranks)
    if mode != "contiguous":
        raise ValueError(
            f"eloc partition mode must be one of {ELOC_PARTITIONS}, got {mode!r}"
        )
    n = len(weights)
    return [
        xp.arange(r * n // n_ranks, (r + 1) * n // n_ranks, dtype=int64)
        for r in range(n_ranks)
    ]


def stage_local_energy(wf, comp, chunk: SampleBatch, table: AmplitudeTable,
                       config: VMCConfig,
                       plan: ElocPlan | None = None,
                       kernel: Callable | None = None):
    """Stage 3: local energies of one chunk against the global table.

    The batch kernel is resolved by name from the eloc_kernel registry
    (``config.eloc_kernel``) unless the engine hands in its once-per-run
    resolved callable; ``plan`` is the engine's compiled
    :class:`~repro.core.local_energy.ElocPlan`, built once per run and
    shared by every rank of every backend (unplanned kernels ignore it).
    """
    tbl = table
    if config.eloc_mode == "exact":
        tbl = extend_amplitude_table(
            wf, comp, chunk, table,
            memory_budget_bytes=config.eloc_memory_budget_bytes(),
        )
    if kernel is None:
        kernel = resolve_batch_kernel(config.eloc_kernel)
    return kernel(
        comp, chunk, tbl,
        group_chunk=config.group_chunk,
        sample_chunk=config.sample_chunk,
        memory_budget_bytes=config.eloc_memory_budget_bytes(),
        plan=plan,
    )


def stage_backward(wf, chunk: SampleBatch, w_norm,
                   eloc, e_mean: float, e_imag: float):
    """Stage 5: Eq. 7 surrogate loss + backward; returns the flat gradient.

    grad = E_p[ Re(E_loc - E) grad log pi(x) ] + 2 E_p[ Im(E_loc - E) grad phi(x) ]

    implemented as a scalar loss with stop-gradient coefficients.
    """
    wf.zero_grad()
    coeff_amp = w_norm * (eloc.real - e_mean)
    coeff_phase = 2.0 * w_norm * (eloc.imag - e_imag)
    logp = wf.log_prob(chunk.bits)
    phi = wf.phase_of(chunk.bits)
    loss = (Tensor(coeff_amp) * logp).sum() + (Tensor(coeff_phase) * phi).sum()
    loss.backward()
    return wf.get_flat_grads()


def stage_update(engine, grad) -> None:
    """Stage 6 epilogue: clip -> Eq. 13 schedule -> AdamW step, on the master.

    The single implementation of the parameter update; backends hand the
    engine one reduced gradient and never touch the optimizer themselves.
    """
    grad = xp.asarray(grad)
    clip = engine.config.grad_clip
    if clip is not None:
        norm = xp.linalg.norm(grad)
        if norm > clip:
            grad = grad * (clip / norm)
    engine.wf.set_flat_grads(grad)
    engine.schedule.step()
    engine.optimizer.step()


# --------------------------------------------------------------------------
# The per-rank iteration body (shared verbatim by every backend)
# --------------------------------------------------------------------------
def _rank_iteration(engine, comm, wf, rng, nu_star: int,
                    eloc_partition: str) -> dict:
    """Run stages 1-6 as one rank of ``comm``; returns the rank's results.

    With a size-1 communicator this *is* the serial iteration: the sample
    stage consumes the engine's persistent RNG, the collectives are
    identities, and the chunk is the whole unique set — which is what makes
    ``ThreadBackend(n_ranks=1)`` bit-identical to :class:`SerialBackend`.

    The whole body runs under the engine's array backend (``use_backend``),
    so every ``xp`` allocation in the stages lands on it.  On instrumented
    backends the counters are snapshotted around stage 1, and the per-rank
    deltas ship back as ``out['transfers']`` — the data behind the residency
    contract's "zero unplanned host transfers inside the sampling loop".
    """
    array_backend = getattr(engine, "array_backend", None) or get_backend("numpy")
    with use_backend(array_backend):
        snap0 = array_backend.counter_snapshot()
        out, snap1 = _rank_iteration_stages(
            engine, comm, wf, rng, nu_star, eloc_partition
        )
        snap2 = array_backend.counter_snapshot()
    sampling = counter_delta(snap0, snap1)
    if sampling is not None:
        out["transfers"] = {
            "sampling": sampling,
            "post_sampling": counter_delta(snap1, snap2),
        }
    return out


def _rank_iteration_stages(engine, comm, wf, rng, nu_star: int,
                           eloc_partition: str) -> tuple[dict, dict | None]:
    """Stages 1-6 proper; returns ``(out, post-stage-1 counter snapshot)``."""
    cfg: VMCConfig = engine.config
    size = comm.Get_size()
    rank = comm.Get_rank()
    n_samples = engine._n_samples()
    times = {}

    # ---- stage 1: sample ---------------------------------------------------
    t0 = time.perf_counter()
    if size == 1:
        local = stage_sample(wf, n_samples, rng, sampler=cfg.sampler)
    else:
        if cfg.sampler is not None:
            raise ValueError(
                "custom samplers cannot be split across ranks; parallel "
                "backends require the default BAS sampler"
            )
        local = stage_sample_parallel(
            wf, n_samples, cfg.seed, engine.iteration, nu_star, comm
        )
    times["sampling"] = time.perf_counter() - t0
    snap_sampled = active_backend().counter_snapshot()

    # ---- stage 2: allgather + global amplitude table -----------------------
    codec = bool(getattr(engine.backend, "comm_codec", True))
    baseline = getattr(engine, "comm_baseline", None) if codec else None
    keys, weights, table = stage_gather_table(
        comm, wf, local, codec=codec, baseline=baseline
    )
    n_u = len(weights)

    # ---- stage 3: local energy on this rank's chunk ------------------------
    t0 = time.perf_counter()
    idx = stage_partition(weights, size, eloc_partition)[rank]
    chunk = SampleBatch(
        bits=unpack_bits(keys[idx], engine.comp.n_qubits),
        weights=weights[idx],
    )
    eloc = stage_local_energy(wf, engine.comp, chunk, table, cfg,
                              plan=getattr(engine, "eloc_plan", None),
                              kernel=getattr(engine, "eloc_kernel_fn", None))
    times["local_energy"] = time.perf_counter() - t0

    # ---- stage 4: allreduce the weighted energy sums -----------------------
    w_chunk = chunk.weights.astype(float64)
    local_sums = xp.array(
        [xp.sum(w_chunk * eloc.real), xp.sum(w_chunk * eloc.imag), w_chunk.sum()]
    )
    sums = comm.allreduce_sum(local_sums)
    e_mean = sums[0] / sums[2]
    e_imag = sums[1] / sums[2]

    # ---- stage 5: Eq. 7 backward on the chunk ------------------------------
    t0 = time.perf_counter()
    grad = stage_backward(wf, chunk, w_chunk / sums[2], eloc, e_mean, e_imag)
    times["gradient"] = time.perf_counter() - t0

    # ---- stage 6: one allreduce for the gradient + centered 2nd moment -----
    var_local = xp.array([xp.sum(w_chunk * (eloc.real - e_mean) ** 2)])
    # The stage-6 comm boundary: the fused gradient + variance payload leaves
    # the device exactly once per rank and iteration, entering the allreduce.
    fused = active_backend().to_host(
        xp.concatenate([grad, var_local]), tag="stage6.grad"
    )
    if hasattr(comm, "allreduce_ndarray"):
        packed = comm.allreduce_ndarray(fused, channel="stage6_grads")
    else:
        packed = comm.allreduce_sum(fused)
    grad_total, variance = packed[:-1], float(packed[-1] / sums[2])

    out = {
        "grad": grad_total,
        "energy": float(e_mean),
        "eloc_imag": float(abs(e_imag)),
        "variance": variance,
        "n_unique": int(n_u),
        "n_local_unique": int(local.n_unique),
        "n_samples": int(n_samples),
        "times": times,
    }
    spmd = bool(getattr(engine.backend, "spmd", False))
    if size > 1 and codec and (rank == 0 or spmd):
        # Next iteration's diff baseline: the global unique set in canonical
        # (lexsorted) order.  On the thread/process backends only rank 0's
        # copy survives execute() (every rank rebuilds the identical array,
        # so shipping one is enough); on SPMD backends (cluster) each rank
        # is a separate host-resident engine and must retain its own copy to
        # decode peers' delta-encoded payloads next iteration.
        out["global_keys"] = keys
    return out, snap_sampled


class _SoloComm:
    """Size-1 communicator with FakeComm's surface and identical arithmetic.

    ``allreduce_sum`` uses the same ``sum([x], axis=0)`` expression as
    :class:`~repro.parallel.fake_mpi.FakeComm`, so a serial iteration and a
    one-thread-rank iteration reduce bit-identically.
    """

    def Get_rank(self) -> int:
        return 0

    def Get_size(self) -> int:
        return 1

    def allgather(self, payload) -> list:
        return [payload]

    def allgather_ndarray(self, array, channel=None) -> list:
        return [xp.asarray(array)]

    def allgather_blob(self, data, logical_bytes=None, channel=None) -> list:
        return [bytes(data)]

    def allreduce_sum(self, array):
        return xp.sum([xp.asarray(array)], axis=0)

    def allreduce_ndarray(self, array, channel=None):
        return xp.sum([xp.asarray(array)], axis=0)

    def bcast(self, array, root: int = 0):
        return array


# --------------------------------------------------------------------------
# Backends: thin schedulers over the stages
# --------------------------------------------------------------------------
class ExecutionBackend:
    """How the staged iteration executes; subclasses schedule the stages.

    ``execute(engine)`` runs stages 1-6 and returns ``(rank_results,
    comm)`` where ``comm`` is ``None`` (no communicator) or a
    ``(logical_bytes, wire_bytes)`` pair; the engine then applies the single
    parameter update and calls ``after_update`` so the backend can resync any
    rank replicas.
    """

    name = "?"
    n_ranks = 1

    def execute(self, engine) -> tuple[list[dict], tuple[int, int] | None]:
        raise NotImplementedError

    def after_update(self, engine) -> None:  # pragma: no cover - default hook
        pass

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_ranks={self.n_ranks})"


class SerialBackend(ExecutionBackend):
    """The stages inline on a size-1 communicator (the classic serial VMC)."""

    name = "serial"
    n_ranks = 1

    def execute(self, engine) -> tuple[list[dict], tuple[int, int] | None]:
        result = _rank_iteration(
            engine, _SoloComm(), engine.wf, engine.rng,
            nu_star=0, eloc_partition="balanced",
        )
        return [result], None


def _validate_rank_args(n_ranks: int, eloc_partition: str) -> None:
    if not isinstance(n_ranks, int) or n_ranks < 1:
        raise ValueError(f"n_ranks must be a positive int, got {n_ranks!r}")
    if eloc_partition not in ELOC_PARTITIONS:
        raise ValueError(
            f"eloc_partition must be one of {ELOC_PARTITIONS}, "
            f"got {eloc_partition!r}"
        )


class ThreadBackend(ExecutionBackend):
    """FakeMPI thread ranks; one model replica per rank (Fig. 4 data layout).

    N_u^* = ``nu_star_per_rank * n_ranks``, following the paper's scaling
    setup (N_u^* = 16384 n for n GPUs).  With ``n_ranks=1`` the iteration is
    bit-identical to :class:`SerialBackend`: same RNG stream, same stage
    arithmetic, degenerate collectives.
    """

    name = "threads"

    def __init__(self, n_ranks: int, nu_star_per_rank: int = 64,
                 eloc_partition: str = "balanced", comm_codec: bool = True,
                 comm_shm: bool = True):
        _validate_rank_args(n_ranks, eloc_partition)
        self.n_ranks = n_ranks
        self.nu_star_per_rank = nu_star_per_rank
        self.eloc_partition = eloc_partition
        self.comm_codec = bool(comm_codec)
        # comm_shm is accepted for spec symmetry; thread ranks already share
        # one address space, so there is nothing to toggle.
        self.comm_shm = bool(comm_shm)
        self.replicas: list | None = None
        self.last_comm_stats = None

    def _sync_replicas(self, engine):
        if self.replicas is None:
            self.replicas = [
                copy.deepcopy(engine.wf) for _ in range(self.n_ranks)
            ]
        flat = engine.wf.get_flat_params()
        for rep in self.replicas:
            rep.set_flat_params(flat)
        return flat

    def execute(self, engine) -> tuple[list[dict], tuple[int, int] | None]:
        from repro.parallel.fake_mpi import run_spmd

        # Sync before every execute (not just after updates): the master may
        # have moved outside the engine step — checkpoint restore, pretrain.
        flat = self._sync_replicas(engine)
        nu_star = self.nu_star_per_rank * self.n_ranks
        rng = engine.rng  # consumed only on the size-1 (serial-identical) path

        def rank_fn(comm):
            return _rank_iteration(
                engine, comm, self.replicas[comm.Get_rank()], rng,
                nu_star=nu_star, eloc_partition=self.eloc_partition,
            )

        results, stats = run_spmd(self.n_ranks, rank_fn)
        self.last_comm_stats = stats
        # The post-update parameter resync is the stage-6 broadcast, realized
        # through shared memory — account its bytes like the collectives.
        sync = flat.nbytes * self.n_ranks
        return results, (stats.total_bytes + sync, stats.total_wire_bytes + sync)

    def after_update(self, engine) -> None:
        # Keep replicas in lockstep with the master between iterations (the
        # parameter broadcast of Fig. 4 stage 6).
        self._sync_replicas(engine)


class ProcessBackend(ExecutionBackend):
    """Forked OS-process ranks over ``run_spmd_processes`` (fork-only, Linux).

    Each iteration forks ``n_ranks`` workers that inherit the current
    parameters; the reduced gradient (and, on the size-1 path, the advanced
    RNG state) is shipped back to the parent, which applies the update.
    """

    name = "process"

    def __init__(self, n_ranks: int, nu_star_per_rank: int = 64,
                 eloc_partition: str = "balanced", timeout: float = 600.0,
                 comm_codec: bool = True, comm_shm: bool = True,
                 join_timeout: float = 10.0):
        _validate_rank_args(n_ranks, eloc_partition)
        self.n_ranks = n_ranks
        self.nu_star_per_rank = nu_star_per_rank
        self.eloc_partition = eloc_partition
        self.timeout = timeout
        self.join_timeout = join_timeout
        self.comm_codec = bool(comm_codec)
        self.comm_shm = bool(comm_shm)
        self.last_comm_stats = None

    def execute(self, engine) -> tuple[list[dict], tuple[int, int] | None]:
        from repro.parallel.multiprocess import run_spmd_processes

        nu_star = self.nu_star_per_rank * self.n_ranks
        param_bytes = sum(p.data.nbytes for p in engine.wf.parameters())

        def rank_fn(comm):
            out = _rank_iteration(
                engine, comm, engine.wf, engine.rng,
                nu_star=nu_star, eloc_partition=self.eloc_partition,
            )
            if comm.Get_size() == 1:
                # The serial-identical path consumed the fork's private copy
                # of the RNG; ship its state back so the parent's stream
                # continues exactly where the child stopped.
                out["rng_state"] = engine.rng.bit_generator.state
            if comm.Get_rank() != 0:
                out["grad"] = None  # identical on every rank; pickle it once
            return out

        results, stats = run_spmd_processes(self.n_ranks, rank_fn,
                                            timeout=self.timeout,
                                            use_shm=self.comm_shm,
                                            join_timeout=self.join_timeout)
        self.last_comm_stats = stats
        state = results[0].pop("rng_state", None)
        if state is not None:
            engine.rng.bit_generator.state = state
        sync = param_bytes * self.n_ranks
        return results, (stats.total_bytes + sync, stats.total_wire_bytes + sync)


# --------------------------------------------------------------------------
# The engine step: backend-scheduled stages + the single update
# --------------------------------------------------------------------------
def _merge_transfers(results: list) -> dict | None:
    """Sum the per-rank counter deltas (None unless a rank was instrumented)."""
    deltas = [r.get("transfers") for r in results if r.get("transfers")]
    if not deltas:
        return None

    def merge(into: dict, part: dict) -> dict:
        for k, v in part.items():
            if isinstance(v, dict):
                into[k] = merge(dict(into.get(k, {})), v)
            else:
                into[k] = into.get(k, 0) + v
        return into

    merged: dict = {}
    for d in deltas:
        merge(merged, d)
    return merged


def execute_iteration(engine) -> VMCStats:
    """One full VMC iteration of ``engine`` on its backend.

    Runs the staged pipeline, applies the reduced gradient through
    :func:`stage_update`, advances the iteration counter and returns the
    unified stats record (the caller owns history bookkeeping).
    """
    backend: ExecutionBackend = engine.backend
    t_wall = time.perf_counter()
    results, comm = backend.execute(engine)
    if comm is None:
        comm_bytes = comm_wire = None
    elif isinstance(comm, tuple):
        comm_bytes, comm_wire = comm
    else:  # legacy backends return one logical count
        comm_bytes = comm_wire = int(comm)
    r0 = results[0]
    # Rank 0 hands back the lexsorted global unique set when the codec is on;
    # it becomes the next iteration's cross-iteration diff baseline.
    engine.comm_baseline = r0.pop("global_keys", None)
    stage_update(engine, r0["grad"])
    backend.after_update(engine)
    wall = time.perf_counter() - t_wall

    engine.iteration += 1
    return VMCStats(
        iteration=engine.iteration,
        energy=r0["energy"],
        variance=r0["variance"],
        n_unique=r0["n_unique"],
        n_samples=r0["n_samples"],
        lr=engine.optimizer.lr,
        eloc_imag=r0["eloc_imag"],
        wall_time=wall,
        time_sampling=max(r["times"]["sampling"] for r in results),
        time_local_energy=max(r["times"]["local_energy"] for r in results),
        time_gradient=max(r["times"]["gradient"] for r in results),
        comm_bytes=comm_bytes,
        per_rank_unique=(
            None if comm_bytes is None
            else [r["n_local_unique"] for r in results]
        ),
        comm_bytes_wire=comm_wire,
        transfers=_merge_transfers(results),
    )
