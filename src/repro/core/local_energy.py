"""Local energy evaluation: E_loc(x) = sum_x' H_xx' Psi(x')/Psi(x)  (Eq. 4).

This module reproduces the optimization ladder of Sec. 3.4 / Fig. 10:

* ``local_energy_baseline``   — "bare CPU": per-term Python loops over the
  Fig. 6(b) layout, materializing every coupled configuration before looking
  amplitudes up in a Python dict.
* ``local_energy_sa_fuse``    — methods (2)+(4): compressed XY groups (each
  unique coupled configuration visited once) with fused accumulation (no
  materialization), amplitudes from a dict.
* ``local_energy_sa_fuse_lut``— + method (5): amplitudes in a sorted packed-
  uint64 lookup table searched with binary search (Algorithm 2's
  ``binary_find``), still Python loops.
* ``local_energy_vectorized`` — + method (3): the batch-parallel kernel.  The
  paper parallelizes over unique samples with CUDA threads; our substitution
  runs the identical arithmetic as numpy array operations over the sample
  batch (documented in DESIGN.md).

All sample-aware (SA) engines only credit coupled configurations that appear
in the amplitude table (Fig. 7(b)).  For unbiased local energies on small
systems, :func:`extend_amplitude_table` grows the table with *all* coupled
configurations in the physical sector, evaluated through the wave function —
the vectorized kernel then computes the exact Eq. (4).
"""
from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.core.sampler import SampleBatch
from repro.core.wavefunction import NNQSWavefunction
from repro.hamiltonian.compressed import (
    CompressedHamiltonian,
    ReferenceHamiltonianData,
)
from repro.utils.bitstrings import (
    keys_to_ints,
    lexsort_keys,
    pack_bits,
    parity64,
    popcount64,
    searchsorted_keys,
    unpack_bits,
)

__all__ = [
    "AmplitudeTable",
    "build_amplitude_table",
    "extend_amplitude_table",
    "merge_amplitude_tables",
    "local_energy_baseline",
    "local_energy_sa_fuse",
    "local_energy_sa_fuse_lut",
    "local_energy_vectorized",
    "budgeted_sample_chunk",
    "local_energy",
]


@dataclass
class AmplitudeTable:
    """The id_lut / wf_lut pair of Algorithm 2 (sorted keys + log amplitudes)."""

    keys: np.ndarray       # (U, W) uint64, lexsorted
    log_amps: np.ndarray   # (U,) complex128 — log Psi of each key

    @property
    def n_entries(self) -> int:
        return len(self.log_amps)

    def to_dict(self) -> dict[int, complex]:
        """Python-dict view (used by the non-LUT engines of Fig. 10).

        Keys are packed with one vectorized shift-or pass per word
        (:func:`~repro.utils.bitstrings.keys_to_ints`) instead of a
        per-entry Python word loop; the mapping is unchanged.
        """
        return dict(zip(keys_to_ints(self.keys), self.log_amps))


def build_amplitude_table(wf: NNQSWavefunction, batch: SampleBatch) -> AmplitudeTable:
    """Tabulate log Psi of the unique samples, lexsorted for binary search."""
    keys = pack_bits(batch.bits)
    log_amps = wf.log_amplitudes(batch.bits)
    order = lexsort_keys(keys)
    return AmplitudeTable(keys=keys[order], log_amps=log_amps[order])


def merge_amplitude_tables(a: AmplitudeTable, b: AmplitudeTable) -> AmplitudeTable:
    """Union of two amplitude tables (both must come from the same parameters).

    Entries of ``a`` win on duplicate keys; the result is lexsorted and ready
    for binary search.  This is the serving-layer primitive: the
    :class:`~repro.serve.WavefunctionService` accumulates one table per model
    version across ``local_energy`` requests, so amplitudes of previously seen
    configurations are never recomputed.
    """
    if a.n_entries == 0:
        return b
    if b.n_entries == 0:
        return a
    dup = searchsorted_keys(a.keys, b.keys) >= 0
    if np.all(dup):
        return a
    keys = np.concatenate([a.keys, b.keys[~dup]], axis=0)
    amps = np.concatenate([a.log_amps, b.log_amps[~dup]])
    order = lexsort_keys(keys)
    return AmplitudeTable(keys=keys[order], log_amps=amps[order])


def extend_amplitude_table(
    wf: NNQSWavefunction,
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    table: AmplitudeTable,
    max_extra: int = 2_000_000,
) -> AmplitudeTable:
    """Add every sector-valid coupled configuration to the amplitude table.

    With the extended table the SA kernels compute the *exact* local energy
    (the sum over x' in Eq. 4 runs over all coupled configurations).
    """
    keys = pack_bits(batch.bits)  # (B, W)
    flips = (keys[:, None, :] ^ comp.xy_unique[None, :, :]).reshape(-1, keys.shape[1])
    flips = np.unique(flips, axis=0)
    missing = flips[searchsorted_keys(table.keys, flips) < 0]
    if len(missing) == 0:
        return table
    bits = unpack_bits(missing, comp.n_qubits)
    if wf.constraint is not None:
        bits = bits[wf.constraint.validate_bits(bits)]
    if len(bits) > max_extra:
        raise ValueError(
            f"{len(bits)} coupled configurations exceed max_extra={max_extra}; "
            "use sample-aware mode for this system size"
        )
    if len(bits) == 0:
        return table
    log_amps = wf.log_amplitudes(bits)
    all_keys = np.concatenate([table.keys, pack_bits(bits)], axis=0)
    all_amps = np.concatenate([table.log_amps, log_amps])
    order = lexsort_keys(all_keys)
    return AmplitudeTable(keys=all_keys[order], log_amps=all_amps[order])


# --------------------------------------------------------------------------
# Level 0: bare-CPU baseline (Fig. 6(b) layout, term-by-term, dict lookup)
# --------------------------------------------------------------------------
def local_energy_baseline(
    ref: ReferenceHamiltonianData,
    batch: SampleBatch,
    amp_dict: dict[int, complex],
) -> np.ndarray:
    """The "bare CPU" level of Fig. 10: per-term Python loops, no SA/FUSE/LUT."""
    n_words = ref.xy.shape[1]
    # Per-term integer masks and Y phases (independent of the samples).
    a_masks, b_masks, phases = [], [], []
    for k in range(ref.n_terms):
        a = b = 0
        for w in range(n_words):
            a |= int(ref.xy[k, w]) << (64 * w)
            b |= int(ref.yz[k, w]) << (64 * w)
        a_masks.append(a)
        b_masks.append(b)
        phases.append((-1.0) ** (ref.y_occ[k] // 2))
    eloc = np.zeros(batch.n_unique, dtype=np.complex128)
    keys = pack_bits(batch.bits)
    for s in range(batch.n_unique):
        x = 0
        for w in range(n_words):
            x |= int(keys[s, w]) << (64 * w)
        la_x = amp_dict[x]
        # No FUSE: materialize every coupled configuration with its
        # coefficient (one record per Pauli string — duplicates included,
        # the O(N_h) memory footprint Sec. 3.4 method (2) eliminates).
        coupled: list[tuple[int, float]] = []
        for k in range(ref.n_terms):
            xp = x ^ a_masks[k]
            sign = -1.0 if bin(b_masks[k] & x).count("1") % 2 else 1.0
            coupled.append((xp, ref.coeffs[k] * phases[k] * sign))
        # No SA dedup: every record triggers its own amplitude lookup (the
        # compressed structure would visit each unique x' exactly once).
        acc = 0.0 + 0.0j
        for xp, coef in coupled:
            la = amp_dict.get(xp)
            if la is not None:
                acc += coef * np.exp(la - la_x)
        eloc[s] = acc + ref.constant
    return eloc


# --------------------------------------------------------------------------
# Level 1: SA + FUSE (compressed groups, fused accumulation, boolean storage)
# --------------------------------------------------------------------------
def _int_views(comp: CompressedHamiltonian):
    """Python-int views of the compressed masks (for the scalar engines)."""
    return keys_to_ints(comp.xy_unique), keys_to_ints(comp.yz_buf)


def local_energy_sa_fuse(
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    amp_dict: dict[int, complex],
) -> np.ndarray:
    """Methods (2)+(4): fused accumulation over compressed XY groups.

    Configurations are handled in the paper's pre-LUT representation —
    "the samples generated on each GPU are stored as boolean lists" (Fig. 7)
    — so every coupled-state lookup XORs a boolean array and hashes it; the
    LUT level below replaces this with packed integers + binary search.
    """
    from repro.utils.bitstrings import unpack_bits as _unpack

    n = comp.n_qubits
    xy_bits = _unpack(comp.xy_unique, n)          # (G, N) uint8 flip masks
    yz_bits = _unpack(comp.yz_buf, n)             # (K, N) uint8 sign masks
    idxs = comp.idxs
    coeffs = comp.coeffs_buf
    # Boolean-keyed amplitude map (bytes of the uint8 bit array): repack the
    # integer keys into (U, W) uint64 words, then one vectorized unpack —
    # O(U*W) word extractions instead of O(U*N) per-bit Python work.
    bool_dict: dict[bytes, complex] = {}
    if amp_dict:
        items = list(amp_dict.items())
        key_arr = np.array([k for k, _ in items], dtype=object)
        n_words = (n + 63) // 64
        mask64 = (1 << 64) - 1
        packed = np.zeros((len(items), n_words), dtype=np.uint64)
        for w in range(n_words):
            packed[:, w] = ((key_arr >> (64 * w)) & mask64).astype(np.uint64)
        key_bits = _unpack(packed, n)             # (U, N) uint8, vectorized
        for i, (_, la) in enumerate(items):
            bool_dict[key_bits[i].tobytes()] = la
    eloc = np.zeros(batch.n_unique, dtype=np.complex128)
    for s in range(batch.n_unique):
        x_bits = batch.bits[s]
        la_x = bool_dict[x_bits.tobytes()]
        acc = 0.0 + 0.0j
        for g in range(len(xy_bits)):
            xp = np.bitwise_xor(x_bits, xy_bits[g])
            la = bool_dict.get(xp.tobytes())
            if la is None:
                continue  # sample-aware: skip configurations outside S
            coef = 0.0
            for k in range(idxs[g], idxs[g + 1]):
                par = int(np.bitwise_and(x_bits, yz_bits[k]).sum()) & 1
                coef += -coeffs[k] if par else coeffs[k]
            acc += coef * np.exp(la - la_x)
        eloc[s] = acc + comp.constant
    return eloc


# --------------------------------------------------------------------------
# Level 2: SA + FUSE + LUT (packed sorted integer keys + binary search)
# --------------------------------------------------------------------------
def prepare_scalar_views(comp: CompressedHamiltonian, table: AmplitudeTable):
    """Precompute the packed-integer structures of method (5) once.

    Returns ``(xy_ints, yz_ints, id_lut, wf_lut)``: Python-int mask views and
    the sorted integer key list (id_lut) aligned with the amplitude records
    (wf_lut) — the data layout of Algorithm 2.
    """
    xy, yz = _int_views(comp)
    # One vectorized shift-or pass over the key words (was a per-entry loop).
    id_lut = keys_to_ints(table.keys)
    return xy, yz, id_lut, table.log_amps


def local_energy_sa_fuse_lut(
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    table: AmplitudeTable,
    views=None,
) -> np.ndarray:
    """Method (5) added: packed u64 keys, ``bisect`` = Algorithm 2's binary_find."""
    xy, yz, id_lut, wf_lut = views if views is not None else prepare_scalar_views(comp, table)
    idxs = comp.idxs
    coeffs = comp.coeffs_buf
    keys = pack_bits(batch.bits)
    n_words = keys.shape[1]
    eloc = np.zeros(batch.n_unique, dtype=np.complex128)
    n_entries = len(id_lut)
    for s in range(batch.n_unique):
        x = 0
        for w in range(n_words):
            x |= int(keys[s, w]) << (64 * w)
        pos = bisect_left(id_lut, x)
        la_x = wf_lut[pos]
        acc = 0.0 + 0.0j
        for g in range(len(xy)):
            xp = x ^ xy[g]
            pos = bisect_left(id_lut, xp)
            if pos >= n_entries or id_lut[pos] != xp:
                continue
            coef = 0.0
            for k in range(idxs[g], idxs[g + 1]):
                coef += coeffs[k] if bin(x & yz[k]).count("1") % 2 == 0 else -coeffs[k]
            acc += coef * np.exp(wf_lut[pos] - la_x)
        eloc[s] = acc + comp.constant
    return eloc


# --------------------------------------------------------------------------
# Level 3: the batch-vectorized kernel (the GPU substitute, Algorithm 2)
# --------------------------------------------------------------------------
def budgeted_sample_chunk(
    n_words: int,
    n_groups: int,
    group_chunk: int,
    sample_chunk: int,
    memory_budget_bytes: int | None,
) -> int:
    """Shrink ``sample_chunk`` so one chunk's key materialization fits a budget.

    The kernel's peak transient is the ``(sample_chunk, group_chunk, W)``
    uint64 flip array plus its ``(sample_chunk, group_chunk)`` int64 lookup —
    ``group_chunk * (W + 1) * 8`` bytes per sample row.  Wide Hamiltonians
    (large group counts, Fig. 9's memory story) can exceed a host budget at
    the default chunking; the budget caps the row count instead of failing.
    """
    if memory_budget_bytes is None:
        return sample_chunk
    g = min(group_chunk, n_groups)
    bytes_per_sample = max(g * (n_words + 1) * 8, 1)
    return int(max(1, min(sample_chunk, memory_budget_bytes // bytes_per_sample)))


def local_energy_vectorized(
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    table: AmplitudeTable,
    group_chunk: int = 512,
    sample_chunk: int = 4096,
    memory_budget_bytes: int | None = None,
) -> np.ndarray:
    """Vectorized SA+FUSE+LUT kernel; chunked to bound peak memory.

    The double chunking mirrors the paper's two-level parallelization: the
    outer sample chunks correspond to the per-thread batches of Fig. 7(a),
    the inner group chunks to the Pauli-string loop of Algorithm 2.  With
    ``memory_budget_bytes`` the sample chunk auto-shrinks so the per-chunk
    coupled-key materialization stays under the budget (values are unchanged:
    chunk boundaries never alter the per-sample accumulation order).
    """
    keys_all = pack_bits(batch.bits)
    sample_chunk = budgeted_sample_chunk(
        keys_all.shape[1], comp.n_groups, group_chunk, sample_chunk,
        memory_budget_bytes,
    )
    idx_self = searchsorted_keys(table.keys, keys_all)
    if np.any(idx_self < 0):
        raise ValueError("amplitude table must contain every sample")
    la_self_all = table.log_amps[idx_self]

    eloc = np.full(batch.n_unique, comp.constant, dtype=np.complex128)
    group_sizes = np.diff(comp.idxs).astype(np.int64)

    for s0 in range(0, batch.n_unique, sample_chunk):
        s1 = min(s0 + sample_chunk, batch.n_unique)
        keys = keys_all[s0:s1]
        la_x = la_self_all[s0:s1]
        b = s1 - s0
        acc = np.zeros(b, dtype=np.complex128)
        for g0 in range(0, comp.n_groups, group_chunk):
            g1 = min(g0 + group_chunk, comp.n_groups)
            # Coupled configurations + lookup (cheap: XOR + binary search).
            flips = keys[:, None, :] ^ comp.xy_unique[None, g0:g1, :]
            idx = searchsorted_keys(table.keys, flips.reshape(-1, keys.shape[1]))
            idx = idx.reshape(b, g1 - g0)
            s_hit, g_hit = np.nonzero(idx >= 0)
            if len(s_hit) == 0:
                continue
            # Coefficients only for the (sample, group) pairs actually found —
            # the vectorized counterpart of Algorithm 2's continue-on-missing.
            g_abs = g_hit + g0
            sizes = group_sizes[g_abs]                       # terms per pair
            starts = comp.idxs[g_abs]
            # term index array: concat of [starts_p, starts_p + sizes_p)
            total = int(sizes.sum())
            term_idx = np.repeat(starts, sizes) + (
                np.arange(total) - np.repeat(np.cumsum(sizes) - sizes, sizes)
            )
            pair_of_term = np.repeat(np.arange(len(s_hit)), sizes)
            par = (
                parity64(keys[s_hit][pair_of_term] & comp.yz_buf[term_idx]).sum(axis=1)
                & 1
            )
            signed = comp.coeffs_buf[term_idx] * (1.0 - 2.0 * par)
            coef = np.bincount(pair_of_term, weights=signed, minlength=len(s_hit))
            ratios = np.exp(table.log_amps[idx[s_hit, g_hit]] - la_x[s_hit])
            contrib = coef * ratios
            acc += np.bincount(s_hit, weights=contrib.real, minlength=b) + 1j * np.bincount(
                s_hit, weights=contrib.imag, minlength=b
            )
        eloc[s0:s1] += acc
    return eloc


def local_energy(
    wf: NNQSWavefunction,
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    mode: str = "exact",
    table: AmplitudeTable | None = None,
    group_chunk: int = 512,
    sample_chunk: int = 4096,
    memory_budget_bytes: int | None = None,
) -> tuple[np.ndarray, AmplitudeTable]:
    """High-level entry point used by the VMC driver.

    ``mode='exact'`` extends the amplitude table with all coupled
    configurations (unbiased Eq. 4); ``mode='sample_aware'`` restricts the sum
    to the sampled set S (method (4) of Sec. 3.4 — cheap, slightly biased,
    exact in the limit where S covers the wave function's support).  The
    chunking/budget knobs pass straight to :func:`local_energy_vectorized`
    (exposed through ``VMCConfig`` / the spec's ``parallel`` section).
    """
    if table is None:
        table = build_amplitude_table(wf, batch)
    if mode == "exact":
        table = extend_amplitude_table(wf, comp, batch, table)
    elif mode != "sample_aware":
        raise ValueError(f"unknown local-energy mode {mode!r}")
    eloc = local_energy_vectorized(
        comp, batch, table, group_chunk=group_chunk,
        sample_chunk=sample_chunk, memory_budget_bytes=memory_budget_bytes,
    )
    return eloc, table
