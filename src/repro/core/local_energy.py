"""Local energy evaluation: E_loc(x) = sum_x' H_xx' Psi(x')/Psi(x)  (Eq. 4).

This module reproduces the optimization ladder of Sec. 3.4 / Fig. 10.  Each
rung *adds* one of the paper's methods on top of the previous rung — the
measured speedups are cumulative, not independent:

* ``local_energy_baseline``   — "bare CPU" reference: per-term Python loops
  over the Fig. 6(b) layout, materializing every coupled configuration (one
  record per Pauli string, duplicates included) before looking amplitudes up
  in a Python dict.
* ``local_energy_sa_fuse``    — + methods (2) "compression" and (4) "sample
  aware": compressed XY groups visit each unique coupled configuration of a
  sample once, with fused coefficient accumulation (no materialization) and
  amplitude lookups restricted to the sampled set S; configurations are kept
  in the pre-LUT boolean layout of Fig. 7.
* ``local_energy_sa_fuse_lut``— + method (5) "LUT": configurations packed
  into sorted uint64 keys, amplitudes found with binary search (Algorithm
  2's ``binary_find``), still Python loops over samples and groups.
* ``local_energy_vectorized`` — + method (3) "batch parallelism": the
  batch-parallel kernel.  The paper parallelizes Algorithm 2 over unique
  samples with CUDA threads; our substitution runs the identical arithmetic
  as chunked numpy array operations over the sample batch (documented in
  DESIGN.md).
* ``local_energy_planned``    — + compiled :class:`ElocPlan`: all
  Hamiltonian-static work (group sizes, CSR chunk scaffolds, the packed
  record dtype behind the binary search) is hoisted out of the per-call
  path, coupled keys are deduplicated per chunk with ``xp.unique`` so each
  unique x' hits the LUT binary search once, and per-thread workspaces are
  reused across iterations.  Bit-identical to ``local_energy_vectorized``
  (the dedup changes *where* an index is computed, never its value).

All sample-aware (SA) engines only credit coupled configurations that appear
in the amplitude table (Fig. 7(b)).  For unbiased local energies on small
systems, :func:`extend_amplitude_table` grows the table with *all* coupled
configurations in the physical sector, evaluated through the wave function —
the batch kernels then compute the exact Eq. (4).
"""
from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from dataclasses import dataclass
from inspect import signature

from repro.backend import xp
from repro.backend.dtypes import bool_, complex128, int64, uint64
from repro.core.sampler import SampleBatch
from repro.core.wavefunction import NNQSWavefunction
from repro.hamiltonian.compressed import (
    CompressedHamiltonian,
    ReferenceHamiltonianData,
)
from repro.utils.bitstrings import (
    keys_to_ints,
    lexsort_keys,
    pack_bits,
    parity64,
    popcount64,
    searchsorted_keys,
    unpack_bits,
)

__all__ = [
    "AmplitudeTable",
    "build_amplitude_table",
    "extend_amplitude_table",
    "merge_amplitude_tables",
    "normalize_amplitude_table",
    "local_energy_baseline",
    "local_energy_sa_fuse",
    "local_energy_sa_fuse_lut",
    "local_energy_vectorized",
    "ElocPlan",
    "compile_eloc_plan",
    "local_energy_planned",
    "resolve_batch_kernel",
    "budgeted_sample_chunk",
    "local_energy",
]


@dataclass
class AmplitudeTable:
    """The id_lut / wf_lut pair of Algorithm 2 (sorted keys + log amplitudes)."""

    keys: xp.ndarray       # (U, W) uint64, lexsorted
    log_amps: xp.ndarray   # (U,) complex128 — log Psi of each key

    @property
    def n_entries(self) -> int:
        return len(self.log_amps)

    def to_dict(self) -> dict[int, complex]:
        """Python-dict view (used by the non-LUT engines of Fig. 10).

        Keys are packed with one vectorized shift-or pass per word
        (:func:`~repro.utils.bitstrings.keys_to_ints`) instead of a
        per-entry Python word loop; the mapping is unchanged.
        """
        return dict(zip(keys_to_ints(self.keys), self.log_amps))


def build_amplitude_table(wf: NNQSWavefunction, batch: SampleBatch) -> AmplitudeTable:
    """Tabulate log Psi of the unique samples, lexsorted for binary search."""
    keys = pack_bits(batch.bits)
    log_amps = wf.log_amplitudes(batch.bits)
    order = lexsort_keys(keys)
    return AmplitudeTable(keys=keys[order], log_amps=log_amps[order])


def normalize_amplitude_table(table: AmplitudeTable) -> AmplitudeTable:
    """Restore the lexsorted-unique invariant of an amplitude table.

    Returns ``table`` itself when the invariant already holds (the common
    case — one vectorized monotonicity check, no copies).  Otherwise the
    keys are lexsorted and internal duplicates collapsed, keeping the first
    occurrence in sorted order (all duplicates of a key carry the same
    ``log Psi`` under one parameter vector, so the choice is value-neutral).
    """
    if table.n_entries <= 1:
        return table
    keys = table.keys
    # Vectorized lexicographic prev < cur in the lexsort_keys order (word 0
    # minor, last word major) — structured void dtypes have no ordering
    # ufunc, so the word loop below is the comparison; it must stay
    # consistent with lexsort_keys / searchsorted_keys.
    prev, cur = keys[:-1], keys[1:]
    gt = xp.zeros(len(keys) - 1, dtype=bool_)   # prev > cur so far (majors)
    strictly_less = xp.zeros(len(keys) - 1, dtype=bool_)
    for w in range(keys.shape[1] - 1, -1, -1):
        strictly_less |= (~gt) & (prev[:, w] < cur[:, w])
        gt |= (~strictly_less) & (prev[:, w] > cur[:, w])
    if bool(xp.all(strictly_less)):
        return table
    order = lexsort_keys(keys)
    keys = keys[order]
    amps = table.log_amps[order]
    keep = xp.ones(len(keys), dtype=bool_)
    keep[1:] = xp.any(keys[1:] != keys[:-1], axis=1)
    return AmplitudeTable(keys=keys[keep], log_amps=amps[keep])


def merge_amplitude_tables(a: AmplitudeTable, b: AmplitudeTable) -> AmplitudeTable:
    """Union of two amplitude tables (both must come from the same parameters).

    Entries of ``a`` win on duplicate keys; the result is lexsorted and
    duplicate-free, ready for binary search.  Inputs that violate the
    sorted-unique invariant (unsorted keys, or ``b`` duplicating keys within
    itself) are normalized first — a silent duplicate-key table would make
    every later binary search nondeterministic about which entry it hits.

    This is the serving-layer primitive: the
    :class:`~repro.serve.WavefunctionService` accumulates one table per model
    version across ``local_energy`` requests, so amplitudes of previously seen
    configurations are never recomputed.
    """
    a = normalize_amplitude_table(a)
    b = normalize_amplitude_table(b)
    if a.n_entries == 0:
        return b
    if b.n_entries == 0:
        return a
    dup = searchsorted_keys(a.keys, b.keys) >= 0
    if xp.all(dup):
        return a
    keys = xp.concatenate([a.keys, b.keys[~dup]], axis=0)
    amps = xp.concatenate([a.log_amps, b.log_amps[~dup]])
    order = lexsort_keys(keys)
    return AmplitudeTable(keys=keys[order], log_amps=amps[order])


# Floor for the budgeted amplitude-evaluation chunk: small enough that the
# forward-pass activations stay modest, large enough that the usual handful
# of missing configurations is still evaluated in one shot (one-shot
# evaluation keeps small budgeted runs bit-identical to unbudgeted ones —
# batch splitting may perturb BLAS reduction order at ~1e-16 otherwise).
_MIN_EVAL_CHUNK = 1024


def extend_amplitude_table(
    wf: NNQSWavefunction,
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    table: AmplitudeTable,
    max_extra: int = 2_000_000,
    memory_budget_bytes: int | None = None,
) -> AmplitudeTable:
    """Add every sector-valid coupled configuration to the amplitude table.

    With the extended table the SA kernels compute the *exact* local energy
    (the sum over x' in Eq. 4 runs over all coupled configurations).

    With ``memory_budget_bytes`` both peak transients are chunked so exact
    mode cannot OOM before the ``max_extra`` guard fires: the ``(B, G, W)``
    coupled-key materialization is processed in sample-row chunks sized by
    :func:`budgeted_sample_chunk` (pure integer set work — the resulting
    missing set is identical for any chunking), and the ``wf.log_amplitudes``
    evaluation of the missing configurations runs in bounded row chunks
    (floored at ``_MIN_EVAL_CHUNK`` rows).
    """
    keys = pack_bits(batch.bits)  # (B, W)
    if len(keys) == 0:
        return table
    n_words = keys.shape[1]
    row_chunk = budgeted_sample_chunk(
        n_words, comp.n_groups, comp.n_groups, len(keys), memory_budget_bytes
    )
    missing_parts = []
    for s0 in range(0, len(keys), row_chunk):
        flips = (
            keys[s0 : s0 + row_chunk, None, :] ^ comp.xy_unique[None, :, :]
        ).reshape(-1, n_words)
        flips = xp.unique(flips, axis=0)
        miss = flips[searchsorted_keys(table.keys, flips) < 0]
        if len(miss):
            missing_parts.append(miss)
    if not missing_parts:
        return table
    missing = xp.concatenate(missing_parts, axis=0)
    if len(missing_parts) > 1:
        missing = xp.unique(missing, axis=0)  # dedup across row chunks
    bits = unpack_bits(missing, comp.n_qubits)
    if wf.constraint is not None:
        bits = bits[wf.constraint.validate_bits(bits)]
    if len(bits) > max_extra:
        raise ValueError(
            f"{len(bits)} coupled configurations exceed max_extra={max_extra}; "
            "use sample-aware mode for this system size"
        )
    if len(bits) == 0:
        return table
    if memory_budget_bytes is None:
        log_amps = wf.log_amplitudes(bits)
    else:
        # Sized from the budget directly (not reusing row_chunk, whose cap is
        # the *sample* count): a generous budget keeps big one-shot forward
        # passes, the floor keeps small missing sets one-shot.
        eval_chunk = max(_MIN_EVAL_CHUNK, budgeted_sample_chunk(
            n_words, comp.n_groups, comp.n_groups, len(bits),
            memory_budget_bytes,
        ))
        log_amps = xp.concatenate([
            wf.log_amplitudes(bits[e0 : e0 + eval_chunk])
            for e0 in range(0, len(bits), eval_chunk)
        ])
    all_keys = xp.concatenate([table.keys, pack_bits(bits)], axis=0)
    all_amps = xp.concatenate([table.log_amps, log_amps])
    order = lexsort_keys(all_keys)
    return AmplitudeTable(keys=all_keys[order], log_amps=all_amps[order])


# --------------------------------------------------------------------------
# Level 0: bare-CPU baseline (Fig. 6(b) layout, term-by-term, dict lookup)
# --------------------------------------------------------------------------
def local_energy_baseline(
    ref: ReferenceHamiltonianData,
    batch: SampleBatch,
    amp_dict: dict[int, complex],
) -> xp.ndarray:
    """The "bare CPU" level of Fig. 10: per-term Python loops, no SA/FUSE/LUT."""
    n_words = ref.xy.shape[1]
    # Per-term integer masks and Y phases (independent of the samples).
    a_masks, b_masks, phases = [], [], []
    for k in range(ref.n_terms):
        a = b = 0
        for w in range(n_words):
            a |= int(ref.xy[k, w]) << (64 * w)
            b |= int(ref.yz[k, w]) << (64 * w)
        a_masks.append(a)
        b_masks.append(b)
        phases.append((-1.0) ** (ref.y_occ[k] // 2))
    eloc = xp.zeros(batch.n_unique, dtype=complex128)
    keys = pack_bits(batch.bits)
    for s in range(batch.n_unique):
        x = 0
        for w in range(n_words):
            x |= int(keys[s, w]) << (64 * w)
        la_x = amp_dict[x]
        # No FUSE: materialize every coupled configuration with its
        # coefficient (one record per Pauli string — duplicates included,
        # the O(N_h) memory footprint Sec. 3.4 method (2) eliminates).
        coupled: list[tuple[int, float]] = []
        for k in range(ref.n_terms):
            x2 = x ^ a_masks[k]
            sign = -1.0 if bin(b_masks[k] & x).count("1") % 2 else 1.0
            coupled.append((x2, ref.coeffs[k] * phases[k] * sign))
        # No SA dedup: every record triggers its own amplitude lookup (the
        # compressed structure would visit each unique x' exactly once).
        acc = 0.0 + 0.0j
        for x2, coef in coupled:
            la = amp_dict.get(x2)
            if la is not None:
                acc += coef * xp.exp(la - la_x)
        eloc[s] = acc + ref.constant
    return eloc


# --------------------------------------------------------------------------
# Level 1: SA + FUSE (compressed groups, fused accumulation, boolean storage)
# --------------------------------------------------------------------------
def _int_views(comp: CompressedHamiltonian):
    """Python-int views of the compressed masks (for the scalar engines)."""
    return keys_to_ints(comp.xy_unique), keys_to_ints(comp.yz_buf)


def local_energy_sa_fuse(
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    amp_dict: dict[int, complex],
) -> xp.ndarray:
    """Methods (2)+(4): fused accumulation over compressed XY groups.

    Configurations are handled in the paper's pre-LUT representation —
    "the samples generated on each GPU are stored as boolean lists" (Fig. 7)
    — so every coupled-state lookup XORs a boolean array and hashes it; the
    LUT level below replaces this with packed integers + binary search.
    """
    from repro.utils.bitstrings import unpack_bits as _unpack

    n = comp.n_qubits
    xy_bits = _unpack(comp.xy_unique, n)          # (G, N) uint8 flip masks
    yz_bits = _unpack(comp.yz_buf, n)             # (K, N) uint8 sign masks
    idxs = comp.idxs
    coeffs = comp.coeffs_buf
    # Boolean-keyed amplitude map (bytes of the uint8 bit array): repack the
    # integer keys into (U, W) uint64 words, then one vectorized unpack —
    # O(U*W) word extractions instead of O(U*N) per-bit Python work.
    bool_dict: dict[bytes, complex] = {}
    if amp_dict:
        items = list(amp_dict.items())
        key_arr = xp.array([k for k, _ in items], dtype=object)
        n_words = (n + 63) // 64
        mask64 = (1 << 64) - 1
        packed = xp.zeros((len(items), n_words), dtype=uint64)
        for w in range(n_words):
            packed[:, w] = ((key_arr >> (64 * w)) & mask64).astype(uint64)
        key_bits = _unpack(packed, n)             # (U, N) uint8, vectorized
        for i, (_, la) in enumerate(items):
            bool_dict[key_bits[i].tobytes()] = la
    eloc = xp.zeros(batch.n_unique, dtype=complex128)
    for s in range(batch.n_unique):
        x_bits = batch.bits[s]
        la_x = bool_dict[x_bits.tobytes()]
        acc = 0.0 + 0.0j
        for g in range(len(xy_bits)):
            x2 = xp.bitwise_xor(x_bits, xy_bits[g])
            la = bool_dict.get(x2.tobytes())
            if la is None:
                continue  # sample-aware: skip configurations outside S
            coef = 0.0
            for k in range(idxs[g], idxs[g + 1]):
                par = int(xp.bitwise_and(x_bits, yz_bits[k]).sum()) & 1
                coef += -coeffs[k] if par else coeffs[k]
            acc += coef * xp.exp(la - la_x)
        eloc[s] = acc + comp.constant
    return eloc


# --------------------------------------------------------------------------
# Level 2: SA + FUSE + LUT (packed sorted integer keys + binary search)
# --------------------------------------------------------------------------
def prepare_scalar_views(comp: CompressedHamiltonian, table: AmplitudeTable):
    """Precompute the packed-integer structures of method (5) once.

    Returns ``(xy_ints, yz_ints, id_lut, wf_lut)``: Python-int mask views and
    the sorted integer key list (id_lut) aligned with the amplitude records
    (wf_lut) — the data layout of Algorithm 2.
    """
    xy, yz = _int_views(comp)
    # One vectorized shift-or pass over the key words (was a per-entry loop).
    id_lut = keys_to_ints(table.keys)
    return xy, yz, id_lut, table.log_amps


def local_energy_sa_fuse_lut(
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    table: AmplitudeTable,
    views=None,
) -> xp.ndarray:
    """Method (5) added: packed u64 keys, ``bisect`` = Algorithm 2's binary_find."""
    xy, yz, id_lut, wf_lut = views if views is not None else prepare_scalar_views(comp, table)
    idxs = comp.idxs
    coeffs = comp.coeffs_buf
    keys = pack_bits(batch.bits)
    n_words = keys.shape[1]
    eloc = xp.zeros(batch.n_unique, dtype=complex128)
    n_entries = len(id_lut)
    for s in range(batch.n_unique):
        x = 0
        for w in range(n_words):
            x |= int(keys[s, w]) << (64 * w)
        pos = bisect_left(id_lut, x)
        la_x = wf_lut[pos]
        acc = 0.0 + 0.0j
        for g in range(len(xy)):
            x2 = x ^ xy[g]
            pos = bisect_left(id_lut, x2)
            if pos >= n_entries or id_lut[pos] != x2:
                continue
            coef = 0.0
            for k in range(idxs[g], idxs[g + 1]):
                coef += coeffs[k] if bin(x & yz[k]).count("1") % 2 == 0 else -coeffs[k]
            acc += coef * xp.exp(wf_lut[pos] - la_x)
        eloc[s] = acc + comp.constant
    return eloc


# --------------------------------------------------------------------------
# Level 3: the batch-vectorized kernel (the GPU substitute, Algorithm 2)
# --------------------------------------------------------------------------
def budgeted_sample_chunk(
    n_words: int,
    n_groups: int,
    group_chunk: int,
    sample_chunk: int,
    memory_budget_bytes: int | None,
) -> int:
    """Shrink ``sample_chunk`` so one chunk's key materialization fits a budget.

    The kernel's peak transient is the ``(sample_chunk, group_chunk, W)``
    uint64 flip array plus its ``(sample_chunk, group_chunk)`` int64 lookup —
    ``group_chunk * (W + 1) * 8`` bytes per sample row.  Wide Hamiltonians
    (large group counts, Fig. 9's memory story) can exceed a host budget at
    the default chunking; the budget caps the row count instead of failing.
    """
    if memory_budget_bytes is None:
        return sample_chunk
    g = min(group_chunk, n_groups)
    bytes_per_sample = max(g * (n_words + 1) * 8, 1)
    return int(max(1, min(sample_chunk, memory_budget_bytes // bytes_per_sample)))


def local_energy_vectorized(
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    table: AmplitudeTable,
    group_chunk: int = 512,
    sample_chunk: int = 4096,
    memory_budget_bytes: int | None = None,
) -> xp.ndarray:
    """Vectorized SA+FUSE+LUT kernel; chunked to bound peak memory.

    The double chunking mirrors the paper's two-level parallelization: the
    outer sample chunks correspond to the per-thread batches of Fig. 7(a),
    the inner group chunks to the Pauli-string loop of Algorithm 2.  With
    ``memory_budget_bytes`` the sample chunk auto-shrinks so the per-chunk
    coupled-key materialization stays under the budget (values are unchanged:
    chunk boundaries never alter the per-sample accumulation order).
    """
    keys_all = pack_bits(batch.bits)
    sample_chunk = budgeted_sample_chunk(
        keys_all.shape[1], comp.n_groups, group_chunk, sample_chunk,
        memory_budget_bytes,
    )
    idx_self = searchsorted_keys(table.keys, keys_all)
    if xp.any(idx_self < 0):
        raise ValueError("amplitude table must contain every sample")
    la_self_all = table.log_amps[idx_self]

    eloc = xp.full(batch.n_unique, comp.constant, dtype=complex128)
    group_sizes = xp.diff(comp.idxs).astype(int64)

    for s0 in range(0, batch.n_unique, sample_chunk):
        s1 = min(s0 + sample_chunk, batch.n_unique)
        keys = keys_all[s0:s1]
        la_x = la_self_all[s0:s1]
        b = s1 - s0
        acc = xp.zeros(b, dtype=complex128)
        for g0 in range(0, comp.n_groups, group_chunk):
            g1 = min(g0 + group_chunk, comp.n_groups)
            # Coupled configurations + lookup (cheap: XOR + binary search).
            flips = keys[:, None, :] ^ comp.xy_unique[None, g0:g1, :]
            idx = searchsorted_keys(table.keys, flips.reshape(-1, keys.shape[1]))
            idx = idx.reshape(b, g1 - g0)
            s_hit, g_hit = xp.nonzero(idx >= 0)
            if len(s_hit) == 0:
                continue
            # Coefficients only for the (sample, group) pairs actually found —
            # the vectorized counterpart of Algorithm 2's continue-on-missing.
            g_abs = g_hit + g0
            sizes = group_sizes[g_abs]                       # terms per pair
            starts = comp.idxs[g_abs]
            # term index array: concat of [starts_p, starts_p + sizes_p)
            total = int(sizes.sum())
            term_idx = xp.repeat(starts, sizes) + (
                xp.arange(total) - xp.repeat(xp.cumsum(sizes) - sizes, sizes)
            )
            pair_of_term = xp.repeat(xp.arange(len(s_hit)), sizes)
            par = (
                parity64(keys[s_hit][pair_of_term] & comp.yz_buf[term_idx]).sum(axis=1)
                & 1
            )
            signed = comp.coeffs_buf[term_idx] * (1.0 - 2.0 * par)
            coef = xp.bincount(pair_of_term, weights=signed, minlength=len(s_hit))
            ratios = xp.exp(table.log_amps[idx[s_hit, g_hit]] - la_x[s_hit])
            contrib = coef * ratios
            acc += xp.bincount(s_hit, weights=contrib.real, minlength=b) + 1j * xp.bincount(
                s_hit, weights=contrib.imag, minlength=b
            )
        eloc[s0:s1] += acc
    return eloc


# --------------------------------------------------------------------------
# Level 4: compiled plans — Hamiltonian-static precomputation + key dedup
# --------------------------------------------------------------------------
@dataclass
class _GroupChunkScaffold:
    """Hamiltonian-static data of one ``[g0, g1)`` group chunk.

    Everything here is a function of the :class:`CompressedHamiltonian` and
    the plan's ``group_chunk`` alone — computed once at compile time instead
    of being re-derived (or re-sliced from the CSR arrays) on every kernel
    call.
    """

    g0: int
    g1: int
    xy: xp.ndarray       # (gc, W) uint64, contiguous copy of the flip masks
    starts: xp.ndarray   # (gc,) int64 — comp.idxs[g0:g1]
    sizes: xp.ndarray    # (gc,) int64 — terms per group


class ElocPlan:
    """A compiled local-energy plan: one per ``(CompressedHamiltonian,
    chunking config)``, reused across every kernel call of a run.

    The plan hoists all Hamiltonian-static work out of the per-iteration
    path (the "compile once, evaluate many" shape of ipie's propagator
    pre-build):

    * group sizes and per-group-chunk CSR scaffolds (``starts`` / ``sizes``
      and contiguous flip-mask slices);
    * the packed record dtype behind :func:`searchsorted_keys`, plus a
      cached record view of the current amplitude table (rebuilt only when
      the table object changes — i.e. when the parameters moved);
    * a per-thread workspace (the ``(sample_chunk, group_chunk, W)`` flip
      buffer) reused across iterations instead of reallocated per chunk.

    :meth:`local_energy` is the planned kernel: identical arithmetic to
    :func:`local_energy_vectorized` except that the coupled keys of each
    chunk are deduplicated with ``xp.unique(..., return_inverse=True)``
    before the LUT binary search, so each unique x' is looked up once per
    chunk (sampled batches are concentrated, so flip rows repeat heavily
    across samples).  Results are bit-identical: dedup changes where an
    index comes from, never its value, and the accumulation order is
    unchanged.

    Thread safety: the compiled scaffolds are immutable; the workspace and
    the table-record cache live in ``threading.local``, so thread-rank
    backends can share one plan.  Plans hold no model state — they are
    invalidated only by a different Hamiltonian or chunking config, never by
    a parameter update (the amplitude table carries all parameter-dependent
    data).
    """

    def __init__(self, comp: CompressedHamiltonian, group_chunk: int = 512,
                 sample_chunk: int = 4096,
                 memory_budget_bytes: int | None = None):
        if not isinstance(group_chunk, int) or group_chunk <= 0:
            raise ValueError(f"group_chunk must be a positive int, got {group_chunk!r}")
        if not isinstance(sample_chunk, int) or sample_chunk <= 0:
            raise ValueError(f"sample_chunk must be a positive int, got {sample_chunk!r}")
        self.comp = comp
        self.group_chunk = group_chunk
        self.sample_chunk = sample_chunk
        self.memory_budget_bytes = memory_budget_bytes
        self.n_words = (comp.n_qubits + 63) // 64
        self.group_sizes = xp.diff(comp.idxs).astype(int64)
        self.chunks: list[_GroupChunkScaffold] = []
        for g0 in range(0, comp.n_groups, group_chunk):
            g1 = min(g0 + group_chunk, comp.n_groups)
            self.chunks.append(_GroupChunkScaffold(
                g0=g0, g1=g1,
                xy=xp.ascontiguousarray(comp.xy_unique[g0:g1]),
                starts=xp.ascontiguousarray(comp.idxs[g0:g1]).astype(int64),
                sizes=xp.ascontiguousarray(self.group_sizes[g0:g1]),
            ))
        # The searchsorted_keys record dtype, compiled once (multi-word keys
        # compare with the *last* word most significant — see lexsort_keys).
        self._record_dtype = (
            None if self.n_words == 1
            else xp.dtype([(f"w{i}", uint64) for i in range(self.n_words)])
        )
        self._local = threading.local()

    # ------------------------------------------------------------ record keys
    def _as_records(self, keys: xp.ndarray) -> xp.ndarray:
        """``(M, W)`` uint64 rows -> ``(M,)`` scalar/record keys (LUT order)."""
        if self.n_words == 1:
            return xp.ascontiguousarray(keys[:, 0])
        return xp.ascontiguousarray(keys[:, ::-1]).view(self._record_dtype).ravel()

    def _table_records(self, table: AmplitudeTable) -> xp.ndarray:
        """Record view of ``table.keys``, cached until the table changes.

        Keyed by object identity through a weakref: a new table object (new
        iteration, moved parameters) recomputes; per-thread storage keeps
        thread-rank backends race-free on a shared plan.
        """
        cached = getattr(self._local, "table_cache", None)
        if cached is not None and cached[0]() is table:
            return cached[1]
        records = self._as_records(table.keys)
        self._local.table_cache = (weakref.ref(table), records)
        return records

    def _flip_buffer(self, rows: int, groups: int) -> xp.ndarray:
        """A ``(rows, groups, W)`` view of the per-thread XOR workspace."""
        need = rows * groups * self.n_words
        buf = getattr(self._local, "flip_buf", None)
        if buf is None or buf.size < need:
            buf = xp.empty(need, dtype=uint64)
            self._local.flip_buf = buf
        return buf[:need].reshape(rows, groups, self.n_words)

    # -------------------------------------------------------------- lookups
    def _lookup(self, table: AmplitudeTable, keys: xp.ndarray) -> xp.ndarray:
        """Plain binary search of ``(M, W)`` keys (same contract as
        :func:`searchsorted_keys`, against the cached record view)."""
        base = self._table_records(table)
        if len(base) == 0:
            return xp.full(len(keys), -1, dtype=int64)
        rec = self._as_records(keys)
        pos = xp.minimum(xp.searchsorted(base, rec), len(base) - 1)
        return xp.where(base[pos] == rec, pos, -1).astype(int64, copy=False)

    # Below this LUT size the dedup sort costs more than it saves: the
    # binary search into an L1-resident table is already ~free, so the
    # O(M log M) ``xp.unique`` would dominate.  Index-identical either way.
    DEDUP_MIN_TABLE = 4096

    def _lookup_dedup(self, table: AmplitudeTable, keys: xp.ndarray) -> xp.ndarray:
        """Binary search with coupled-key dedup: unique rows are searched
        once, then scattered back through the inverse map.  Index-identical
        to :meth:`_lookup` (and to :func:`searchsorted_keys`).

        Dedup engages once the LUT outgrows ``DEDUP_MIN_TABLE`` entries —
        the regime where each binary search walks a cache-unfriendly table
        and flip rows repeat heavily across samples (concentrated batches);
        tiny tables fall through to the direct search.
        """
        base = self._table_records(table)
        if len(base) == 0:
            return xp.full(len(keys), -1, dtype=int64)
        if len(base) < self.DEDUP_MIN_TABLE:
            return self._lookup(table, keys)
        rec = self._as_records(keys)
        uniq, inverse = xp.unique(rec, return_inverse=True)
        pos = xp.minimum(xp.searchsorted(base, uniq), len(base) - 1)
        idx_u = xp.where(base[pos] == uniq, pos, -1).astype(int64, copy=False)
        return idx_u[inverse.ravel()]

    @staticmethod
    def _fold_parity(a: xp.ndarray, b: xp.ndarray) -> xp.ndarray:
        """Rowwise ``popcount(a & b) mod 2`` for ``(T, W)`` uint64 rows.

        parity of a multi-word AND = parity of the XOR of its words, folded
        with the standard shift-XOR cascade — a handful of vectorized uint64
        ops instead of per-byte popcount table gathers.  Integer-identical
        to ``parity64(a & b).sum(axis=1) & 1``.
        """
        x = a[:, 0] & b[:, 0]
        for w in range(1, a.shape[1]):
            x = x ^ (a[:, w] & b[:, w])
        for s in (32, 16, 8, 4, 2, 1):
            x = x ^ (x >> uint64(s))
        return (x & uint64(1)).astype(int64)

    # --------------------------------------------------------------- kernel
    def local_energy(self, batch: SampleBatch, table: AmplitudeTable) -> xp.ndarray:
        """The planned kernel — bit-identical to ``local_energy_vectorized``."""
        comp = self.comp
        keys_all = pack_bits(batch.bits)
        if keys_all.shape[1] != self.n_words:
            raise ValueError(
                f"batch packs to {keys_all.shape[1]} words, plan was compiled "
                f"for {self.n_words} (different qubit count?)"
            )
        sample_chunk = budgeted_sample_chunk(
            self.n_words, comp.n_groups, self.group_chunk, self.sample_chunk,
            self.memory_budget_bytes,
        )
        idx_self = self._lookup(table, keys_all)
        if xp.any(idx_self < 0):
            raise ValueError("amplitude table must contain every sample")
        la_self_all = table.log_amps[idx_self]

        eloc = xp.full(batch.n_unique, comp.constant, dtype=complex128)
        for s0 in range(0, batch.n_unique, sample_chunk):
            s1 = min(s0 + sample_chunk, batch.n_unique)
            keys = keys_all[s0:s1]
            la_x = la_self_all[s0:s1]
            b = s1 - s0
            acc = xp.zeros(b, dtype=complex128)
            for cp in self.chunks:
                gc = cp.g1 - cp.g0
                flips = self._flip_buffer(b, gc)
                xp.bitwise_xor(keys[:, None, :], cp.xy[None, :, :], out=flips)
                idx = self._lookup_dedup(
                    table, flips.reshape(-1, self.n_words)
                ).reshape(b, gc)
                s_hit, g_hit = xp.nonzero(idx >= 0)
                if len(s_hit) == 0:
                    continue
                sizes = cp.sizes[g_hit]                          # terms per pair
                starts = cp.starts[g_hit]
                total = int(sizes.sum())
                term_idx = xp.repeat(starts, sizes) + (
                    xp.arange(total) - xp.repeat(xp.cumsum(sizes) - sizes, sizes)
                )
                pair_of_term = xp.repeat(xp.arange(len(s_hit)), sizes)
                par = self._fold_parity(
                    keys[s_hit[pair_of_term]], comp.yz_buf[term_idx]
                )
                signed = comp.coeffs_buf[term_idx] * (1.0 - 2.0 * par)
                coef = xp.bincount(pair_of_term, weights=signed, minlength=len(s_hit))
                ratios = xp.exp(table.log_amps[idx[s_hit, g_hit]] - la_x[s_hit])
                contrib = coef * ratios
                acc += xp.bincount(s_hit, weights=contrib.real, minlength=b) + 1j * xp.bincount(
                    s_hit, weights=contrib.imag, minlength=b
                )
            eloc[s0:s1] += acc
        return eloc


def compile_eloc_plan(comp: CompressedHamiltonian, group_chunk: int = 512,
                      sample_chunk: int = 4096,
                      memory_budget_bytes: int | None = None) -> ElocPlan:
    """Compile an :class:`ElocPlan` (the canonical constructor spelling)."""
    return ElocPlan(comp, group_chunk=group_chunk, sample_chunk=sample_chunk,
                    memory_budget_bytes=memory_budget_bytes)


def local_energy_planned(
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    table: AmplitudeTable,
    group_chunk: int = 512,
    sample_chunk: int = 4096,
    memory_budget_bytes: int | None = None,
    plan: ElocPlan | None = None,
) -> xp.ndarray:
    """Plan+dedup kernel with the shared batch-kernel signature.

    With ``plan=None`` a throwaway plan is compiled from the chunking knobs
    (correct, but the point of plans is reuse — drivers compile one per run).
    An explicit ``plan`` carries its own chunking; the knob arguments are
    ignored in that case.
    """
    if plan is None:
        plan = ElocPlan(comp, group_chunk=group_chunk, sample_chunk=sample_chunk,
                        memory_budget_bytes=memory_budget_bytes)
    elif plan.comp is not comp:
        raise ValueError(
            "ElocPlan was compiled for a different CompressedHamiltonian; "
            "compile one plan per Hamiltonian"
        )
    return plan.local_energy(batch, table)


def _vectorized_batch_kernel(
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    table: AmplitudeTable,
    group_chunk: int = 512,
    sample_chunk: int = 4096,
    memory_budget_bytes: int | None = None,
    plan: ElocPlan | None = None,
) -> xp.ndarray:
    """``local_energy_vectorized`` behind the shared batch-kernel signature
    (the unplanned kernel accepts and ignores ``plan``)."""
    del plan
    return local_energy_vectorized(
        comp, batch, table, group_chunk=group_chunk,
        sample_chunk=sample_chunk, memory_budget_bytes=memory_budget_bytes,
    )


# Built-in batch kernels under the shared signature
#   kernel(comp, batch, table, *, group_chunk, sample_chunk,
#          memory_budget_bytes, plan) -> (U,) complex128
# — the contract the execution engine drives by name.  The api registry
# re-exports these under the same names (plus the scalar Fig. 10 rungs,
# which keep their native signatures and are *not* engine-drivable).
BATCH_ELOC_KERNELS = {
    "vectorized": _vectorized_batch_kernel,
    "planned": local_energy_planned,
}


def _accepts_batch_signature(kernel) -> bool:
    """Whether ``kernel`` can be driven with the shared batch-kernel call."""
    try:
        signature(kernel).bind(
            None, None, None, group_chunk=1, sample_chunk=1,
            memory_budget_bytes=None, plan=None,
        )
    except TypeError:
        return False
    return True


def resolve_batch_kernel(name: str):
    """Resolve a batch-kernel name, preferring the api eloc_kernel registry.

    The registry (``repro.api.registry.ELOC_KERNELS``) is consulted first so
    user-registered kernels and spec-driven runs share one namespace; the
    core :data:`BATCH_ELOC_KERNELS` map is the fallback when ``repro.api``
    is unavailable.  Unknown names raise ``KeyError`` with the registered
    options listed; registered names whose callable does not take the batch
    signature (the scalar Fig. 10 rungs, the high-level ``exact`` /
    ``sample_aware`` wrappers) raise ``TypeError`` up front instead of
    failing opaquely mid-run.
    """
    try:
        import repro.api.builtins  # noqa: F401 — ensure built-ins registered
        from repro.api.registry import ELOC_KERNELS

        kernel = ELOC_KERNELS.get(name)
    except ImportError:  # pragma: no cover - api layer stripped
        try:
            kernel = BATCH_ELOC_KERNELS[name]
        except KeyError:
            raise KeyError(
                f"unknown eloc kernel {name!r}; built-in batch kernels: "
                f"{sorted(BATCH_ELOC_KERNELS)}"
            ) from None
    if not _accepts_batch_signature(kernel):
        raise TypeError(
            f"eloc kernel {name!r} does not take the batch-kernel signature "
            "(comp, batch, table, *, group_chunk, sample_chunk, "
            "memory_budget_bytes, plan) and cannot drive the staged "
            f"iteration; engine-drivable built-ins: {sorted(BATCH_ELOC_KERNELS)}"
        )
    return kernel


def local_energy(
    wf: NNQSWavefunction,
    comp: CompressedHamiltonian,
    batch: SampleBatch,
    mode: str = "exact",
    table: AmplitudeTable | None = None,
    group_chunk: int = 512,
    sample_chunk: int = 4096,
    memory_budget_bytes: int | None = None,
    kernel: str = "vectorized",
    plan: ElocPlan | None = None,
) -> tuple[xp.ndarray, AmplitudeTable]:
    """High-level entry point used by the VMC driver.

    ``mode='exact'`` extends the amplitude table with all coupled
    configurations (unbiased Eq. 4); ``mode='sample_aware'`` restricts the sum
    to the sampled set S (method (4) of Sec. 3.4 — cheap, slightly biased,
    exact in the limit where S covers the wave function's support).  The
    chunking/budget knobs pass straight to the batch kernel (exposed through
    ``VMCConfig`` / the spec's ``parallel`` section).

    ``kernel`` names a batch kernel (resolved through the api eloc_kernel
    registry — ``'vectorized'`` or ``'planned'`` built in); passing an
    explicit compiled ``plan`` implies the planned kernel.  Both kernels are
    bit-identical in values.
    """
    if table is None:
        table = build_amplitude_table(wf, batch)
    if mode == "exact":
        table = extend_amplitude_table(
            wf, comp, batch, table, memory_budget_bytes=memory_budget_bytes
        )
    elif mode != "sample_aware":
        raise ValueError(f"unknown local-energy mode {mode!r}")
    if plan is not None:
        kernel = "planned"
    kernel_fn = resolve_batch_kernel(kernel)
    eloc = kernel_fn(
        comp, batch, table, group_chunk=group_chunk,
        sample_chunk=sample_chunk, memory_budget_bytes=memory_budget_bytes,
        plan=plan,
    )
    return eloc, table
