"""High-level training orchestration — the paper's Sec. 4.1 protocol.

The paper trains in two phases: a pre-training stage with a small sample
budget (N_s = 1e5 for the first ~100 iterations) followed by a growing
budget (up to 1e12) "for accurate calculation", assessed by convergence
precision.  :class:`Trainer` packages that protocol around the serial
:class:`~repro.core.vmc.VMC` driver:

* optional supervised warm start on the HF determinant;
* the growing N_s schedule (``default_ns_schedule``);
* periodic checkpointing (resumable runs);
* plateau-based early stopping (``repro.core.diagnostics.detect_plateau``);
* a machine-readable run log (JSON lines: iteration, energy, variance, N_u);
* a final :class:`TrainReport` with the trailing-window energy, the
  zero-variance extrapolation and, when references are supplied, the error
  against FCI and the recovered correlation fraction.
"""
from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.engine import ExecutionBackend, stats_record
from repro.core.diagnostics import (
    correlation_energy_fraction,
    detect_plateau,
    v_score,
    zero_variance_extrapolation,
)
from repro.core.pretrain import pretrain_to_reference
from repro.core.vmc import (
    ELOC_MODES,
    VMC,
    VMCConfig,
    VMCStats,
    best_energy,
    default_ns_schedule,
)
from repro.core.wavefunction import NNQSWavefunction
from repro.hamiltonian.compressed import CompressedHamiltonian
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian

__all__ = ["TrainConfig", "TrainReport", "Trainer", "build_report"]


@dataclass
class TrainConfig:
    max_iterations: int = 1000
    pretrain_steps: int = 200          # 0 disables the warm start
    pretrain_target: float = 0.5
    ns_pretrain: int = 10**5           # Sec. 4.1: small N_s early
    ns_max: int = 10**12               # ... growing toward 1e12
    ns_growth: float = 1.3
    pretrain_iters: int = 100          # iterations before N_s starts growing
    eloc_mode: str = "exact"
    warmup: int = 4000
    lr_scale: float = 1.0
    weight_decay: float = 0.01
    grad_clip: float | None = 1.0
    seed: int = 0
    # Pluggable sampler fn(wf, n_samples, rng) -> SampleBatch; None keeps the
    # default batch autoregressive sweep (see repro.api sampler registry).
    sampler: Callable | None = None
    # Execution backend (repro.core.engine): None keeps the serial backend;
    # a ThreadBackend/ProcessBackend runs the same staged iteration over
    # N_p ranks with checkpoint/metrics/resume handled here as usual.
    backend: ExecutionBackend | None = None
    # Array backend (repro.backend) the staged iteration allocates on: a
    # registered name ('numpy', 'mock', 'torch', 'cupy'), an ArrayBackend
    # instance, or None for the numpy default.
    array_backend: object | None = None
    # Local-energy kernel chunking (see VMCConfig / ParallelSpec).
    group_chunk: int = 512
    sample_chunk: int = 4096
    eloc_memory_budget_mb: float | None = None
    # Batch-kernel choice by eloc_kernel-registry name (see VMCConfig).
    eloc_kernel: str = "planned"
    # stopping + logging
    plateau_window: int = 100
    plateau_rel_tol: float = 1e-7
    early_stop: bool = True
    checkpoint_every: int = 0          # 0 disables
    checkpoint_path: str | Path | None = None
    log_path: str | Path | None = None
    log_every: int = 0                 # console prints

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError(
                "TrainConfig.max_iterations must be positive, "
                f"got {self.max_iterations!r}"
            )
        if self.pretrain_steps < 0:
            raise ValueError(
                "TrainConfig.pretrain_steps must be >= 0, "
                f"got {self.pretrain_steps!r}"
            )
        if self.ns_pretrain <= 0:
            raise ValueError(
                f"TrainConfig.ns_pretrain must be positive, got {self.ns_pretrain!r}"
            )
        if self.ns_max <= 0:
            raise ValueError(
                f"TrainConfig.ns_max must be positive, got {self.ns_max!r}"
            )
        if self.ns_growth <= 0:
            raise ValueError(
                f"TrainConfig.ns_growth must be positive, got {self.ns_growth!r}"
            )
        if self.pretrain_iters < 0:
            raise ValueError(
                "TrainConfig.pretrain_iters must be >= 0, "
                f"got {self.pretrain_iters!r}"
            )
        if self.eloc_mode not in ELOC_MODES:
            raise ValueError(
                f"TrainConfig.eloc_mode must be one of {ELOC_MODES}, "
                f"got {self.eloc_mode!r}"
            )
        if self.warmup <= 0:
            raise ValueError(
                f"TrainConfig.warmup must be positive, got {self.warmup!r}"
            )
        if self.plateau_window <= 0:
            raise ValueError(
                "TrainConfig.plateau_window must be positive, "
                f"got {self.plateau_window!r}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                "TrainConfig.checkpoint_every must be >= 0, "
                f"got {self.checkpoint_every!r}"
            )
        if not isinstance(self.group_chunk, int) or self.group_chunk <= 0:
            raise ValueError(
                f"TrainConfig.group_chunk must be a positive int, "
                f"got {self.group_chunk!r}"
            )
        if not isinstance(self.sample_chunk, int) or self.sample_chunk <= 0:
            raise ValueError(
                f"TrainConfig.sample_chunk must be a positive int, "
                f"got {self.sample_chunk!r}"
            )
        if self.eloc_memory_budget_mb is not None and self.eloc_memory_budget_mb <= 0:
            raise ValueError(
                "TrainConfig.eloc_memory_budget_mb must be None or positive, "
                f"got {self.eloc_memory_budget_mb!r}"
            )
        if not isinstance(self.eloc_kernel, str) or not self.eloc_kernel:
            raise ValueError(
                "TrainConfig.eloc_kernel must name a registered batch kernel, "
                f"got {self.eloc_kernel!r}"
            )


@dataclass
class TrainReport:
    energy: float
    best_energy: float
    iterations: int
    wall_time: float
    stopped_early: bool
    extrapolated_energy: float | None
    v_score: float | None
    error_vs_reference: float | None = None
    correlation_fraction: float | None = None
    # Cumulative communication volume over the run (None when every
    # iteration was serial): logical = natural-width payloads, wire = what
    # the typed/compressed transport actually moved.
    comm_bytes_logical: int | None = None
    comm_bytes_wire: int | None = None

    def to_dict(self) -> dict:
        """JSON-native form — written as ``report.json`` by the run driver."""
        return asdict(self)

    def summary(self) -> str:
        lines = [
            f"iterations        {self.iterations}"
            + ("  (early stop: plateau)" if self.stopped_early else ""),
            f"final energy      {self.energy:+.6f} Ha",
            f"best energy       {self.best_energy:+.6f} Ha",
        ]
        if self.extrapolated_energy is not None:
            lines.append(f"zero-var extrap.  {self.extrapolated_energy:+.6f} Ha")
        if self.error_vs_reference is not None:
            lines.append(f"|E - E_ref|       {abs(self.error_vs_reference):.2e} Ha")
        if self.correlation_fraction is not None:
            lines.append(f"corr. recovered   {100 * self.correlation_fraction:.1f}%")
        if self.comm_bytes_logical is not None:
            lines.append(
                f"comm volume       {self.comm_bytes_logical / 2**20:.1f} MB "
                f"logical / {(self.comm_bytes_wire or 0) / 2**20:.1f} MB wire"
            )
        lines.append(f"wall time         {self.wall_time:.1f} s")
        return "\n".join(lines)


def build_report(
    history: list[VMCStats],
    n_qubits: int,
    wall_time: float,
    stopped_early: bool,
    e_hf: float | None = None,
    e_reference: float | None = None,
    best_window: int = 20,
) -> TrainReport:
    """Distill a stats history into a :class:`TrainReport`.

    Shared by :class:`Trainer` and the ``repro.api`` run driver (whose
    SR/step-protocol loop has no :class:`~repro.core.vmc.VMC` instance), so
    every training path reports through identical estimators: the
    variance-weighted trailing-window best energy, the zero-variance
    extrapolation, and the reference-energy comparisons.
    """
    if not history:
        raise RuntimeError("training has not produced any iterations")
    energy = history[-1].energy
    best = best_energy(history, best_window)
    extrap = None
    score = None
    try:
        res = zero_variance_extrapolation(history, window=min(50, len(history)))
        if res.reliable:
            extrap = res.energy
    except ValueError:
        pass
    if history[-1].energy != 0.0:
        score = v_score(best, history[-1].variance, n_qubits)
    err = frac = None
    if e_reference is not None:
        err = best - e_reference
        if e_hf is not None and abs(e_hf - e_reference) > 1e-14:
            frac = correlation_energy_fraction(best, e_hf, e_reference)
    comm_iters = [s for s in history if s.comm_bytes is not None]
    comm_logical = comm_wire = None
    if comm_iters:
        comm_logical = sum(int(s.comm_bytes) for s in comm_iters)
        comm_wire = sum(
            int(s.comm_bytes_wire if s.comm_bytes_wire is not None
                else s.comm_bytes)
            for s in comm_iters
        )
    return TrainReport(
        energy=energy,
        best_energy=best,
        iterations=history[-1].iteration,
        wall_time=wall_time,
        stopped_early=stopped_early,
        extrapolated_energy=extrap,
        v_score=score,
        error_vs_reference=err,
        correlation_fraction=frac,
        comm_bytes_logical=comm_logical,
        comm_bytes_wire=comm_wire,
    )


class Trainer:
    """Run the full Sec. 4.1 training protocol for one molecular problem."""

    def __init__(
        self,
        wf: NNQSWavefunction,
        hamiltonian: QubitHamiltonian | CompressedHamiltonian,
        config: TrainConfig | None = None,
        hf_bits: np.ndarray | None = None,
        e_hf: float | None = None,
        e_reference: float | None = None,
    ):
        self.wf = wf
        self.config = config or TrainConfig()
        self.hf_bits = hf_bits
        self.e_hf = e_hf
        self.e_reference = e_reference
        cfg = self.config
        schedule = default_ns_schedule(
            pretrain_iters=cfg.pretrain_iters,
            ns_pretrain=cfg.ns_pretrain,
            ns_max=cfg.ns_max,
            growth=cfg.ns_growth,
        )
        self.vmc = VMC(
            wf,
            hamiltonian,
            VMCConfig(
                n_samples=schedule,
                eloc_mode=cfg.eloc_mode,
                warmup=cfg.warmup,
                lr_scale=cfg.lr_scale,
                weight_decay=cfg.weight_decay,
                grad_clip=cfg.grad_clip,
                seed=cfg.seed,
                sampler=cfg.sampler,
                group_chunk=cfg.group_chunk,
                sample_chunk=cfg.sample_chunk,
                eloc_memory_budget_mb=cfg.eloc_memory_budget_mb,
                eloc_kernel=cfg.eloc_kernel,
            ),
            backend=cfg.backend,
            array_backend=cfg.array_backend,
        )
        self._log_file = None

    # --------------------------------------------------------------- logging
    def _log(self, record: dict) -> None:
        if self.config.log_path is None:
            return
        if self._log_file is None:
            self._log_file = open(self.config.log_path, "a")
        self._log_file.write(json.dumps(record) + "\n")
        self._log_file.flush()

    # ------------------------------------------------------------------ main
    def resume(self, path: str | Path) -> None:
        """Restore a checkpoint written by a previous :meth:`train` call."""
        load_checkpoint(self.vmc, path)

    def train(self, on_iteration: Callable[[VMCStats], None] | None = None) -> TrainReport:
        """Run to ``max_iterations`` (or plateau) and report.

        ``on_iteration``, when given, is called with each iteration's
        :class:`~repro.core.vmc.VMCStats` after logging/checkpointing — the
        hook the run driver uses for periodic snapshot publication.  It must
        not consume the VMC RNG if bit-reproducibility matters.
        """
        cfg = self.config
        t0 = time.perf_counter()

        if cfg.pretrain_steps > 0 and self.hf_bits is not None and self.vmc.iteration == 0:
            pi = pretrain_to_reference(
                self.wf, self.hf_bits, n_steps=cfg.pretrain_steps,
                target_prob=cfg.pretrain_target,
            )
            self._log({"event": "pretrain", "pi_hf": pi})

        stopped_early = False
        while self.vmc.iteration < cfg.max_iterations:
            stats = self.vmc.step()
            self._log(stats_record(stats))
            if cfg.log_every and stats.iteration % cfg.log_every == 0:
                print(
                    f"iter {stats.iteration:5d}  E = {stats.energy:+.6f} Ha  "
                    f"var = {stats.variance:.2e}  N_u = {stats.n_unique}  "
                    f"N_s = {stats.n_samples:.0e}"
                )
            if (
                cfg.checkpoint_every
                and cfg.checkpoint_path is not None
                and stats.iteration % cfg.checkpoint_every == 0
            ):
                save_checkpoint(self.vmc, cfg.checkpoint_path)
            if on_iteration is not None:
                on_iteration(stats)
            if (
                cfg.early_stop
                and stats.iteration > cfg.pretrain_iters + 2 * cfg.plateau_window
                and detect_plateau(self.vmc.history, cfg.plateau_window,
                                   cfg.plateau_rel_tol)
            ):
                stopped_early = True
                break

        if cfg.checkpoint_path is not None:
            save_checkpoint(self.vmc, cfg.checkpoint_path)
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None

        return self._report(time.perf_counter() - t0, stopped_early)

    def _report(self, wall: float, stopped_early: bool) -> TrainReport:
        return build_report(
            self.vmc.history,
            self.wf.n_qubits,
            wall,
            stopped_early,
            e_hf=self.e_hf,
            e_reference=self.e_reference,
        )
