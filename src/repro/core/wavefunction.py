"""QiankunNet: the transformer-based neural network quantum state (Fig. 2).

The wave function is decomposed as Psi(x) = |Psi(x)| e^{i phi(x)} (Eq. 11):
the squared amplitude |Psi(x)|^2 = pi(x) is an autoregressive distribution
modeled by a decoder-only transformer over 2-qubit tokens, and the phase
phi(x) is a separate MLP.  Any amplitude network exposing
``conditional_logits`` can be substituted (MADE, NAQS-MLP — Table 1
baselines / ansatz ablation).

Token layout: spatial orbital ``i`` = qubits ``(2i, 2i+1)``; the sampling
order follows Ref. [27] (reverse order of the qubits after Jordan-Wigner), so
token position ``p`` addresses orbital ``order[p]`` with ``order`` reversed by
default.
"""
from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.core.constraints import ParticleNumberConstraint
from repro.nn import MADEAmplitude, Module, NAQSMLPAmplitude, PhaseMLP, TransformerAmplitude
from repro.nn.inference import make_inference_session, padded_next_logits

__all__ = ["NNQSWavefunction", "build_qiankunnet"]

_MASK_VALUE = -1e30


class NNQSWavefunction(Module):
    """Amplitude network + phase network + particle-number constraint."""

    def __init__(self, n_qubits: int, amplitude: Module, phase: Module,
                 constraint: ParticleNumberConstraint | None,
                 token_bits: int = 2, reverse_order: bool = True):
        super().__init__()
        if n_qubits % token_bits:
            raise ValueError("n_qubits must be divisible by token_bits")
        self.n_qubits = n_qubits
        self.token_bits = token_bits
        self.vocab_size = 2**token_bits
        self.n_tokens = n_qubits // token_bits
        self.amplitude = amplitude
        self.phase = phase
        self.constraint = constraint
        order = np.arange(self.n_tokens)
        self.order = order[::-1].copy() if reverse_order else order
        # Rebuild recipe (set by build_qiankunnet) — makes the wavefunction
        # snapshottable for the model registry (core/checkpoint.py).
        self.spec: dict | None = None
        # Serving-layer hook: when set, make_session() delegates here so a
        # SessionPool (repro/serve/pool.py) can hand out recycled sessions.
        self.session_factory = None

    # -------------------------------------------------------- token mapping
    def bits_to_tokens(self, bits: np.ndarray) -> np.ndarray:
        """(B, N) 0/1 -> (B, T) tokens in sampling order."""
        bits = np.atleast_2d(np.asarray(bits, dtype=np.int64))
        if self.token_bits == 2:
            toks = bits[:, 0::2] + 2 * bits[:, 1::2]  # orbital-indexed
        else:
            toks = bits
        return toks[:, self.order]

    def tokens_to_bits(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.atleast_2d(np.asarray(tokens, dtype=np.int64))
        inv = np.empty_like(self.order)
        inv[self.order] = np.arange(self.n_tokens)
        toks = tokens[:, inv]
        b = tokens.shape[0]
        bits = np.zeros((b, self.n_qubits), dtype=np.uint8)
        if self.token_bits == 2:
            bits[:, 0::2] = toks & 1
            bits[:, 1::2] = toks >> 1
        else:
            bits[:] = toks
        return bits

    # --------------------------------------------------- masked conditionals
    def masked_log_conditionals(self, tokens: np.ndarray) -> Tensor:
        """(B, T, vocab) log of the constrained, renormalized conditionals."""
        logits = self.amplitude.conditional_logits(tokens)
        if self.constraint is not None:
            allowed = self.constraint.mask_sequence(tokens)
            logits = logits.masked_fill(~allowed, _MASK_VALUE)
        return logits.log_softmax(axis=-1)

    def log_prob(self, bits: np.ndarray) -> Tensor:
        """(B,) log pi(x) = log |Psi(x)|^2, differentiable."""
        tokens = self.bits_to_tokens(bits)
        logc = self.masked_log_conditionals(tokens)
        b, t = tokens.shape
        picked = logc[np.arange(b)[:, None], np.arange(t)[None, :], tokens]
        return picked.sum(axis=1)

    def phase_of(self, bits: np.ndarray) -> Tensor:
        """(B,) phase phi(x) in radians, differentiable."""
        return self.phase(np.atleast_2d(bits))

    # ------------------------------------------------------------ inference
    def amplitudes(self, bits: np.ndarray) -> np.ndarray:
        """(B,) complex Psi(x) = sqrt(pi(x)) exp(i phi(x)) — inference only."""
        with no_grad():
            logp = self.log_prob(bits).data
            phi = self.phase_of(bits).data
        return np.exp(0.5 * logp + 1j * phi)

    def log_amplitudes(self, bits: np.ndarray) -> np.ndarray:
        """(B,) complex log Psi(x) (avoids underflow for tiny amplitudes)."""
        with no_grad():
            logp = self.log_prob(bits).data
            phi = self.phase_of(bits).data
        return 0.5 * logp + 1j * phi

    def make_session(self, batch_size: int = 1):
        """Open an incremental decoding session on the amplitude network.

        Transformer amplitudes get a KV-cached session (O(k) per step);
        fixed-width ansätze (MADE, NAQS-MLP) get the recompute fallback with
        the same interface.  Sessions are the sampler's hot path — see
        DESIGN.md for the architecture.  A ``session_factory`` hook (set by
        the serving layer's session pool) intercepts creation; a recycled
        session is reset first, so the numerics are those of a fresh one.
        """
        if self.session_factory is not None:
            return self.session_factory(batch_size)
        return make_inference_session(self.amplitude, batch_size)

    def probs_from_logits(self, logits: np.ndarray, counts_up: np.ndarray,
                          counts_dn: np.ndarray, step: int) -> np.ndarray:
        """Constrain + renormalize raw next-token logits into (B, vocab) probs."""
        if self.constraint is not None:
            allowed = self.constraint.mask_for_step(counts_up, counts_dn, step)
            logits = np.where(allowed, logits, _MASK_VALUE)
        logits = logits - logits.max(axis=1, keepdims=True)
        p = np.exp(logits)
        return p / p.sum(axis=1, keepdims=True)

    def conditional_probs(self, prefix_tokens: np.ndarray,
                          counts_up: np.ndarray, counts_dn: np.ndarray) -> np.ndarray:
        """(B, vocab) masked, renormalized pi(x_k | prefix) — sampler hot path.

        Drives a one-shot inference session (``prefill`` over the prefix);
        callers that sample many steps should hold a session themselves so
        the KV caches persist across steps (see ``core/sampler.py``).
        """
        b, k = prefix_tokens.shape
        session = self.make_session(b)
        logits = session.prefill(prefix_tokens)
        return self.probs_from_logits(logits, counts_up, counts_dn, k)

    def conditional_probs_reference(self, prefix_tokens: np.ndarray,
                                    counts_up: np.ndarray,
                                    counts_dn: np.ndarray) -> np.ndarray:
        """Full-forward oracle for :meth:`conditional_probs` (pre-cache path).

        Runs the differentiable ``conditional_logits`` graph under
        ``no_grad`` — the numerics of the training-time code path.  Retained
        as the correctness oracle for the incremental engine (tests,
        benchmarks, and the ``use_cache=False`` sampler paths).
        """
        k = prefix_tokens.shape[1]
        logits = padded_next_logits(self.amplitude, prefix_tokens)
        return self.probs_from_logits(logits, counts_up, counts_dn, k)

    def sector_counts(self, tokens_prefix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(up, dn) electron counts contained in a token prefix."""
        if self.token_bits == 2:
            up = (tokens_prefix & 1).sum(axis=1)
            dn = (tokens_prefix >> 1).sum(axis=1)
        else:
            # Position p addresses qubit order[p]; even qubits are spin-up.
            spin = self.order[: tokens_prefix.shape[1]] % 2
            up = (tokens_prefix * (spin[None, :] == 0)).sum(axis=1)
            dn = (tokens_prefix * (spin[None, :] == 1)).sum(axis=1)
        return up, dn


def build_qiankunnet(
    n_qubits: int,
    n_up: int,
    n_dn: int,
    d_model: int = 16,
    n_heads: int = 4,
    n_layers: int = 2,
    phase_hidden: tuple[int, ...] = (512, 512),
    amplitude_type: str = "transformer",
    token_bits: int = 2,
    constrain: bool = True,
    reverse_order: bool = True,
    seed: int = 0,
) -> NNQSWavefunction:
    """Factory with the paper's Sec. 4.1 defaults.

    ``amplitude_type``: 'transformer' (QiankunNet), 'made' (Ref. [27]
    baseline) or 'naqs-mlp' (Ref. [26]-style baseline).
    """
    rng = np.random.default_rng(seed)
    n_tokens = n_qubits // token_bits
    vocab = 2**token_bits
    if amplitude_type == "transformer":
        amp = TransformerAmplitude(
            n_tokens, vocab, d_model=d_model, n_heads=n_heads, n_layers=n_layers, rng=rng
        )
    elif amplitude_type == "made":
        amp = MADEAmplitude(n_tokens, vocab, rng=rng)
    elif amplitude_type == "naqs-mlp":
        amp = NAQSMLPAmplitude(n_tokens, vocab, rng=rng)
    else:
        raise ValueError(f"unknown amplitude_type {amplitude_type!r}")
    phase = PhaseMLP(n_qubits, hidden=phase_hidden, rng=rng)
    constraint = None
    if constrain:
        pos_spin = None
        if token_bits == 1:
            order = np.arange(n_tokens)
            if reverse_order:
                order = order[::-1]
            pos_spin = order % 2  # position p addresses qubit order[p]
        constraint = ParticleNumberConstraint(
            n_tokens, n_up, n_dn, vocab_size=vocab, pos_spin=pos_spin
        )
    wf = NNQSWavefunction(
        n_qubits, amp, phase, constraint, token_bits=token_bits,
        reverse_order=reverse_order,
    )
    wf.spec = {
        "n_qubits": n_qubits,
        "n_up": n_up,
        "n_dn": n_dn,
        "d_model": d_model,
        "n_heads": n_heads,
        "n_layers": n_layers,
        "phase_hidden": list(phase_hidden),
        "amplitude_type": amplitude_type,
        "token_bits": token_bits,
        "constrain": constrain,
        "reverse_order": reverse_order,
        "seed": seed,
    }
    return wf
