"""Observable estimation on neural-network quantum states.

Any Hermitian operator expressed as a :class:`QubitHamiltonian` can be
estimated with the same machinery the paper uses for the energy: a local
estimator ``O_loc(x) = sum_x' O_xx' Psi(x')/Psi(x)`` (Eq. 4 with H -> O)
averaged over the sampled distribution (Eq. 6).  This module provides

* :func:`estimate` — sampled <O> for the wave function (exact or
  sample-aware local estimators, same modes as the energy);
* :func:`sector_expectation` — exact <v|O|v> of a CI vector in a
  determinant sector (for validating the sampled estimates);
* :func:`fidelity` — |<v_CI|Psi_NN>|^2 overlap with an exact eigenvector;
* :func:`occupations` — spin-orbital occupations <n_P> directly from the
  sample weights (zero extra network evaluations);
* :class:`ObservableSet` — convenience bundle (N, S_z, S^2, double
  occupancy) used by the examples and the ablation bench.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.local_energy import AmplitudeTable, local_energy
from repro.core.sampler import SampleBatch
from repro.core.wavefunction import NNQSWavefunction
from repro.hamiltonian.compressed import CompressedHamiltonian, compress_hamiltonian
from repro.hamiltonian.exact import SectorBasis, _group_structure
from repro.hamiltonian.operators import (
    double_occupancy_operator,
    number_operator,
    s2_operator,
    sz_operator,
)
from repro.hamiltonian.qubit_hamiltonian import QubitHamiltonian

__all__ = [
    "EstimateResult",
    "estimate",
    "sector_expectation",
    "sector_matvec",
    "fidelity",
    "occupations",
    "one_rdm_sampled",
    "ObservableSet",
]


@dataclass
class EstimateResult:
    """Weighted-sample estimate of one observable."""

    mean: float
    variance: float       # population variance of the local estimator
    std_error: float      # sqrt(var / N_s) — i.i.d. error bar on the mean
    imag_residual: float  # |Im <O>| (should be ~0 for Hermitian O)
    n_unique: int
    n_samples: int


def estimate(
    wf: NNQSWavefunction,
    operator: QubitHamiltonian | CompressedHamiltonian,
    batch: SampleBatch,
    mode: str = "exact",
    table: AmplitudeTable | None = None,
) -> EstimateResult:
    """Sampled expectation <O> = E_p[O_loc(x)] over an existing sample batch.

    ``mode='exact'`` evaluates Psi on every coupled configuration (unbiased);
    ``'sample_aware'`` restricts to the sampled set (method (4) of Sec. 3.4).
    Note: an amplitude ``table`` built for a *different* operator must not be
    reused in exact mode — coupled sets differ.
    """
    comp = (
        operator
        if isinstance(operator, CompressedHamiltonian)
        else compress_hamiltonian(operator)
    )
    oloc, _ = local_energy(wf, comp, batch, mode=mode, table=table)
    w = batch.weights / batch.weights.sum()
    mean = float(np.sum(w * oloc.real))
    var = float(np.sum(w * (oloc.real - mean) ** 2))
    return EstimateResult(
        mean=mean,
        variance=var,
        std_error=float(np.sqrt(var / max(batch.n_samples, 1))),
        imag_residual=float(abs(np.sum(w * oloc.imag))),
        n_unique=batch.n_unique,
        n_samples=batch.n_samples,
    )


def sector_matvec(
    operator: QubitHamiltonian | CompressedHamiltonian,
    vec: np.ndarray,
    basis: SectorBasis,
) -> np.ndarray:
    """O @ v in a determinant sector basis (couplings leaving it are dropped)."""
    comp = (
        operator
        if isinstance(operator, CompressedHamiltonian)
        else compress_hamiltonian(operator)
    )
    targets, coefs = _group_structure(comp, basis)
    out = np.zeros_like(np.asarray(vec, dtype=np.complex128))
    for tgt, coef in zip(targets, coefs):
        ok = tgt >= 0
        np.add.at(out, tgt[ok], coef[ok] * vec[ok])
    return out + comp.constant * vec


def sector_expectation(
    operator: QubitHamiltonian | CompressedHamiltonian,
    vec: np.ndarray,
    basis: SectorBasis,
) -> float:
    """Exact <v|O|v> / <v|v> for a CI vector (validation reference)."""
    vec = np.asarray(vec, dtype=np.complex128)
    val = np.vdot(vec, sector_matvec(operator, vec, basis))
    return float(np.real(val) / np.real(np.vdot(vec, vec)))


def fidelity(wf: NNQSWavefunction, vec: np.ndarray, basis: SectorBasis) -> float:
    """|<v|Psi>|^2 with v a normalized CI vector over ``basis``.

    The autoregressive amplitude distribution is normalized over the full
    Hilbert space, so when the wave function leaks probability outside the
    sector the fidelity correctly decreases.
    """
    vec = np.asarray(vec, dtype=np.complex128)
    vec = vec / np.linalg.norm(vec)
    amps = wf.amplitudes(basis.bits())
    return float(np.abs(np.vdot(vec, amps)) ** 2)


def occupations(batch: SampleBatch) -> np.ndarray:
    """Spin-orbital occupations <n_P> from the sample weights alone."""
    w = batch.weights / batch.weights.sum()
    return (w[:, None] * batch.bits).sum(axis=0)


def one_rdm_sampled(
    wf: NNQSWavefunction,
    batch: SampleBatch,
    mode: str = "exact",
    max_qubits: int = 20,
) -> np.ndarray:
    """Sampled 1-RDM ``gamma[P, Q] ~ <a+_P a_Q>`` of the wave function.

    The diagonal comes free from the sample weights (:func:`occupations`);
    each symmetric off-diagonal pair is estimated with one local-estimator
    pass over the batch, so the cost is O(N^2) estimator sweeps — fine for
    the molecule sizes where the RDM is inspected, guarded by ``max_qubits``.
    Assumes a real wave function (molecular ground states here), for which
    gamma is symmetric.
    """
    from repro.hamiltonian.jordan_wigner import jordan_wigner_fermion_terms

    n = wf.n_qubits
    if n > max_qubits:
        raise ValueError(
            f"sampled 1-RDM is O(N^2) estimator sweeps; n_qubits={n} exceeds "
            f"max_qubits={max_qubits}"
        )
    gamma = np.diag(occupations(batch))
    table = None
    for p in range(n):
        for q in range(p + 2, n, 2):  # same spin block only (p, q same parity)
            op = jordan_wigner_fermion_terms(
                [(0.5, [(p, True), (q, False)]), (0.5, [(q, True), (p, False)])],
                n,
            )
            if op.n_terms == 0:
                continue
            res = estimate(wf, op, batch, mode=mode)
            gamma[p, q] = gamma[q, p] = res.mean
    return gamma


@dataclass
class ObservableSet:
    """The standard diagnostics bundle: N, S_z, S^2, double occupancy.

    Operators are JW-built once per qubit count and compressed lazily.
    """

    n_qubits: int
    _ops: dict = field(default_factory=dict, repr=False)

    def _get(self, name: str) -> CompressedHamiltonian:
        if name not in self._ops:
            builders = {
                "N": number_operator,
                "Sz": sz_operator,
                "S2": s2_operator,
                "D": double_occupancy_operator,
            }
            self._ops[name] = compress_hamiltonian(builders[name](self.n_qubits))
        return self._ops[name]

    def measure(
        self,
        wf: NNQSWavefunction,
        batch: SampleBatch,
        mode: str = "exact",
        which: tuple[str, ...] = ("N", "Sz", "S2", "D"),
    ) -> dict[str, EstimateResult]:
        return {
            name: estimate(wf, self._get(name), batch, mode=mode)
            for name in which
        }
