"""Particle-number conservation masking (Eq. 12 + leaf pruning of Fig. 5).

The total numbers of spin-up and spin-down electrons are conserved separately.
With 2-qubit tokens (one spatial orbital per step: token t occupies the up
orbital if ``t & 1`` and the down orbital if ``t >> 1``), Eq. 12 zeroes the
conditional probability of any token that would *exceed* n_up / n_dn; the
paper additionally prunes non-number-conserving leaves of the sampling tree.
Both are equivalent to the single feasibility condition implemented here:

  allowed(t) :  used_so_far + t_occ <= n  AND  n - used - t_occ <= slots_left

so every completed sample carries exactly (n_up, n_dn) electrons and the
masked-renormalized conditionals define a distribution supported only on the
physical sector.

For the 1-qubit-token ablation, ``pos_spin`` records which spin channel each
sampling position feeds (it depends on the orbital ordering permutation).
"""
from __future__ import annotations

import numpy as np

__all__ = ["ParticleNumberConstraint"]

# token -> (up occupation, down occupation); token = up_bit + 2 * down_bit
_TOKEN_UP = np.array([0, 1, 0, 1], dtype=np.int64)
_TOKEN_DN = np.array([0, 0, 1, 1], dtype=np.int64)


class ParticleNumberConstraint:
    def __init__(self, n_tokens: int, n_up: int, n_dn: int, vocab_size: int = 4,
                 pos_spin: np.ndarray | None = None):
        if vocab_size not in (2, 4):
            raise ValueError("vocab_size must be 2 (1-qubit tokens) or 4")
        self.n_tokens = n_tokens
        self.n_up = n_up
        self.n_dn = n_dn
        self.vocab_size = vocab_size
        if vocab_size == 4:
            self.tok_up, self.tok_dn = _TOKEN_UP, _TOKEN_DN
            self.pos_spin = None
            # Remaining orbital slots hold at most one electron per channel.
        else:
            if pos_spin is None:
                pos_spin = np.arange(n_tokens) % 2
            self.pos_spin = np.asarray(pos_spin, dtype=np.int64)
            # Remaining same-spin positions strictly after position i:
            self._left_same = np.zeros(n_tokens, dtype=np.int64)
            for i in range(n_tokens):
                self._left_same[i] = np.sum(self.pos_spin[i + 1 :] == self.pos_spin[i])

    # --------------------------------------------------------------- masking
    def mask_for_step(self, counts_up: np.ndarray, counts_dn: np.ndarray,
                      step: int) -> np.ndarray:
        """(B, vocab) allowed-token mask given occupation counts at ``step``."""
        if self.vocab_size == 4:
            left = self.n_tokens - step - 1
            need_up = self.n_up - counts_up[:, None] - self.tok_up[None, :]
            need_dn = self.n_dn - counts_dn[:, None] - self.tok_dn[None, :]
            return (need_up >= 0) & (need_dn >= 0) & (need_up <= left) & (need_dn <= left)
        spin = self.pos_spin[step]
        n = self.n_up if spin == 0 else self.n_dn
        used = counts_up if spin == 0 else counts_dn
        occ = np.array([0, 1], dtype=np.int64)
        need = n - used[:, None] - occ[None, :]
        return (need >= 0) & (need <= self._left_same[step])

    def counts_before(self, tokens: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Cumulative (up, dn) occupation *before* each position; (B, T+1)."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if self.vocab_size == 4:
            up = _TOKEN_UP[tokens]
            dn = _TOKEN_DN[tokens]
        else:
            up = tokens * (self.pos_spin[None, :] == 0)
            dn = tokens * (self.pos_spin[None, :] == 1)
        cu = np.zeros((tokens.shape[0], tokens.shape[1] + 1), dtype=np.int64)
        cd = np.zeros_like(cu)
        np.cumsum(up, axis=1, out=cu[:, 1:])
        np.cumsum(dn, axis=1, out=cd[:, 1:])
        return cu, cd

    def mask_sequence(self, tokens: np.ndarray) -> np.ndarray:
        """(B, T, vocab) allowed mask along a full token sequence."""
        tokens = np.asarray(tokens, dtype=np.int64)
        b, t = tokens.shape
        cu, cd = self.counts_before(tokens)
        out = np.zeros((b, t, self.vocab_size), dtype=bool)
        for i in range(t):
            out[:, i] = self.mask_for_step(cu[:, i], cd[:, i], i)
        return out

    def validate_bits(self, bits: np.ndarray) -> np.ndarray:
        """(B,) bool: does each bitstring carry exactly (n_up, n_dn) electrons?"""
        bits = np.atleast_2d(bits)
        return (bits[:, 0::2].sum(axis=1) == self.n_up) & (
            bits[:, 1::2].sum(axis=1) == self.n_dn
        )
