"""Checkpointing: save/restore wavefunction parameters and VMC state.

Long VMC runs (the paper uses up to 1e5 iterations) need resumable state;
the checkpoint stores the flat parameter vector, optimizer moments and the
iteration counter in a single ``.npz`` file.
"""
from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.vmc import VMC

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(vmc: VMC, path: str | Path) -> None:
    path = Path(path)
    opt = vmc.optimizer
    payload = {
        "params": vmc.wf.get_flat_params(),
        "iteration": np.array(vmc.iteration),
        "opt_t": np.array(opt.t),
        "sched_i": np.array(vmc.schedule.i),
        "energies": np.array([s.energy for s in vmc.history]),
    }
    if opt._m is not None:
        payload["opt_m"] = np.concatenate([m.reshape(-1) for m in opt._m])
        payload["opt_v"] = np.concatenate([v.reshape(-1) for v in opt._v])
    np.savez(path, **payload)


def load_checkpoint(vmc: VMC, path: str | Path) -> None:
    """Restore parameters + optimizer state into an existing VMC driver."""
    data = np.load(Path(path))
    vmc.wf.set_flat_params(data["params"])
    vmc.iteration = int(data["iteration"])
    vmc.schedule.i = int(data["sched_i"])
    opt = vmc.optimizer
    opt.t = int(data["opt_t"])
    if "opt_m" in data:
        params = list(vmc.wf.parameters())
        opt._m = []
        opt._v = []
        off = 0
        for p in params:
            n = p.size
            opt._m.append(data["opt_m"][off : off + n].reshape(p.shape).copy())
            opt._v.append(data["opt_v"][off : off + n].reshape(p.shape).copy())
            off += n
