"""Checkpointing: save/restore wavefunction parameters and VMC state.

Long VMC runs (the paper uses up to 1e5 iterations) need resumable state;
the checkpoint stores the flat parameter vector, optimizer moments, the
iteration counter, the stats history and the RNG bit-generator state in a
single ``.npz`` file, so a resumed run continues bit-identically to an
uninterrupted one.

The *model snapshot* (``save_model_snapshot`` / ``load_model_snapshot``) is
the wavefunction-only subset of the same format: flat parameters plus the
``build_qiankunnet`` spec needed to rebuild the network from scratch.  It is
the unit of exchange between training and the serving layer — the
:class:`~repro.serve.ModelRegistry` stores one snapshot per published
version, and ``save_checkpoint`` embeds the same fields so any checkpoint
can be published directly.
"""
from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.vmc import VMC, VMCStats

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_model_snapshot",
    "load_model_snapshot",
    "snapshot_payload",
    "restore_rng",
]

SNAPSHOT_FORMAT = 2  # bumped when the on-disk layout changes

_HISTORY_FIELDS = (
    "iteration", "energy", "variance", "n_unique", "n_samples", "lr", "eloc_imag",
)
# Engine-backend extras (repro.core.engine.VMCStats): optional in the payload
# so pre-engine checkpoints restore unchanged.  comm_bytes uses -1 for "no
# communicator" (the serial backend's None).
_HISTORY_EXTRAS = (
    "wall_time", "time_sampling", "time_local_energy", "time_gradient",
)


# --------------------------------------------------------------- wavefunction
def snapshot_payload(wf, metadata: dict | None = None) -> dict:
    """The registry-compatible snapshot fields of one wavefunction.

    Requires the wavefunction to carry a ``spec`` (recorded by
    ``build_qiankunnet``) so :func:`load_model_snapshot` can rebuild the
    network without any out-of-band information.
    """
    spec = getattr(wf, "spec", None)
    if spec is None:
        raise ValueError(
            "wavefunction has no build spec; construct it with "
            "build_qiankunnet (or set wf.spec) to make it snapshottable"
        )
    payload = {
        "format": np.array(SNAPSHOT_FORMAT),
        "params": wf.get_flat_params(),
        "spec_json": np.array(json.dumps(spec)),
    }
    if metadata is not None:
        payload["metadata_json"] = np.array(json.dumps(metadata))
    return payload


def save_model_snapshot(wf, path: str | Path, metadata: dict | None = None) -> None:
    """Write a self-contained wavefunction snapshot (params + rebuild spec)."""
    np.savez(Path(path), **snapshot_payload(wf, metadata))


def load_model_snapshot(path: str | Path):
    """Rebuild a wavefunction from a snapshot; returns ``(wf, metadata)``."""
    from repro.core.wavefunction import build_qiankunnet

    data = np.load(Path(path))
    if "spec_json" not in data:
        raise ValueError(f"{path} is not a model snapshot (no spec_json)")
    spec = json.loads(data["spec_json"].item())
    spec["phase_hidden"] = tuple(spec["phase_hidden"])
    wf = build_qiankunnet(**spec)
    wf.set_flat_params(data["params"])
    metadata = (
        json.loads(data["metadata_json"].item()) if "metadata_json" in data else {}
    )
    return wf, metadata


# ------------------------------------------------------------------ VMC state
def _rng_payload(rng: np.random.Generator) -> np.ndarray:
    """JSON-serialized bit-generator state (PCG64 state ints are arbitrary
    precision, so JSON — not a fixed-width array — is the right container)."""
    return np.array(json.dumps(rng.bit_generator.state))


def restore_rng(state_json: str) -> np.random.Generator:
    """Rebuild a Generator whose stream continues exactly where it stopped."""
    state = json.loads(state_json)
    bit_gen = getattr(np.random, state["bit_generator"])()
    bit_gen.state = state
    return np.random.Generator(bit_gen)


def save_checkpoint(vmc: VMC, path: str | Path) -> None:
    path = Path(path)
    opt = vmc.optimizer
    payload = {
        "iteration": np.array(vmc.iteration),
        "opt_t": np.array(opt.t),
        "sched_i": np.array(vmc.schedule.i),
        "rng_state": _rng_payload(vmc.rng),
        # Legacy key, kept so pre-format-2 readers still find the curve.
        "energies": np.array([s.energy for s in vmc.history]),
    }
    for f in _HISTORY_FIELDS + _HISTORY_EXTRAS:
        payload[f"hist_{f}"] = np.array([getattr(s, f) for s in vmc.history])
    payload["hist_comm_bytes"] = np.array(
        [-1 if s.comm_bytes is None else int(s.comm_bytes) for s in vmc.history]
    )
    payload["hist_comm_bytes_wire"] = np.array(
        [-1 if s.comm_bytes_wire is None else int(s.comm_bytes_wire)
         for s in vmc.history]
    )
    baseline = getattr(vmc, "comm_baseline", None)
    if baseline is not None:
        # The stage-2 codec's cross-iteration diff baseline: without it a
        # resumed run would ship one full payload where the uninterrupted run
        # shipped a diff, breaking bitwise comm-volume equality.
        payload["comm_baseline"] = np.asarray(baseline)
    payload["hist_per_rank_unique"] = np.array(
        json.dumps([s.per_rank_unique for s in vmc.history])
    )
    if opt._m is not None:
        payload["opt_m"] = np.concatenate([m.reshape(-1) for m in opt._m])
        payload["opt_v"] = np.concatenate([v.reshape(-1) for v in opt._v])
    try:
        payload.update(snapshot_payload(vmc.wf))
    except ValueError:
        # Hand-built wavefunction without a spec: still checkpointable,
        # just not publishable to a model registry.
        payload["params"] = vmc.wf.get_flat_params()
    np.savez(path, **payload)


def _restore_history(vmc: VMC, data) -> None:
    """Rebuild ``vmc.history`` so ``best_energy()`` sees pre-resume iterations."""
    if "hist_energy" in data:
        cols = {f: data[f"hist_{f}"] for f in _HISTORY_FIELDS}
        n = len(cols["energy"])
        extras = {
            f: (data[f"hist_{f}"] if f"hist_{f}" in data else np.zeros(n))
            for f in _HISTORY_EXTRAS
        }
        comm = (data["hist_comm_bytes"] if "hist_comm_bytes" in data
                else np.full(n, -1))
        wire = (data["hist_comm_bytes_wire"] if "hist_comm_bytes_wire" in data
                else np.full(n, -1))
        per_rank = (json.loads(data["hist_per_rank_unique"].item())
                    if "hist_per_rank_unique" in data else [None] * n)
        vmc.history = [
            VMCStats(
                iteration=int(cols["iteration"][i]),
                energy=float(cols["energy"][i]),
                variance=float(cols["variance"][i]),
                n_unique=int(cols["n_unique"][i]),
                n_samples=int(cols["n_samples"][i]),
                lr=float(cols["lr"][i]),
                eloc_imag=float(cols["eloc_imag"][i]),
                wall_time=float(extras["wall_time"][i]),
                time_sampling=float(extras["time_sampling"][i]),
                time_local_energy=float(extras["time_local_energy"][i]),
                time_gradient=float(extras["time_gradient"][i]),
                comm_bytes=None if int(comm[i]) < 0 else int(comm[i]),
                per_rank_unique=per_rank[i],
                comm_bytes_wire=None if int(wire[i]) < 0 else int(wire[i]),
            )
            for i in range(n)
        ]
    elif "energies" in data:
        # Pre-format-2 checkpoint: energies only — restore a minimal history
        # (unknown variances are zero; best_energy's 1e-12 floor handles it).
        vmc.history = [
            VMCStats(iteration=i + 1, energy=float(e), variance=0.0,
                     n_unique=0, n_samples=0, lr=0.0, eloc_imag=0.0)
            for i, e in enumerate(data["energies"])
        ]


def load_checkpoint(vmc: VMC, path: str | Path) -> None:
    """Restore parameters, optimizer, RNG and history into an existing VMC."""
    data = np.load(Path(path))
    vmc.wf.set_flat_params(data["params"])
    vmc.iteration = int(data["iteration"])
    vmc.schedule.i = int(data["sched_i"])
    vmc.comm_baseline = (
        data["comm_baseline"] if "comm_baseline" in data else None
    )
    _restore_history(vmc, data)
    if "rng_state" in data:
        vmc.rng = restore_rng(data["rng_state"].item())
    opt = vmc.optimizer
    opt.t = int(data["opt_t"])
    if "opt_m" in data:
        params = list(vmc.wf.parameters())
        opt._m = []
        opt._v = []
        off = 0
        for p in params:
            n = p.size
            opt._m.append(data["opt_m"][off : off + n].reshape(p.shape).copy())
            opt._v.append(data["opt_v"][off : off + n].reshape(p.shape).copy())
            off += n
