#!/usr/bin/env python3
"""Compare amplitude ansatze: transformer (QiankunNet) vs MADE vs NAQS-MLP.

All three plug into the same VMC / BAS / local-energy stack — the comparison
distills the paper's Table 1 'NAQS vs MADE vs QiankunNet' columns into one
run on LiH.

Usage:  python examples/ansatz_comparison.py [--molecule LiH] [--iters 200]
"""
import argparse

from repro import VMC, VMCConfig, build_problem, build_qiankunnet, pretrain_to_reference
from repro.chem import run_fci


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--molecule", default="LiH")
    ap.add_argument("--iters", type=int, default=200)
    args = ap.parse_args()

    prob = build_problem(args.molecule, "sto-3g")
    fci = run_fci(prob.hamiltonian).energy
    print(f"{args.molecule}: {prob.n_qubits} qubits, FCI = {fci:+.6f} Ha, "
          f"HF = {prob.e_hf:+.6f} Ha")
    print()
    print("ansatz       params   energy (Ha)    |E - FCI|")
    print("-" * 52)
    for kind in ("transformer", "made", "naqs-mlp"):
        wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn,
                              amplitude_type=kind, seed=7)
        pretrain_to_reference(wf, prob.hf_bits, n_steps=150)
        vmc = VMC(wf, prob.hamiltonian,
                  VMCConfig(n_samples=10**5, eloc_mode="exact", warmup=200,
                            seed=8))
        vmc.run(args.iters)
        e = vmc.best_energy()
        print(f"{kind:<12} {wf.num_parameters():6d}   {e:+.6f}   {abs(e - fci):.2e}")


if __name__ == "__main__":
    main()
