#!/usr/bin/env python3
"""Compare amplitude ansatze: transformer (QiankunNet) vs MADE vs NAQS-MLP.

All three plug into the same VMC / BAS / local-energy stack by *name* — the
ansatz registry of :mod:`repro.api` makes the comparison a loop over specs
that differ in a single string.  The comparison distills the paper's
Table 1 'NAQS vs MADE vs QiankunNet' columns into one run on LiH.

Usage:  python examples/ansatz_comparison.py [--molecule LiH] [--iters 200]
"""
import argparse
import tempfile

from repro.api import AnsatzSpec, ProblemSpec, RunSpec, run
from repro.chem import build_problem, run_fci


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--molecule", default="LiH")
    ap.add_argument("--iters", type=int, default=200)
    args = ap.parse_args()

    prob = build_problem(args.molecule, "sto-3g")
    fci = run_fci(prob.hamiltonian).energy
    print(f"{args.molecule}: {prob.n_qubits} qubits, FCI = {fci:+.6f} Ha, "
          f"HF = {prob.e_hf:+.6f} Ha")
    print()
    print("ansatz       params   energy (Ha)    |E - FCI|")
    print("-" * 52)
    for kind in ("transformer", "made", "naqs-mlp"):
        spec = RunSpec(
            name=f"ansatz-{kind}",
            problem=ProblemSpec(molecule=args.molecule, basis="sto-3g"),
            ansatz=AnsatzSpec(name=kind, seed=7),
        ).with_overrides({
            "optimizer.warmup": 200,
            "sampling.ns_max": 10**5,
            "train.max_iterations": args.iters,
            "train.pretrain_steps": 150,
            "train.early_stop": False,
            "train.seed": 8,
        })
        with tempfile.TemporaryDirectory() as tmp:
            result = run(spec, run_dir=f"{tmp}/run")
        e = result.report.best_energy
        n_params = result.wavefunction.num_parameters()
        print(f"{kind:<12} {n_params:6d}   {e:+.6f}   {abs(e - fci):.2e}")


if __name__ == "__main__":
    main()
