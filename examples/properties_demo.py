#!/usr/bin/env python3
"""Beyond the energy: observables, density matrices and dipole moments.

Optimizes a QiankunNet wave function for LiH/STO-3G, then measures the full
diagnostics suite with the same local-estimator machinery the paper uses for
the energy:

  * <N>, <S_z>, <S^2>, double occupancy (sampled vs exact-sector values)
  * spin-orbital occupations and the sampled 1-RDM
  * natural-orbital occupations (static-correlation fingerprint)
  * dipole moment at HF vs FCI vs NNQS level
  * fidelity |<FCI|Psi_NN>|^2

Usage:  python examples/properties_demo.py [--iters 200]
"""
import argparse

import numpy as np

from repro.chem import (
    build_problem,
    compute_dipole_integrals,
    compute_integrals,
    dipole_moment,
    make_molecule,
    natural_occupations,
    one_rdm_spin_orbital,
    run_fci,
    run_rhf,
    spatial_rdm,
)
from repro.core import (
    VMC,
    VMCConfig,
    ObservableSet,
    batch_autoregressive_sample,
    build_qiankunnet,
    fidelity,
    occupations,
    one_rdm_sampled,
    pretrain_to_reference,
    sector_expectation,
)
from repro.hamiltonian import s2_operator


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--iters", type=int, default=200, help="VMC iterations")
    args = ap.parse_args()

    print("== LiH / STO-3G: observables beyond the energy ==")
    prob = build_problem("LiH", "sto-3g")
    fci = run_fci(prob.hamiltonian)

    wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, seed=7)
    pretrain_to_reference(wf, prob.hf_bits, n_steps=200)
    vmc = VMC(wf, prob.hamiltonian,
              VMCConfig(n_samples=10**5, eloc_mode="exact", warmup=150, seed=8))
    vmc.run(args.iters, log_every=max(args.iters // 4, 1))
    print(f"VMC energy {vmc.best_energy():+.6f} Ha  (FCI {fci.energy:+.6f})")

    rng = np.random.default_rng(9)
    batch = batch_autoregressive_sample(wf, 10**6, rng)

    print("\n-- sampled observables (vs exact value on the FCI state) --")
    obs = ObservableSet(prob.n_qubits)
    results = obs.measure(wf, batch)
    exact = {
        "N": float(prob.n_electrons),
        "Sz": 0.0,
        "S2": sector_expectation(s2_operator(prob.n_qubits), fci.ground_state, fci.basis),
        "D": None,
    }
    for name, r in results.items():
        ref = exact[name]
        ref_s = f"   (FCI: {ref:+.4f})" if ref is not None else ""
        print(f"  <{name:>2}> = {r.mean:+.4f} ± {r.std_error:.1e}{ref_s}")

    print("\n-- spin-orbital occupations <n_P> (free from the sample weights) --")
    print("  " + np.array2string(occupations(batch), precision=3, suppress_small=True))

    print("\n-- 1-RDM and natural occupations --")
    gamma_nn = one_rdm_sampled(wf, batch)
    gamma_fci = one_rdm_spin_orbital(fci.ground_state, fci.basis)
    occ_nn = natural_occupations(gamma_nn)
    occ_fci = natural_occupations(gamma_fci)
    print("  NNQS natural occ:", np.array2string(occ_nn, precision=4, suppress_small=True))
    print("  FCI  natural occ:", np.array2string(occ_fci, precision=4, suppress_small=True))

    print("\n-- dipole moment (a.u. -> Debye) --")
    mol = make_molecule("LiH")
    ints = compute_integrals(mol, "sto-3g")
    scf = run_rhf(ints)
    dip_ao = compute_dipole_integrals(mol, "sto-3g")
    n_orb = prob.n_qubits // 2
    d_hf = np.zeros((n_orb, n_orb))
    for i in range(prob.n_electrons // 2):
        d_hf[i, i] = 2.0
    for label, dm in (("HF", d_hf), ("NNQS", spatial_rdm(gamma_nn)),
                      ("FCI", spatial_rdm(gamma_fci))):
        res = dipole_moment(mol, dip_ao, scf.mo_coeff, dm)
        print(f"  {label:>4}: |mu| = {res.magnitude:.4f} a.u. = {res.magnitude_debye:.3f} D")

    f = fidelity(wf, fci.ground_state, fci.basis)
    print(f"\n-- fidelity |<FCI|Psi_NN>|^2 = {f:.4f} --")


if __name__ == "__main__":
    main()
