#!/usr/bin/env python3
"""Quickstart: solve H2/STO-3G with the transformer NNQS (QiankunNet).

Runs the complete pipeline of the paper in under a minute through the
declarative experiment API:
  RunSpec -> run(spec) -> report + artifact directory
and compares the variational energy against HF, CCSD and FCI.  The same
spec can be saved as JSON and driven from the CLI:
  python -m repro run --spec my_spec.json

Usage:  python examples/quickstart.py [--iters 400] [--bond-length 0.7414]
"""
import argparse
import tempfile

from repro.api import (
    AnsatzSpec,
    OptimizerSpec,
    ProblemSpec,
    RunSpec,
    SamplingSpec,
    TrainSpec,
    run,
)
from repro.chem import (
    build_problem,
    compute_integrals,
    make_molecule,
    mo_transform,
    run_ccsd,
    run_fci,
    run_rhf,
    to_spin_orbitals,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--iters", type=int, default=400, help="VMC iterations")
    ap.add_argument("--bond-length", type=float, default=0.7414, help="R(H-H) in Angstrom")
    args = ap.parse_args()

    print(f"== H2 / STO-3G at R = {args.bond_length} A ==")
    prob = build_problem("H2", "sto-3g", r=args.bond_length)
    print(f"{prob.n_qubits} qubits, {prob.hamiltonian.n_terms} Pauli strings")

    fci = run_fci(prob.hamiltonian).energy
    ints = compute_integrals(make_molecule("H2", r=args.bond_length), "sto-3g")
    scf = run_rhf(ints)
    ccsd = run_ccsd(to_spin_orbitals(mo_transform(ints, scf))).energy

    spec = RunSpec(
        name="quickstart-h2",
        problem=ProblemSpec(molecule="H2", basis="sto-3g",
                            geometry={"r": args.bond_length}),
        ansatz=AnsatzSpec(name="transformer", seed=1),
        optimizer=OptimizerSpec(name="adamw", warmup=200),
        sampling=SamplingSpec(ns_pretrain=10**5, ns_max=10**5),
        train=TrainSpec(max_iterations=args.iters, pretrain_steps=100,
                        early_stop=False, seed=2),
    )
    with tempfile.TemporaryDirectory() as tmp:
        result = run(spec, run_dir=f"{tmp}/run",
                     overrides={"output.log_every": max(args.iters // 8, 1)})
        wf = result.wavefunction
        print(f"QiankunNet: {wf.num_parameters()} parameters "
              f"(transformer amplitude + MLP phase)")
        e_vmc = result.report.best_energy

        print()
        print(f"  HF          {prob.e_hf:+.6f} Ha")
        print(f"  CCSD        {ccsd:+.6f} Ha")
        print(f"  QiankunNet  {e_vmc:+.6f} Ha   (error vs FCI: {e_vmc - fci:+.2e})")
        print(f"  FCI         {fci:+.6f} Ha")
        status = "REACHED" if abs(e_vmc - fci) < 1.6e-3 else "not reached"
        print(f"  chemical accuracy (1.6 mHa): {status}")
        print(f"  (snapshot published as v{result.published_version:06d}; a "
              "persistent --run-dir would be servable via python -m repro serve)")


if __name__ == "__main__":
    main()
