#!/usr/bin/env python3
"""Quickstart: solve H2/STO-3G with the transformer NNQS (QiankunNet).

Runs the complete pipeline of the paper in under a minute:
  integrals -> RHF -> Jordan-Wigner -> VMC with batch autoregressive sampling
and compares the variational energy against HF, CCSD and FCI.

Usage:  python examples/quickstart.py [--iters 400] [--bond-length 0.7414]
"""
import argparse

from repro import VMC, VMCConfig, build_problem, build_qiankunnet, pretrain_to_reference
from repro.chem import (
    compute_integrals,
    make_molecule,
    mo_transform,
    run_ccsd,
    run_fci,
    run_rhf,
    to_spin_orbitals,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--iters", type=int, default=400, help="VMC iterations")
    ap.add_argument("--bond-length", type=float, default=0.7414, help="R(H-H) in Angstrom")
    args = ap.parse_args()

    print(f"== H2 / STO-3G at R = {args.bond_length} A ==")
    prob = build_problem("H2", "sto-3g", r=args.bond_length)
    print(f"{prob.n_qubits} qubits, {prob.hamiltonian.n_terms} Pauli strings")

    fci = run_fci(prob.hamiltonian).energy
    ints = compute_integrals(make_molecule("H2", r=args.bond_length), "sto-3g")
    scf = run_rhf(ints)
    ccsd = run_ccsd(to_spin_orbitals(mo_transform(ints, scf))).energy

    wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, seed=1)
    print(f"QiankunNet: {wf.num_parameters()} parameters "
          f"(transformer amplitude + MLP phase)")
    pretrain_to_reference(wf, prob.hf_bits, n_steps=100)

    vmc = VMC(wf, prob.hamiltonian,
              VMCConfig(n_samples=10**5, eloc_mode="exact", warmup=200, seed=2))
    vmc.run(args.iters, log_every=max(args.iters // 8, 1))
    e_vmc = vmc.best_energy()

    print()
    print(f"  HF          {prob.e_hf:+.6f} Ha")
    print(f"  CCSD        {ccsd:+.6f} Ha")
    print(f"  QiankunNet  {e_vmc:+.6f} Ha   (error vs FCI: {e_vmc - fci:+.2e})")
    print(f"  FCI         {fci:+.6f} Ha")
    status = "REACHED" if abs(e_vmc - fci) < 1.6e-3 else "not reached"
    print(f"  chemical accuracy (1.6 mHa): {status}")


if __name__ == "__main__":
    main()
