#!/usr/bin/env python3
"""The serving layer end to end: train -> publish -> serve -> consume.

A miniature version of the production loop the ROADMAP points at, now wired
through the declarative experiment API: ``run(spec)`` with
``output.publish_every=1`` trains in a background thread and publishes a
versioned snapshot to the run's ModelRegistry every iteration, while a
WavefunctionService built by ``serve_run(run_dir)`` serves the same registry
to concurrent consumers (a PES-style amplitude client, a sampling client,
and a local-energy client).  Clients pin the version they started with, so
their amplitude ratios stay consistent mid-request-stream.

Usage:  python examples/serve_demo.py [--clients 6] [--iters 8]
"""
import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.api import get_preset, run, serve_run
from repro.serve import ModelRegistry, ServeConfig


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--clients", type=int, default=6)
    ap.add_argument("--iters", type=int, default=8)
    args = ap.parse_args()

    spec = get_preset("smoke").with_overrides({
        "name": "serve-demo",
        "ansatz.seed": 3,
        "train.seed": 5,
        "train.max_iterations": args.iters,
        "train.pretrain_steps": 0,
        "sampling.ns_pretrain": 2000,
        "sampling.ns_max": 2000,
        "output.publish_every": 1,
    })

    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"
        results: dict = {}

        def train() -> None:
            try:
                results["result"] = run(spec, run_dir=run_dir)
            except BaseException as exc:  # noqa: BLE001 - surfaced on join
                results["error"] = exc

        trainer_thread = threading.Thread(target=train)
        t0 = time.perf_counter()
        trainer_thread.start()

        # Wait for the first published version, then open the service on the
        # run's registry — the serve-while-training production shape.
        registry = ModelRegistry(run_dir / "models")
        while registry.latest_version() is None:
            if not trainer_thread.is_alive():
                raise results.get("error") or RuntimeError(
                    "training thread died before publishing")
            time.sleep(0.02)
        service = serve_run(run_dir, config=ServeConfig(max_wait_ms=2.0)).start()
        pinned = service.active_version()
        print(f"serving {run_dir} from version {pinned} while training runs")
        n_qubits = registry.load(pinned)[0].n_qubits

        # ----------------------------------------------- concurrent clients
        stop = threading.Event()
        counts = {"amplitudes": 0, "samples": 0, "local_energy": 0}

        # Clients pace themselves (sleep between requests) so the demo's
        # training thread is not starved of the GIL by pure request spin.
        def amplitude_client() -> None:
            rng = np.random.default_rng(0)
            while not stop.is_set():
                bits = rng.integers(0, 2, (2, n_qubits)).astype(np.uint8)
                service.log_amplitudes(bits, version=pinned)
                counts["amplitudes"] += 1
                time.sleep(0.01)

        def sampling_client(seed: int) -> None:
            while not stop.is_set():
                service.sample(300, seed=seed, version=pinned)
                counts["samples"] += 1
                time.sleep(0.02)

        def local_energy_client() -> None:
            while not stop.is_set():
                batch = service.sample(500, seed=7, version=pinned)
                service.local_energy(batch, version=pinned)
                counts["local_energy"] += 1
                time.sleep(0.02)

        workers = [threading.Thread(target=amplitude_client)
                   for _ in range(max(args.clients - 2, 1))]
        workers += [threading.Thread(target=sampling_client, args=(11,)),
                    threading.Thread(target=local_energy_client)]
        for w in workers:
            w.start()

        # ------------------------------- training publishes while they run
        trainer_thread.join()
        if "error" in results:
            raise results["error"]
        service.refresh()
        print(f"training finished: published versions {registry.versions()}")
        print(f"service now tracks version {service.active_version()} "
              f"(clients stay pinned to {pinned})")

        time.sleep(0.5)
        stop.set()
        for w in workers:
            w.join()
        wall = time.perf_counter() - t0

        result = results["result"]
        print()
        print(f"final report after {result.report.iterations} iterations: "
              f"E = {result.report.energy:+.6f} Ha")
        s = service.stats()
        print(f"served during {wall:.1f}s of training:")
        print(f"  amplitude requests    {counts['amplitudes']}")
        print(f"  sampling requests     {counts['samples']}")
        print(f"  local-energy requests {counts['local_energy']}")
        print(f"  fused rows/batch      {s['batcher']['rows_per_batch']:.1f}")
        pinned_stats = s["versions"][pinned]
        print(f"  session pool          {pinned_stats['pool']}")
        print(f"  amplitude table       {pinned_stats['table_entries']} entries "
              f"(version {pinned} only — tables never cross versions)")
        service.close()


if __name__ == "__main__":
    main()
