#!/usr/bin/env python3
"""The serving layer end to end: train -> publish -> serve -> consume.

A miniature version of the production loop the ROADMAP points at: a trainer
optimizes the ansatz and publishes versioned snapshots to a ModelRegistry;
a WavefunctionService serves the registry to concurrent consumers (here: a
PES-style amplitude client, a sampling client, and a local-energy client)
while training keeps publishing — clients pin the version they started
with, so their amplitude ratios stay consistent mid-request-stream.

Usage:  python examples/serve_demo.py [--clients 6] [--iters 8]
"""
import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import VMC, VMCConfig, build_problem, build_qiankunnet
from repro.serve import ModelRegistry, ServeConfig, WavefunctionService


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--clients", type=int, default=6)
    ap.add_argument("--iters", type=int, default=8)
    args = ap.parse_args()

    prob = build_problem("H2", "sto-3g", r=0.7414)
    wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, seed=3)
    vmc = VMC(wf, prob.hamiltonian, VMCConfig(n_samples=2000, seed=5))

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(Path(tmp) / "models")
        v0 = registry.publish(wf, metadata={"iteration": 0})
        print(f"published initial snapshot as version {v0}")

        service = WavefunctionService(
            registry, hamiltonian=prob.hamiltonian,
            config=ServeConfig(max_wait_ms=2.0),
        ).start()
        pinned = service.active_version()

        # ----------------------------------------------- concurrent clients
        stop = threading.Event()
        counts = {"amplitudes": 0, "samples": 0, "local_energy": 0}

        # Clients pace themselves (sleep between requests) so the demo's
        # training thread is not starved of the GIL by pure request spin.
        def amplitude_client() -> None:
            rng = np.random.default_rng(0)
            while not stop.is_set():
                bits = rng.integers(0, 2, (2, prob.n_qubits)).astype(np.uint8)
                service.log_amplitudes(bits, version=pinned)
                counts["amplitudes"] += 1
                time.sleep(0.01)

        def sampling_client(seed: int) -> None:
            while not stop.is_set():
                service.sample(300, seed=seed, version=pinned)
                counts["samples"] += 1
                time.sleep(0.02)

        def local_energy_client() -> None:
            while not stop.is_set():
                batch = service.sample(500, seed=7, version=pinned)
                service.local_energy(batch, version=pinned)
                counts["local_energy"] += 1
                time.sleep(0.02)

        workers = [threading.Thread(target=amplitude_client)
                   for _ in range(max(args.clients - 2, 1))]
        workers += [threading.Thread(target=sampling_client, args=(11,)),
                    threading.Thread(target=local_energy_client)]
        for w in workers:
            w.start()

        # ------------------------------- training publishes while they run
        t0 = time.perf_counter()
        for i in range(args.iters):
            stats = vmc.step()
            version = registry.publish(
                wf, metadata={"iteration": stats.iteration,
                              "energy": stats.energy}
            )
            print(f"iter {stats.iteration}: E = {stats.energy:+.6f} Ha "
                  f"-> published version {version}")
        service.refresh()
        print(f"service now tracks version {service.active_version()} "
              f"(clients stay pinned to {pinned})")

        time.sleep(0.5)
        stop.set()
        for w in workers:
            w.join()
        wall = time.perf_counter() - t0

        s = service.stats()
        print()
        print(f"served during {wall:.1f}s of training:")
        print(f"  amplitude requests    {counts['amplitudes']}")
        print(f"  sampling requests     {counts['samples']}")
        print(f"  local-energy requests {counts['local_energy']}")
        print(f"  fused rows/batch      {s['batcher']['rows_per_batch']:.1f}")
        pinned_stats = s["versions"][pinned]
        print(f"  session pool          {pinned_stats['pool']}")
        print(f"  amplitude table       {pinned_stats['table_entries']} entries "
              f"(version {pinned} only — tables never cross versions)")
        service.close()


if __name__ == "__main__":
    main()
