#!/usr/bin/env python3
"""Batch autoregressive sampling (Fig. 3): N_s-independent cost, exact counts.

Demonstrates the paper's headline sampling property: pushing a budget of
10^3 ... 10^12 samples through the BAS tree costs nearly the same wall time,
because only the *unique* prefixes per layer are ever evaluated, while plain
autoregressive sampling scales linearly in N_s.  Also verifies that the BAS
occurrence counts converge to the ansatz distribution pi(x).

Usage:  python examples/batch_sampling_demo.py [--molecule H2O]
"""
import argparse
import time

import numpy as np

from repro import batch_autoregressive_sample, build_problem, build_qiankunnet
from repro.core import autoregressive_sample, pretrain_to_reference


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--molecule", default="H2O")
    args = ap.parse_args()

    prob = build_problem(args.molecule, "sto-3g")
    wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, seed=3)
    pretrain_to_reference(wf, prob.hf_bits, n_steps=80, target_prob=0.3)

    print(f"{args.molecule}: {prob.n_qubits} qubits "
          f"({prob.n_up} up + {prob.n_dn} down electrons)")
    print()
    print("Batch autoregressive sampling (Fig. 3b): cost vs sample budget N_s")
    print("N_s        unique  time (s)")
    print("-" * 32)
    rng = np.random.default_rng(0)
    for ns in (10**3, 10**6, 10**9, 10**12):
        t0 = time.perf_counter()
        batch = batch_autoregressive_sample(wf, ns, rng)
        dt = time.perf_counter() - t0
        print(f"{ns:<9.0e}  {batch.n_unique:6d}  {dt:8.3f}")

    print()
    print("Plain autoregressive sampling (Fig. 3a) for comparison:")
    for ns in (10**3, 10**4):
        t0 = time.perf_counter()
        autoregressive_sample(wf, ns, rng)
        dt = time.perf_counter() - t0
        print(f"{ns:<9.0e}  {'-':>6}  {dt:8.3f}")

    batch = batch_autoregressive_sample(wf, 10**6, rng)
    logp = wf.log_prob(batch.bits).data
    err = np.abs(batch.frequencies() - np.exp(logp)).max()
    print()
    print(f"max |empirical frequency - pi(x)| over {batch.n_unique} unique "
          f"samples at N_s=1e6: {err:.2e}")
    print("every sample satisfies the particle-number constraint:",
          bool(np.all(wf.constraint.validate_bits(batch.bits))))


if __name__ == "__main__":
    main()
