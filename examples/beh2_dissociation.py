#!/usr/bin/env python3
"""BeH2 symmetric dissociation curve (the paper's Fig. 8 workload).

Scans the Be-H bond length, comparing HF / CCSD / FCI / QiankunNet at each
point — the regime where static correlation grows and HF degrades while the
NNQS tracks FCI.

Usage:  python examples/beh2_dissociation.py [--iters 250] [--points 1.0 1.33 2.0]
"""
import argparse

from repro import VMC, VMCConfig, build_problem, build_qiankunnet, pretrain_to_reference
from repro.chem import (
    compute_integrals,
    make_molecule,
    mo_transform,
    run_ccsd,
    run_fci,
    run_rhf,
    to_spin_orbitals,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--iters", type=int, default=250)
    ap.add_argument("--points", type=float, nargs="+",
                    default=[1.0, 1.3264, 2.0])
    args = ap.parse_args()

    print("R (A)      HF            CCSD          QiankunNet    FCI          |QKN-FCI|")
    print("-" * 84)
    for r in args.points:
        prob = build_problem("BeH2", "sto-3g", r=r)
        fci = run_fci(prob.hamiltonian).energy
        ints = compute_integrals(make_molecule("BeH2", r=r), "sto-3g")
        scf = run_rhf(ints)
        ccsd = run_ccsd(to_spin_orbitals(mo_transform(ints, scf))).energy

        wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, seed=5)
        pretrain_to_reference(wf, prob.hf_bits, n_steps=150)
        vmc = VMC(wf, prob.hamiltonian,
                  VMCConfig(n_samples=10**6, eloc_mode="exact", warmup=300, seed=6))
        vmc.run(args.iters)
        e = vmc.best_energy()
        print(f"{r:6.3f}  {prob.e_hf:+.6f}  {ccsd:+.6f}  {e:+.6f}  {fci:+.6f}  "
              f"{abs(e - fci):.2e}")


if __name__ == "__main__":
    main()
