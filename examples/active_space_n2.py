#!/usr/bin/env python3
"""Active-space NNQS: the N2 triple bond in a CAS(6,6) window.

Large molecules are routinely attacked by correlating only the chemically
active orbitals: core orbitals are frozen into an effective one-body
operator and high virtuals dropped (``problem.n_frozen`` / ``n_active``).
For N2/STO-3G the 2x1s cores are frozen and six orbitals around the Fermi
level kept — a CAS(6 electrons, 6 orbitals) = 12-qubit problem capturing
the triple-bond static correlation.

The script compares HF / CASCI (exact in the window) / QiankunNet trained
with the Sec. 4.1 protocol, at two bond lengths (equilibrium and stretched,
where static correlation grows).  Each point is one declarative
:class:`~repro.api.RunSpec` — ``output.reference="fci"`` makes the driver
compute the in-window CASCI energy and report the error against it.

Usage:  python examples/active_space_n2.py [--iters 300] [--bond-lengths 1.0977 1.6]
"""
import argparse
import tempfile

from repro.api import (
    AnsatzSpec,
    OptimizerSpec,
    OutputSpec,
    ProblemSpec,
    RunSpec,
    SamplingSpec,
    TrainSpec,
    run,
)
from repro.chem import build_problem, run_fci


def run_point(r: float, iters: int) -> None:
    prob = build_problem("N2", "sto-3g", n_frozen=2, n_active=6, r=r)
    casci = run_fci(prob.hamiltonian)
    print(f"\n== N2 @ {r:.4f} A — CAS({prob.n_electrons}e, {prob.n_qubits // 2}o), "
          f"{prob.n_qubits} qubits, {prob.hamiltonian.n_terms} Pauli strings ==")
    print(f"  HF     {prob.e_hf:+.6f} Ha")
    print(f"  CASCI  {casci.energy:+.6f} Ha   "
          f"(window correlation {casci.energy - prob.e_hf:+.4f})")

    spec = RunSpec(
        name=f"n2-cas66-r{r:.4f}",
        problem=ProblemSpec(molecule="N2", basis="sto-3g", n_frozen=2,
                            n_active=6, geometry={"r": r}),
        ansatz=AnsatzSpec(name="transformer", seed=21),
        optimizer=OptimizerSpec(name="adamw", warmup=200),
        sampling=SamplingSpec(ns_growth=1.05, ns_max=10**7, pretrain_iters=50),
        train=TrainSpec(max_iterations=iters, pretrain_steps=150,
                        plateau_window=50, seed=22),
        output=OutputSpec(reference="fci"),
    )
    with tempfile.TemporaryDirectory() as tmp:
        result = run(spec, run_dir=f"{tmp}/run")
    print("  QiankunNet (run(spec)):")
    for line in result.report.summary().splitlines():
        print("    " + line)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--iters", type=int, default=300)
    ap.add_argument("--bond-lengths", type=float, nargs="+",
                    default=[1.0977, 1.6])
    args = ap.parse_args()
    for r in args.bond_lengths:
        run_point(r, args.iters)
    print("\nStretched N2 is the static-correlation stress test: the HF gap "
          "grows while CASCI stays exact in the window — the regime the "
          "paper targets NNQS at (Sec. 1, 'CC could fail in presence of "
          "strong static correlations').")


if __name__ == "__main__":
    main()
