#!/usr/bin/env python3
"""Active-space NNQS: the N2 triple bond in a CAS(6,6) window.

Large molecules are routinely attacked by correlating only the chemically
active orbitals: core orbitals are frozen into an effective one-body
operator and high virtuals dropped (``mo_transform(n_frozen, n_active)``).
For N2/STO-3G the 2x1s cores are frozen and six orbitals around the Fermi
level kept — a CAS(6 electrons, 6 orbitals) = 12-qubit problem capturing
the triple-bond static correlation.

The script compares HF / CASCI (exact in the window) / QiankunNet trained
with the Sec. 4.1 protocol (`repro.core.trainer.Trainer`: warm start,
growing N_s, plateau stop), at two bond lengths (equilibrium and stretched,
where static correlation grows).

Usage:  python examples/active_space_n2.py [--iters 300] [--bond-lengths 1.0977 1.6]
"""
import argparse

from repro.chem import build_problem, run_fci
from repro.core import TrainConfig, Trainer, build_qiankunnet


def run_point(r: float, iters: int) -> None:
    prob = build_problem("N2", "sto-3g", n_frozen=2, n_active=6, r=r)
    casci = run_fci(prob.hamiltonian)
    print(f"\n== N2 @ {r:.4f} A — CAS({prob.n_electrons}e, {prob.n_qubits // 2}o), "
          f"{prob.n_qubits} qubits, {prob.hamiltonian.n_terms} Pauli strings ==")
    print(f"  HF     {prob.e_hf:+.6f} Ha")
    print(f"  CASCI  {casci.energy:+.6f} Ha   "
          f"(window correlation {casci.energy - prob.e_hf:+.4f})")

    wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, seed=21)
    trainer = Trainer(
        wf,
        prob.hamiltonian,
        TrainConfig(max_iterations=iters, pretrain_steps=150, warmup=200,
                    pretrain_iters=50, ns_growth=1.05, ns_max=10**7,
                    plateau_window=50, seed=22),
        hf_bits=prob.hf_bits,
        e_hf=prob.e_hf,
        e_reference=casci.energy,
    )
    report = trainer.train()
    print("  QiankunNet (Trainer):")
    for line in report.summary().splitlines():
        print("    " + line)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--iters", type=int, default=300)
    ap.add_argument("--bond-lengths", type=float, nargs="+",
                    default=[1.0977, 1.6])
    args = ap.parse_args()
    for r in args.bond_lengths:
        run_point(r, args.iters)
    print("\nStretched N2 is the static-correlation stress test: the HF gap "
          "grows while CASCI stays exact in the window — the regime the "
          "paper targets NNQS at (Sec. 1, 'CC could fail in presence of "
          "strong static correlations').")


if __name__ == "__main__":
    main()
