#!/usr/bin/env python3
"""Data-centric parallel VMC (Fig. 4): engine backends, timings, comm volume.

Runs the unified execution engine's staged iteration on thread ranks and
prints, per rank count: wall time, the sampling / local-energy / gradient
stage decomposition (the Fig. 11 profile), measured communication bytes, and
the closed-form Sec. 3.2 volume for comparison.

The same configuration is one spec away from the CLI front door:

    python -m repro run --preset smoke \
        --set parallel.backend=threads --set parallel.n_ranks=4

which additionally gets checkpoint/resume, metrics.jsonl and model
publishing from the run driver.

Usage:  python examples/parallel_scaling.py [--molecule N2] [--ranks 1 2 4]
"""
import argparse

from repro import build_problem, build_qiankunnet
from repro.core import VMC, VMCConfig, pretrain_to_reference
from repro.hamiltonian import compress_hamiltonian
from repro.parallel import CommVolumeModel, ThreadBackend


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--molecule", default="N2")
    ap.add_argument("--ranks", type=int, nargs="+", default=[1, 2, 4])
    ap.add_argument("--samples", type=int, default=200_000)
    ap.add_argument("--iters", type=int, default=3)
    ap.add_argument("--eloc-partition", default="balanced",
                    choices=["balanced", "contiguous"],
                    help="Sec. 3.3 weight-balanced eloc chunking (default) "
                         "or the naive contiguous 1/N_p split")
    args = ap.parse_args()

    prob = build_problem(args.molecule, "sto-3g")
    comp = compress_hamiltonian(prob.hamiltonian)
    print(f"{args.molecule}: {prob.n_qubits} qubits, "
          f"{prob.hamiltonian.n_terms} Pauli strings "
          f"({comp.n_groups} unique flip masks)")
    print()
    print("ranks  t/iter(s)  t_sample  t_eloc  t_grad  N_u     comm(MB)  model(MB)")
    print("-" * 76)
    for n_ranks in args.ranks:
        wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, seed=13)
        pretrain_to_reference(wf, prob.hf_bits, n_steps=60, target_prob=0.2)
        driver = VMC(
            wf, comp,
            VMCConfig(n_samples=args.samples, eloc_mode="sample_aware",
                      seed=14),
            backend=ThreadBackend(n_ranks=n_ranks, nu_star_per_rank=32,
                                  eloc_partition=args.eloc_partition),
        )
        driver.step()  # warmup
        stats = [driver.step() for _ in range(args.iters)]
        s = stats[-1]
        model = CommVolumeModel(prob.n_qubits, s.n_unique, n_ranks,
                                wf.num_parameters())
        wall = sum(x.wall_time for x in stats) / len(stats)
        print(f"{n_ranks:5d}  {wall:9.3f}  {s.time_sampling:8.3f}  "
              f"{s.time_local_energy:6.3f}  {s.time_gradient:6.3f}  "
              f"{s.n_unique:6d}  {s.comm_bytes / 1e6:8.1f}  "
              f"{model.total_bytes / 1e6:9.1f}")
    print()
    print("Paper's Sec. 3.2 example (C2, N_u=2.7e4, N_p=64, M=2.7e5):")
    example = CommVolumeModel(20, 27_000, 64, 270_000)
    print(f"  model total = {example.total_bytes / 1e6:.1f} MB "
          f"(paper quotes 'about 173 MB')")


if __name__ == "__main__":
    main()
