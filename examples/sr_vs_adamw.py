#!/usr/bin/env python3
"""Stochastic reconfiguration vs AdamW — the optimizer choice behind the paper.

Sec. 1 of the paper argues that conventional NNQS needs stochastic
reconfiguration (SR) for stable convergence, and that SR's dense M x M solve
"greatly prohibits the usage of very deep neural networks"; the autoregressive
+ AdamW path is what makes QiankunNet scale.  This example measures both
optimizers on H2/STO-3G with the same ansatz and sample budget.

Typical outcome: SR converges to the Hartree–Fock basin in a few dozen
iterations and stalls at the sign-structure plateau; AdamW's noisy stochastic
gradients escape it and reach chemical accuracy — while never forming an
M x M matrix.

Usage:  python examples/sr_vs_adamw.py [--sr-iters 60] [--adamw-iters 300]
"""
import argparse
import time

import numpy as np

from repro.chem import build_problem, run_fci
from repro.core import (
    VMC,
    VMCConfig,
    SRConfig,
    StochasticReconfiguration,
    batch_autoregressive_sample,
    build_qiankunnet,
    correlation_energy_fraction,
    local_energy,
    pretrain_to_reference,
)
from repro.hamiltonian import compress_hamiltonian


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--sr-iters", type=int, default=60)
    ap.add_argument("--adamw-iters", type=int, default=300)
    args = ap.parse_args()

    prob = build_problem("H2", "sto-3g", r=0.7414)
    fci = run_fci(prob.hamiltonian).energy
    comp = compress_hamiltonian(prob.hamiltonian)
    print(f"== H2/STO-3G:  HF {prob.e_hf:+.6f}  FCI {fci:+.6f} ==\n")

    net_kwargs = dict(d_model=8, n_heads=2, n_layers=1, phase_hidden=(16,))

    # ---------------------------------------------------------------- SR
    wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, seed=1, **net_kwargs)
    pretrain_to_reference(wf, prob.hf_bits, n_steps=100)
    print(f"[SR]    model M = {wf.num_parameters()} parameters "
          f"(SR solves an M x M system each iteration)")
    sr = StochasticReconfiguration(wf, SRConfig(lr=0.2, diag_shift=0.02))
    rng = np.random.default_rng(2)
    t0 = time.perf_counter()
    e_sr = np.inf
    for i in range(args.sr_iters):
        batch = batch_autoregressive_sample(wf, 10**5, rng)
        eloc, _ = local_energy(wf, comp, batch, mode="exact")
        info = sr.step(batch, eloc)
        e_sr = info.energy
        if (i + 1) % max(args.sr_iters // 4, 1) == 0:
            print(f"[SR]    iter {i + 1:4d}  E = {e_sr:+.6f}  "
                  f"cond(S) = {info.s_condition:.1e}")
    t_sr = time.perf_counter() - t0

    # ------------------------------------------------------------- AdamW
    wf2 = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, seed=3, **net_kwargs)
    pretrain_to_reference(wf2, prob.hf_bits, n_steps=100)
    vmc = VMC(wf2, prob.hamiltonian,
              VMCConfig(n_samples=10**5, eloc_mode="exact", warmup=150, seed=4))
    t0 = time.perf_counter()
    vmc.run(args.adamw_iters,
            log_every=max(args.adamw_iters // 4, 1))
    t_adamw = time.perf_counter() - t0
    e_adamw = vmc.best_energy()

    print("\n== summary ==")
    for label, e, t in (("SR", e_sr, t_sr), ("AdamW", e_adamw, t_adamw)):
        frac = correlation_energy_fraction(e, prob.e_hf, fci)
        print(f"  {label:>6}: E = {e:+.6f} Ha  |E-FCI| = {abs(e - fci):.2e}  "
              f"corr. recovered = {100 * frac:5.1f}%  wall = {t:.1f}s")
    print("\nThe paper's design choice in one line: AdamW needs no M x M solve "
          "and keeps improving where SR plateaus.")


if __name__ == "__main__":
    main()
