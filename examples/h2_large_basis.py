#!/usr/bin/env python3
"""H2 in the cc-pVTZ basis — the paper's 56-qubit Fig. 13 workload.

Builds the real cc-pVTZ Hamiltonian (our McMurchie-Davidson engine handles
the d shells), solves FCI exactly in the 784-determinant sector, and runs a
short VMC to show the NNQS machinery operating at 56 qubits.  With
--basis aug-cc-pvtz the 92-qubit system of Fig. 13(c,d) is built instead.

Usage:  python examples/h2_large_basis.py [--iters 40] [--basis cc-pvtz]
"""
import argparse

from repro import VMC, VMCConfig, build_problem, build_qiankunnet, pretrain_to_reference
from repro.chem import run_fci


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--iters", type=int, default=40)
    ap.add_argument("--basis", default="cc-pvtz",
                    choices=["sto-3g", "6-31g", "cc-pvtz", "aug-cc-pvtz"],
                    help="sto-3g/6-31g are fast smoke-test settings; "
                         "cc-pvtz (56 qubits) and aug-cc-pvtz (92) are the "
                         "Fig. 13 workloads")
    ap.add_argument("--bond-length", type=float, default=0.7414)
    args = ap.parse_args()

    print(f"Building H2/{args.basis} Hamiltonian (cached after first run)...")
    prob = build_problem("H2", args.basis, r=args.bond_length)
    print(f"  {prob.n_qubits} qubits, {prob.hamiltonian.n_terms} Pauli strings")
    print(f"  HF  = {prob.e_hf:+.6f} Ha")

    fci = run_fci(prob.hamiltonian)
    print(f"  FCI = {fci.energy:+.6f} Ha  (sector dimension {fci.dim})")
    print("  [literature: cc-pVTZ FCI at 0.7414 A is about -1.17234 Ha]")

    wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, seed=31)
    pretrain_to_reference(wf, prob.hf_bits, n_steps=100)
    vmc = VMC(wf, prob.hamiltonian,
              VMCConfig(n_samples=10**6, eloc_mode="exact", warmup=100, seed=32))
    vmc.run(args.iters, log_every=10)
    e = vmc.best_energy(10)
    print(f"  QiankunNet after {args.iters} iterations: {e:+.6f} Ha "
          f"(gap to FCI {e - fci.energy:+.2e}; the paper's 1e5-iteration "
          "budget closes this to chemical accuracy)")


if __name__ == "__main__":
    main()
