"""Symplectic Pauli algebra and dense-matrix cross checks."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamiltonian import (
    PauliTerm,
    letters_to_xz,
    pauli_mul,
    strings_to_matrix,
    term_matrix,
    xz_to_letters,
)

_I = np.eye(2)
_X = np.array([[0, 1], [1, 0]], dtype=float)
_Y = np.array([[0, -1j], [1j, 0]])
_Z = np.diag([1.0, -1.0])
_LETTER = {"I": _I, "X": _X, "Y": _Y, "Z": _Z}


def dense_from_letters(s: str) -> np.ndarray:
    """Qubit 0 = least-significant bit of the basis index."""
    mat = np.array([[1.0]])
    for ch in s:
        mat = np.kron(_LETTER[ch], mat)
    return mat


class TestSingleQubit:
    def test_xz_matrices(self):
        np.testing.assert_array_equal(term_matrix(1, 0, 1), _X)
        np.testing.assert_array_equal(term_matrix(0, 1, 1), _Z)
        # X Z = -i Y  =>  i * (X Z) = Y
        np.testing.assert_allclose(1j * term_matrix(1, 1, 1), _Y)

    def test_z_sign_convention(self):
        # Z|1> = -|1> with basis index = occupation number.
        Z = term_matrix(0, 1, 1)
        assert Z[1, 1] == -1.0 and Z[0, 0] == 1.0


class TestMul:
    @settings(max_examples=40, deadline=None)
    @given(*(st.integers(0, 2**6 - 1) for _ in range(4)))
    def test_matches_dense(self, x1, z1, x2, z2):
        n = 6
        x, z, sign = pauli_mul(x1, z1, x2, z2)
        lhs = term_matrix(x1, z1, n) @ term_matrix(x2, z2, n)
        rhs = sign * term_matrix(x, z, n)
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(*(st.integers(0, 2**5 - 1) for _ in range(6)))
    def test_associativity(self, a, b, c, d, e, f):
        x1, z1, s1 = pauli_mul(a, b, c, d)
        x2, z2, s2 = pauli_mul(x1, z1, e, f)
        y1, w1, t1 = pauli_mul(c, d, e, f)
        y2, w2, t2 = pauli_mul(a, b, y1, w1)
        assert (x2, z2, s1 * s2) == (y2, w2, t1 * t2)

    def test_self_product_is_identity(self):
        for x, z in [(0b101, 0b011), (0, 0b1), (0b11, 0)]:
            xx, zz, sign = pauli_mul(x, z, x, z)
            assert xx == 0 and zz == 0
            # (X^x Z^z)^2 = (-1)^{|x & z|} I
            assert sign == (-1) ** bin(x & z).count("1")


class TestLetterConversion:
    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="IXYZ", min_size=1, max_size=8))
    def test_roundtrip(self, s):
        x, z, phase = letters_to_xz(s)
        assert xz_to_letters(x, z, len(s)) == s
        assert phase == (1j) ** s.count("Y")

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="IXYZ", min_size=1, max_size=6))
    def test_dense_equivalence(self, s):
        """coeff_letters * letters == coeff_xz * X^x Z^z with coeff_xz = phase."""
        x, z, phase = letters_to_xz(s)
        np.testing.assert_allclose(
            dense_from_letters(s), phase * term_matrix(x, z, len(s)), atol=1e-12
        )

    def test_invalid_letter_raises(self):
        with pytest.raises(ValueError):
            letters_to_xz("XQZ")


class TestPauliTerm:
    def test_y_count(self):
        x, z, _ = letters_to_xz("XYYZ")
        t = PauliTerm(x=x, z=z, coeff=1.0, n=4)
        assert t.n_y == 2
        assert t.letters() == "XYYZ"

    def test_letter_coeff(self):
        x, z, phase = letters_to_xz("YY")
        t = PauliTerm(x=x, z=z, coeff=2.0 * phase, n=2)
        assert t.letter_coeff() == pytest.approx(2.0)

    def test_strings_to_matrix_hermitian(self):
        terms = []
        for s, c in [("XX", 0.3), ("YY", -0.2), ("ZI", 0.5), ("IZ", 0.5)]:
            x, z, phase = letters_to_xz(s)
            terms.append(PauliTerm(x=x, z=z, coeff=c * phase, n=2))
        H = strings_to_matrix(terms)
        np.testing.assert_allclose(H, H.conj().T, atol=1e-12)
