"""Autoregressive + batch autoregressive sampling (Fig. 3)."""
import numpy as np
import pytest

from repro.core import (
    autoregressive_sample,
    bas_prefix_sweep,
    batch_autoregressive_sample,
    build_qiankunnet,
)
from tests.test_wavefunction import sector_bitstrings


@pytest.fixture(scope="module")
def wf():
    return build_qiankunnet(8, 2, 2, d_model=8, n_heads=2, n_layers=1,
                            phase_hidden=(16,), seed=9)


class TestBAS:
    def test_weights_sum_to_ns(self, wf):
        rng = np.random.default_rng(0)
        batch = batch_autoregressive_sample(wf, 10_000, rng)
        assert batch.n_samples == 10_000
        assert np.all(batch.weights > 0)

    def test_samples_unique(self, wf):
        rng = np.random.default_rng(1)
        batch = batch_autoregressive_sample(wf, 5000, rng)
        assert len(np.unique(batch.bits, axis=0)) == batch.n_unique

    def test_samples_in_sector(self, wf):
        rng = np.random.default_rng(2)
        batch = batch_autoregressive_sample(wf, 5000, rng)
        assert np.all(wf.constraint.validate_bits(batch.bits))

    def test_deterministic_with_seed(self, wf):
        b1 = batch_autoregressive_sample(wf, 1000, np.random.default_rng(42))
        b2 = batch_autoregressive_sample(wf, 1000, np.random.default_rng(42))
        np.testing.assert_array_equal(b1.bits, b2.bits)
        np.testing.assert_array_equal(b1.weights, b2.weights)

    def test_huge_ns_supported(self, wf):
        """N_s up to 1e12 (the paper's budget) must not overflow."""
        rng = np.random.default_rng(3)
        batch = batch_autoregressive_sample(wf, 10**12, rng)
        assert batch.n_samples == 10**12
        # Unique count is bounded by the sector size, not N_s.
        assert batch.n_unique <= len(sector_bitstrings(8, 2, 2))

    def test_empirical_matches_ansatz_distribution(self, wf):
        """BAS frequencies converge to pi(x) (law of large numbers)."""
        rng = np.random.default_rng(4)
        batch = batch_autoregressive_sample(wf, 2_000_000, rng)
        logp = wf.log_prob(batch.bits).data
        freq = batch.frequencies()
        np.testing.assert_allclose(freq, np.exp(logp), atol=5e-3)

    def test_matches_plain_autoregressive_distribution(self, wf):
        """BAS and per-sample autoregressive sampling draw the same law."""
        rng = np.random.default_rng(5)
        bas = batch_autoregressive_sample(wf, 200_000, rng)
        plain = autoregressive_sample(wf, 20_000, rng)
        # Compare empirical frequencies on the union support.
        all_bits = sector_bitstrings(8, 2, 2)
        def freq_of(batch):
            out = np.zeros(len(all_bits))
            for i, b in enumerate(all_bits):
                hit = np.all(batch.bits == b, axis=1)
                if hit.any():
                    out[i] = batch.weights[hit].sum() / batch.n_samples
            return out
        np.testing.assert_allclose(freq_of(bas), freq_of(plain), atol=2e-2)

    def test_frequencies_sum_to_one(self, wf):
        batch = batch_autoregressive_sample(wf, 1234, np.random.default_rng(6))
        assert batch.frequencies().sum() == pytest.approx(1.0)


class TestPrefixSweep:
    def test_stops_at_threshold(self, wf):
        rng = np.random.default_rng(7)
        state = bas_prefix_sweep(wf, 10**6, rng, stop_unique=4)
        assert len(state.weights) >= 4 or state.step == wf.n_tokens
        assert state.weights.sum() == 10**6

    def test_resume_produces_full_samples(self, wf):
        rng = np.random.default_rng(8)
        state = bas_prefix_sweep(wf, 10**5, rng, stop_unique=4)
        batch = batch_autoregressive_sample(wf, 0, rng, start=state)
        assert batch.n_samples == 10**5
        assert np.all(wf.constraint.validate_bits(batch.bits))

    def test_counts_tracked_along_prefix(self, wf):
        rng = np.random.default_rng(9)
        state = bas_prefix_sweep(wf, 10**4, rng, stop_unique=6)
        cu, cd = wf.sector_counts(state.prefixes)
        np.testing.assert_array_equal(cu, state.counts_up)
        np.testing.assert_array_equal(cd, state.counts_dn)


class TestPlainAutoregressive:
    def test_counts_and_sector(self, wf):
        rng = np.random.default_rng(10)
        batch = autoregressive_sample(wf, 500, rng)
        assert batch.n_samples == 500
        assert np.all(wf.constraint.validate_bits(batch.bits))

    def test_cost_scales_with_ns_not_for_bas(self, wf):
        """BAS cost is ~independent of N_s (the paper's headline claim)."""
        import time

        rng = np.random.default_rng(11)
        t0 = time.perf_counter()
        batch_autoregressive_sample(wf, 10**3, rng)
        t_small = time.perf_counter() - t0
        t0 = time.perf_counter()
        batch_autoregressive_sample(wf, 10**9, rng)
        t_big = time.perf_counter() - t0
        # A factor-1e6 budget increase must cost far less than 1e6x time.
        assert t_big < 50 * max(t_small, 1e-3)
