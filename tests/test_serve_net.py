"""The network serving tier: protocol, hash ring, router/worker topology.

Fast tests cover the pure pieces (frame envelope round-trips, consistent-hash
placement, routing keys, ServeSpec validation).  The ``@pytest.mark.slow``
half boots the real thing — router + worker subprocesses over sockets — and
checks the contract end to end: served results bit-identical to direct
in-process evaluation, overload → 429 without wedging, worker crash → 503
then respawn, version refresh mid-traffic without torn reads, and graceful
drain on shutdown.
"""
from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.cli import main as cli_main
from repro.api.spec import RunSpec, ServeSpec, SpecError
from repro.parallel.rendezvous import FRAME_BLOB, FRAME_CTRL, recv_frame
from repro.serve.net import (
    ERROR_STATUS,
    HashRing,
    NetProtocolError,
    NetServer,
    pack_arrays,
    parse_request,
    parse_response,
    routing_key,
    send_request,
    send_response,
    unpack_arrays,
)

SMOKE_ARGS = [
    "--set", "train.max_iterations=2",
    "--set", "sampling.ns_pretrain=300",
    "--set", "sampling.ns_max=300",
]


# ---------------------------------------------------------------------------
# Array payloads + envelope (no sockets, no processes)
# ---------------------------------------------------------------------------
class TestArrayPayloads:
    def test_round_trip_multiple_arrays(self):
        arrays = {
            "bits": np.arange(12, dtype=np.uint8).reshape(3, 4),
            "weights": np.array([5, 7, 9], dtype=np.int64),
            "value": np.array([1 + 2j, 3 - 4j], dtype=np.complex128),
        }
        metas, raw = pack_arrays(arrays)
        out = unpack_arrays(metas, raw)
        assert set(out) == set(arrays)
        for name in arrays:
            assert out[name].dtype == arrays[name].dtype
            np.testing.assert_array_equal(out[name], arrays[name])

    def test_empty_payload(self):
        metas, raw = pack_arrays({})
        assert metas == [] and raw == b""
        assert unpack_arrays(metas, raw) == {}

    def test_overrun_rejected(self):
        metas, raw = pack_arrays({"a": np.zeros(4, dtype=np.float64)})
        with pytest.raises(NetProtocolError, match="overruns"):
            unpack_arrays(metas, raw[:-8])

    def test_trailing_bytes_rejected(self):
        metas, raw = pack_arrays({"a": np.zeros(4, dtype=np.float64)})
        with pytest.raises(NetProtocolError, match="cover"):
            unpack_arrays(metas, raw + b"xx")

    def test_object_dtype_rejected(self):
        with pytest.raises(NetProtocolError, match="object dtype"):
            unpack_arrays([{"name": "a", "dtype": "|O", "shape": [1]}], b"")

    def test_duplicate_names_rejected(self):
        metas, raw = pack_arrays({"a": np.zeros(2, dtype=np.uint8)})
        with pytest.raises(NetProtocolError, match="duplicate"):
            unpack_arrays(metas + metas, raw + raw)

    def test_malformed_meta_rejected(self):
        with pytest.raises(NetProtocolError, match="must be a list"):
            unpack_arrays({"not": "a list"}, b"")
        with pytest.raises(NetProtocolError, match="must be a dict"):
            unpack_arrays(["nope"], b"")
        with pytest.raises(NetProtocolError, match="malformed array meta"):
            unpack_arrays([{"dtype": "<f8", "shape": [1]}], b"\0" * 8)
        with pytest.raises(NetProtocolError, match="shape"):
            unpack_arrays([{"name": "a", "dtype": "<f8", "shape": [-1]}], b"")


def _frame_round_trip(send, parse, *args, **kwargs):
    a, b = socket.socketpair()
    try:
        send(a, *args, **kwargs)
        return parse(*recv_frame(b))
    finally:
        a.close()
        b.close()


_DTYPES = st.sampled_from(["<u1", "<i8", "<f8", "<c16"])
_SHAPES = st.lists(st.integers(0, 4), min_size=0, max_size=3)


@st.composite
def _array_dicts(draw):
    names = draw(st.lists(
        st.text(alphabet="abcdefgh", min_size=1, max_size=6),
        min_size=0, max_size=3, unique=True))
    out = {}
    for name in names:
        dtype = np.dtype(draw(_DTYPES))
        shape = tuple(draw(_SHAPES))
        n = int(np.prod(shape)) if shape else 1
        out[name] = (np.arange(n) % 251).astype(dtype).reshape(shape)
    return out


class TestEnvelopeRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(req_id=st.integers(0, 2**31), op=st.sampled_from(
        ["log_amplitudes", "sample", "conditional_probs", "local_energy"]),
        arrays=_array_dicts(),
        seed=st.integers(0, 2**31))
    def test_request_round_trip(self, req_id, op, arrays, seed):
        args = {"seed": seed}
        rid, rop, rargs, rarrays = _frame_round_trip(
            send_request, parse_request, req_id, op, args, arrays)
        assert (rid, rop, rargs) == (req_id, op, args)
        assert set(rarrays) == set(arrays)
        for name in arrays:
            assert rarrays[name].dtype == arrays[name].dtype
            np.testing.assert_array_equal(rarrays[name], arrays[name])

    @settings(max_examples=30, deadline=None)
    @given(req_id=st.integers(0, 2**31), arrays=_array_dicts(),
           version=st.integers(1, 100))
    def test_response_round_trip(self, req_id, arrays, version):
        result = {"version": version, "worker": 0}
        rid, error, rresult, rarrays = _frame_round_trip(
            send_response, parse_response, req_id, result, arrays)
        assert rid == req_id and error is None and rresult == result
        for name in arrays:
            np.testing.assert_array_equal(rarrays[name], arrays[name])

    def test_error_response_round_trip(self):
        from repro.serve.net import send_error

        rid, error, result, arrays = _frame_round_trip(
            send_error, parse_response, 7, "overloaded", "queue full")
        assert rid == 7 and result == {} and arrays == {}
        assert error == {"code": "overloaded", "message": "queue full"}
        assert ERROR_STATUS[error["code"]] == 429

    def test_unknown_error_code_normalized_to_internal(self):
        from repro.serve.net import send_error

        _, error, _, _ = _frame_round_trip(
            send_error, parse_response, 1, "martian", "huh")
        assert error["code"] == "internal"

    def test_request_must_be_blob_frame(self):
        with pytest.raises(NetProtocolError, match="blob"):
            parse_request(FRAME_CTRL, {"kind": "request", "id": 1,
                                       "op": "sample", "args": {}}, b"")

    def test_unknown_op_rejected(self):
        with pytest.raises(NetProtocolError, match="unknown op"):
            parse_request(FRAME_BLOB, {"kind": "request", "id": 1,
                                       "op": "rm -rf", "args": {}}, b"")

    def test_non_int_id_rejected(self):
        with pytest.raises(NetProtocolError, match="id must be an int"):
            parse_response(FRAME_CTRL, {"kind": "response", "id": "x",
                                        "ok": False}, b"")


# ---------------------------------------------------------------------------
# Consistent hashing + routing keys
# ---------------------------------------------------------------------------
class TestHashRing:
    def test_lookup_deterministic_across_instances(self):
        keys = [f"key-{i}".encode() for i in range(200)]
        r1, r2 = HashRing(), HashRing()
        for ring in (r1, r2):
            for node in range(4):
                ring.add(node)
        assert [r1.lookup(k) for k in keys] == [r2.lookup(k) for k in keys]

    def test_all_nodes_get_traffic(self):
        ring = HashRing()
        for node in range(4):
            ring.add(node)
        owners = Counter(ring.lookup(f"key-{i}".encode()) for i in range(500))
        assert set(owners) == {0, 1, 2, 3}
        assert min(owners.values()) > 25  # rough balance, not perfection

    def test_removal_only_remaps_the_dead_nodes_keys(self):
        ring = HashRing()
        for node in range(4):
            ring.add(node)
        keys = [f"key-{i}".encode() for i in range(300)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(2)
        assert ring.nodes() == {0, 1, 3}
        for k in keys:
            if before[k] != 2:
                assert ring.lookup(k) == before[k], "stable key remapped"
            else:
                assert ring.lookup(k) != 2
        # Adding the node back restores the original placement exactly —
        # the property the router's keep-slot-during-respawn leans on.
        ring.add(2)
        assert {k: ring.lookup(k) for k in keys} == before

    def test_empty_ring_raises(self):
        with pytest.raises(KeyError, match="no live workers"):
            HashRing().lookup(b"anything")
        ring = HashRing()
        ring.add("only")
        ring.remove("only")
        with pytest.raises(KeyError):
            ring.lookup(b"anything")

    def test_len_counts_nodes_not_vnodes(self):
        ring = HashRing(replicas=16)
        ring.add("a")
        ring.add("a")  # idempotent
        ring.add("b")
        assert len(ring) == 2

    def test_replicas_validated(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)


class TestRoutingKey:
    def test_conditional_probs_keyed_by_prefix_anchor(self):
        base = np.arange(12, dtype=np.int64).reshape(1, 12)
        extended = np.concatenate([base, [[12, 13]]], axis=None).reshape(1, 14)
        counts = {"counts_up": np.ones(1, np.int64),
                  "counts_dn": np.ones(1, np.int64)}
        k_base = routing_key("conditional_probs", {},
                             {"prefix_tokens": base, **counts})
        k_ext = routing_key("conditional_probs", {},
                            {"prefix_tokens": extended, **counts})
        # Extending a decode trajectory past the anchor keeps it on the
        # same worker (the one holding its live KV-cache session).
        assert k_base == k_ext
        different = base.copy()
        different[0, 0] += 1
        assert routing_key("conditional_probs", {},
                           {"prefix_tokens": different, **counts}) != k_base

    def test_sample_keyed_by_seed(self):
        assert routing_key("sample", {"seed": 3}, {}) == \
            routing_key("sample", {"seed": 3, "n_samples": 999}, {})
        assert routing_key("sample", {"seed": 3}, {}) != \
            routing_key("sample", {"seed": 4}, {})

    def test_bits_ops_keyed_by_first_row(self):
        rows = np.array([[1, 0, 1, 0], [0, 1, 0, 1]], dtype=np.uint8)
        k1 = routing_key("log_amplitudes", {}, {"bits": rows})
        k2 = routing_key("local_energy", {}, {"bits": rows[:1]})
        assert k1 == k2  # same leading row co-locates (table reuse)
        assert routing_key("log_amplitudes", {},
                           {"bits": rows[::-1]}) != k1

    def test_empty_arrays_do_not_crash(self):
        assert routing_key("log_amplitudes", {}, {}) == b"bt:"
        assert routing_key("conditional_probs", {}, {}) == b"cp:"


# ---------------------------------------------------------------------------
# ServeSpec
# ---------------------------------------------------------------------------
class TestServeSpec:
    def test_defaults_valid_and_round_trip(self):
        spec = RunSpec()
        out = RunSpec.from_dict(spec.to_dict())
        assert out.serve == spec.serve

    def test_spec_without_serve_section_still_loads(self):
        # Run dirs written before the serving tier existed have no "serve"
        # key in spec.json; they must keep loading with defaults.
        data = RunSpec().to_dict()
        del data["serve"]
        assert RunSpec.from_dict(data).serve == ServeSpec()

    def test_validation_names_field_paths(self):
        with pytest.raises(SpecError, match="serve.max_batch_size"):
            ServeSpec(max_batch_size=0)
        with pytest.raises(SpecError, match="serve.workers"):
            ServeSpec(workers=-1)
        with pytest.raises(SpecError, match="serve.max_wait_ms"):
            ServeSpec(max_wait_ms=-1.0)
        with pytest.raises(SpecError, match="serve.drain_timeout_s"):
            ServeSpec(drain_timeout_s=0)

    def test_set_overrides_reach_serve_section(self):
        spec = RunSpec().with_overrides(
            ["serve.max_batch_size=64", "serve.workers=3",
             "serve.max_wait_ms=0.5"])
        assert spec.serve.max_batch_size == 64
        assert spec.serve.workers == 3
        assert spec.serve.max_wait_ms == 0.5
        with pytest.raises(SpecError, match="serve.queue_capacity"):
            RunSpec().with_overrides(["serve.queue_capacity=0"])

    def test_to_serve_config_carries_batcher_knobs(self):
        cfg = ServeSpec(max_batch_size=17, max_wait_ms=0.25,
                        queue_capacity=5, submit_timeout=1.5).to_serve_config()
        assert (cfg.max_batch_size, cfg.max_wait_ms,
                cfg.queue_capacity, cfg.submit_timeout) == (17, 0.25, 5, 1.5)


# ---------------------------------------------------------------------------
# End to end: router + worker processes over real sockets
# ---------------------------------------------------------------------------
def _post(port: int, path: str, body: dict, timeout: float = 60.0):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(port: int, path: str, timeout: float = 30.0):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _complex(pairs) -> np.ndarray:
    return np.array([complex(re, im) for re, im in pairs],
                    dtype=np.complex128)


@pytest.fixture(scope="module")
def net_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("net") / "run"
    rc = cli_main(["run", "--preset", "smoke", *SMOKE_ARGS,
                   "--run-dir", str(run_dir)])
    assert rc == 0
    return run_dir


@contextmanager
def _server(run_dir, workers: int = 2, **spec_kw):
    spec_kw.setdefault("max_wait_ms", 0.0)
    server = NetServer(run_dir, workers=workers,
                       serve_spec=ServeSpec(**spec_kw)).start()
    try:
        server.wait_ready(timeout=120.0)
        yield server
    finally:
        server.close()


@pytest.mark.slow
class TestServingE2E:
    def test_served_results_bit_identical_to_direct(self, net_run):
        from repro.api.driver import serve_run

        with serve_run(net_run) as svc:
            batch = svc.sample(64, seed=3)
            direct_la = svc.log_amplitudes(batch.bits)
        with _server(net_run) as server:
            status, resp = _post(server.port, "/v1/log_amplitudes",
                                 {"bits": batch.bits.tolist()})
            assert status == 200 and resp["ok"]
            np.testing.assert_array_equal(_complex(resp["value"]), direct_la)

            status, resp = _post(server.port, "/v1/sample",
                                 {"n_samples": 64, "seed": 3})
            assert status == 200
            np.testing.assert_array_equal(
                np.asarray(resp["bits"], dtype=np.uint8), batch.bits)
            np.testing.assert_array_equal(
                np.asarray(resp["weights"], dtype=np.int64), batch.weights)

    def test_overload_returns_429_without_wedging(self, net_run):
        rng = np.random.default_rng(0)
        payloads = [[[int(b) for b in rng.integers(0, 2, 4)]]
                    for _ in range(150)]
        with _server(net_run, queue_capacity=2, max_batch_size=2) as server:
            def one(bits):
                return _post(server.port, "/v1/log_amplitudes",
                             {"bits": bits})[0]

            with ThreadPoolExecutor(32) as pool:
                codes = Counter(pool.map(one, payloads))
            # Burst past queue_capacity: some rejected, none mangled.
            assert set(codes) <= {200, 429}, codes
            assert codes[200] > 0
            assert codes[429] > 0, f"no backpressure seen: {codes}"
            # The full-queue path must not wedge the worker: a fresh
            # request right after the burst is served.
            assert _post(server.port, "/v1/log_amplitudes",
                         {"bits": [[0, 1, 0, 1]]})[0] == 200
            _, stats = _get(server.port, "/v1/stats")
            assert stats["http"]["statuses"].get("429", 0) > 0

    def test_worker_crash_gives_503_then_respawns(self, net_run):
        with _server(net_run, respawn_backoff_s=0.2) as server:
            _, stats = _get(server.port, "/v1/stats")
            os.kill(stats["per_worker"][0]["pid"], signal.SIGKILL)

            # Keys owned by the dead slot answer 503 during the respawn
            # window (the slot stays in the ring — no cache-cold migration).
            probe, saw_503 = None, False
            rng = np.random.default_rng(1)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and not saw_503:
                bits = [[int(b) for b in rng.integers(0, 2, 4)]]
                status, resp = _post(server.port, "/v1/log_amplitudes",
                                     {"bits": bits})
                if status == 503:
                    probe, saw_503 = bits, True
            assert saw_503, "no 503 observed after SIGKILL"

            # After the respawn the very same key is served again.
            deadline = time.monotonic() + 60.0
            status = None
            while time.monotonic() < deadline:
                status, _ = _post(server.port, "/v1/log_amplitudes",
                                  {"bits": probe})
                if status == 200:
                    break
                time.sleep(0.2)
            assert status == 200, "worker did not respawn"
            _, stats = _get(server.port, "/v1/stats")
            assert stats["restarts"] >= 1
            assert stats["live"] == 2

    def test_refresh_mid_traffic_has_no_torn_reads(self, net_run,
                                                   tmp_path_factory):
        from repro.serve.registry import ModelRegistry

        # Private copy: this test publishes a second version.
        run_dir = tmp_path_factory.mktemp("refresh") / "run"
        shutil.copytree(net_run, run_dir)
        registry = ModelRegistry(run_dir / "models")
        v1 = registry.latest_version()
        bits = np.array([[1, 0, 1, 0]], dtype=np.uint8)

        with _server(run_dir, refresh_poll_s=0.3) as server:
            responses = []
            status, resp = _post(server.port, "/v1/log_amplitudes",
                                 {"bits": bits.tolist()})
            assert status == 200 and resp["version"] == v1
            responses.append(resp)

            wf, _ = registry.load()
            wf.set_flat_params(wf.get_flat_params() + 0.01)
            v2 = registry.publish(wf, metadata={"test": "v2"})

            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                status, resp = _post(server.port, "/v1/log_amplitudes",
                                     {"bits": bits.tolist()})
                assert status == 200
                responses.append(resp)
                if resp["version"] == v2:
                    break
                time.sleep(0.05)
            assert responses[-1]["version"] == v2, "refresh never landed"

        # No torn reads: every response bit-matches the direct evaluation
        # of exactly the version it reports — never a blend.
        direct = {}
        for version in (v1, v2):
            wf_v, _ = registry.load(version)
            direct[version] = wf_v.log_amplitudes(bits)
        for resp in responses:
            assert resp["version"] in (v1, v2)
            np.testing.assert_array_equal(
                _complex(resp["value"]), direct[resp["version"]],
                err_msg=f"torn read at version {resp['version']}")

    def test_graceful_drain_writes_stats_and_reaps_workers(self, net_run):
        server = NetServer(net_run, workers=2,
                           serve_spec=ServeSpec(max_wait_ms=0.0)).start()
        try:
            server.wait_ready(timeout=120.0)
            for seed in range(3):
                assert _post(server.port, "/v1/sample",
                             {"n_samples": 16, "seed": seed})[0] == 200
        finally:
            stats = server.close()
        assert stats is not None and stats["drained"]
        # Drained workers exit 0 (the crash path exits nonzero).
        for proc in server._procs:
            assert proc is not None and proc.poll() == 0
        stats_path = net_run / "serve_stats.json"
        assert stats_path.exists()
        recorded = json.loads(stats_path.read_text())
        assert recorded["http"]["requests"] >= 3
        batchers = [w["service"]["batcher"]
                    for w in recorded["per_worker"] if "service" in w]
        assert sum(b["requests"] for b in batchers) >= 3
        # Closing twice is a no-op, not an error.
        assert server.close() is None

    def test_info_surfaces_serving_stats(self, net_run, capsys):
        # Runs after the drain test wrote serve_stats.json (same module
        # fixture); guard in case of reordering.
        if not (net_run / "serve_stats.json").exists():
            with _server(net_run) as server:
                _post(server.port, "/v1/sample", {"n_samples": 8, "seed": 0})
        assert cli_main(["info", str(net_run)]) == 0
        out = capsys.readouterr().out
        assert "models   versions" in out
        assert "serving" in out
        assert "rows/batch" in out

    def test_cli_serve_http_end_to_end(self, net_run):
        env = os.environ.copy()
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(net_run),
             "--port", "0", "--workers", "2",
             "--set", "serve.max_wait_ms=0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            line, deadline = "", time.monotonic() + 180.0
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if "serving" in line and "http://" in line:
                    break
            assert "http://" in line, f"server never came up: {line!r}"
            port = int(line.rsplit(":", 1)[1].split()[0])
            status, body = _get(port, "/v1/healthz")
            assert status == 200 and body["workers"] == 2
            assert _post(port, "/v1/log_amplitudes",
                         {"bits": [[1, 0, 1, 0]]})[0] == 200
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
            assert "draining" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        # No leaked worker processes after the drain.
        leaked = subprocess.run(
            ["pgrep", "-f", f"repro serve-worker {net_run}"],
            capture_output=True, text=True).stdout.strip()
        assert leaked == "", f"leaked workers: {leaked}"
