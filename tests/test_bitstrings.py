"""Unit + property tests for the packed-bitstring utilities."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitstrings import (
    bits_to_int,
    int_to_bits,
    lexsort_keys,
    pack_bits,
    parity64,
    popcount64,
    searchsorted_keys,
    unpack_bits,
)


class TestPackUnpack:
    def test_single_word_roundtrip(self):
        bits = np.array([[1, 0, 1, 1, 0, 0, 0, 1]], dtype=np.uint8)
        keys = pack_bits(bits)
        assert keys.shape == (1, 1)
        assert keys[0, 0] == 0b10001101
        np.testing.assert_array_equal(unpack_bits(keys, 8), bits)

    def test_1d_input_promoted(self):
        keys = pack_bits(np.array([1, 1, 0], dtype=np.uint8))
        assert keys.shape == (1, 1)
        assert keys[0, 0] == 3

    def test_two_word_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(20, 100)).astype(np.uint8)
        keys = pack_bits(bits)
        assert keys.shape == (20, 2)
        np.testing.assert_array_equal(unpack_bits(keys, 100), bits)

    def test_bit_placement_across_words(self):
        bits = np.zeros((1, 70), dtype=np.uint8)
        bits[0, 65] = 1
        keys = pack_bits(bits)
        assert keys[0, 0] == 0
        assert keys[0, 1] == 2  # bit 65 -> word 1, position 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=130))
    def test_roundtrip_property(self, bits):
        arr = np.array([bits], dtype=np.uint8)
        np.testing.assert_array_equal(unpack_bits(pack_bits(arr), len(bits)), arr)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**120 - 1))
    def test_matches_python_int(self, value):
        bits = int_to_bits(value, 120)
        keys = pack_bits(bits[None, :])
        recovered = int(keys[0, 0]) | (int(keys[0, 1]) << 64)
        assert recovered == value
        assert bits_to_int(bits) == value


class TestPopcountParity:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**64 - 1))
    def test_popcount_matches_python(self, v):
        arr = np.array([v], dtype=np.uint64)
        assert popcount64(arr)[0] == bin(v).count("1")

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**64 - 1))
    def test_parity_matches_python(self, v):
        arr = np.array([v], dtype=np.uint64)
        assert parity64(arr)[0] == bin(v).count("1") % 2

    def test_popcount_shape_preserved(self):
        arr = np.arange(12, dtype=np.uint64).reshape(3, 4)
        assert popcount64(arr).shape == (3, 4)

    def test_popcount_zero_and_full(self):
        arr = np.array([0, 2**64 - 1], dtype=np.uint64)
        np.testing.assert_array_equal(popcount64(arr), [0, 64])


class TestSearchSorted:
    def test_single_word_hits_and_misses(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, size=(50, 12)).astype(np.uint8)
        keys = np.unique(pack_bits(bits), axis=0)
        keys = keys[lexsort_keys(keys)]
        idx = searchsorted_keys(keys, keys)
        np.testing.assert_array_equal(keys[idx], keys)
        missing = np.array([[2**60]], dtype=np.uint64)
        assert searchsorted_keys(keys, missing)[0] == -1

    def test_multiword(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=(80, 100)).astype(np.uint8)
        keys = np.unique(pack_bits(bits), axis=0)
        keys = keys[lexsort_keys(keys)]
        idx = searchsorted_keys(keys, keys)
        assert np.all(idx >= 0)
        np.testing.assert_array_equal(keys[idx], keys)
        probe = keys[3].copy()
        probe[0] ^= np.uint64(1)  # perturb -> almost surely absent
        if not any(np.array_equal(probe, k) for k in keys):
            assert searchsorted_keys(keys, probe[None, :])[0] == -1

    def test_empty_table(self):
        keys = np.zeros((0, 1), dtype=np.uint64)
        q = np.array([[5]], dtype=np.uint64)
        assert searchsorted_keys(keys, q)[0] == -1

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=40, unique=True))
    def test_property_single_word(self, values):
        keys = np.array(sorted(values), dtype=np.uint64)[:, None]
        for v in values:
            pos = searchsorted_keys(keys, np.array([[v]], dtype=np.uint64))[0]
            assert keys[pos, 0] == v


class TestLexsort:
    def test_sorting_is_total_order(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**63, size=(30, 2)).astype(np.uint64)
        order = lexsort_keys(keys)
        s = keys[order]
        # word-1-major, word-0-minor ordering
        for i in range(len(s) - 1):
            a = (int(s[i, 1]) << 64) | int(s[i, 0])
            b = (int(s[i + 1, 1]) << 64) | int(s[i + 1, 0])
            assert a <= b

    def test_1d_keys_accepted(self):
        keys = np.array([3, 1, 2], dtype=np.uint64)
        np.testing.assert_array_equal(lexsort_keys(keys), [1, 2, 0])
