"""Tests for the observable operator builders (hamiltonian/operators.py)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamiltonian import (
    QubitHamiltonian,
    double_occupancy_operator,
    jordan_wigner_fermion_terms,
    number_dn_operator,
    number_operator,
    number_up_operator,
    occupation_operator,
    one_body_operator,
    s2_operator,
    sector_basis,
    sector_hamiltonian_dense,
    strings_to_matrix,
    sz_operator,
)


def dense(op: QubitHamiltonian) -> np.ndarray:
    dim = 2**op.n_qubits
    mat = np.zeros((dim, dim), dtype=np.complex128)
    terms = op.to_terms()
    if terms:
        mat += strings_to_matrix(terms)
    return mat + op.constant * np.eye(dim)


def config_vector(bits: list[int]) -> np.ndarray:
    """Basis vector of a computational configuration (bit j = qubit j)."""
    n = len(bits)
    idx = sum(b << j for j, b in enumerate(bits))
    v = np.zeros(2**n)
    v[idx] = 1.0
    return v


class TestNumberOperators:
    @pytest.mark.parametrize("bits", [[0, 0, 0, 0], [1, 0, 1, 0], [1, 1, 1, 1], [0, 1, 0, 0]])
    def test_number_eigenvalue(self, bits):
        op = dense(number_operator(4))
        v = config_vector(bits)
        assert v @ op @ v == pytest.approx(sum(bits))

    def test_spin_resolved_counts(self):
        bits = [1, 0, 1, 1, 0, 1]  # up on qubits 0,2 / dn on 3,5
        v = config_vector(bits)
        up = dense(number_up_operator(6))
        dn = dense(number_dn_operator(6))
        assert v @ up @ v == pytest.approx(bits[0] + bits[2] + bits[4])
        assert v @ dn @ v == pytest.approx(bits[1] + bits[3] + bits[5])

    def test_up_plus_dn_equals_total(self):
        n = 6
        total = dense(number_operator(n))
        split = dense(number_up_operator(n)) + dense(number_dn_operator(n))
        np.testing.assert_allclose(total, split, atol=1e-12)

    def test_occupation_operator_is_projector_diag(self):
        op = dense(occupation_operator(1, n_qubits=3))
        # n_p has eigenvalues {0, 1}: it is idempotent.
        np.testing.assert_allclose(op @ op, op, atol=1e-12)
        assert np.trace(op) == pytest.approx(2 ** (3 - 1))


class TestSpinOperators:
    def test_sz_eigenvalues(self):
        op = dense(sz_operator(4))
        v = config_vector([1, 0, 1, 0])  # two up electrons
        assert v @ op @ v == pytest.approx(1.0)
        v = config_vector([0, 1, 0, 1])  # two down
        assert v @ op @ v == pytest.approx(-1.0)
        v = config_vector([1, 1, 0, 0])  # paired
        assert v @ op @ v == pytest.approx(0.0)

    def test_s2_on_singlet_and_triplet(self):
        # Two electrons in two orbitals. The (n_up=1, n_dn=1) sector of S^2
        # contains singlet (0) and triplet (2) combinations.
        s2 = s2_operator(4)
        H, basis = sector_hamiltonian_dense(s2, n_up=1, n_dn=1)
        evals = np.sort(np.linalg.eigvalsh(H))
        # 4 determinants: two closed-shell singlets (|u_i d_i>), plus the
        # open-shell singlet and the S_z=0 triplet component -> {0,0,0,2}.
        assert np.allclose(evals, [0.0, 0.0, 0.0, 2.0], atol=1e-10)

    def test_s2_sz_commute(self):
        a = dense(s2_operator(4))
        b = dense(sz_operator(4))
        np.testing.assert_allclose(a @ b, b @ a, atol=1e-10)

    def test_polarized_state_is_maximal_spin(self):
        # All-up configuration: S = n/2 -> S^2 = (n/2)(n/2+1).
        n_orb = 2
        v = config_vector([1, 0, 1, 0])
        s2 = dense(s2_operator(4))
        assert v @ s2 @ v == pytest.approx(1.0 * (1.0 + 1.0))


class TestDoubleOccupancy:
    def test_counts_paired_orbitals(self):
        op = dense(double_occupancy_operator(4))
        assert config_vector([1, 1, 0, 0]) @ op @ config_vector([1, 1, 0, 0]) == pytest.approx(1.0)
        assert config_vector([1, 0, 0, 1]) @ op @ config_vector([1, 0, 0, 1]) == pytest.approx(0.0)
        assert config_vector([1, 1, 1, 1]) @ op @ config_vector([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_odd_qubits_rejected(self):
        with pytest.raises(ValueError):
            double_occupancy_operator(5)


class TestOneBodyOperator:
    def test_rejects_non_hermitian(self):
        with pytest.raises(ValueError, match="Hermitian"):
            one_body_operator(np.array([[0.0, 1.0], [0.0, 0.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            one_body_operator(np.zeros((2, 3)))

    def test_diagonal_matrix_is_weighted_number(self):
        o = np.diag([0.5, -0.25, 1.5, 0.0])
        op = dense(one_body_operator(o))
        v = config_vector([1, 1, 0, 1])
        assert v @ op @ v == pytest.approx(0.5 - 0.25 + 0.0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=10**6))
    def test_random_hermitian_matches_dense_construction(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        o = 0.5 * (a + a.T)
        op = dense(one_body_operator(o))
        # Matrix element <q|O|p> for single-particle states = o[q, p].
        for p in range(n):
            for q in range(n):
                vp = config_vector([1 if j == p else 0 for j in range(n)])
                vq = config_vector([1 if j == q else 0 for j in range(n)])
                # Jordan-Wigner string sign is trivial for single occupation.
                assert vq @ op @ vp == pytest.approx(o[q, p], abs=1e-10)


class TestFermionAlgebra:
    def test_anticommutator_identity(self):
        """{a_p, a+_q} = delta_pq as a dense-matrix identity after JW.

        The two orderings are summed inside one JW call: each product alone
        is not Hermitian (and is correctly rejected), their sum always is.
        """
        n = 3
        for p in range(n):
            for q in range(n):
                anti_op = jordan_wigner_fermion_terms(
                    [(1.0, [(p, False), (q, True)]),
                     (1.0, [(q, True), (p, False)])],
                    n,
                )
                anti = dense(anti_op)
                expected = (1.0 if p == q else 0.0) * np.eye(2**n)
                np.testing.assert_allclose(anti, expected, atol=1e-12)

    def test_non_hermitian_product_rejected(self):
        with pytest.raises(ValueError, match="non-Hermitian"):
            jordan_wigner_fermion_terms([(1.0, [(0, True), (1, False)])], 2)

    def test_number_operator_from_generic_path_matches(self):
        n = 4
        via_terms = jordan_wigner_fermion_terms(
            [(1.0, [(p, True), (p, False)]) for p in range(n)], n
        )
        np.testing.assert_allclose(dense(via_terms), dense(number_operator(n)), atol=1e-12)

    def test_weight_below_tolerance_skipped(self):
        op = jordan_wigner_fermion_terms(
            [(1e-14, [(0, True), (0, False)])], 2, coeff_tol=1e-10
        )
        assert op.n_terms == 0 and op.constant == 0.0


class TestSectorConservation:
    def test_all_observable_ops_conserve_sector(self):
        """Every term of N/Sz/S2/D maps the (1,1) sector into itself."""
        from repro.hamiltonian.compressed import compress_hamiltonian
        from repro.hamiltonian.exact import _group_structure

        basis = sector_basis(4, 1, 1)
        for op in (number_operator(4), sz_operator(4), s2_operator(4),
                   double_occupancy_operator(4)):
            comp = compress_hamiltonian(op)
            targets, _ = _group_structure(comp, basis)
            for tgt in targets:
                assert np.all(tgt >= 0), "operator couples outside the sector"
