"""Tests for 1-RDMs, natural occupations, dipole moments, Mulliken charges."""
import numpy as np
import pytest

from repro.chem import (
    build_problem,
    compute_dipole_integrals,
    compute_integrals,
    dipole_moment,
    make_molecule,
    mulliken_charges,
    natural_occupations,
    one_rdm_spin_orbital,
    run_fci,
    run_rhf,
    spatial_rdm,
)
from repro.core.observables import sector_expectation
from repro.hamiltonian import jordan_wigner_fermion_terms


@pytest.fixture(scope="module")
def lih_fci(lih_problem):
    fci = run_fci(lih_problem.hamiltonian)
    gamma = one_rdm_spin_orbital(fci.ground_state, fci.basis)
    return lih_problem, fci, gamma


class TestOneRDM:
    def test_trace_is_electron_count(self, lih_fci):
        prob, _, gamma = lih_fci
        assert np.trace(gamma) == pytest.approx(prob.n_electrons, abs=1e-10)

    def test_symmetric_for_real_state(self, lih_fci):
        _, _, gamma = lih_fci
        np.testing.assert_allclose(gamma, gamma.T, atol=1e-10)

    def test_spin_blocks_decouple(self, lih_fci):
        """<a+_up a_dn> = 0: the RDM is block diagonal in spin."""
        _, _, gamma = lih_fci
        np.testing.assert_allclose(gamma[0::2, 1::2], 0.0, atol=1e-12)
        np.testing.assert_allclose(gamma[1::2, 0::2], 0.0, atol=1e-12)

    def test_matches_operator_expectations(self, lih_fci):
        """Cross-check every matrix element against a JW operator expectation."""
        prob, fci, gamma = lih_fci
        rng = np.random.default_rng(0)
        pairs = [(0, 0), (2, 2), (0, 2), (2, 6), (1, 3), (5, 7)]
        for p, q in pairs:
            op = jordan_wigner_fermion_terms(
                [(0.5, [(p, True), (q, False)]), (0.5, [(q, True), (p, False)])],
                prob.n_qubits,
            )
            val = sector_expectation(op, fci.ground_state, fci.basis)
            assert gamma[p, q] == pytest.approx(val, abs=1e-9)

    def test_positive_semidefinite(self, lih_fci):
        _, _, gamma = lih_fci
        evals = np.linalg.eigvalsh(0.5 * (gamma + gamma.T))
        assert evals.min() > -1e-10
        assert evals.max() < 1.0 + 1e-10  # spin-orbital occupations in [0, 1]

    def test_hf_determinant_rdm_is_projector(self, h2_problem):
        """For a single determinant the 1-RDM is the occupation projector."""
        from repro.hamiltonian import sector_basis
        from repro.utils.bitstrings import pack_bits, searchsorted_keys

        basis = sector_basis(4, 1, 1)
        vec = np.zeros(basis.dim)
        idx = int(searchsorted_keys(basis.keys, pack_bits(h2_problem.hf_bits))[0])
        vec[idx] = 1.0
        gamma = one_rdm_spin_orbital(vec, basis)
        np.testing.assert_allclose(gamma, np.diag(h2_problem.hf_bits.astype(float)),
                                   atol=1e-12)


class TestNaturalOccupations:
    def test_bounds_and_sum(self, lih_fci):
        prob, _, gamma = lih_fci
        occ = natural_occupations(gamma)
        assert occ.sum() == pytest.approx(prob.n_electrons, abs=1e-9)
        assert np.all(occ > -1e-9)
        assert np.all(occ < 2.0 + 1e-9)
        assert np.all(np.diff(occ) <= 1e-12)  # descending

    def test_weakly_correlated_molecule_near_integer(self, lih_fci):
        """LiH at equilibrium: occupations close to {2, 2, 0, ...}."""
        _, _, gamma = lih_fci
        occ = natural_occupations(gamma)
        assert occ[0] > 1.99
        assert occ[1] > 1.9
        assert occ[2] < 0.1

    def test_spatial_rdm_shape(self, lih_fci):
        prob, _, gamma = lih_fci
        d = spatial_rdm(gamma)
        assert d.shape == (prob.n_qubits // 2, prob.n_qubits // 2)
        assert np.trace(d) == pytest.approx(prob.n_electrons, abs=1e-10)


class TestDipole:
    @pytest.fixture(scope="class")
    def lih_scene(self):
        mol = make_molecule("LiH")
        ints = compute_integrals(mol, "sto-3g")
        scf = run_rhf(ints)
        dip_ao = compute_dipole_integrals(mol, "sto-3g")
        return mol, ints, scf, dip_ao

    def test_h2_dipole_vanishes_by_symmetry(self):
        mol = make_molecule("H2", r=0.7414)
        ints = compute_integrals(mol, "sto-3g")
        scf = run_rhf(ints)
        dip_ao = compute_dipole_integrals(mol, "sto-3g")
        d_hf = np.diag([2.0, 0.0])
        res = dipole_moment(mol, dip_ao, scf.mo_coeff, d_hf)
        assert res.magnitude == pytest.approx(0.0, abs=1e-8)

    def test_lih_dipole_along_axis(self, lih_scene, lih_fci):
        mol, ints, scf, dip_ao = lih_scene
        _, _, gamma = lih_fci
        res = dipole_moment(mol, dip_ao, scf.mo_coeff, spatial_rdm(gamma))
        assert abs(res.total[0]) < 1e-8 and abs(res.total[1]) < 1e-8
        # STO-3G LiH dipole: ~4-5 Debye pointing Li->H.
        assert 3.0 < res.magnitude_debye < 6.5

    def test_origin_independence_for_neutral_molecule(self, lih_scene, lih_fci):
        mol, ints, scf, dip_ao = lih_scene
        _, _, gamma = lih_fci
        d = spatial_rdm(gamma)
        res0 = dipole_moment(mol, dip_ao, scf.mo_coeff, d)
        shifted = compute_dipole_integrals(mol, "sto-3g", origin=[0.3, -1.0, 2.0])
        res1 = dipole_moment(mol, shifted, scf.mo_coeff, d, origin=[0.3, -1.0, 2.0])
        np.testing.assert_allclose(res0.total, res1.total, atol=1e-8)

    def test_correlation_reduces_lih_dipole(self, lih_scene, lih_fci):
        """FCI charge transfer is weaker than HF's: |mu_FCI| < |mu_HF|."""
        mol, ints, scf, dip_ao = lih_scene
        _, _, gamma = lih_fci
        n_orb = spatial_rdm(gamma).shape[0]
        d_hf = np.zeros((n_orb, n_orb))
        d_hf[0, 0] = d_hf[1, 1] = 2.0
        mu_hf = dipole_moment(mol, dip_ao, scf.mo_coeff, d_hf).magnitude
        mu_fci = dipole_moment(mol, dip_ao, scf.mo_coeff, spatial_rdm(gamma)).magnitude
        assert mu_fci < mu_hf

    def test_debye_conversion(self, lih_scene, lih_fci):
        mol, ints, scf, dip_ao = lih_scene
        _, _, gamma = lih_fci
        res = dipole_moment(mol, dip_ao, scf.mo_coeff, spatial_rdm(gamma))
        assert res.magnitude_debye == pytest.approx(res.magnitude * 2.541746473)


class TestMulliken:
    def test_charges_sum_to_total_charge(self):
        mol = make_molecule("LiH")
        ints = compute_integrals(mol, "sto-3g")
        scf = run_rhf(ints)
        n_orb = ints.n_ao
        d_mo = np.zeros((n_orb, n_orb))
        d_mo[0, 0] = d_mo[1, 1] = 2.0
        d_ao = scf.mo_coeff @ d_mo @ scf.mo_coeff.T
        q = mulliken_charges(mol, ints.S, d_ao, ints.basis.ao_atom_indices())
        assert q.sum() == pytest.approx(0.0, abs=1e-10)
        assert len(q) == 2

    def test_water_oxygen_negative(self, h2o_problem):
        mol = make_molecule("H2O")
        ints = compute_integrals(mol, "sto-3g")
        scf = run_rhf(ints)
        n_occ = 5
        d_mo = np.zeros((ints.n_ao, ints.n_ao))
        d_mo[:n_occ, :n_occ] = 2.0 * np.eye(n_occ)
        d_ao = scf.mo_coeff @ d_mo @ scf.mo_coeff.T
        q = mulliken_charges(mol, ints.S, d_ao, ints.basis.ao_atom_indices())
        # Atom order in the geometry table: O first, then the two H.
        assert q[0] < 0.0
        assert q[1] > 0.0 and q[2] > 0.0
        assert q.sum() == pytest.approx(0.0, abs=1e-10)

    def test_ao_atom_indices_cover_all_aos(self):
        mol = make_molecule("H2O")
        ints = compute_integrals(mol, "sto-3g")
        idx = ints.basis.ao_atom_indices()
        assert len(idx) == ints.n_ao
        assert set(idx.tolist()) == {0, 1, 2}
