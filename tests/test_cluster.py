"""Tests for the multi-host cluster transport (frames, rendezvous, comm).

Cluster ranks run here as localhost threads — each owns a real TCP mesh
socket set and a real coordinator connection, so everything short of the
physical network is exercised: the framed wire protocol, rendezvous rank
assignment, heartbeat supervision, dead-rank poisoning and the SPMD
bit-identity contract against the thread backend.
"""
from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.core import VMC, VMCConfig, build_qiankunnet
from repro.core.engine import ThreadBackend
from repro.parallel import run_spmd
from repro.parallel.cluster import (
    ClusterBackend,
    ClusterComm,
    MPIComm,
    create_cluster_comm,
)
from repro.parallel.fake_mpi import CommAbortError
from repro.parallel.rendezvous import (
    FRAME_ARRAY,
    FRAME_BLOB,
    FRAME_CTRL,
    MAGIC,
    PROTOCOL_VERSION,
    ClusterProtocolError,
    RendezvousCoordinator,
    build_frame,
    connect_with_retry,
    parse_addr,
    recv_frame,
    send_frame,
)

# Short, test-friendly liveness knobs: fast heartbeats, fast verdicts.
_FAST = dict(heartbeat_interval=0.1, heartbeat_timeout=0.6)


def _start_coordinator(world_size: int, **kwargs):
    coord = RendezvousCoordinator(world_size=world_size, **kwargs)
    host, port = coord.start()
    return coord, f"{host}:{port}"


def _run_cluster(world_size: int, fn, *, coordinator_kwargs=None,
                 comm_kwargs=None, close=True):
    """Run ``fn(comm)`` on ``world_size`` thread-hosted cluster ranks.

    Returns ``(results, comms, outcome)``; exceptions from any rank are
    re-raised in the caller (first one wins, by rank order).
    """
    coord, addr = _start_coordinator(world_size,
                                     **(coordinator_kwargs or _FAST))
    results: list = [None] * world_size
    failures: list = []
    comms: list = [None] * world_size

    def run_rank(rank: int):
        comm = None
        try:
            comm = ClusterComm(world_size, addr, rank=rank, join_timeout=10.0,
                               **(comm_kwargs or {}))
            comms[rank] = comm
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            failures.append((rank, exc))
        finally:
            if close and comm is not None:
                comm.close()

    threads = [threading.Thread(target=run_rank, args=(r,), daemon=True)
               for r in range(world_size)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
    finally:
        outcome = coord.wait(timeout=5.0)
        coord.stop()
    if failures:
        failures.sort(key=lambda f: f[0])
        raise failures[0][1]
    return results, comms, outcome


# --------------------------------------------------------------------- frames
class TestFrameProtocol:
    def _roundtrip(self, frame: bytes):
        a, b = socket.socketpair()
        try:
            a.sendall(frame)
            a.shutdown(socket.SHUT_WR)
            return recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_ctrl_roundtrip(self):
        ftype, meta, raw = self._roundtrip(
            build_frame(FRAME_CTRL, {"kind": "hello", "wants_rank": 3})
        )
        assert ftype == FRAME_CTRL
        assert meta == {"kind": "hello", "wants_rank": 3}
        assert raw == b""

    def test_array_roundtrip_preserves_dtype_and_shape(self):
        arr = (np.arange(12, dtype=np.complex128) * (1 + 2j)).reshape(3, 4)
        meta = {"dtype": arr.dtype.str, "shape": list(arr.shape)}
        _, out, _ = self._roundtrip(
            build_frame(FRAME_ARRAY, meta, arr.tobytes())
        )
        np.testing.assert_array_equal(out["array"], arr)
        assert out["array"].dtype == arr.dtype

    def test_blob_roundtrip(self):
        _, meta, raw = self._roundtrip(
            build_frame(FRAME_BLOB, {"logical": 99}, b"\x00\x01\x02")
        )
        assert meta["logical"] == 99
        assert raw == b"\x00\x01\x02"

    def test_bad_magic_rejected(self):
        frame = bytearray(build_frame(FRAME_CTRL, {"kind": "x"}))
        frame[0:2] = b"XX"
        with pytest.raises(ClusterProtocolError, match="magic"):
            self._roundtrip(bytes(frame))

    def test_version_mismatch_rejected_with_both_versions(self):
        frame = bytearray(build_frame(FRAME_CTRL, {"kind": "x"}))
        frame[2] = PROTOCOL_VERSION + 1
        with pytest.raises(ClusterProtocolError,
                           match="version mismatch.*v2.*v1"):
            self._roundtrip(bytes(frame))

    def test_array_payload_length_mismatch_rejected(self):
        # Declares a 10-element float64 array but ships only 8 bytes.
        frame = build_frame(FRAME_ARRAY,
                            {"dtype": "<f8", "shape": [10]}, b"\x00" * 8)
        with pytest.raises(ClusterProtocolError, match="80 bytes.*8 payload"):
            self._roundtrip(frame)

    def test_array_with_malformed_shape_rejected(self):
        frame = build_frame(FRAME_ARRAY,
                            {"dtype": "<f8", "shape": [-1]}, b"")
        with pytest.raises(ClusterProtocolError, match="shape"):
            self._roundtrip(frame)

    def test_array_with_bogus_dtype_rejected(self):
        frame = build_frame(FRAME_ARRAY,
                            {"dtype": "not-a-dtype", "shape": [1]}, b"")
        with pytest.raises(ClusterProtocolError, match="array meta"):
            self._roundtrip(frame)

    def test_ctrl_with_raw_payload_rejected(self):
        # Hand-build the hybrid frame build_frame would refuse to produce.
        good = build_frame(FRAME_BLOB, {"kind": "x"}, b"smuggled")
        frame = bytearray(good)
        frame[3] = FRAME_CTRL
        with pytest.raises(ClusterProtocolError, match="no raw payload"):
            self._roundtrip(bytes(frame))

    def test_truncated_frame_raises_connection_error(self):
        frame = build_frame(FRAME_BLOB, {}, b"x" * 100)
        with pytest.raises(ConnectionError, match="unread"):
            self._roundtrip(frame[:-10])

    def test_non_dict_meta_rejected(self):
        import json
        import struct
        meta_blob = json.dumps([1, 2]).encode()
        body = struct.pack("!I", len(meta_blob)) + meta_blob
        frame = struct.pack("!2sBBI", MAGIC, PROTOCOL_VERSION, FRAME_BLOB,
                            len(body)) + body
        with pytest.raises(ClusterProtocolError, match="JSON object"):
            self._roundtrip(frame)

    def test_send_frame_returns_wire_bytes(self):
        a, b = socket.socketpair()
        try:
            n = send_frame(a, FRAME_BLOB, {"k": 1}, b"xyz")
            assert n == len(build_frame(FRAME_BLOB, {"k": 1}, b"xyz"))
        finally:
            a.close()
            b.close()

    def test_parse_addr(self):
        assert parse_addr("10.0.0.2:5001") == ("10.0.0.2", 5001)
        for bad in ("nocolon", ":5", "host:", "host:notaport", "host:99999"):
            with pytest.raises(ValueError, match="host:port|out of range"):
                parse_addr(bad)


# ---------------------------------------------------------------- collectives
class TestClusterCollectives:
    def test_allgather_rank_order(self):
        results, _, outcome = _run_cluster(
            3, lambda comm: comm.allgather(comm.Get_rank() * 10)
        )
        assert results == [[0, 10, 20]] * 3
        assert outcome == "completed"

    def test_allreduce_matches_rank_ordered_numpy_sum(self):
        def fn(comm):
            arr = np.arange(6, dtype=np.float64) * (comm.Get_rank() + 1)
            return comm.allreduce_ndarray(arr, channel="g")

        results, _, _ = _run_cluster(3, fn)
        expected = np.arange(6, dtype=np.float64) * 6
        for r in results:
            np.testing.assert_array_equal(r, expected)

    def test_typed_allgather_roundtrip(self):
        def fn(comm):
            arr = np.arange(5, dtype=np.int64) + 100 * comm.Get_rank()
            return comm.allgather_ndarray(arr, channel="t")

        results, _, _ = _run_cluster(2, fn)
        for parts in results:
            np.testing.assert_array_equal(parts[0], np.arange(5))
            np.testing.assert_array_equal(parts[1], np.arange(5) + 100)
            assert parts[0].dtype == np.int64

    def test_allgather_blob_logical_vs_wire_accounting(self):
        def fn(comm):
            blob = bytes([comm.Get_rank()]) * 10
            out = comm.allgather_blob(blob, logical_bytes=100, channel="z")
            return out, dict(comm.stats.channels)

        results, _, _ = _run_cluster(2, fn)
        for blobs, channels in results:
            assert blobs == [b"\x00" * 10, b"\x01" * 10]
            assert channels["z"]["logical"] == 100 * 2 * 2
            assert channels["z"]["wire"] == 10 * 2 * 2

    def test_bcast_from_nonzero_root(self):
        def fn(comm):
            payload = {"v": np.array([1.5, 2.5])} if comm.Get_rank() == 1 \
                else None
            return comm.bcast(payload, root=1)

        results, _, _ = _run_cluster(3, fn)
        for r in results:
            np.testing.assert_array_equal(r["v"], [1.5, 2.5])

    def test_collective_sequence_and_barrier(self):
        def fn(comm):
            a = comm.allreduce_sum(np.array([1.0]))
            comm.barrier()
            b = comm.allgather(comm.Get_rank())
            c = comm.bcast(float(a[0]), root=0)
            return (a[0], tuple(b), c)

        results, _, _ = _run_cluster(2, fn)
        assert results == [(2.0, (0, 1), 2.0)] * 2

    def test_byte_accounting_matches_thread_comm(self):
        """Per-rank cluster stats must equal FakeComm's shared accounting."""
        def fn(comm):
            comm.allgather_ndarray(np.zeros(10))
            comm.allreduce_ndarray(np.zeros(5))
            comm.allgather_blob(b"abc", logical_bytes=7)
            s = comm.stats
            return (s.allgather_bytes, s.allreduce_bytes, s.total_bytes,
                    s.total_wire_bytes)

        cluster_results, _, _ = _run_cluster(2, fn)
        _, s_thread = run_spmd(2, fn)
        expected = (s_thread.allgather_bytes, s_thread.allreduce_bytes,
                    s_thread.total_bytes, s_thread.total_wire_bytes)
        assert cluster_results == [expected, expected]

    def test_world_of_one_short_circuits(self):
        def fn(comm):
            assert comm.Get_size() == 1
            return (comm.allgather("solo"),
                    comm.allreduce_sum(np.array([2.0]))[0],
                    comm.bcast("b"))

        results, _, outcome = _run_cluster(1, fn)
        assert results == [(["solo"], 2.0, "b")]
        assert outcome == "completed"

    def test_desynchronized_collective_detected(self):
        """Mismatched collective ops must raise, not silently mispair."""
        def fn(comm):
            if comm.Get_rank() == 0:
                comm.allgather_ndarray(np.zeros(3))
            else:
                comm.allreduce_ndarray(np.zeros(3))

        with pytest.raises((ClusterProtocolError, CommAbortError),
                           match="desynchronized|aborted"):
            _run_cluster(2, fn)

    def test_closed_comm_refuses_collectives(self):
        results, comms, _ = _run_cluster(2, lambda comm: comm.allgather(1))
        assert results == [[1, 1]] * 2
        for comm in comms:
            with pytest.raises(RuntimeError, match="closed"):
                comm.barrier()
            comm.close()  # idempotent


# ----------------------------------------------------------------- rendezvous
class TestRendezvous:
    def test_ranks_autoassigned_and_clean_completion(self):
        coord, addr = _start_coordinator(2, **_FAST)
        seen = []

        def member():
            comm = ClusterComm(2, addr, join_timeout=10.0)
            seen.append(comm.Get_rank())
            comm.barrier()
            comm.close()

        threads = [threading.Thread(target=member) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert coord.wait(timeout=5.0) == "completed"
        coord.stop()
        assert sorted(seen) == [0, 1]

    def test_members_retry_until_coordinator_appears(self):
        """Ranks launched before the coordinator must connect via backoff."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        addr = f"127.0.0.1:{port}"
        results: list = [None, None]

        def member(rank):
            comm = ClusterComm(2, addr, rank=rank, join_timeout=15.0)
            results[rank] = comm.allgather(rank)
            comm.close()

        threads = [threading.Thread(target=member, args=(r,), daemon=True)
                   for r in range(2)]
        for t in threads:
            t.start()
        time.sleep(0.5)  # members are already retrying against a dead port
        coord = RendezvousCoordinator(world_size=2, port=port, **_FAST)
        coord.start()
        for t in threads:
            t.join(timeout=30.0)
        assert results == [[0, 1], [0, 1]]
        assert coord.wait(timeout=5.0) == "completed"
        coord.stop()

    def test_connect_with_retry_times_out(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        t0 = time.monotonic()
        with pytest.raises(TimeoutError, match="could not connect"):
            connect_with_retry("127.0.0.1", port, timeout=0.5)
        assert time.monotonic() - t0 < 5.0

    def test_join_timeout_aborts_partial_world(self):
        coord, addr = _start_coordinator(
            2, join_timeout=0.8, **_FAST)
        with pytest.raises((ConnectionError, ClusterProtocolError,
                            RuntimeError, TimeoutError)):
            ClusterComm(2, addr, join_timeout=10.0)  # lone member of a 2-world
        outcome = coord.wait(timeout=5.0)
        coord.stop()
        assert outcome is not None and "join timeout (1/2)" in outcome

    def test_world_size_mismatch_rejected(self):
        coord, addr = _start_coordinator(2, join_timeout=5.0, **_FAST)
        try:
            with pytest.raises(RuntimeError, match="world_size mismatch"):
                ClusterComm(3, addr, join_timeout=5.0)
        finally:
            coord.stop()

    def test_out_of_range_rank_request_rejected(self):
        coord, addr = _start_coordinator(2, join_timeout=5.0, **_FAST)
        try:
            with pytest.raises(RuntimeError,
                               match="rejected.*rank 7 outside world"):
                ClusterComm(2, addr, rank=7, join_timeout=5.0)
        finally:
            coord.stop()

    def test_duplicate_rank_claim_rejected(self):
        # Both members pin rank 0: one wins the claim (and later times out
        # waiting for the never-full world), the other is rejected cleanly.
        coord, addr = _start_coordinator(2, join_timeout=2.0, **_FAST)
        errors: list = []

        def claim_zero():
            try:
                comm = ClusterComm(2, addr, rank=0, join_timeout=6.0)
                comm.close()
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(str(exc))

        threads = [threading.Thread(target=claim_zero, daemon=True)
                   for _ in range(2)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15.0)
        finally:
            coord.stop()
        assert any("already claimed" in e for e in errors)

    def test_garbage_connection_does_not_disturb_the_job(self):
        coord, addr = _start_coordinator(2, **_FAST)
        host, port = parse_addr(addr)
        scanner = socket.create_connection((host, port))
        scanner.sendall(b"GET / HTTP/1.1\r\n\r\n")  # port scanner noise
        scanner.close()

        def fn(comm):
            return comm.allgather(comm.Get_rank())

        results: list = [None, None]

        def member(rank):
            comm = ClusterComm(2, addr, rank=rank, join_timeout=10.0)
            results[rank] = fn(comm)
            comm.close()

        threads = [threading.Thread(target=member, args=(r,), daemon=True)
                   for r in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert results == [[0, 1], [0, 1]]
        assert coord.wait(timeout=5.0) == "completed"
        coord.stop()

    def test_heartbeat_timeout_must_exceed_interval(self):
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            RendezvousCoordinator(world_size=1, heartbeat_interval=2.0,
                                  heartbeat_timeout=1.0)


# ----------------------------------------------------------- failure handling
class TestFailureSemantics:
    def test_dead_rank_poisons_survivor_with_comm_abort(self):
        """A crashed rank must surface as CommAbortError naming it — the
        ProcessComm semantics — with no hang."""
        barrier = threading.Barrier(2, timeout=30.0)

        def fn(comm):
            if comm.Get_rank() == 1:
                barrier.wait()
                comm._simulate_crash()  # killed host: no leave, sockets dropped
                return "crashed"
            barrier.wait()
            comm.allreduce_ndarray(np.ones(1000))  # must not block forever
            return "unreachable"

        t0 = time.monotonic()
        with pytest.raises(CommAbortError, match="rank 1"):
            _run_cluster(2, fn)
        assert time.monotonic() - t0 < 20.0

    def test_missed_heartbeats_poison_blocked_survivors(self):
        """A wedged rank (alive socket, no heartbeats, no collectives) must
        get every peer aborted within the heartbeat deadline."""
        barrier = threading.Barrier(2, timeout=30.0)

        def fn(comm):
            if comm.Get_rank() == 1:
                comm._stop_heartbeating()
                barrier.wait()
                time.sleep(4.0)  # wedged: never joins the collective
                return None
            barrier.wait()
            comm.allreduce_ndarray(np.ones(8))
            return "unreachable"

        t0 = time.monotonic()
        with pytest.raises(CommAbortError,
                           match="rank 1.*missed the heartbeat deadline"):
            _run_cluster(2, fn, close=False)
        # Detection bound: heartbeat_timeout (0.6s) + supervision poll +
        # abort propagation, with generous slack for loaded runners.
        assert time.monotonic() - t0 < 10.0

    def test_abort_leaves_no_live_helper_threads(self):
        def fn(comm):
            if comm.Get_rank() == 1:
                comm._simulate_crash()
                return None
            try:
                comm.allreduce_ndarray(np.ones(8))
            except CommAbortError:
                pass
            return comm

        results, comms, _ = _run_cluster(2, fn)
        time.sleep(0.2)
        for comm in comms:
            comm.close()  # idempotent even after a crash/abort
            for t in comm._threads:
                t.join(timeout=5.0)
                assert not t.is_alive()

    def test_coordinator_reports_abort_outcome(self):
        def fn(comm):
            if comm.Get_rank() == 1:
                comm._simulate_crash()
                return None
            try:
                comm.barrier()
            except CommAbortError:
                pass
            return None

        _, _, outcome = _run_cluster(2, fn)
        assert outcome is not None and outcome.startswith("aborted")
        assert "rank 1" in outcome


# ---------------------------------------------------------------- MPI adapter
class _FakeMPIWorld:
    """A size-1 mpi4py stand-in (the container has no real mpi4py)."""

    def __init__(self, rank=0, size=1):
        self._rank, self._size = rank, size

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return self._size

    def allgather(self, payload):
        return [payload] * self._size

    def bcast(self, payload, root=0):
        return payload

    def barrier(self):
        pass


class TestMPIAdapter:
    def test_create_prefers_matching_mpi_world(self):
        comm = create_cluster_comm(1, mpi=_FakeMPIWorld())
        assert isinstance(comm, MPIComm)
        assert comm.Get_size() == 1

    def test_mismatched_mpi_world_falls_back_to_sockets(self):
        coord, addr = _start_coordinator(1, **_FAST)
        try:
            comm = create_cluster_comm(1, rendezvous_addr=addr,
                                       mpi=_FakeMPIWorld(size=4))
            assert isinstance(comm, ClusterComm)
            comm.close()
        finally:
            coord.stop()

    def test_rank_conflict_with_mpi_world_rejected(self):
        with pytest.raises(ValueError, match="parallel.rank"):
            create_cluster_comm(1, rank=3, mpi=_FakeMPIWorld())

    def test_socket_path_without_rendezvous_addr_names_the_field(self):
        with pytest.raises(ValueError, match="parallel.rendezvous_addr"):
            create_cluster_comm(2, mpi=None)

    def test_mpicomm_accounting_matches_comm_contract(self):
        comm = MPIComm(_FakeMPIWorld())
        comm.allgather_ndarray(np.zeros(10))
        comm.allreduce_ndarray(np.zeros(5))
        comm.allgather_blob(b"abc", logical_bytes=7)

        def fn(c):
            c.allgather_ndarray(np.zeros(10))
            c.allreduce_ndarray(np.zeros(5))
            c.allgather_blob(b"abc", logical_bytes=7)

        _, ref = run_spmd(1, fn)
        assert comm.stats.allgather_bytes == ref.allgather_bytes
        assert comm.stats.allreduce_bytes == ref.allreduce_bytes
        assert comm.stats.total_wire_bytes == ref.total_wire_bytes


# ------------------------------------------------------------ VMC bit-identity
def _fresh_vmc(problem, backend, *, n_samples=800, seed=3):
    wf = build_qiankunnet(4, 1, 1, amplitude_type="transformer", d_model=8,
                          n_heads=2, n_layers=1, phase_hidden=(8,), seed=7)
    return VMC(wf, problem.hamiltonian,
               VMCConfig(n_samples=n_samples, eloc_mode="exact", warmup=50,
                         seed=seed),
               backend=backend)


def _run_cluster_vmc(problem, n_ranks, n_steps):
    """Drive ``n_ranks`` full SPMD VMC drivers over a localhost mesh."""
    coord, addr = _start_coordinator(n_ranks, **_FAST)
    drivers: list = [None] * n_ranks
    failures: list = []

    def run_rank(rank):
        comm = None
        try:
            comm = ClusterComm(n_ranks, addr, rank=rank, join_timeout=15.0)
            vmc = _fresh_vmc(problem, ClusterBackend(
                n_ranks=n_ranks, nu_star_per_rank=4, comm=comm))
            vmc.run(n_steps)
            drivers[rank] = vmc
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            failures.append((rank, exc))
        finally:
            if comm is not None:
                comm.close()

    threads = [threading.Thread(target=run_rank, args=(r,), daemon=True)
               for r in range(n_ranks)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300.0)
    finally:
        coord.stop()
    if failures:
        raise failures[0][1]
    return drivers


_TRAJECTORY_COLUMNS = ("energy", "variance", "eloc_imag", "n_unique",
                       "n_samples", "lr", "comm_bytes", "comm_bytes_wire",
                       "per_rank_unique")


class TestClusterVMCBitIdentity:
    """The acceptance gate: cluster trajectories == thread trajectories,
    including the comm-volume history columns (timing columns aside)."""

    def _assert_matches_threads(self, problem, n_ranks, n_steps):
        thread = _fresh_vmc(
            problem, ThreadBackend(n_ranks=n_ranks, nu_star_per_rank=4))
        thread.run(n_steps)
        drivers = _run_cluster_vmc(problem, n_ranks, n_steps)
        for rank, vmc in enumerate(drivers):
            assert len(vmc.history) == n_steps
            for ref, got in zip(thread.history, vmc.history):
                for col in _TRAJECTORY_COLUMNS:
                    assert getattr(ref, col) == getattr(got, col), \
                        f"rank {rank}: {col} diverged at iter {ref.iteration}"
            np.testing.assert_array_equal(
                thread.wf.get_flat_params(), vmc.wf.get_flat_params())
        # SPMD: every rank's artifacts identical, no parameter broadcast.
        np.testing.assert_array_equal(
            drivers[0].wf.get_flat_params(),
            drivers[-1].wf.get_flat_params())

    def test_two_ranks_bit_identical_to_thread_backend(self, h2_problem):
        self._assert_matches_threads(h2_problem, n_ranks=2, n_steps=3)

    @pytest.mark.slow
    def test_four_ranks_bit_identical_to_thread_backend(self, h2_problem):
        self._assert_matches_threads(h2_problem, n_ranks=4, n_steps=2)


# ------------------------------------------------------------ spec integration
class TestClusterSpec:
    def _spec(self, **parallel):
        from repro.api import RunSpec

        return RunSpec.from_dict({
            "name": "cluster-test",
            "problem": {"molecule": "H2", "basis": "sto-3g",
                        "geometry": {"r": 0.7414}},
            "ansatz": {"name": "transformer", "d_model": 8, "n_heads": 2,
                       "n_layers": 1, "phase_hidden": [8], "seed": 1},
            "optimizer": {"name": "adamw", "warmup": 100},
            "sampling": {"ns_pretrain": 500, "ns_max": 500,
                         "pretrain_iters": 3},
            "parallel": {"backend": "cluster", "n_ranks": 2,
                         "nu_star_per_rank": 4, **parallel},
            "train": {"max_iterations": 2, "pretrain_steps": 10,
                      "early_stop": False, "seed": 2},
        })

    def test_spec_validation_names_cluster_fields(self):
        from repro.api import SpecError

        with pytest.raises(SpecError, match="parallel.rendezvous_addr"):
            self._spec(rendezvous_addr="no-port-here")
        with pytest.raises(SpecError, match="parallel.world_size"):
            self._spec(world_size=-2)
        with pytest.raises(SpecError, match="parallel.world_size"):
            self._spec(world_size=4)  # conflicts with n_ranks=2
        with pytest.raises(SpecError, match="parallel.rank"):
            self._spec(rank=5)  # >= the world size
        with pytest.raises(SpecError, match="parallel.join_timeout_s"):
            self._spec(join_timeout_s=0.0)

    def test_materialize_without_rendezvous_addr_fails_at_spec_time(self):
        from repro.api import SpecError
        from repro.api.driver import materialize_backend

        with pytest.raises(SpecError, match="rendezvous_addr"):
            materialize_backend(self._spec())

    def test_materialize_builds_lazy_cluster_backend(self):
        from repro.api.driver import materialize_backend

        spec = self._spec(rendezvous_addr="127.0.0.1:45999", rank=0,
                          join_timeout_s=7.0, collective_timeout_s=120.0)
        backend = materialize_backend(spec)
        assert isinstance(backend, ClusterBackend)
        assert backend.n_ranks == 2
        assert backend.rank == 0
        assert backend.rendezvous_addr == "127.0.0.1:45999"
        assert backend.join_timeout == 7.0
        assert backend.collective_timeout == 120.0
        backend.close()  # no comm was ever built: must be a clean no-op

    def test_world_size_field_sets_the_rank_count(self):
        from repro.api.driver import materialize_backend

        spec = self._spec(n_ranks=1, world_size=4,
                          rendezvous_addr="127.0.0.1:45999")
        backend = materialize_backend(spec)
        assert backend.n_ranks == 4

    def test_serial_error_message_lists_cluster(self):
        from repro.api import SpecError
        from repro.api.driver import materialize_backend

        spec = self._spec().with_overrides({"parallel.backend": "serial"})
        with pytest.raises(SpecError, match="cluster"):
            materialize_backend(spec)

    def test_cli_rendezvous_subcommand_registered(self):
        from repro.api.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["rendezvous", "--port", "0", "--world-size", "2"])
        assert args.command == "rendezvous"
        assert args.world_size == 2
