"""FakeMPI, tree partitioning, comm model, data-parallel VMC."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VMCConfig, build_qiankunnet
from repro.core.sampler import BASTreeState
from repro.parallel import (
    CommVolumeModel,
    DataParallelVMC,
    balanced_weight_partition,
    run_spmd,
    split_tree_state,
)


class TestFakeMPI:
    def test_allgather_order_and_content(self):
        def fn(comm):
            return comm.allgather(np.array([comm.Get_rank()]))

        results, stats = run_spmd(4, fn)
        for r in range(4):
            gathered = np.concatenate(results[r])
            np.testing.assert_array_equal(gathered, [0, 1, 2, 3])
        assert stats.calls["allgather"] == 1
        assert stats.allgather_bytes == 4 * 8 * 4  # 4 payloads x 8B x N_p

    def test_allreduce_sum(self):
        def fn(comm):
            return comm.allreduce_sum(np.full(3, comm.Get_rank() + 1.0))

        results, stats = run_spmd(3, fn)
        for r in results:
            np.testing.assert_array_equal(r, [6.0, 6.0, 6.0])
        assert stats.allreduce_bytes == 3 * 8 * 3

    def test_bcast(self):
        def fn(comm):
            payload = np.arange(5) if comm.Get_rank() == 0 else None
            return comm.bcast(payload, root=0)

        results, _ = run_spmd(3, fn)
        for r in results:
            np.testing.assert_array_equal(r, np.arange(5))

    def test_multiple_collectives_sequence(self):
        def fn(comm):
            a = comm.allreduce_sum(np.array([1.0]))
            b = comm.allgather(comm.Get_rank())
            c = comm.allreduce_sum(np.array([2.0]))
            return (a[0], tuple(b), c[0])

        results, stats = run_spmd(2, fn)
        assert results[0] == (2.0, (0, 1), 4.0)
        assert results[1] == (2.0, (0, 1), 4.0)
        assert stats.calls["allreduce"] == 2

    def test_rank_error_propagates(self):
        def fn(comm):
            if comm.Get_rank() == 1:
                raise RuntimeError("rank 1 exploded")
            return comm.allreduce_sum(np.ones(1))

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)

    def test_single_rank_degenerates(self):
        results, stats = run_spmd(1, lambda c: c.allreduce_sum(np.array([5.0]))[0])
        assert results[0] == 5.0


class TestPartition:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(1, 1000), min_size=1, max_size=60),
        st.integers(1, 8),
    )
    def test_partition_properties(self, weights, n_parts):
        parts = balanced_weight_partition(np.array(weights), n_parts)
        assert len(parts) == n_parts
        flat = np.concatenate(parts)
        np.testing.assert_array_equal(flat, np.arange(len(weights)))  # coverage+order
        if len(weights) >= n_parts:
            assert all(len(p) > 0 for p in parts)

    def test_balance_quality_uniform(self):
        weights = np.ones(1000)
        parts = balanced_weight_partition(weights, 8)
        sizes = [w.sum() for w in (weights[p] for p in parts)]
        assert max(sizes) - min(sizes) <= 2

    def test_split_tree_state(self):
        state = BASTreeState(
            prefixes=np.arange(12).reshape(6, 2),
            weights=np.array([5, 1, 1, 1, 1, 5], dtype=np.int64),
            counts_up=np.arange(6),
            counts_dn=np.arange(6),
            step=2,
        )
        parts = split_tree_state(state, 3)
        assert sum(p.weights.sum() for p in parts) == state.weights.sum()
        assert all(p.step == 2 for p in parts)
        total_prefix = np.concatenate([p.prefixes for p in parts])
        np.testing.assert_array_equal(total_prefix, state.prefixes)

    def test_empty_weights(self):
        parts = balanced_weight_partition(np.array([]), 3)
        assert all(len(p) == 0 for p in parts)


class TestCommModel:
    def test_paper_example_c2(self):
        """Sec. 3.2: C2/STO-3G, N=20, N_u=2.7e4, N_p=64, M=2.7e5 -> ~173 MB."""
        model = CommVolumeModel(n_qubits=20, n_unique=27_000, n_ranks=64,
                                n_params=270_000)
        mb = model.total_bytes / 1e6  # decimal MB as quoted by the paper
        assert 165 < mb < 178
        # The gradient allreduce dominates, as the paper's design intends.
        assert model.allreduce_gradient_bytes > model.allgather_samples_bytes

    def test_breakdown_sums(self):
        m = CommVolumeModel(12, 100, 4, 1000)
        parts = m.breakdown()
        assert parts["total_MB"] == pytest.approx(
            parts["stage2_allgather_samples_MB"]
            + parts["stage4_allreduce_energy_MB"]
            + parts["stage6_allreduce_gradients_MB"]
        )

    def test_scales_linearly_in_ranks(self):
        a = CommVolumeModel(20, 1000, 4, 5000).total_bytes
        b = CommVolumeModel(20, 1000, 8, 5000).total_bytes
        assert b == 2 * a


class TestDataParallelVMC:
    @pytest.fixture()
    def driver_factory(self, h2o_problem):
        def make(n_ranks, seed=31):
            wf = build_qiankunnet(
                h2o_problem.n_qubits, h2o_problem.n_up, h2o_problem.n_dn,
                d_model=8, n_heads=2, n_layers=1, phase_hidden=(16,), seed=7,
            )
            return DataParallelVMC(
                wf, h2o_problem.hamiltonian, n_ranks=n_ranks,
                config=VMCConfig(n_samples=2000, eloc_mode="exact", seed=seed),
                nu_star_per_rank=4,
            )
        return make

    def test_runs_and_tracks_stats(self, driver_factory):
        driver = driver_factory(2)
        s = driver.step()
        assert np.isfinite(s.energy)
        assert s.n_unique > 0
        assert s.comm_bytes > 0
        assert len(s.per_rank_unique) == 2
        assert s.time_sampling >= 0 and s.time_local_energy >= 0

    def test_deterministic_given_seed(self, driver_factory):
        e1 = [driver_factory(2, seed=5).step().energy for _ in range(1)][0]
        e2 = [driver_factory(2, seed=5).step().energy for _ in range(1)][0]
        assert e1 == pytest.approx(e2, abs=1e-12)

    def test_rank_counts_preserve_sample_budget(self, driver_factory):
        for n_ranks in (1, 2, 3):
            driver = driver_factory(n_ranks)
            s = driver.step()
            assert s.n_samples == 2000

    def test_replicas_stay_in_sync(self, driver_factory):
        driver = driver_factory(2)
        driver.step()
        driver.step()
        master = driver.master.get_flat_params()
        for rep in driver.replicas:
            np.testing.assert_allclose(rep.get_flat_params(), master, atol=1e-12)

    def test_energy_improves_over_iterations(self, h2_problem):
        wf = build_qiankunnet(4, 1, 1, seed=17)
        driver = DataParallelVMC(
            wf, h2_problem.hamiltonian, n_ranks=2,
            config=VMCConfig(n_samples=10**4, eloc_mode="exact", warmup=50, seed=18),
            nu_star_per_rank=2,
        )
        hist = driver.run(60)
        first = np.mean([s.energy for s in hist[:5]])
        last = np.mean([s.energy for s in hist[-5:]])
        assert last < first  # optimization makes progress

    def test_comm_bytes_grow_with_ranks(self, driver_factory):
        b1 = driver_factory(1).step().comm_bytes
        b3 = driver_factory(3).step().comm_bytes
        assert b3 > b1
