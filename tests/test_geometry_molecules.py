"""Molecule container, geometry presets, element tables."""
import numpy as np
import pytest

from repro.chem import MOLECULES, Molecule, make_molecule
from repro.chem.elements import ANGSTROM_TO_BOHR, atomic_number
from repro.chem.molecules import fig9_molecules, paper_table1_molecules


class TestElements:
    def test_atomic_numbers(self):
        assert atomic_number("H") == 1
        assert atomic_number("C") == 6
        assert atomic_number("Cl") == 17

    def test_case_insensitive(self):
        assert atomic_number("cl") == 17
        assert atomic_number("h") == 1

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            atomic_number("Xx")


class TestMolecule:
    def test_angstrom_conversion(self):
        m = Molecule.from_angstrom([("H", (0, 0, 0)), ("H", (0, 0, 1.0))])
        assert m.coords[1][2] == pytest.approx(ANGSTROM_TO_BOHR)

    def test_electron_count_and_charge(self):
        m = Molecule.from_angstrom([("O", (0, 0, 0))], charge=-2)
        assert m.n_electrons == 10

    def test_nuclear_repulsion_pair(self):
        m = Molecule(symbols=("H", "H"), coords=((0, 0, 0), (0, 0, 2.0)))
        assert m.nuclear_repulsion() == pytest.approx(0.5)

    def test_nuclear_repulsion_triangle(self):
        m = Molecule(
            symbols=("H", "H", "H"),
            coords=((0, 0, 0), (1, 0, 0), (0, 1, 0)),
            charge=1,
        )
        expected = 1.0 + 1.0 + 1.0 / np.sqrt(2.0)
        assert m.nuclear_repulsion() == pytest.approx(expected)

    def test_immutability(self):
        m = make_molecule("H2")
        with pytest.raises(Exception):
            m.charge = 1  # frozen dataclass


class TestPresets:
    def test_all_presets_build(self):
        for name in MOLECULES:
            m = make_molecule(name)
            assert m.n_atoms >= 1
            assert m.n_electrons > 0

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            make_molecule("unobtainium")

    def test_geometry_kwargs_forwarded(self):
        short = make_molecule("H2", r=0.5)
        longer = make_molecule("H2", r=1.5)
        assert longer.nuclear_repulsion() < short.nuclear_repulsion()

    def test_electron_counts_match_paper_table1(self):
        expected = {"H2O": 10, "N2": 14, "O2": 16, "H2S": 18, "PH3": 18,
                    "LiCl": 20, "Li2O": 14}
        for name, n_e in expected.items():
            assert make_molecule(name).n_electrons == n_e, name

    def test_paper_lists(self):
        assert set(paper_table1_molecules()) <= set(MOLECULES)
        assert set(fig9_molecules()) <= set(MOLECULES)

    def test_nh3_bond_lengths(self):
        m = make_molecule("NH3")
        r = m.coords_array
        for h in range(1, 4):
            d = np.linalg.norm(r[h] - r[0]) / ANGSTROM_TO_BOHR
            assert d == pytest.approx(1.0124, abs=1e-3)

    def test_benzene_ring_geometry(self):
        m = make_molecule("C6H6")
        r = m.coords_array
        carbons = [i for i, s in enumerate(m.symbols) if s == "C"]
        d = np.linalg.norm(r[carbons[0]] - r[carbons[1]]) / ANGSTROM_TO_BOHR
        assert d == pytest.approx(1.397, abs=1e-3)

    def test_cyclopropane_cc_bond(self):
        m = make_molecule("C3H6")
        r = m.coords_array
        carbons = [i for i, s in enumerate(m.symbols) if s == "C"]
        d = np.linalg.norm(r[carbons[0]] - r[carbons[1]]) / ANGSTROM_TO_BOHR
        assert d == pytest.approx(1.512, abs=1e-3)
