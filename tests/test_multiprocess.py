"""Tests for the process-backed SPMD executor."""
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.parallel import CommAbortError, run_spmd, run_spmd_processes

# Process spawning is slow (and barrier-timeout recovery takes minutes on
# constrained runners), so the whole module sits behind the slow marker.
pytestmark = pytest.mark.slow


def _leaked_segments() -> list[str]:
    """Names of any live shared-memory segments this executor created."""
    return [p.name for p in Path("/dev/shm").glob("reprocomm-*")]


class TestCollectives:
    def test_allgather_rank_order(self):
        def fn(comm):
            return comm.allgather(comm.Get_rank() * 10)

        results, stats = run_spmd_processes(3, fn)
        assert results == [[0, 10, 20]] * 3
        assert stats.calls["allgather"] == 1

    def test_allreduce_sum_matches_numpy(self):
        def fn(comm):
            rank = comm.Get_rank()
            return comm.allreduce_sum(np.arange(4, dtype=np.float64) * (rank + 1))

        results, _ = run_spmd_processes(4, fn)
        expected = np.arange(4, dtype=np.float64) * (1 + 2 + 3 + 4)
        for r in results:
            np.testing.assert_allclose(r, expected)

    def test_bcast_from_root(self):
        def fn(comm):
            payload = np.array([1.5, 2.5]) if comm.Get_rank() == 1 else None
            return comm.bcast(payload, root=1)

        results, stats = run_spmd_processes(3, fn)
        for r in results:
            np.testing.assert_allclose(r, [1.5, 2.5])
        assert stats.bcast_bytes == 16 * 3  # payload x N_p convention

    def test_collective_sequence(self):
        def fn(comm):
            a = comm.allreduce_sum(np.array([1.0]))
            comm.barrier()
            b = comm.allgather(comm.Get_rank())
            c = comm.bcast(np.array([a[0]]), root=0)
            return (a[0], tuple(b), c[0])

        results, stats = run_spmd_processes(2, fn)
        assert results == [(2.0, (0, 1), 2.0)] * 2
        assert stats.calls == {"allgather": 1, "allreduce": 1, "bcast": 1}

    def test_byte_accounting_matches_thread_backend(self):
        def fn(comm):
            comm.allgather(np.zeros(10))
            comm.allreduce_sum(np.zeros(5))
            return None

        _, s_proc = run_spmd_processes(2, fn)
        _, s_thread = run_spmd(2, fn)
        assert s_proc.allgather_bytes == s_thread.allgather_bytes
        assert s_proc.allreduce_bytes == s_thread.allreduce_bytes


class TestTypedCollectives:
    @pytest.mark.parametrize("use_shm", [True, False])
    def test_allgather_ndarray_roundtrip(self, use_shm):
        def fn(comm):
            arr = np.arange(5, dtype=np.float64) + 10 * comm.Get_rank()
            return comm.allgather_ndarray(arr, channel="t")

        # threshold=0 forces every array through the shm path when enabled
        results, stats = run_spmd_processes(2, fn, use_shm=use_shm,
                                            shm_threshold=0)
        for parts in results:
            np.testing.assert_array_equal(parts[0], np.arange(5.0))
            np.testing.assert_array_equal(parts[1], np.arange(5.0) + 10)
        assert stats.channels["t"]["logical"] == 5 * 8 * 2 * 2
        assert _leaked_segments() == []

    @pytest.mark.parametrize("use_shm", [True, False])
    def test_allreduce_ndarray_matches_rank_ordered_sum(self, use_shm):
        def fn(comm):
            arr = np.arange(6, dtype=np.float64) * (comm.Get_rank() + 1)
            return comm.allreduce_ndarray(arr, channel="g")

        results, _ = run_spmd_processes(3, fn, use_shm=use_shm,
                                        shm_threshold=0)
        expected = np.arange(6, dtype=np.float64) * 6
        for r in results:
            np.testing.assert_array_equal(r, expected)
        assert _leaked_segments() == []

    def test_shm_and_pipe_paths_bit_identical(self):
        def fn(comm):
            arr = (np.arange(100, dtype=np.float64) + 1) / (comm.Get_rank() + 3)
            gathered = comm.allgather_ndarray(arr)
            reduced = comm.allreduce_ndarray(arr)
            return np.concatenate(gathered + [reduced])

        via_shm, _ = run_spmd_processes(2, fn, use_shm=True, shm_threshold=0)
        via_pipe, _ = run_spmd_processes(2, fn, use_shm=False)
        via_threads, _ = run_spmd(2, fn)
        for a, b, c in zip(via_shm, via_pipe, via_threads):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, c)

    def test_allgather_blob_accounts_logical_vs_wire(self):
        def fn(comm):
            blob = bytes([comm.Get_rank()]) * 10
            out = comm.allgather_blob(blob, logical_bytes=100, channel="z")
            return out

        results, stats = run_spmd_processes(2, fn)
        assert results[0] == [b"\x00" * 10, b"\x01" * 10]
        assert stats.channels["z"]["logical"] == 100 * 2 * 2
        assert stats.channels["z"]["wire"] == 10 * 2 * 2


class TestShmCleanup:
    def test_crash_mid_collective_leaks_no_segments(self):
        """A rank dying after posting a segment must not leak /dev/shm."""

        def fn(comm):
            big = np.ones(70_000, dtype=np.float64) * comm.Get_rank()
            if comm.Get_rank() == 1:
                comm._post_segment(big)  # segment exists, collective never completes
                os._exit(1)
            comm.allgather_ndarray(big)
            return None

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd_processes(2, fn, timeout=120, use_shm=True)
        assert _leaked_segments() == []

    def test_abort_poisons_stragglers_without_hanging(self):
        """When one rank dies, surviving ranks get an abort, not a hang."""

        def fn(comm):
            if comm.Get_rank() == 0:
                os._exit(1)
            comm.allreduce_ndarray(np.ones(100_000))  # must not block forever
            return None

        t0 = time.perf_counter()
        with pytest.raises(RuntimeError, match="rank 0"):
            run_spmd_processes(2, fn, timeout=120, use_shm=True)
        assert time.perf_counter() - t0 < 60
        assert _leaked_segments() == []

    def test_clean_run_unlinks_every_segment(self):
        def fn(comm):
            for _ in range(3):
                comm.allgather_ndarray(np.ones(70_000))
                comm.allreduce_ndarray(np.ones(70_000))
            return None

        run_spmd_processes(2, fn, use_shm=True)
        assert _leaked_segments() == []


class TestProcessSemantics:
    def test_rank_state_is_private(self):
        """Writes to captured objects must NOT propagate across process ranks."""
        shared = {"value": 0}

        def fn(comm):
            shared["value"] += 1  # fork: copy-on-write, stays rank-local
            comm.barrier()
            return shared["value"]

        results, _ = run_spmd_processes(3, fn)
        assert results == [1, 1, 1]
        assert shared["value"] == 0  # parent copy untouched

    def test_poison_surfaces_as_comm_abort_error(self, tmp_path):
        """Survivors observe the poison as CommAbortError naming the dead
        rank — the abort surface shared with the cluster transport."""
        marker = tmp_path / "survivor.txt"

        def fn(comm):
            if comm.Get_rank() == 1:
                raise ValueError("boom")
            try:
                comm.barrier()
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                marker.write_text(f"{type(exc).__name__}:{exc}")
                raise
            return None

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd_processes(2, fn, timeout=120)
        name, _, message = marker.read_text().partition(":")
        assert name == "CommAbortError"
        assert isinstance(CommAbortError(""), RuntimeError)
        assert "rank 1" in message

    def test_exception_reraised_with_rank(self):
        def fn(comm):
            if comm.Get_rank() == 1:
                raise ValueError("boom")
            comm.barrier()  # never completes; coordinator must not deadlock
            return None

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd_processes(2, fn, timeout=120)

    def test_results_are_pickled_back(self):
        def fn(comm):
            return {"rank": comm.Get_rank(), "data": np.ones(3) * comm.Get_size()}

        results, _ = run_spmd_processes(2, fn)
        for r, res in enumerate(results):
            assert res["rank"] == r
            np.testing.assert_allclose(res["data"], 2.0)

    def test_single_rank(self):
        results, stats = run_spmd_processes(1, lambda comm: comm.allgather("x"))
        assert results == [["x"]]

    def test_gil_bound_work_scales_better_than_threads(self):
        """Pure-Python rank work: process ranks beat GIL-bound thread ranks.

        Comparing the two backends on the *same* workload under the same
        machine load is robust where an absolute-time bound would flake.
        """
        if os.cpu_count() < 2:
            pytest.skip("needs 2 cores")

        def busy(comm):
            acc = 0
            for i in range(4_000_000):
                acc += i & 7
            comm.barrier()
            return acc

        t0 = time.perf_counter()
        run_spmd_processes(2, busy)
        wall_procs = time.perf_counter() - t0

        t0 = time.perf_counter()
        run_spmd(2, busy)
        wall_threads = time.perf_counter() - t0

        # Thread ranks serialize on the GIL (~2x the single-rank time);
        # process ranks overlap. Allow slack for fork + pickle overhead.
        assert wall_procs < wall_threads * 0.85 + 0.3
