"""Tests for the process-backed SPMD executor."""
import os
import time

import numpy as np
import pytest

from repro.parallel import run_spmd, run_spmd_processes

# Process spawning is slow (and barrier-timeout recovery takes minutes on
# constrained runners), so the whole module sits behind the slow marker.
pytestmark = pytest.mark.slow


class TestCollectives:
    def test_allgather_rank_order(self):
        def fn(comm):
            return comm.allgather(comm.Get_rank() * 10)

        results, stats = run_spmd_processes(3, fn)
        assert results == [[0, 10, 20]] * 3
        assert stats.calls["allgather"] == 1

    def test_allreduce_sum_matches_numpy(self):
        def fn(comm):
            rank = comm.Get_rank()
            return comm.allreduce_sum(np.arange(4, dtype=np.float64) * (rank + 1))

        results, _ = run_spmd_processes(4, fn)
        expected = np.arange(4, dtype=np.float64) * (1 + 2 + 3 + 4)
        for r in results:
            np.testing.assert_allclose(r, expected)

    def test_bcast_from_root(self):
        def fn(comm):
            payload = np.array([1.5, 2.5]) if comm.Get_rank() == 1 else None
            return comm.bcast(payload, root=1)

        results, stats = run_spmd_processes(3, fn)
        for r in results:
            np.testing.assert_allclose(r, [1.5, 2.5])
        assert stats.bcast_bytes == 16 * 3  # payload x N_p convention

    def test_collective_sequence(self):
        def fn(comm):
            a = comm.allreduce_sum(np.array([1.0]))
            comm.barrier()
            b = comm.allgather(comm.Get_rank())
            c = comm.bcast(np.array([a[0]]), root=0)
            return (a[0], tuple(b), c[0])

        results, stats = run_spmd_processes(2, fn)
        assert results == [(2.0, (0, 1), 2.0)] * 2
        assert stats.calls == {"allgather": 1, "allreduce": 1, "bcast": 1}

    def test_byte_accounting_matches_thread_backend(self):
        def fn(comm):
            comm.allgather(np.zeros(10))
            comm.allreduce_sum(np.zeros(5))
            return None

        _, s_proc = run_spmd_processes(2, fn)
        _, s_thread = run_spmd(2, fn)
        assert s_proc.allgather_bytes == s_thread.allgather_bytes
        assert s_proc.allreduce_bytes == s_thread.allreduce_bytes


class TestProcessSemantics:
    def test_rank_state_is_private(self):
        """Writes to captured objects must NOT propagate across process ranks."""
        shared = {"value": 0}

        def fn(comm):
            shared["value"] += 1  # fork: copy-on-write, stays rank-local
            comm.barrier()
            return shared["value"]

        results, _ = run_spmd_processes(3, fn)
        assert results == [1, 1, 1]
        assert shared["value"] == 0  # parent copy untouched

    def test_exception_reraised_with_rank(self):
        def fn(comm):
            if comm.Get_rank() == 1:
                raise ValueError("boom")
            comm.barrier()  # never completes; coordinator must not deadlock
            return None

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd_processes(2, fn, timeout=120)

    def test_results_are_pickled_back(self):
        def fn(comm):
            return {"rank": comm.Get_rank(), "data": np.ones(3) * comm.Get_size()}

        results, _ = run_spmd_processes(2, fn)
        for r, res in enumerate(results):
            assert res["rank"] == r
            np.testing.assert_allclose(res["data"], 2.0)

    def test_single_rank(self):
        results, stats = run_spmd_processes(1, lambda comm: comm.allgather("x"))
        assert results == [["x"]]

    def test_gil_bound_work_scales_better_than_threads(self):
        """Pure-Python rank work: process ranks beat GIL-bound thread ranks.

        Comparing the two backends on the *same* workload under the same
        machine load is robust where an absolute-time bound would flake.
        """
        if os.cpu_count() < 2:
            pytest.skip("needs 2 cores")

        def busy(comm):
            acc = 0
            for i in range(4_000_000):
                acc += i & 7
            comm.barrier()
            return acc

        t0 = time.perf_counter()
        run_spmd_processes(2, busy)
        wall_procs = time.perf_counter() - t0

        t0 = time.perf_counter()
        run_spmd(2, busy)
        wall_threads = time.perf_counter() - t0

        # Thread ranks serialize on the GIL (~2x the single-rank time);
        # process ranks overlap. Allow slack for fork + pickle overhead.
        assert wall_procs < wall_threads * 0.85 + 0.3
