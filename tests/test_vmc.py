"""VMC driver: Eq. 7 gradient correctness, convergence, bookkeeping."""
import numpy as np
import pytest

from repro.chem import run_fci
from repro.core import (
    SampleBatch,
    VMC,
    VMCConfig,
    build_qiankunnet,
    default_ns_schedule,
    pretrain_to_reference,
)
from repro.hamiltonian import compress_hamiltonian, sector_hamiltonian_dense
from tests.test_wavefunction import sector_bitstrings


def exact_energy(wf, comp, n_up, n_dn) -> float:
    """Rayleigh quotient <psi|H|psi>/<psi|psi> from the dense sector matrix."""
    Hs, basis = sector_hamiltonian_dense(comp, n_up, n_dn)
    psi = wf.amplitudes(basis.bits())
    return float(np.real(psi.conj() @ Hs @ psi) / np.real(psi.conj() @ psi))


class TestGradientFormula:
    def test_eq7_matches_finite_difference(self, h2_problem):
        """With exact-pi weights and exact E_loc, Eq. 7 equals dE/dtheta."""
        wf = build_qiankunnet(4, 1, 1, d_model=8, n_heads=2, n_layers=1,
                              phase_hidden=(12,), seed=13)
        comp = compress_hamiltonian(h2_problem.hamiltonian)
        bits = sector_bitstrings(4, 1, 1)
        pi = np.exp(wf.log_prob(bits).data)
        # Integer weights proportional to pi (relative error ~1e-12).
        weights = np.round(pi * 1e14).astype(np.int64)
        batch = SampleBatch(bits=bits, weights=weights)

        vmc = VMC(wf, comp, VMCConfig(n_samples=1, eloc_mode="exact", grad_clip=None))
        from repro.core import local_energy

        eloc, _ = local_energy(wf, comp, batch, mode="exact")
        wf.zero_grad()
        vmc.optimizer.lr = 0.0  # isolate gradient computation
        # gradient_step mutates params through optimizer; compute grads only:
        w = batch.weights / batch.weights.sum()
        e_mean = np.sum(w * eloc)
        from repro.autograd import Tensor

        coeff_amp = w * (eloc.real - e_mean.real)
        coeff_phase = 2.0 * w * (eloc.imag - e_mean.imag)
        loss = (Tensor(coeff_amp) * wf.log_prob(bits)).sum() + (
            Tensor(coeff_phase) * wf.phase_of(bits)
        ).sum()
        loss.backward()
        analytic = wf.get_flat_grads()

        flat0 = wf.get_flat_params()
        rng = np.random.default_rng(0)
        eps = 1e-5
        for idx in rng.choice(len(flat0), size=12, replace=False):
            for sign, store in ((+1, "plus"), (-1, "minus")):
                f = flat0.copy()
                f[idx] += sign * eps
                wf.set_flat_params(f)
                if sign > 0:
                    e_plus = exact_energy(wf, comp, 1, 1)
                else:
                    e_minus = exact_energy(wf, comp, 1, 1)
            wf.set_flat_params(flat0)
            numeric = (e_plus - e_minus) / (2 * eps)
            assert analytic[idx] == pytest.approx(numeric, abs=5e-6), f"param {idx}"


class TestConvergence:
    def test_h2_reaches_chemical_accuracy(self, h2_problem):
        fci = run_fci(h2_problem.hamiltonian).energy
        wf = build_qiankunnet(4, 1, 1, seed=1)
        pretrain_to_reference(wf, h2_problem.hf_bits, n_steps=100)
        vmc = VMC(wf, h2_problem.hamiltonian,
                  VMCConfig(n_samples=10**5, eloc_mode="exact", warmup=200, seed=2))
        vmc.run(300)
        assert abs(vmc.best_energy() - fci) < 1.6e-3  # chemical accuracy

    def test_energy_never_below_fci(self, h2_problem):
        """Variational principle: sampled energies fluctuate but the converged
        estimate cannot undercut FCI beyond statistical noise."""
        fci = run_fci(h2_problem.hamiltonian).energy
        wf = build_qiankunnet(4, 1, 1, seed=3)
        vmc = VMC(wf, h2_problem.hamiltonian,
                  VMCConfig(n_samples=10**5, eloc_mode="exact", warmup=100, seed=4))
        vmc.run(150)
        assert vmc.best_energy() >= fci - 5e-4

    def test_history_bookkeeping(self, h2_problem):
        wf = build_qiankunnet(4, 1, 1, seed=5)
        vmc = VMC(wf, h2_problem.hamiltonian, VMCConfig(n_samples=1000, seed=6))
        stats = vmc.run(3)
        assert [s.iteration for s in stats] == [1, 2, 3]
        assert all(s.n_samples == 1000 for s in stats)
        assert all(s.n_unique > 0 for s in stats)
        assert all(np.isfinite(s.energy) for s in stats)
        assert all(s.variance >= 0 for s in stats)

    def test_best_energy_requires_history(self, h2_problem):
        wf = build_qiankunnet(4, 1, 1, seed=7)
        vmc = VMC(wf, h2_problem.hamiltonian)
        with pytest.raises(RuntimeError):
            vmc.best_energy()

    def test_ns_schedule(self):
        sched = default_ns_schedule(pretrain_iters=5, ns_pretrain=100, ns_max=10**6)
        assert sched(0) == 100
        assert sched(4) == 100
        assert sched(5) == 100
        assert sched(6) > 100
        assert sched(10**3) == 10**6  # capped

    def test_callable_ns_schedule_used(self, h2_problem):
        wf = build_qiankunnet(4, 1, 1, seed=8)
        vmc = VMC(wf, h2_problem.hamiltonian,
                  VMCConfig(n_samples=lambda it: 100 * (it + 1), seed=9))
        s1 = vmc.step()
        s2 = vmc.step()
        assert s1.n_samples == 100 and s2.n_samples == 200

    def test_grad_clip_applies(self, h2_problem):
        wf = build_qiankunnet(4, 1, 1, seed=10)
        vmc = VMC(wf, h2_problem.hamiltonian,
                  VMCConfig(n_samples=1000, grad_clip=1e-9, seed=11))
        p0 = wf.get_flat_params().copy()
        vmc.step()
        # with a tiny clip the parameter movement is bounded by ~lr * 1
        assert np.linalg.norm(wf.get_flat_params() - p0) < 1.0


class TestPretrain:
    def test_hf_probability_raised(self, h2o_problem):
        wf = build_qiankunnet(h2o_problem.n_qubits, h2o_problem.n_up,
                              h2o_problem.n_dn, d_model=8, n_heads=2,
                              n_layers=1, phase_hidden=(16,), seed=12)
        p_before = float(np.exp(wf.log_prob(h2o_problem.hf_bits[None, :]).data[0]))
        p_after = pretrain_to_reference(wf, h2o_problem.hf_bits, n_steps=150)
        assert p_after > p_before
        assert p_after > 0.3

    def test_phase_untouched(self, h2_problem):
        wf = build_qiankunnet(4, 1, 1, seed=13)
        phase0 = [p.data.copy() for p in wf.phase.parameters()]
        pretrain_to_reference(wf, h2_problem.hf_bits, n_steps=20)
        for p, q in zip(wf.phase.parameters(), phase0):
            np.testing.assert_array_equal(p.data, q)


class TestVMCConfigValidation:
    """__post_init__ rejects bad knobs up front, naming the field."""

    @pytest.mark.parametrize("field,value", [
        ("n_samples", 0),
        ("n_samples", -100),
        ("eloc_mode", "typo_mode"),
        ("lr_scale", 0.0),
        ("warmup", 0),
        ("weight_decay", -0.1),
        ("grad_clip", 0.0),
    ])
    def test_bad_value_names_field(self, field, value):
        with pytest.raises(ValueError, match=f"VMCConfig.{field}"):
            VMCConfig(**{field: value})

    def test_callable_schedule_accepted(self):
        VMCConfig(n_samples=default_ns_schedule())

    def test_grad_clip_none_accepted(self):
        VMCConfig(grad_clip=None)

    def test_custom_sampler_is_used(self):
        from repro.core.sampler import batch_autoregressive_sample

        calls = []

        def spy_sampler(wf, n, rng):
            calls.append(n)
            return batch_autoregressive_sample(wf, n, rng)

        wf = build_qiankunnet(4, 1, 1, d_model=8, n_heads=2, n_layers=1,
                              phase_hidden=(8,), seed=0)
        from repro.hamiltonian.synthetic import synthetic_molecular_hamiltonian

        ham = synthetic_molecular_hamiltonian(4, n_terms=8, seed=3)
        vmc = VMC(wf, ham, VMCConfig(n_samples=64, warmup=10,
                                     sampler=spy_sampler))
        vmc.step()
        assert calls == [64]
