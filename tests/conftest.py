"""Shared fixtures: small molecular problems (session-scoped, disk-cached)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.chem import build_problem


@pytest.fixture(scope="session")
def h2_problem():
    return build_problem("H2", "sto-3g", r=0.7414)


@pytest.fixture(scope="session")
def lih_problem():
    return build_problem("LiH", "sto-3g")


@pytest.fixture(scope="session")
def h2o_problem():
    return build_problem("H2O", "sto-3g")


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
