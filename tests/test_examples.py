"""Smoke-run every example script with a minimal budget.

The examples are user-facing deliverables; each must execute end-to-end from
a clean interpreter.  Budgets are cut to a few iterations — correctness of
the underlying physics is covered by the unit/integration suites, this file
guards the example code paths themselves (imports, CLI, printing).
"""
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["--iters", "5"]),
    ("beh2_dissociation.py", ["--iters", "5", "--points", "1.326"]),
    ("ansatz_comparison.py", ["--molecule", "H2", "--iters", "5"]),
    ("batch_sampling_demo.py", ["--molecule", "H2"]),
    ("parallel_scaling.py", ["--molecule", "H2", "--ranks", "1", "2",
                             "--samples", "10000", "--iters", "1"]),
    ("properties_demo.py", ["--iters", "5"]),
    ("sr_vs_adamw.py", ["--sr-iters", "3", "--adamw-iters", "5"]),
    ("active_space_n2.py", ["--iters", "5", "--bond-lengths", "1.0977"]),
    ("serve_demo.py", ["--iters", "2", "--clients", "3"]),
]


def run_example(name: str, args: list[str], timeout: int = 600) -> str:
    script = EXAMPLES / name
    assert script.exists(), f"missing example {name}"
    proc = subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{name} failed (rc={proc.returncode})\nstdout:\n{proc.stdout}\n"
        f"stderr:\n{proc.stderr}"
    )
    return proc.stdout


@pytest.mark.parametrize("name,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(name, args):
    out = run_example(name, args)
    assert out.strip(), f"{name} produced no output"


def test_quickstart_reports_all_methods():
    out = run_example("quickstart.py", ["--iters", "5"])
    for token in ("HF", "CCSD", "QiankunNet", "FCI", "chemical accuracy"):
        assert token in out


def test_h2_large_basis_smallest_config():
    """The Fig. 13 example on the smallest basis it accepts (slow otherwise)."""
    out = run_example("h2_large_basis.py",
                      ["--iters", "2", "--basis", "sto-3g"], timeout=900)
    assert "FCI" in out
