"""Tests for independent-stream batch sampling (Sec. 4.4 outlook)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem import build_problem
from repro.core import (
    SampleBatch,
    batch_autoregressive_sample,
    build_qiankunnet,
    merge_batches,
    merged_batch_sample,
    pretrain_to_reference,
)


@pytest.fixture(scope="module")
def wf4():
    prob = build_problem("H2", "sto-3g", r=0.7414)
    wf = build_qiankunnet(prob.n_qubits, prob.n_up, prob.n_dn, d_model=8,
                          n_heads=2, n_layers=1, phase_hidden=(16,), seed=2)
    pretrain_to_reference(wf, prob.hf_bits, n_steps=60)
    return wf


class TestMergeBatches:
    def test_weights_conserved(self):
        a = SampleBatch(bits=np.array([[1, 0], [0, 1]], dtype=np.uint8),
                        weights=np.array([5, 3], dtype=np.int64))
        b = SampleBatch(bits=np.array([[0, 1], [1, 1]], dtype=np.uint8),
                        weights=np.array([2, 7], dtype=np.int64))
        merged = merge_batches([a, b], n_qubits=2)
        assert merged.n_samples == 17
        assert merged.n_unique == 3

    def test_duplicate_rows_summed(self):
        a = SampleBatch(bits=np.array([[1, 0]], dtype=np.uint8),
                        weights=np.array([5], dtype=np.int64))
        merged = merge_batches([a, a, a], n_qubits=2)
        assert merged.n_unique == 1
        assert merged.weights[0] == 15

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            merge_batches([], n_qubits=2)

    def test_single_batch_roundtrip(self):
        a = SampleBatch(bits=np.array([[1, 0, 1, 0], [0, 1, 0, 1]], dtype=np.uint8),
                        weights=np.array([4, 9], dtype=np.int64))
        merged = merge_batches([a], n_qubits=4)
        assert merged.n_samples == a.n_samples
        assert merged.n_unique == a.n_unique

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),   # batches
        st.integers(min_value=1, max_value=6),   # rows per batch
        st.integers(min_value=2, max_value=70),  # qubit count (spans 2 words)
        st.integers(min_value=0, max_value=10**6),
    )
    def test_property_weight_and_support_conservation(self, nb, rows, n, seed):
        rng = np.random.default_rng(seed)
        batches = []
        for _ in range(nb):
            bits = rng.integers(0, 2, size=(rows, n)).astype(np.uint8)
            w = rng.integers(1, 100, size=rows).astype(np.int64)
            batches.append(SampleBatch(bits=bits, weights=w))
        merged = merge_batches(batches, n_qubits=n)
        assert merged.n_samples == sum(b.n_samples for b in batches)
        # Every merged row appears in some input and vice versa.
        in_rows = {tuple(r) for b in batches for r in b.bits}
        out_rows = {tuple(r) for r in merged.bits}
        assert out_rows == in_rows
        # Merged rows are unique.
        assert len(out_rows) == merged.n_unique


class TestMergedBatchSample:
    def test_budget_split_exact(self, wf4):
        rng = np.random.default_rng(0)
        merged, stats = merged_batch_sample(wf4, 10**5 + 3, rng, n_streams=4)
        assert merged.n_samples == 10**5 + 3
        assert stats.n_streams == 4

    def test_single_stream_is_plain_bas(self, wf4):
        rng = np.random.default_rng(1)
        merged, stats = merged_batch_sample(wf4, 5000, rng, n_streams=1)
        assert stats.n_streams == 1
        assert stats.overlap_fraction == 0.0
        assert merged.n_samples == 5000

    def test_streams_respect_sector(self, wf4):
        rng = np.random.default_rng(2)
        merged, _ = merged_batch_sample(wf4, 10**4, rng, n_streams=3)
        assert np.all(merged.bits[:, 0::2].sum(axis=1) == 1)
        assert np.all(merged.bits[:, 1::2].sum(axis=1) == 1)

    def test_distribution_agrees_with_single_run(self, wf4):
        """Merged-stream frequencies match a single big BAS run within noise."""
        rng = np.random.default_rng(3)
        merged, _ = merged_batch_sample(wf4, 2 * 10**5, rng, n_streams=4)
        single = batch_autoregressive_sample(wf4, 2 * 10**5, np.random.default_rng(99))

        def freq_map(batch):
            return {tuple(r): w / batch.n_samples
                    for r, w in zip(batch.bits, batch.weights)}

        fm, fs = freq_map(merged), freq_map(single)
        for key in set(fm) | set(fs):
            assert fm.get(key, 0.0) == pytest.approx(fs.get(key, 0.0), abs=2e-2)

    def test_zero_streams_rejected(self, wf4):
        with pytest.raises(ValueError):
            merged_batch_sample(wf4, 100, np.random.default_rng(0), n_streams=0)

    def test_overlap_statistics(self, wf4):
        rng = np.random.default_rng(4)
        _, stats = merged_batch_sample(wf4, 10**5, rng, n_streams=4)
        # On a 4-qubit sector every stream sees the same few states: overlap ~ 3/4.
        assert stats.overlap_fraction > 0.5
        assert len(stats.uniques_per_stream) == 4
