"""Compiled local-energy plans: bit-identity, dedup, threading, backends.

Acceptance contracts of the ``ElocPlan`` / ``local_energy_planned`` rung:

* bit-identical local energies vs. ``local_energy_vectorized`` for all three
  ansätze, on sample-aware and exact (extended) tables;
* bit-identical at every chunk boundary (``sample_chunk`` / ``group_chunk``
  = 1, odd, > batch) when both kernels use the same chunking;
* agreement with the scalar ``sa_fuse_lut`` ladder (the pre-batch reference);
* the coupled-key dedup path (``np.unique`` + inverse scatter) is
  index-identical to the direct binary search, single- and multi-word;
* one plan per run serves every backend (serial / threads / process) and the
  serving layer, with no caller compiling plans by hand;
* the ``eloc_kernel`` registry selects the kernel by name from the spec.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ElocPlan,
    SampleBatch,
    VMC,
    VMCConfig,
    build_amplitude_table,
    build_qiankunnet,
    compile_eloc_plan,
    extend_amplitude_table,
    local_energy,
    local_energy_planned,
    local_energy_sa_fuse_lut,
    local_energy_vectorized,
)
from repro.core.engine import ProcessBackend, ThreadBackend
from repro.core.local_energy import AmplitudeTable, resolve_batch_kernel
from repro.core.sampler import batch_autoregressive_sample
from repro.hamiltonian import compress_hamiltonian, synthetic_molecular_hamiltonian
from repro.utils.bitstrings import lexsort_keys, pack_bits

ANSATZE = ["transformer", "made", "naqs-mlp"]


def _setup(problem, amplitude_type="transformer", n_samples=2000, seed=11):
    wf = build_qiankunnet(problem.n_qubits, problem.n_up, problem.n_dn,
                          amplitude_type=amplitude_type, d_model=8, n_heads=2,
                          n_layers=1, phase_hidden=(8,), seed=seed)
    batch = batch_autoregressive_sample(wf, n_samples,
                                        np.random.default_rng(seed))
    comp = compress_hamiltonian(problem.hamiltonian)
    table = build_amplitude_table(wf, batch)
    return wf, comp, batch, table


class TestBitIdentity:
    @pytest.mark.parametrize("amplitude_type", ANSATZE)
    def test_matches_vectorized_sample_aware(self, lih_problem, amplitude_type):
        wf, comp, batch, table = _setup(lih_problem, amplitude_type)
        ref = local_energy_vectorized(comp, batch, table)
        out = local_energy_planned(comp, batch, table, plan=ElocPlan(comp))
        np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("amplitude_type", ANSATZE)
    def test_matches_vectorized_exact_table(self, h2_problem, amplitude_type):
        wf, comp, batch, table = _setup(h2_problem, amplitude_type)
        ext = extend_amplitude_table(wf, comp, batch, table)
        ref = local_energy_vectorized(comp, batch, ext)
        out = ElocPlan(comp).local_energy(batch, ext)
        np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("amplitude_type", ANSATZE)
    def test_agrees_with_scalar_lut_ladder(self, h2_problem, amplitude_type):
        wf, comp, batch, table = _setup(h2_problem, amplitude_type)
        scalar = local_energy_sa_fuse_lut(comp, batch, table)
        planned = ElocPlan(comp).local_energy(batch, table)
        np.testing.assert_allclose(planned, scalar, atol=1e-10)

    @pytest.mark.parametrize("group_chunk,sample_chunk", [
        (1, 1), (3, 5), (1, 4096), (512, 1), (7, 3), (10**6, 10**6),
    ])
    def test_chunk_boundaries(self, lih_problem, group_chunk, sample_chunk):
        """Equal chunking => bit-equal results, at every boundary shape
        (1, odd, and far beyond the batch/group counts)."""
        wf, comp, batch, table = _setup(lih_problem)
        ref = local_energy_vectorized(comp, batch, table,
                                      group_chunk=group_chunk,
                                      sample_chunk=sample_chunk)
        out = local_energy_planned(comp, batch, table,
                                   group_chunk=group_chunk,
                                   sample_chunk=sample_chunk)
        np.testing.assert_array_equal(out, ref)

    def test_memory_budget_matches_vectorized(self, lih_problem):
        wf, comp, batch, table = _setup(lih_problem)
        ref = local_energy_vectorized(comp, batch, table,
                                      memory_budget_bytes=4096)
        plan = ElocPlan(comp, memory_budget_bytes=4096)
        np.testing.assert_array_equal(plan.local_energy(batch, table), ref)

    def test_plan_reused_across_tables(self, lih_problem):
        """One plan, many iterations: a fresh table (moved parameters) must
        invalidate the cached record view, never reuse the old one."""
        wf, comp, batch, table = _setup(lih_problem, seed=1)
        wf2, _, batch2, table2 = _setup(lih_problem, seed=2)
        plan = ElocPlan(comp)
        np.testing.assert_array_equal(
            plan.local_energy(batch, table),
            local_energy_vectorized(comp, batch, table))
        np.testing.assert_array_equal(
            plan.local_energy(batch2, table2),
            local_energy_vectorized(comp, batch2, table2))
        # ... and going back to the first table still answers correctly.
        np.testing.assert_array_equal(
            plan.local_energy(batch, table),
            local_energy_vectorized(comp, batch, table))


class TestDedup:
    def test_forced_dedup_is_index_identical(self, lih_problem):
        """Tiny tables skip dedup by default; forcing it on must not change
        a single bit (the inverse scatter reproduces every lookup)."""
        wf, comp, batch, table = _setup(lih_problem)
        direct = ElocPlan(comp).local_energy(batch, table)
        forced = ElocPlan(comp)
        forced.DEDUP_MIN_TABLE = 0
        np.testing.assert_array_equal(forced.local_energy(batch, table), direct)

    @pytest.mark.parametrize("n_qubits,n_terms", [(70, 300), (100, 500)])
    def test_multiword_dedup(self, n_qubits, n_terms):
        """Two-word keys go through the record-dtype unique/searchsorted."""
        ham = synthetic_molecular_hamiltonian(n_qubits, n_terms, seed=3)
        comp = compress_hamiltonian(ham)
        rng = np.random.default_rng(4)
        bits = np.unique(
            rng.integers(0, 2, size=(24, n_qubits)).astype(np.uint8), axis=0
        )
        batch = SampleBatch(bits=bits, weights=np.ones(len(bits), dtype=np.int64))
        keys = pack_bits(bits)
        order = lexsort_keys(keys)
        amps = rng.normal(size=len(bits)) + 1j * rng.uniform(0, 6.28, len(bits))
        table = AmplitudeTable(keys=keys[order], log_amps=amps[order])
        ref = local_energy_vectorized(comp, batch, table)
        plan = ElocPlan(comp, group_chunk=7, sample_chunk=5)
        plan.DEDUP_MIN_TABLE = 0
        ref_chunked = local_energy_vectorized(comp, batch, table,
                                              group_chunk=7, sample_chunk=5)
        np.testing.assert_array_equal(plan.local_energy(batch, table),
                                      ref_chunked)
        np.testing.assert_allclose(ref_chunked, ref, atol=1e-12)


class TestPlanLifecycle:
    def test_compile_eloc_plan_spelling(self, h2_problem):
        comp = compress_hamiltonian(h2_problem.hamiltonian)
        plan = compile_eloc_plan(comp, group_chunk=3, sample_chunk=9,
                                 memory_budget_bytes=1 << 20)
        assert (plan.group_chunk, plan.sample_chunk) == (3, 9)
        assert plan.comp is comp

    def test_wrong_hamiltonian_rejected(self, h2_problem, lih_problem):
        wf, comp, batch, table = _setup(h2_problem)
        other = compress_hamiltonian(lih_problem.hamiltonian)
        with pytest.raises(ValueError, match="different CompressedHamiltonian"):
            local_energy_planned(comp, batch, table, plan=ElocPlan(other))

    def test_word_count_mismatch_rejected(self, h2_problem):
        wf, comp, batch, table = _setup(h2_problem)
        ham = synthetic_molecular_hamiltonian(70, 50, seed=2)
        plan = ElocPlan(compress_hamiltonian(ham))
        with pytest.raises(ValueError, match="words"):
            plan.local_energy(batch, table)

    def test_invalid_chunking_rejected(self, h2_problem):
        comp = compress_hamiltonian(h2_problem.hamiltonian)
        with pytest.raises(ValueError, match="group_chunk"):
            ElocPlan(comp, group_chunk=0)
        with pytest.raises(ValueError, match="sample_chunk"):
            ElocPlan(comp, sample_chunk=-1)

    def test_missing_sample_raises(self, h2_problem):
        wf, comp, batch, table = _setup(h2_problem)
        short = AmplitudeTable(keys=table.keys[:1], log_amps=table.log_amps[:1])
        with pytest.raises(ValueError, match="every sample"):
            ElocPlan(comp).local_energy(batch, short)

    def test_empty_batch(self):
        ham = synthetic_molecular_hamiltonian(70, 50, seed=2)
        comp = compress_hamiltonian(ham)
        batch = SampleBatch(bits=np.zeros((0, 70), dtype=np.uint8),
                            weights=np.zeros(0, dtype=np.int64))
        table = AmplitudeTable(keys=np.zeros((0, 2), dtype=np.uint64),
                               log_amps=np.zeros(0, dtype=np.complex128))
        assert ElocPlan(comp).local_energy(batch, table).shape == (0,)

    def test_high_level_plan_implies_planned_kernel(self, h2_problem):
        wf, comp, batch, table = _setup(h2_problem)
        plan = ElocPlan(comp)
        e_plain, t_plain = local_energy(wf, comp, batch, mode="exact")
        e_plan, t_plan = local_energy(wf, comp, batch, mode="exact", plan=plan)
        np.testing.assert_array_equal(e_plan, e_plain)
        np.testing.assert_array_equal(t_plan.keys, t_plain.keys)


class TestKernelRegistry:
    def test_resolve_builtin_names(self):
        assert callable(resolve_batch_kernel("vectorized"))
        assert callable(resolve_batch_kernel("planned"))

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="planned"):
            resolve_batch_kernel("warp-drive")

    @pytest.mark.parametrize("name", ["exact", "sample_aware", "baseline",
                                      "sa_fuse", "sa_fuse_lut"])
    def test_non_batch_kernels_rejected_up_front(self, name):
        """Registered names without the batch signature must fail with the
        drivable options listed, not with an opaque mid-run TypeError."""
        with pytest.raises(TypeError, match="batch-kernel signature"):
            resolve_batch_kernel(name)

    def test_vmcconfig_validates_kernel_field(self):
        with pytest.raises(ValueError, match="VMCConfig.eloc_kernel"):
            VMCConfig(eloc_kernel="")

    def test_high_level_kernel_by_name(self, h2_problem):
        wf, comp, batch, table = _setup(h2_problem)
        e_vec, _ = local_energy(wf, comp, batch, mode="sample_aware",
                                table=table, kernel="vectorized")
        e_plan, _ = local_energy(wf, comp, batch, mode="sample_aware",
                                 table=table, kernel="planned")
        np.testing.assert_array_equal(e_plan, e_vec)


def _fresh_vmc(problem, backend=None, **cfg):
    wf = build_qiankunnet(problem.n_qubits, problem.n_up, problem.n_dn,
                          d_model=8, n_heads=2, n_layers=1, phase_hidden=(8,),
                          seed=7)
    defaults = dict(n_samples=800, eloc_mode="exact", warmup=50, seed=3)
    defaults.update(cfg)
    return VMC(wf, problem.hamiltonian, VMCConfig(**defaults), backend=backend)


class TestEngineIntegration:
    def test_vmc_compiles_one_plan(self, h2_problem):
        vmc = _fresh_vmc(h2_problem, sample_chunk=33, group_chunk=11)
        assert isinstance(vmc.eloc_plan, ElocPlan)
        assert vmc.eloc_plan.comp is vmc.comp
        assert (vmc.eloc_plan.group_chunk, vmc.eloc_plan.sample_chunk) == (11, 33)

    @pytest.mark.parametrize("backend_factory", [
        lambda: None,
        lambda: ThreadBackend(n_ranks=2, nu_star_per_rank=4),
    ])
    def test_planned_trajectory_matches_vectorized(self, h2_problem,
                                                   backend_factory):
        """The kernel choice must be invisible to the physics: identical
        trajectories on the serial and thread-rank backends."""
        a = _fresh_vmc(h2_problem, backend=backend_factory(),
                       eloc_kernel="planned")
        b = _fresh_vmc(h2_problem, backend=backend_factory(),
                       eloc_kernel="vectorized")
        for _ in range(3):
            sa, sb = a.step(), b.step()
            assert sa.energy == sb.energy
            assert sa.variance == sb.variance
        np.testing.assert_array_equal(a.wf.get_flat_params(),
                                      b.wf.get_flat_params())

    @pytest.mark.slow
    def test_process_backend_matches_thread_backend(self, h2_problem):
        a = _fresh_vmc(h2_problem, backend=ProcessBackend(
            n_ranks=2, nu_star_per_rank=4), eloc_kernel="planned")
        b = _fresh_vmc(h2_problem, backend=ThreadBackend(
            n_ranks=2, nu_star_per_rank=4), eloc_kernel="planned")
        sa, sb = a.step(), b.step()
        assert sa.energy == sb.energy
        assert sa.variance == sb.variance

    def test_unknown_kernel_fails_at_construction(self, h2_problem):
        """The name is resolved once per run, at VMC construction — a typo
        fails before any sampling happens, with the options listed."""
        with pytest.raises(KeyError, match="eloc_kernel"):
            _fresh_vmc(h2_problem, eloc_kernel="warp-drive")
        with pytest.raises(TypeError, match="batch-kernel signature"):
            _fresh_vmc(h2_problem, eloc_kernel="sa_fuse_lut")


class TestServeIntegration:
    def test_service_uses_per_version_plan(self, lih_problem):
        from repro.serve import ServeConfig, WavefunctionService

        wf, comp, batch, table = _setup(lih_problem)
        with WavefunctionService(
            wf, hamiltonian=lih_problem.hamiltonian,
            config=ServeConfig(max_wait_ms=1.0),
        ) as svc:
            served = svc.local_energy(batch, mode="exact")
            stats = svc.stats()["versions"][0]
            assert stats["eloc_plan_compiled"]
        direct, _ = local_energy(wf, compress_hamiltonian(
            lih_problem.hamiltonian), batch, mode="exact")
        np.testing.assert_allclose(served, direct, atol=1e-10)
