"""Gradient correctness of the autograd engine (finite-difference checks)."""
import numpy as np
import pytest

from repro.autograd import Tensor, concat, embedding_lookup, gradcheck, no_grad, stack


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestElementwiseGrads:
    def test_add_broadcast(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4,)))
        gradcheck(lambda x, y: x + y, [a, b])

    def test_mul_broadcast(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)))
        b = Tensor(rng.normal(size=(3, 1)))
        gradcheck(lambda x, y: x * y, [a, b])

    def test_sub_div(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(3, 4)) + 3.0)
        gradcheck(lambda x, y: (x - y) / y, [a, b])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.normal(size=(5,))) + 0.5)
        gradcheck(lambda x: x**3, [a])
        gradcheck(lambda x: x**-0.5, [a])

    def test_exp_log_sqrt(self, rng):
        a = Tensor(np.abs(rng.normal(size=(4,))) + 0.5)
        gradcheck(lambda x: x.exp(), [a])
        gradcheck(lambda x: x.log(), [a])
        gradcheck(lambda x: x.sqrt(), [a])

    def test_tanh_sigmoid_relu_gelu(self, rng):
        a = Tensor(rng.normal(size=(6,)))
        gradcheck(lambda x: x.tanh(), [a])
        gradcheck(lambda x: x.sigmoid(), [a])
        gradcheck(lambda x: x.gelu(), [a])
        b = Tensor(rng.normal(size=(6,)) + 0.1)  # keep away from the kink
        gradcheck(lambda x: x.relu(), [b])

    def test_neg_rsub_rdiv(self, rng):
        a = Tensor(rng.normal(size=(3,)) + 2.0)
        gradcheck(lambda x: 1.0 - x, [a])
        gradcheck(lambda x: 2.0 / x, [a])
        gradcheck(lambda x: -x, [a])


class TestMatmulGrads:
    def test_2d(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4, 5)))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_batched(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)))
        b = Tensor(rng.normal(size=(2, 4, 5)))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_broadcast_batch(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)))
        b = Tensor(rng.normal(size=(4, 5)))  # broadcast over batch
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_vector_cases(self, rng):
        a = Tensor(rng.normal(size=(4,)))
        b = Tensor(rng.normal(size=(4,)))
        gradcheck(lambda x, y: x @ y, [a, b])


class TestReductionsAndShape:
    def test_sum_axes(self, rng):
        a = Tensor(rng.normal(size=(3, 4, 5)))
        gradcheck(lambda x: x.sum(), [a])
        gradcheck(lambda x: x.sum(axis=1), [a])
        gradcheck(lambda x: x.sum(axis=2, keepdims=True), [a])

    def test_mean(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        gradcheck(lambda x: x.mean(axis=-1, keepdims=True), [a])

    def test_reshape_transpose_swapaxes(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)))
        gradcheck(lambda x: x.reshape(6, 4), [a])
        gradcheck(lambda x: x.transpose(2, 0, 1), [a])
        gradcheck(lambda x: x.swapaxes(0, 2), [a])

    def test_getitem_slice_and_fancy(self, rng):
        a = Tensor(rng.normal(size=(5, 6)))
        gradcheck(lambda x: x[1:4], [a])
        idx = np.array([0, 2, 2, 4])
        gradcheck(lambda x: x[idx], [a])  # repeated rows accumulate

    def test_concat_stack(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2, 3)))
        gradcheck(lambda x, y: concat([x, y], axis=1), [a, b])
        gradcheck(lambda x, y: stack([x, y], axis=0), [a, b])

    def test_embedding_lookup(self, rng):
        table = Tensor(rng.normal(size=(7, 4)))
        idx = np.array([[1, 2, 1], [6, 0, 1]])
        gradcheck(lambda t: embedding_lookup(t, idx), [table])


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        a = Tensor(rng.normal(size=(4, 9)))
        s = a.softmax(axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), 1.0, atol=1e-12)

    def test_softmax_grad(self, rng):
        a = Tensor(rng.normal(size=(3, 5)))
        w = Tensor(rng.normal(size=(3, 5)))
        gradcheck(lambda x, c: x.softmax(-1) * c, [a, w])

    def test_log_softmax_grad(self, rng):
        a = Tensor(rng.normal(size=(3, 5)))
        w = Tensor(rng.normal(size=(3, 5)))
        gradcheck(lambda x, c: x.log_softmax(-1) * c, [a, w])

    def test_log_softmax_stability(self):
        a = Tensor(np.array([[1e30, 0.0, -1e30]]))
        out = a.log_softmax(-1).data
        assert np.isfinite(out[0, 0])

    def test_masked_fill(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        mask = np.array([[True, False, False, True]] * 3)
        out = a.masked_fill(mask, -5.0)
        assert np.all(out.data[mask] == -5.0)
        gradcheck(lambda x: x.masked_fill(mask, 0.0), [a])


class TestGraphMechanics:
    def test_grad_accumulates_over_backwards(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, 5.0)

    def test_reused_node_accumulates_in_one_graph(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * a  # d/da = 2a
        c = b + a  # total derivative 2a + 1 = 5
        c.sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2.0
        c = a * 5.0
        d = b * c  # = 10 a^2 -> grad 20 a = 60
        d.sum().backward()
        np.testing.assert_allclose(a.grad, [60.0])

    def test_no_grad_blocks_taping(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (a * 2.0).sum()
        assert not out.requires_grad

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 1.0).backward()

    def test_backward_on_nongrad_raises(self):
        a = Tensor(np.ones(1))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_detach(self):
        a = Tensor(np.ones(3), requires_grad=True)
        d = a.detach()
        assert not d.requires_grad

    def test_deep_chain_iterative_topo(self):
        # Deep graphs must not hit the recursion limit (iterative DFS).
        a = Tensor(np.array([1.0]), requires_grad=True)
        x = a
        for _ in range(5000):
            x = x + 0.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_numpy_scalar_coercion(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        out = (np.float64(2.0) * a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2.0)


class TestGradModeThreadLocality:
    def test_no_grad_is_per_thread(self):
        """A serving thread under no_grad must not untape a training thread's
        graph (regression: the grad flag used to be process-global)."""
        import threading

        from repro.autograd import no_grad

        entered = threading.Event()
        release = threading.Event()

        def inference_thread():
            with no_grad():
                entered.set()
                release.wait(timeout=10)

        t = threading.Thread(target=inference_thread)
        t.start()
        try:
            assert entered.wait(timeout=10)
            a = Tensor(np.ones(3), requires_grad=True)
            out = (a * 2.0).sum()
            assert out.requires_grad  # built while another thread is no_grad
            out.backward()
            np.testing.assert_allclose(a.grad, 2.0)
        finally:
            release.set()
            t.join()
