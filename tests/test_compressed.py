"""Compressed Hamiltonian storage (Fig. 6 / Algorithm 1) + the exact solver."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hamiltonian import (
    QubitHamiltonian,
    build_reference,
    compress_hamiltonian,
    exact_ground_state,
    sector_basis,
    sector_hamiltonian_dense,
    strings_to_matrix,
    synthetic_molecular_hamiltonian,
)
from repro.utils.bitstrings import unpack_bits


class TestCompression:
    def test_group_structure_valid_csr(self, h2o_problem):
        comp = compress_hamiltonian(h2o_problem.hamiltonian)
        assert comp.idxs[0] == 0
        assert comp.idxs[-1] == comp.n_terms
        assert np.all(np.diff(comp.idxs) > 0)
        assert comp.n_groups == len(comp.xy_unique)
        assert comp.n_groups < comp.n_terms  # actual compression happened

    def test_xy_unique_are_unique(self, h2o_problem):
        comp = compress_hamiltonian(h2o_problem.hamiltonian)
        assert len(np.unique(comp.xy_unique, axis=0)) == comp.n_groups

    def test_coefficient_phase_folding(self, h2_problem):
        h = h2_problem.hamiltonian
        comp = compress_hamiltonian(h)
        # Total spectral content preserved: compare dense matrices.
        H_orig = strings_to_matrix(h.to_terms()).real + h.constant * np.eye(2**h.n_qubits)
        Hs, basis = sector_hamiltonian_dense(comp, 1, 1)
        # Embed sector matrix and compare elementwise against the dense H.
        for i in range(basis.dim):
            for j in range(basis.dim):
                bi = unpack_bits(basis.keys[i], h.n_qubits)[0]
                bj = unpack_bits(basis.keys[j], h.n_qubits)[0]
                ii = int(sum(int(b) << k for k, b in enumerate(bi)))
                jj = int(sum(int(b) << k for k, b in enumerate(bj)))
                assert Hs[i, j] == pytest.approx(H_orig[ii, jj], abs=1e-9)

    def test_memory_reduction_positive_for_molecules(self, h2o_problem):
        h = h2o_problem.hamiltonian
        ref = build_reference(h)
        comp = compress_hamiltonian(h)
        reduction = 1.0 - comp.memory_bytes() / ref.memory_bytes()
        assert reduction > 0.30  # paper reports ~40% across molecules

    def test_reference_memory_formula(self, h2_problem):
        ref = build_reference(h2_problem.hamiltonian)
        n, k = h2_problem.n_qubits, ref.n_terms
        assert ref.memory_bytes() == k * (2 * n + 16)

    def test_odd_y_rejected(self):
        h = QubitHamiltonian(
            n_qubits=2,
            x_masks=np.array([[1]], dtype=np.uint64),
            z_masks=np.array([[1]], dtype=np.uint64),  # one Y letter
            coeffs=np.array([1.0]),
        )
        with pytest.raises(ValueError):
            compress_hamiltonian(h)

    def test_group_sizes_sum(self, lih_problem):
        comp = compress_hamiltonian(lih_problem.hamiltonian)
        assert comp.group_sizes().sum() == comp.n_terms


class TestSectorBasis:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 4), st.integers(0, 3), st.integers(0, 3))
    def test_dimension_is_binomial_product(self, n_orb, n_up, n_dn):
        from math import comb

        if n_up > n_orb or n_dn > n_orb:
            return
        basis = sector_basis(2 * n_orb, n_up, n_dn)
        assert basis.dim == comb(n_orb, n_up) * comb(n_orb, n_dn)

    def test_all_states_in_sector(self):
        basis = sector_basis(8, 2, 1)
        bits = basis.bits()
        np.testing.assert_array_equal(bits[:, 0::2].sum(axis=1), 2)
        np.testing.assert_array_equal(bits[:, 1::2].sum(axis=1), 1)

    def test_keys_sorted_and_unique(self):
        basis = sector_basis(10, 2, 2)
        assert len(np.unique(basis.keys, axis=0)) == basis.dim

    def test_odd_qubits_rejected(self):
        with pytest.raises(ValueError):
            sector_basis(7, 1, 1)


class TestExactSolver:
    def test_matches_dense_diagonalization_synthetic(self):
        h = synthetic_molecular_hamiltonian(n_qubits=8, n_terms=60, seed=3, n_electrons=4)
        e, vec, basis = exact_ground_state(h, n_up=2, n_dn=2)
        H = strings_to_matrix(h.to_terms())
        assert np.abs(H.imag).max() < 1e-10
        # Project dense H onto the sector and diagonalize.
        idx = []
        for i in range(basis.dim):
            bits = unpack_bits(basis.keys[i], 8)[0]
            idx.append(int(sum(int(b) << k for k, b in enumerate(bits))))
        Hs = H.real[np.ix_(idx, idx)]
        ref = np.linalg.eigvalsh(Hs)[0]
        assert e == pytest.approx(ref + h.constant, abs=1e-8)

    def test_ground_state_is_eigenvector(self, h2_problem):
        from repro.hamiltonian import compress_hamiltonian

        comp = compress_hamiltonian(h2_problem.hamiltonian)
        e, vec, basis = exact_ground_state(comp, 1, 1)
        Hs, _ = sector_hamiltonian_dense(comp, 1, 1)
        resid = Hs @ vec - e * vec
        assert np.abs(resid).max() < 1e-8

    def test_infers_sector_from_electron_count(self, h2_problem):
        e_auto, _, _ = exact_ground_state(h2_problem.hamiltonian)
        e_explicit, _, _ = exact_ground_state(h2_problem.hamiltonian, 1, 1)
        assert e_auto == pytest.approx(e_explicit)

    def test_large_sector_uses_iterative_path(self, lih_problem):
        # LiH sector dim = C(6,2)^2 = 225 < 600 -> dense; force iterative by
        # requesting a bigger synthetic sector.
        h = synthetic_molecular_hamiltonian(n_qubits=12, n_terms=120, seed=5)
        e, vec, basis = exact_ground_state(h, 3, 3)
        assert basis.dim == 400
        assert np.isfinite(e)


class TestSynthetic:
    def test_even_y_counts(self):
        h = synthetic_molecular_hamiltonian(40, 500, seed=1)
        assert np.all(h.y_counts() % 2 == 0)

    def test_unique_terms(self):
        h = synthetic_molecular_hamiltonian(30, 300, seed=2)
        keys = {(tuple(x), tuple(z)) for x, z in zip(h.x_masks, h.z_masks)}
        assert len(keys) == h.n_terms

    def test_dense_hermitian_small(self):
        h = synthetic_molecular_hamiltonian(6, 30, seed=4)
        H = strings_to_matrix(h.to_terms())
        np.testing.assert_allclose(H, H.conj().T, atol=1e-12)
        assert np.abs(H.imag).max() < 1e-12

    def test_multiword_masks(self):
        h = synthetic_molecular_hamiltonian(120, 200, seed=6)
        assert h.x_masks.shape == (200, 2)
        assert compress_hamiltonian(h).n_groups <= 200
