"""Property-based gradient checks for the autograd engine (hypothesis).

The base suite (test_autograd.py) covers targeted cases; this file sweeps the
operator set with randomized shapes/values, plus graph-semantics invariants
(accumulation, no_grad, diamond graphs, broadcasting adjoints).
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, no_grad
from repro.autograd.gradcheck import gradcheck
from repro.autograd.tensor import concat, embedding_lookup, stack

SEEDS = st.integers(min_value=0, max_value=10**6)
DIMS = st.integers(min_value=1, max_value=5)


def arr(rng, *shape, lo=-2.0, hi=2.0):
    return Tensor(rng.uniform(lo, hi, shape))


class TestElementwiseGradients:
    @settings(max_examples=10, deadline=None)
    @given(SEEDS, DIMS, DIMS)
    def test_mul_div_chain(self, seed, n, m):
        rng = np.random.default_rng(seed)
        x, y = arr(rng, n, m), arr(rng, n, m, lo=0.5, hi=2.0)
        gradcheck(lambda a, b: (a * b) / (b + 3.0), [x, y])

    @settings(max_examples=10, deadline=None)
    @given(SEEDS, DIMS)
    def test_exp_log_sqrt(self, seed, n):
        rng = np.random.default_rng(seed)
        x = arr(rng, n, lo=0.2, hi=3.0)
        gradcheck(lambda a: (a.exp().log() + a.sqrt()).sum(), [x])

    @settings(max_examples=10, deadline=None)
    @given(SEEDS, DIMS, DIMS)
    def test_tanh_sigmoid_gelu(self, seed, n, m):
        rng = np.random.default_rng(seed)
        x = arr(rng, n, m)
        gradcheck(lambda a: a.tanh() + a.sigmoid() + a.gelu(), [x], tol=1e-4)

    @settings(max_examples=10, deadline=None)
    @given(SEEDS, st.floats(min_value=0.5, max_value=3.0))
    def test_pow(self, seed, e):
        rng = np.random.default_rng(seed)
        x = arr(rng, 4, lo=0.3, hi=2.0)
        gradcheck(lambda a: a**e, [x], tol=1e-4)

    def test_relu_subgradient_at_kink_is_zero_side(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 1.0])


class TestMatmulAndShapes:
    @settings(max_examples=10, deadline=None)
    @given(SEEDS, DIMS, DIMS, DIMS)
    def test_matmul_2d(self, seed, n, k, m):
        rng = np.random.default_rng(seed)
        gradcheck(lambda a, b: a @ b, [arr(rng, n, k), arr(rng, k, m)])

    @settings(max_examples=8, deadline=None)
    @given(SEEDS, st.integers(min_value=1, max_value=3), DIMS, DIMS, DIMS)
    def test_matmul_batched_broadcast(self, seed, b, n, k, m):
        rng = np.random.default_rng(seed)
        # (B, n, k) @ (k, m): the right operand's adjoint must unbroadcast.
        gradcheck(lambda a, w: a @ w, [arr(rng, b, n, k), arr(rng, k, m)])

    @settings(max_examples=8, deadline=None)
    @given(SEEDS, DIMS)
    def test_vector_vector(self, seed, n):
        rng = np.random.default_rng(seed)
        gradcheck(lambda a, b: a @ b, [arr(rng, n), arr(rng, n)])

    @settings(max_examples=8, deadline=None)
    @given(SEEDS, DIMS, DIMS)
    def test_reshape_transpose_roundtrip(self, seed, n, m):
        rng = np.random.default_rng(seed)
        x = arr(rng, n, m)
        gradcheck(lambda a: a.reshape(m * n).reshape(m, n).transpose(), [x])

    @settings(max_examples=8, deadline=None)
    @given(SEEDS, DIMS, DIMS)
    def test_getitem(self, seed, n, m):
        rng = np.random.default_rng(seed)
        x = arr(rng, n + 1, m)
        gradcheck(lambda a: a[0] * 2.0 + a[-1], [x])

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])


class TestSoftmaxFamily:
    @settings(max_examples=10, deadline=None)
    @given(SEEDS, DIMS, st.integers(min_value=2, max_value=6))
    def test_softmax_rows_sum_to_one_and_grad(self, seed, n, v):
        rng = np.random.default_rng(seed)
        x = arr(rng, n, v, lo=-5, hi=5)
        out = x.softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-12)
        coeff = Tensor(rng.uniform(size=(n, v)))  # fixed: fn must be deterministic
        gradcheck(lambda a: (a.softmax(axis=-1) * coeff).sum(), [x], tol=1e-4)

    @settings(max_examples=10, deadline=None)
    @given(SEEDS, DIMS, st.integers(min_value=2, max_value=6))
    def test_log_softmax_consistency(self, seed, n, v):
        rng = np.random.default_rng(seed)
        x = arr(rng, n, v, lo=-5, hi=5)
        np.testing.assert_allclose(
            x.log_softmax(axis=-1).data, np.log(x.softmax(axis=-1).data), atol=1e-12
        )
        coeff = Tensor(rng.uniform(size=(n, v)))
        gradcheck(lambda a: (a.log_softmax(axis=-1) * coeff).sum(), [x], tol=1e-4)

    def test_log_softmax_extreme_logits_stable(self):
        x = Tensor(np.array([[1e4, -1e4, 0.0]]), requires_grad=True)
        out = x.log_softmax(axis=-1)
        assert np.all(np.isfinite(out.data))
        out.sum().backward()
        assert np.all(np.isfinite(x.grad))

    @settings(max_examples=8, deadline=None)
    @given(SEEDS, DIMS, st.integers(min_value=2, max_value=5))
    def test_masked_fill_blocks_gradient(self, seed, n, v):
        rng = np.random.default_rng(seed)
        x = arr(rng, n, v)
        mask = rng.random((n, v)) < 0.4
        x.requires_grad = True
        x.zero_grad()
        x.masked_fill(mask, -1e30).masked_fill(~mask, 0.0).sum().backward()
        np.testing.assert_allclose(x.grad, 0.0)  # everything masked one way


class TestGraphSemantics:
    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = y + y  # two paths through y
        z.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_gradient_accumulation_across_backwards(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0, 5.0])

    def test_no_grad_blocks_taping(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2.0).sum()
        assert not y.requires_grad
        with pytest.raises(RuntimeError):
            y.backward()

    def test_nested_no_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            with no_grad():
                pass
            y = x * 2.0
        assert not y.requires_grad
        z = x * 2.0
        assert z.requires_grad  # re-enabled after exit

    def test_backward_on_nonscalar_requires_grad_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError, match="scalar"):
            y.backward()
        y.backward(np.ones((2, 2)))
        np.testing.assert_allclose(x.grad, 2.0 * np.ones((2, 2)))

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = (x * 5.0).detach()
        assert not y.requires_grad

    def test_scalar_coercion_in_binary_ops(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        ((2.0 - x) / 4.0 + 1.0 * x).sum().backward()
        np.testing.assert_allclose(x.grad, [-0.25 + 1.0])

    def test_deep_chain_iterative_toposort(self):
        """1000-deep chain: recursion-free backward must not overflow."""
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(1000):
            y = y * 1.001
        y.backward()
        assert x.grad[0] == pytest.approx(1.001**1000, rel=1e-9)


class TestStackConcatEmbedding:
    @settings(max_examples=8, deadline=None)
    @given(SEEDS, st.integers(min_value=1, max_value=4), DIMS)
    def test_concat_gradients(self, seed, parts, m):
        rng = np.random.default_rng(seed)
        xs = [arr(rng, i + 1, m) for i in range(parts)]
        gradcheck(lambda *ts: concat(list(ts), axis=0) * 2.0, list(xs))

    @settings(max_examples=8, deadline=None)
    @given(SEEDS, st.integers(min_value=2, max_value=4), DIMS)
    def test_stack_gradients(self, seed, parts, m):
        rng = np.random.default_rng(seed)
        xs = [arr(rng, m) for _ in range(parts)]
        gradcheck(lambda *ts: stack(list(ts), axis=0).sum(axis=0), list(xs))

    def test_embedding_scatter_add(self):
        table = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        idx = np.array([[0, 1], [1, 3]])
        out = embedding_lookup(table, idx)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[0] += 1
        expected[1] += 2  # index 1 appears twice
        expected[3] += 1
        np.testing.assert_allclose(table.grad, expected)
