"""End-to-end integration tests across the whole pipeline."""
import numpy as np
import pytest

from repro.chem import build_problem, run_fci
from repro.core import (
    SampleBatch,
    VMC,
    VMCConfig,
    build_amplitude_table,
    build_qiankunnet,
    batch_autoregressive_sample,
    local_energy_vectorized,
    pretrain_to_reference,
)
from repro.hamiltonian import compress_hamiltonian


class TestMolecularProblem:
    @pytest.mark.parametrize("name,qubits,electrons", [
        ("H2", 4, 2), ("LiH", 12, 4), ("BeH2", 14, 6), ("H2O", 14, 10),
    ])
    def test_problem_invariants(self, name, qubits, electrons):
        prob = build_problem(name, "sto-3g")
        assert prob.n_qubits == qubits
        assert prob.n_electrons == electrons
        assert prob.hamiltonian.n_electrons == electrons
        # HF reference bits live in the correct sector.
        assert prob.hf_bits[0::2].sum() == prob.n_up
        assert prob.hf_bits[1::2].sum() == prob.n_dn
        # even Y counts (real Hamiltonian) throughout
        assert np.all(prob.hamiltonian.y_counts() % 2 == 0)

    def test_cache_returns_identical_hamiltonian(self):
        p1 = build_problem("H2", "sto-3g", r=0.9)
        p2 = build_problem("H2", "sto-3g", r=0.9)
        np.testing.assert_array_equal(p1.hamiltonian.x_masks, p2.hamiltonian.x_masks)
        np.testing.assert_array_equal(p1.hamiltonian.coeffs, p2.hamiltonian.coeffs)

    def test_geometry_kwargs_change_hamiltonian(self):
        p1 = build_problem("H2", "sto-3g", r=0.9)
        p2 = build_problem("H2", "sto-3g", r=1.1)
        assert p1.hamiltonian.constant != p2.hamiltonian.constant


class TestEnergyConsistency:
    def test_pretrained_wavefunction_starts_near_hf(self, lih_problem):
        """After HF pretraining, the VMC energy estimate starts near E_HF."""
        wf = build_qiankunnet(lih_problem.n_qubits, lih_problem.n_up,
                              lih_problem.n_dn, seed=3)
        pretrain_to_reference(wf, lih_problem.hf_bits, n_steps=600,
                              target_prob=0.99)
        vmc = VMC(wf, lih_problem.hamiltonian,
                  VMCConfig(n_samples=10**5, eloc_mode="exact", seed=4))
        stats = vmc.step()
        # Dominated by the HF determinant -> within tens of mHa of E_HF
        # (cross terms from the residual ~1% mass scale as its sqrt).
        assert stats.energy == pytest.approx(lih_problem.e_hf, abs=3e-2)

    @pytest.mark.slow
    def test_vmc_beats_hf_quickly(self, lih_problem):
        fci = run_fci(lih_problem.hamiltonian).energy
        wf = build_qiankunnet(lih_problem.n_qubits, lih_problem.n_up,
                              lih_problem.n_dn, seed=5)
        pretrain_to_reference(wf, lih_problem.hf_bits, n_steps=150)
        vmc = VMC(wf, lih_problem.hamiltonian,
                  VMCConfig(n_samples=10**5, eloc_mode="exact", warmup=100,
                            seed=6))
        vmc.run(200)
        e = vmc.best_energy()
        assert e < lih_problem.e_hf  # captured correlation energy
        assert e >= fci - 1e-3       # variational (up to sampling noise)

    def test_sampled_energy_tracks_rayleigh_quotient(self, h2o_problem):
        """Large-N_s sampled energy ~ exact <H> of the same wavefunction."""
        from repro.hamiltonian import sector_hamiltonian_dense

        wf = build_qiankunnet(h2o_problem.n_qubits, h2o_problem.n_up,
                              h2o_problem.n_dn, d_model=8, n_heads=2,
                              n_layers=1, phase_hidden=(16,), seed=7)
        pretrain_to_reference(wf, h2o_problem.hf_bits, n_steps=80,
                              target_prob=0.4)
        comp = compress_hamiltonian(h2o_problem.hamiltonian)
        rng = np.random.default_rng(8)
        batch = batch_autoregressive_sample(wf, 10**7, rng)
        from repro.core import local_energy

        eloc, _ = local_energy(wf, comp, batch, mode="exact")
        w = batch.weights / batch.weights.sum()
        e_sampled = float(np.sum(w * eloc.real))
        Hs, basis = sector_hamiltonian_dense(comp, h2o_problem.n_up,
                                             h2o_problem.n_dn)
        psi = wf.amplitudes(basis.bits())
        e_exact = float(np.real(psi.conj() @ Hs @ psi) / np.real(psi.conj() @ psi))
        assert e_sampled == pytest.approx(e_exact, abs=5e-3)


class TestLargeSystemMachinery:
    @pytest.mark.slow
    def test_56_qubit_sampling_and_packing(self):
        """Multiword (W=1? 56<64) and 92-qubit (W=2) code paths both work."""
        from repro.hamiltonian import synthetic_molecular_hamiltonian

        for n_qubits in (56, 92):
            h = synthetic_molecular_hamiltonian(n_qubits, 300, seed=9,
                                                n_electrons=4)
            comp = compress_hamiltonian(h)
            wf = build_qiankunnet(n_qubits, 2, 2, d_model=8, n_heads=2,
                                  n_layers=1, phase_hidden=(16,), seed=10)
            rng = np.random.default_rng(11)
            batch = batch_autoregressive_sample(wf, 10**6, rng)
            assert np.all(wf.constraint.validate_bits(batch.bits))
            table = build_amplitude_table(wf, batch)
            eloc = local_energy_vectorized(comp, batch, table)
            assert np.all(np.isfinite(eloc))

    def test_120_qubit_tree_partition(self):
        """The Fig. 5 splitter at the paper's benzene scale (120 qubits)."""
        from repro.core import bas_prefix_sweep
        from repro.parallel import split_tree_state

        wf = build_qiankunnet(120, 15, 15, d_model=8, n_heads=2, n_layers=1,
                              phase_hidden=(16,), seed=12)
        rng = np.random.default_rng(13)
        state = bas_prefix_sweep(wf, 10**8, rng, stop_unique=64)
        parts = split_tree_state(state, 8)
        assert sum(p.weights.sum() for p in parts) == 10**8
        totals = [p.weights.sum() for p in parts if len(p.weights)]
        assert max(totals) < 4 * (10**8 / 8)  # rough balance
